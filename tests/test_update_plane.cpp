// Live update plane for the sharded serving tier (ISSUE 9 + ISSUE 10).
//
// The load-bearing property lifts DynamicModel's contract across the
// machine line: after ANY insert/remove interleaving fanned through the
// UpdateRouter — every batch crossing a byte transport to every shard,
// every shard recomputing only its OWNED stale rows — a ServingCluster
// answers every query BIT-identical (ids AND float scores, EXPECT_EQ
// never EXPECT_NEAR) to LinkPredictor::fit on the live graph
// (base ∪ inserts − removals), across seeds × shard counts × all three
// transports × cached/uncached × op orders. Queries keep flowing during
// writer bursts: shards publish row-by-row (RCU), no stop-the-world
// anywhere, for removals exactly as for inserts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "serve/router.hpp"
#include "serve/transport.hpp"

namespace snaple {
namespace {

using serve::ByteChannel;
using serve::ServeOptions;
using serve::ServingCluster;
using serve::TransportError;
using serve::TransportKind;
using serve::UpdateRouter;
using Scored = std::vector<std::pair<VertexId, float>>;

constexpr TransportKind kTransports[] = {TransportKind::kInProcess,
                                         TransportKind::kUnixSocket,
                                         TransportKind::kTcp};

/// Splits `full` into a base graph (same vertex count) and a
/// deterministic sample of ~`want` edges to replay as live inserts —
/// the union of the two is `full` by construction, so the from-scratch
/// reference is a fit on the full graph.
struct Split {
  std::shared_ptr<const CsrGraph> base;
  std::vector<Edge> inserts;
};

Split split_graph(const CsrGraph& full, std::size_t want) {
  const auto all = full.edges();
  const std::size_t stride = std::max<std::size_t>(2, all.size() / want);
  Split out;
  GraphBuilder b(full.num_vertices());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i % stride == 1 && out.inserts.size() < want) {
      out.inserts.push_back(all[i]);
    } else {
      b.add_edge(all[i].src, all[i].dst);
    }
  }
  out.base = std::make_shared<const CsrGraph>(b.build());
  return out;
}

/// Fits under the insertion-stable placement LiveShard requires, with
/// cfg.seed partitioning — exactly what the live ctor's defaulted
/// partition seed resolves to.
std::shared_ptr<const PredictorModel> fit_edge_local(
    const CsrGraph& g, const SnapleConfig& cfg, std::size_t machines) {
  const auto part = gas::Partitioning::create(
      g, machines, gas::PartitionStrategy::kEdgeLocal, cfg.seed);
  const auto cluster = machines == 1
                           ? gas::ClusterConfig::single_machine(2)
                           : gas::ClusterConfig::type_i(machines);
  const LinkPredictor predictor(cfg, cluster,
                                gas::PartitionStrategy::kEdgeLocal);
  return std::make_shared<const PredictorModel>(
      predictor.fit_with_partitioning(g, part));
}

ServeOptions live_options(std::size_t shards, TransportKind transport,
                          std::size_t cache_bytes = 0) {
  ServeOptions opt;
  opt.num_shards = shards;
  opt.transport = transport;
  opt.colocate = false;  // live serving fetches; replicas cannot refresh
  opt.cache_bytes = cache_bytes;
  return opt;
}

/// One update-plane operation: a batch of inserts or of removals.
struct EdgeOp {
  bool remove;
  std::vector<Edge> edges;
};

/// Builds a deterministic insert/remove interleaving over `split`:
/// insert batches of the pending live edges, removals of base edges,
/// removals of just-inserted edges, and re-adds of removed edges. Also
/// returns the final live graph for the reference fit.
struct Churn {
  std::vector<EdgeOp> ops;
  CsrGraph live;
  std::size_t total_edges = 0;  // sum of batch sizes == final version
};

Churn make_churn(const Split& split, std::uint64_t seed) {
  std::set<std::pair<VertexId, VertexId>> live;
  for (const Edge& e : split.base->edges()) live.emplace(e.src, e.dst);
  const auto base_edges = split.base->edges();

  Churn out;
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::vector<Edge> removed;
  std::size_t next_insert = 0;
  EdgeOp pending{false, {}};
  const auto flush = [&] {
    if (pending.edges.empty()) return;
    out.total_edges += pending.edges.size();
    out.ops.push_back(std::move(pending));
    pending = EdgeOp{false, {}};
  };
  const auto push = [&](bool remove, Edge e) {
    if (pending.remove != remove || pending.edges.size() >= 5) flush();
    pending.remove = remove;
    pending.edges.push_back(e);
    if (remove) {
      live.erase({e.src, e.dst});
      removed.push_back(e);
    } else {
      live.emplace(e.src, e.dst);
    }
  };
  const auto is_live = [&](const Edge& e) {
    return live.contains({e.src, e.dst});
  };
  const auto in_pending = [&](const Edge& e) {
    return std::find_if(pending.edges.begin(), pending.edges.end(),
                        [&](const Edge& p) {
                          return p.src == e.src && p.dst == e.dst;
                        }) != pending.edges.end();
  };
  for (std::size_t op = 0; op < 70; ++op) {
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert the next pending live edge
        if (next_insert < split.inserts.size()) {
          push(false, split.inserts[next_insert++]);
        }
        break;
      }
      case 2: {  // remove a random currently-live edge (base or delta)
        const Edge e = next_insert > 0 && rng() % 4 == 0
                           ? split.inserts[rng() % next_insert]
                           : base_edges[rng() % base_edges.size()];
        if (is_live(e) && !in_pending(e)) push(true, e);
        break;
      }
      case 3: {  // re-add a previously removed edge
        if (!removed.empty()) {
          const Edge e = removed[rng() % removed.size()];
          if (!is_live(e) && !in_pending(e)) push(false, e);
        }
        break;
      }
    }
  }
  flush();

  GraphBuilder b(split.base->num_vertices());
  for (const auto& [u, v] : live) b.add_edge(u, v);
  out.live = b.build();
  return out;
}

// ---------- the tentpole: live sharded ≡ union refit, bit for bit ----------

TEST(UpdatePlaneEquivalence, BitIdenticalToUnionRefitAcrossTheMatrix) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    for (const std::size_t k_hops : {2ul, 3ul}) {
      const CsrGraph full = gen::make_dataset("gowalla", 0.02, seed);
      const Split split = split_graph(full, 30);
      ASSERT_GE(split.inserts.size(), 20u);
      SnapleConfig cfg;
      cfg.k_local = 10;
      cfg.k_hops = k_hops;
      cfg.seed = seed;
      const auto base_model = fit_edge_local(*split.base, cfg, 4);
      const auto refit = fit_edge_local(full, cfg, 4);
      const QueryEngine engine(refit);
      const VertexId n = refit->num_vertices();
      std::vector<Scored> want(n);
      for (VertexId u = 0; u < n; ++u) want[u] = engine.topk(u);

      for (const std::size_t shards : {1ul, 2ul, 8ul}) {
        for (const auto transport : kTransports) {
          for (const std::size_t cache : {0ul, 1ul << 20}) {
            ServingCluster cluster(
                base_model, split.base,
                live_options(shards, transport, cache));
            ASSERT_TRUE(cluster.live());
            // Mixed batch sizes, queries interleaved mid-stream: the
            // plane serves while it absorbs.
            std::size_t at = 0;
            while (at < split.inserts.size()) {
              const std::size_t len =
                  std::min<std::size_t>(7, split.inserts.size() - at);
              (void)cluster.update_router().apply(
                  {split.inserts.data() + at, len});
              at += len;
              (void)cluster.router().topk(static_cast<VertexId>(at % n));
            }
            EXPECT_EQ(cluster.update_router().barrier(),
                      split.inserts.size());
            for (VertexId u = 0; u < n; ++u) {
              ASSERT_EQ(cluster.router().topk(u), want[u])
                  << "seed=" << seed << " K=" << k_hops
                  << " shards=" << shards
                  << " transport=" << serve::to_string(transport)
                  << " cache=" << cache << " u=" << u;
            }
          }
        }
      }
    }
  }
}

TEST(UpdatePlaneEquivalence, InsertOrdersAndBatchShapesConverge) {
  // One-by-one, one big batch, and a shuffled chunking must all land on
  // the same served state: each recompute reads the final union graph.
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 7);
  const Split split = split_graph(full, 24);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = 3;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);
  const auto refit = fit_edge_local(full, cfg, 4);
  const QueryEngine engine(refit);
  const VertexId n = refit->num_vertices();

  std::vector<Edge> shuffled = split.inserts;
  std::mt19937 rng(21);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  struct Shape {
    const char* name;
    const std::vector<Edge>* edges;
    std::size_t chunk;
  };
  const Shape shapes[] = {
      {"one-by-one", &split.inserts, 1},
      {"one-batch", &split.inserts, split.inserts.size()},
      {"shuffled-chunks", &shuffled, 5},
  };
  for (const Shape& s : shapes) {
    ServingCluster cluster(base_model, split.base,
                           live_options(2, TransportKind::kInProcess));
    for (std::size_t at = 0; at < s.edges->size(); at += s.chunk) {
      const std::size_t len =
          std::min(s.chunk, s.edges->size() - at);
      (void)cluster.update_router().apply({s.edges->data() + at, len});
    }
    EXPECT_EQ(cluster.update_router().barrier(), s.edges->size())
        << s.name;
    for (VertexId u = 0; u < n; ++u) {
      ASSERT_EQ(cluster.router().topk(u), engine.topk(u))
          << s.name << " u=" << u;
    }
  }
}

TEST(UpdatePlaneEquivalence, InsertRemoveInterleavingsMatchLiveRefit) {
  // The removal mirror of the matrix test above: a deterministic churn
  // of insert batches, removals (of base AND just-inserted edges), and
  // re-adds, fanned through the plane as op-4/op-6 batches. At
  // quiescence every served answer equals a fit on the final live
  // graph — flat reference vs sharded live, across shard counts ×
  // transports × cache settings.
  for (const std::uint64_t seed : {3ull, 11ull}) {
    for (const std::size_t k_hops : {2ul, 3ul}) {
      const CsrGraph full = gen::make_dataset("gowalla", 0.02, seed);
      const Split split = split_graph(full, 24);
      const Churn churn = make_churn(split, seed * 10 + k_hops);
      ASSERT_GT(churn.ops.size(), 8u);
      ASSERT_LT(churn.live.num_edges(), full.num_edges());

      SnapleConfig cfg;
      cfg.k_local = 10;
      cfg.k_hops = k_hops;
      cfg.seed = seed;
      const auto base_model = fit_edge_local(*split.base, cfg, 4);
      const auto refit = fit_edge_local(churn.live, cfg, 4);
      const QueryEngine engine(refit);
      const VertexId n = refit->num_vertices();
      std::vector<Scored> want(n);
      for (VertexId u = 0; u < n; ++u) want[u] = engine.topk(u);

      for (const std::size_t shards : {1ul, 2ul, 8ul}) {
        for (const auto transport : kTransports) {
          for (const std::size_t cache : {0ul, 1ul << 20}) {
            ServingCluster cluster(
                base_model, split.base,
                live_options(shards, transport, cache));
            std::size_t at = 0;
            for (const EdgeOp& op : churn.ops) {
              if (op.remove) {
                (void)cluster.update_router().remove(op.edges);
              } else {
                (void)cluster.update_router().apply(op.edges);
              }
              // Interleaved queries: the plane serves while it churns.
              (void)cluster.router().topk(static_cast<VertexId>(at++ % n));
            }
            EXPECT_EQ(cluster.update_router().barrier(),
                      churn.total_edges);
            for (VertexId u = 0; u < n; ++u) {
              ASSERT_EQ(cluster.router().topk(u), want[u])
                  << "seed=" << seed << " K=" << k_hops
                  << " shards=" << shards
                  << " transport=" << serve::to_string(transport)
                  << " cache=" << cache << " u=" << u;
            }
          }
        }
      }
    }
  }
}

// ---------- cache coherence across updates ----------

TEST(UpdatePlaneCache, WarmCacheStaysCoherentThroughInserts) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 5);
  const Split split = split_graph(full, 24);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = 3;
  cfg.seed = 5;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);
  const auto refit = fit_edge_local(full, cfg, 4);
  const QueryEngine engine(refit);
  const VertexId n = refit->num_vertices();

  ServingCluster cluster(
      base_model, split.base,
      live_options(4, TransportKind::kInProcess, 8ul << 20));
  // Warm every shard's fetch cache on the PRE-update rows...
  for (VertexId u = 0; u < n; ++u) (void)cluster.router().topk(u);
  const auto warm = cluster.cache_stats();
  EXPECT_GT(warm.insertions, 0u);

  // ...then mutate. Republished rows got bumped versions, so warm
  // entries keyed on the old version can never be served again: the
  // lookup misses (version key) or the stale entry is dropped. Either
  // way, every post-update answer matches the union refit exactly.
  (void)cluster.update_router().apply(split.inserts);
  EXPECT_EQ(cluster.update_router().barrier(), split.inserts.size());
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(cluster.router().topk(u), engine.topk(u)) << "u=" << u;
  }
  const auto after = cluster.cache_stats();
  EXPECT_GT(after.hits, 0u);  // untouched rows keep hitting
  EXPECT_GT(after.misses, warm.misses);  // republished rows re-fetch
}

TEST(UpdatePlaneCache, WarmCacheStaysCoherentThroughRemovals) {
  // A cached row staled by a REMOVAL must miss-and-drop exactly like one
  // staled by an insert: the shard bumps row_version for every stale
  // vertex, so the warm entry's version key can never match again.
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 5);
  const auto g = std::make_shared<const CsrGraph>(full);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = 3;
  cfg.seed = 5;
  const auto base_model = fit_edge_local(full, cfg, 4);

  ServingCluster cluster(
      base_model, g, live_options(4, TransportKind::kInProcess, 8ul << 20));
  const VertexId n = base_model->num_vertices();
  // Warm every shard's fetch cache on the PRE-removal rows...
  for (VertexId u = 0; u < n; ++u) (void)cluster.router().topk(u);
  const auto warm = cluster.cache_stats();
  EXPECT_GT(warm.insertions, 0u);

  // ...then remove a spread of base edges and check every answer
  // against a fit on the shrunken graph.
  const auto all = full.edges();
  std::vector<Edge> victims;
  const std::size_t stride = std::max<std::size_t>(2, all.size() / 16);
  for (std::size_t i = 0; i < all.size() && victims.size() < 16;
       i += stride) {
    victims.push_back(all[i]);
  }
  (void)cluster.update_router().remove(victims);
  EXPECT_EQ(cluster.update_router().barrier(), victims.size());

  GraphBuilder b(full.num_vertices());
  std::set<std::pair<VertexId, VertexId>> dropped;
  for (const Edge& e : victims) dropped.emplace(e.src, e.dst);
  for (const Edge& e : all) {
    if (!dropped.contains({e.src, e.dst})) b.add_edge(e.src, e.dst);
  }
  const CsrGraph shrunk = b.build();
  const auto refit = fit_edge_local(shrunk, cfg, 4);
  const QueryEngine engine(refit);
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(cluster.router().topk(u), engine.topk(u)) << "u=" << u;
  }
  const auto after = cluster.cache_stats();
  EXPECT_GT(after.hits, 0u);             // untouched rows keep hitting
  EXPECT_GT(after.misses, warm.misses);  // republished rows re-fetch
}

// ---------- queries stay live during writer bursts ----------

TEST(UpdatePlaneConcurrency, ReadersNeverBlockOrTearDuringBursts) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.03, 17);
  const Split split = split_graph(full, 64);
  SnapleConfig cfg;
  cfg.k_hops = 3;  // hop2 republishes in the mix too
  cfg.k_local = 10;
  cfg.seed = 17;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);

  ServeOptions opt = live_options(4, TransportKind::kInProcess, 4ul << 20);
  opt.connections_per_shard = 2;
  ServingCluster cluster(base_model, split.base, opt);
  const VertexId n = base_model->num_vertices();

  constexpr std::size_t kThreads = 6;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> bad{0};
  std::atomic<std::size_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      VertexId u = static_cast<VertexId>((t * 131) % n);
      while (!done.load(std::memory_order_relaxed)) {
        const Scored got = cluster.router().topk(u);
        // Structural invariants any untorn row state satisfies:
        // bounded size, in-range distinct ids, finite descending
        // scores. (Bit-equality holds only at quiescence — a row may
        // be mid-republish — but a TORN row would break these.)
        bool ok = got.size() <= cfg.k;
        for (std::size_t i = 0; i < got.size() && ok; ++i) {
          ok = got[i].first < n && std::isfinite(got[i].second) &&
               (i == 0 || got[i - 1].second >= got[i].second);
          for (std::size_t j = 0; j < i && ok; ++j) {
            ok = got[j].first != got[i].first;
          }
        }
        if (!ok) bad.fetch_add(1, std::memory_order_relaxed);
        queries.fetch_add(1, std::memory_order_relaxed);
        u = (u + 17) % n;
      }
    });
  }

  // The writer burst: small batches back-to-back, readers in flight the
  // whole time.
  for (std::size_t at = 0; at < split.inserts.size(); at += 4) {
    const std::size_t len =
        std::min<std::size_t>(4, split.inserts.size() - at);
    (void)cluster.update_router().apply({split.inserts.data() + at, len});
  }
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // Quiescent: every answer equals the union refit.
  EXPECT_EQ(cluster.update_router().barrier(), split.inserts.size());
  const auto refit = fit_edge_local(full, cfg, 4);
  const QueryEngine engine(refit);
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(cluster.router().topk(u), engine.topk(u)) << "u=" << u;
  }
}

TEST(UpdatePlaneConcurrency, ReadersNeverBlockOrTearDuringMixedChurn) {
  // The mixed insert+remove mirror of the burst test: tombstone
  // republication rides the same RCU slab path, so readers must stay
  // untorn through interleaved op-4/op-6 batches too (TSan-covered).
  const CsrGraph full = gen::make_dataset("gowalla", 0.03, 17);
  const Split split = split_graph(full, 48);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  cfg.k_local = 10;
  cfg.seed = 17;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);
  const Churn churn = make_churn(split, 17);

  ServeOptions opt = live_options(4, TransportKind::kInProcess, 4ul << 20);
  opt.connections_per_shard = 2;
  ServingCluster cluster(base_model, split.base, opt);
  const VertexId n = base_model->num_vertices();

  constexpr std::size_t kThreads = 6;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> bad{0};
  std::atomic<std::size_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      VertexId u = static_cast<VertexId>((t * 131) % n);
      while (!done.load(std::memory_order_relaxed)) {
        const Scored got = cluster.router().topk(u);
        bool ok = got.size() <= cfg.k;
        for (std::size_t i = 0; i < got.size() && ok; ++i) {
          ok = got[i].first < n && std::isfinite(got[i].second) &&
               (i == 0 || got[i - 1].second >= got[i].second);
          for (std::size_t j = 0; j < i && ok; ++j) {
            ok = got[j].first != got[i].first;
          }
        }
        if (!ok) bad.fetch_add(1, std::memory_order_relaxed);
        queries.fetch_add(1, std::memory_order_relaxed);
        u = (u + 17) % n;
      }
    });
  }

  for (const EdgeOp& op : churn.ops) {
    if (op.remove) {
      (void)cluster.update_router().remove(op.edges);
    } else {
      (void)cluster.update_router().apply(op.edges);
    }
  }
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // Quiescent: every answer equals the live-graph refit.
  EXPECT_EQ(cluster.update_router().barrier(), churn.total_edges);
  const auto refit = fit_edge_local(churn.live, cfg, 4);
  const QueryEngine engine(refit);
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(cluster.router().topk(u), engine.topk(u)) << "u=" << u;
  }
}

// ---------- rejection: atomic, cross-wire, plane survives ----------

TEST(UpdatePlaneRejection, BadBatchesThrowChangeNothingAndPlaneLives) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 13);
  const Split split = split_graph(full, 8);
  SnapleConfig cfg;
  cfg.seed = 13;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);
  ASSERT_GE(split.inserts.size(), 4u);

  for (const auto transport : kTransports) {
    ServingCluster cluster(base_model, split.base,
                           live_options(2, transport));
    UpdateRouter& plane = cluster.update_router();
    const VertexId n = base_model->num_vertices();
    const Edge existing = split.base->edges().front();

    // One good batch first; snapshot a served answer the rejects below
    // must leave untouched.
    (void)plane.apply({split.inserts.data(), 1});
    const Scored want0 = cluster.router().topk(0);
    const std::uint64_t version = plane.barrier();

    const auto expect_reject = [&](std::vector<Edge> batch) {
      EXPECT_THROW((void)plane.apply(batch), CheckError);
    };
    expect_reject({{3, 3}});                          // self-loop
    expect_reject({{n, 0}});                          // src out of range
    expect_reject({{0, static_cast<VertexId>(n + 7)}});  // dst range
    expect_reject({existing});                        // base duplicate
    expect_reject({split.inserts[0]});                // insert duplicate
    // One bad edge rejects the whole batch on EVERY shard: atomic.
    expect_reject({split.inserts[1], split.inserts[2], {7, 7}});
    expect_reject({split.inserts[3], split.inserts[3]});  // intra-batch dup

    EXPECT_EQ(plane.barrier(), version);
    EXPECT_EQ(cluster.router().topk(0), want0);

    // The plane survives rejection: a clean batch still applies.
    (void)plane.apply({split.inserts.data() + 1, 2});
    EXPECT_EQ(plane.barrier(), version + 2)
        << serve::to_string(transport);
  }
}

TEST(UpdatePlaneRejection, BadRemoveBatchesThrowChangeNothingAndPlaneLives) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 13);
  const Split split = split_graph(full, 8);
  SnapleConfig cfg;
  cfg.seed = 13;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);
  const auto base_edges = split.base->edges();

  for (const auto transport : kTransports) {
    ServingCluster cluster(base_model, split.base,
                           live_options(2, transport));
    UpdateRouter& plane = cluster.update_router();
    const VertexId n = base_model->num_vertices();

    // One good removal first; snapshot a served answer the rejects
    // below must leave untouched.
    const Edge gone = base_edges.front();
    (void)plane.remove({&gone, 1});
    const Scored want0 = cluster.router().topk(0);
    const std::uint64_t version = plane.barrier();
    ASSERT_EQ(version, 1u);

    const auto expect_reject = [&](std::vector<Edge> batch) {
      EXPECT_THROW((void)plane.remove(batch), CheckError);
    };
    expect_reject({{3, 3}});                             // self-loop
    expect_reject({{n, 0}});                             // src out of range
    expect_reject({{0, static_cast<VertexId>(n + 7)}});  // dst range
    expect_reject({gone});                               // already removed
    expect_reject({split.inserts[0]});                   // never was live
    // One bad removal rejects the whole batch on EVERY shard: atomic.
    expect_reject({base_edges[1], base_edges[2], gone});
    expect_reject({base_edges[3], base_edges[3]});  // intra-batch dup

    EXPECT_EQ(plane.barrier(), version);
    EXPECT_EQ(cluster.router().topk(0), want0);

    // The plane survives rejection: a clean removal still applies, and
    // the tombstoned edge is re-insertable (insert validator agrees).
    (void)plane.remove({base_edges.data() + 1, 2});
    (void)plane.apply({&gone, 1});
    EXPECT_EQ(plane.barrier(), version + 3)
        << serve::to_string(transport);
  }
}

TEST(UpdatePlaneRejection, StaticShardsAndClustersRefuseUpdates) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 3);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg);
  const auto model =
      std::make_shared<const PredictorModel>(predictor.fit(full));

  // A static cluster has no write plane at all.
  ServeOptions opt;
  opt.num_shards = 2;
  ServingCluster cluster(*model, opt);
  EXPECT_FALSE(cluster.live());
  EXPECT_THROW((void)cluster.update_router(), CheckError);

  // And a static shard wired to an UpdateRouter by hand rejects op 4 as
  // an error RESPONSE (CheckError here, connection intact) — not a
  // protocol wedge.
  const VertexId n = model->num_vertices();
  serve::ShardServer server(
      serve::ModelShard::build(*model, {0, n}, true), {{0, n}});
  auto link = serve::make_channel_pair(TransportKind::kInProcess);
  server.serve(std::move(link.server));
  std::vector<std::unique_ptr<ByteChannel>> links;
  links.push_back(std::move(link.client));
  UpdateRouter plane(std::move(links));
  const Edge e{0, 1};
  EXPECT_THROW((void)plane.apply({&e, 1}), CheckError);
  EXPECT_THROW((void)plane.remove({&e, 1}), CheckError);  // op 6 too
  EXPECT_THROW((void)plane.barrier(), CheckError);
  EXPECT_EQ(server.stats().errors, 3u);
}

TEST(UpdatePlaneRejection, LiveClusterRequiresFetchModeAndStableTags) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 3);
  const auto g = std::make_shared<const CsrGraph>(full);
  SnapleConfig cfg;
  const auto ok_model = fit_edge_local(*g, cfg, 4);

  // colocate=true cannot stay fresh (replicated rows never republish).
  ServeOptions colocated;
  colocated.num_shards = 2;
  colocated.colocate = true;
  EXPECT_THROW(ServingCluster(ok_model, g, colocated), CheckError);

  // Position-dependent (greedy) tags cannot be replayed: refused.
  const auto part = gas::Partitioning::create(
      *g, 4, gas::PartitionStrategy::kGreedy, cfg.seed);
  const LinkPredictor greedy(cfg, gas::ClusterConfig::type_i(4));
  const auto wrong = std::make_shared<const PredictorModel>(
      greedy.fit_with_partitioning(*g, part));
  EXPECT_THROW(
      ServingCluster(wrong, g, live_options(2, TransportKind::kInProcess)),
      CheckError);

  EXPECT_THROW(
      ServingCluster(ok_model, nullptr,
                     live_options(2, TransportKind::kInProcess)),
      CheckError);
}

// ---------- version and stats accounting ----------

TEST(UpdatePlaneStats, CountersTrackBatchesRowsAndBytes) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 9);
  const Split split = split_graph(full, 12);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  cfg.seed = 9;
  const auto base_model = fit_edge_local(*split.base, cfg, 4);

  ServingCluster cluster(base_model, split.base,
                         live_options(2, TransportKind::kUnixSocket));
  UpdateRouter& plane = cluster.update_router();
  ASSERT_EQ(plane.num_shards(), 2u);

  const auto r1 = plane.apply({split.inserts.data(), 4});
  EXPECT_EQ(r1.version, 4u);
  EXPECT_GE(r1.gamma_rows, 4u);  // ≥ one gamma row per distinct source
  EXPECT_GE(r1.sims_rows, r1.gamma_rows);  // {src} ∪ in(src) ⊇ {src}
  const auto r2 = plane.apply({split.inserts.data() + 4, 3});
  EXPECT_EQ(r2.version, 7u);

  // A removal is one more operation on the shared version counter and
  // lands in its own batch/edge counters.
  const Edge victim = split.base->edges().front();
  const auto r3 = plane.remove({&victim, 1});
  EXPECT_EQ(r3.version, 8u);
  EXPECT_GE(r3.gamma_rows, 1u);  // the severed source republishes

  const auto us = plane.stats();
  EXPECT_EQ(us.batches, 2u);
  EXPECT_EQ(us.edges, 7u);
  EXPECT_EQ(us.remove_batches, 1u);
  EXPECT_EQ(us.removals, 1u);
  EXPECT_EQ(us.version, 8u);
  EXPECT_EQ(us.gamma_rows, r1.gamma_rows + r2.gamma_rows + r3.gamma_rows);
  EXPECT_EQ(us.sims_rows, r1.sims_rows + r2.sims_rows + r3.sims_rows);
  EXPECT_EQ(us.hop2_rows, r1.hop2_rows + r2.hop2_rows + r3.hop2_rows);
  EXPECT_GT(us.bytes_sent, 0u);
  EXPECT_GT(us.bytes_received, 0u);

  // Shard-side mirror: every shard saw every batch; the owned republish
  // counts partition the global ones (ranges partition the vertices).
  std::uint64_t batches = 0, edges = 0, gamma = 0, sims = 0, hop2 = 0,
                overlay = 0;
  for (const auto& s : cluster.stats()) {
    EXPECT_EQ(s.update_batches, 2u);
    EXPECT_EQ(s.remove_batches, 1u);
    EXPECT_EQ(s.remove_edges, 1u);
    batches += s.update_batches;
    edges += s.update_edges;
    gamma += s.gamma_republished;
    sims += s.sims_republished;
    hop2 += s.hop2_republished;
    overlay += s.overlay_bytes;
  }
  EXPECT_EQ(batches, 2u * plane.num_shards());
  EXPECT_EQ(edges, 7u * plane.num_shards());  // every shard inserts all
  EXPECT_EQ(gamma, us.gamma_rows);
  EXPECT_EQ(sims, us.sims_rows);
  EXPECT_EQ(hop2, us.hop2_rows);
  EXPECT_GT(overlay, 0u);

  EXPECT_EQ(plane.barrier(), 8u);
  EXPECT_EQ(plane.stats().version, 8u);
}

// ---------- fail-stop: a dead link kills the whole plane ----------

TEST(UpdatePlaneFailure, TornFanOutGoesDeadInsteadOfHalfApplying) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 11);
  const Split split = split_graph(full, 8);
  SnapleConfig cfg;
  cfg.seed = 11;
  const auto base_model = fit_edge_local(*split.base, cfg, 1);
  const VertexId n = base_model->num_vertices();

  // Hand-assemble a 2-"shard" plane where the second link's server end
  // is dropped immediately: the fan-out tears mid-batch.
  auto live = std::make_shared<serve::LiveShard>(
      base_model, split.base, gas::VertexRange{0, n});
  serve::ShardServer server(live, {{0, n}});
  auto good = serve::make_channel_pair(TransportKind::kInProcess);
  auto broken = serve::make_channel_pair(TransportKind::kInProcess);
  server.serve(std::move(good.server));
  broken.server.reset();  // peer gone before the first byte
  std::vector<std::unique_ptr<ByteChannel>> links;
  links.push_back(std::move(good.client));
  links.push_back(std::move(broken.client));
  UpdateRouter plane(std::move(links));

  EXPECT_THROW((void)plane.apply({split.inserts.data(), 2}),
               TransportError);
  // Dead means dead: no later call can half-apply on the live shard.
  EXPECT_THROW((void)plane.apply({split.inserts.data() + 2, 1}),
               TransportError);
  EXPECT_THROW((void)plane.barrier(), TransportError);
}

}  // namespace
}  // namespace snaple
