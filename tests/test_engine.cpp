// Tests for the GAS engine: superstep semantics, byte/memory accounting,
// fused vs two-phase equivalence, and a PageRank program as an
// independent correctness probe.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gas/engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"
#include "util/check.hpp"

namespace snaple::gas {
namespace {

struct Scalar {
  double value = 0.0;
};
std::size_t scalar_bytes(const Scalar&) { return sizeof(double); }

/// Sum accumulator fulfilling the engine's Acc concept (clear + merge).
struct SumAcc {
  double total = 0.0;
  std::size_t n = 0;
  void clear() {
    total = 0.0;
    n = 0;
  }
  void merge(SumAcc&& other) {
    total += other.total;
    n += other.n;
  }
};

CsrGraph small_graph() {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 2);
  return b.build();
}

Engine<Scalar> make_engine(const CsrGraph& g, const Partitioning& p,
                           ClusterConfig cfg) {
  return Engine<Scalar>(g, p, std::move(cfg), &scalar_bytes);
}

TEST(Engine, OutDegreeViaGather) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 1, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::single_machine(2));
  StepOptions opt{.name = "count", .dir = EdgeDir::kOut};
  engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_DOUBLE_EQ(engine.data()[u].value,
                     static_cast<double>(g.out_degree(u)));
  }
}

TEST(Engine, InDegreeViaGatherIn) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 2, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::type_i(2));
  StepOptions opt{.name = "count-in", .dir = EdgeDir::kIn};
  engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_DOUBLE_EQ(engine.data()[u].value,
                     static_cast<double>(g.in_degree(u)));
  }
}

TEST(Engine, AllDirectionCountsBoth) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 1, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::single_machine(1));
  StepOptions opt{.name = "count-all", .dir = EdgeDir::kAll};
  engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_DOUBLE_EQ(engine.data()[u].value,
                     static_cast<double>(g.out_degree(u) + g.in_degree(u)));
  }
}

/// PageRank on the engine (two-phase: apply writes the rank that gathers
/// read) vs a dense reference implementation.
TEST(Engine, PageRankMatchesReference) {
  const CsrGraph g = gen::erdos_renyi(60, 500, 3);
  const double damping = 0.85;
  const int iters = 30;

  // Dense reference.
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> ref(n, 1.0 / static_cast<double>(n));
  for (int it = 0; it < iters; ++it) {
    std::vector<double> next(n, (1.0 - damping) / static_cast<double>(n));
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto deg = g.out_degree(u);
      if (deg == 0) continue;
      for (VertexId v : g.out_neighbors(u)) {
        next[v] += damping * ref[u] / static_cast<double>(deg);
      }
    }
    ref = std::move(next);
  }

  const auto p = Partitioning::create(g, 4, PartitionStrategy::kGreedy);
  auto engine = make_engine(g, p, ClusterConfig::type_i(4));
  for (auto& d : engine.data()) d.value = 1.0 / static_cast<double>(n);

  for (int it = 0; it < iters; ++it) {
    StepOptions opt{.name = "pagerank",
                    .dir = EdgeDir::kIn,
                    .mode = ApplyMode::kTwoPhase};
    engine.step<SumAcc>(
        opt,
        [&](VertexId, VertexId v, const Scalar&, const Scalar& dv,
            SumAcc& acc) {
          acc.total += dv.value / static_cast<double>(g.out_degree(v));
          return sizeof(double);
        },
        [&](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
          du.value = (1.0 - damping) / static_cast<double>(n) +
                     damping * acc.total;
        });
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_NEAR(engine.data()[u].value, ref[u], 1e-9) << "vertex " << u;
  }
}

TEST(Engine, FusedEqualsTwoPhaseWhenSafe) {
  // Degree counting never reads what apply writes -> both modes agree.
  const CsrGraph g = gen::erdos_renyi(200, 2000, 9);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash);
  std::vector<double> fused;
  std::vector<double> two_phase;
  for (const ApplyMode mode : {ApplyMode::kFused, ApplyMode::kTwoPhase}) {
    auto engine = make_engine(g, p, ClusterConfig::type_i(4));
    StepOptions opt{.name = "deg", .dir = EdgeDir::kOut, .mode = mode};
    engine.step<SumAcc>(
        opt,
        [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
          acc.total += 1.0;
          return sizeof(double);
        },
        [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
          du.value = acc.total;
        });
    auto& out = (mode == ApplyMode::kFused) ? fused : two_phase;
    for (const auto& d : engine.data()) out.push_back(d.value);
  }
  EXPECT_EQ(fused, two_phase);
}

TEST(Engine, SingleMachineHasNoNetworkTraffic) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 1, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::single_machine(4));
  StepOptions opt{.name = "s", .dir = EdgeDir::kOut};
  const auto& stats = engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  EXPECT_EQ(stats.net_bytes, 0u);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(Engine, MultiMachineProducesTraffic) {
  const CsrGraph g = gen::erdos_renyi(300, 4000, 21);
  const auto p = Partitioning::create(g, 8, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::type_i(8));
  StepOptions opt{.name = "s", .dir = EdgeDir::kOut};
  const auto& stats = engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  EXPECT_GT(stats.net_bytes, 0u);
  EXPECT_GT(stats.messages, 0u);
  EXPECT_EQ(stats.gather_calls, g.num_edges());
  EXPECT_GT(stats.sim.total(), 0.0);
}

TEST(Engine, GatherCallCountsEdges) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 2, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::type_i(2));
  StepOptions opt{.name = "s", .dir = EdgeDir::kOut};
  const auto& stats = engine.step<SumAcc>(
      opt,
      [](VertexId u, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        if (u == 0) return std::size_t{0};  // no contribution from 0
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar&, SumAcc&, std::size_t) {});
  EXPECT_EQ(stats.gather_calls, g.num_edges());
  EXPECT_EQ(stats.contributions, g.num_edges() - g.out_degree(0));
}

// Hand-verified cost model: a two-edge graph with a pinned edge
// assignment, every byte accounted for on paper.
//
// Graph 0→1, 0→2; edge (0,1) on machine 0, edge (0,2) on machine 1.
// Replicas: 0:{m0,m1}, 1:{m0}, 2:{m1}. Masters: 0→m0 (tie broken low),
// 1→m0, 2→m1.
// Superstep over out-edges, 8-byte contributions, 4-byte vertex data:
//   gather: vertex 0's partial on m1 (≠ master m0) ships 8+16 = 24 bytes;
//   apply sync: vertex 0 has 1 mirror → (4+16) = 20 bytes;
//   vertices 1 and 2 have no out-edges and no mirrors → nothing.
// Total: 44 bytes, 2 messages.
TEST(Engine, ByteAccountingMatchesHandComputation) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const CsrGraph g = b.build();
  const auto p = Partitioning::from_edge_assignment(g, 2, {0, 1});
  EXPECT_EQ(p.master(0), 0);
  EXPECT_EQ(p.master(1), 0);
  EXPECT_EQ(p.master(2), 1);
  EXPECT_EQ(p.replicas(0).count(), 2);

  Engine<Scalar> engine(g, p, ClusterConfig::type_i(2),
                        [](const Scalar&) { return std::size_t{4}; });
  StepOptions opt{.name = "hand", .dir = EdgeDir::kOut};
  const auto stats = engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return std::size_t{8};
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  EXPECT_EQ(stats.net_bytes, 44u);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.gather_calls, 2u);
  EXPECT_EQ(stats.contributions, 2u);
}

TEST(Partitioning2, FromEdgeAssignmentValidates) {
  GraphBuilder b;
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_THROW(Partitioning::from_edge_assignment(g, 2, {0, 1}),
               CheckError);  // wrong arity
  EXPECT_THROW(Partitioning::from_edge_assignment(g, 2, {5}),
               CheckError);  // unknown machine
  const auto p = Partitioning::from_edge_assignment(g, 2, {1});
  EXPECT_EQ(p.edge_machine(0), 1);
  EXPECT_EQ(p.edges_per_machine()[1], 1u);
}

TEST(Engine, MemoryBudgetTriggersResourceExhausted) {
  const CsrGraph g = gen::erdos_renyi(500, 8000, 33);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash);
  // Absurdly small budget: 100 bytes per machine.
  auto engine = make_engine(g, p, ClusterConfig::type_i(4, 100));
  StepOptions opt{.name = "boom", .dir = EdgeDir::kOut};
  EXPECT_THROW(
      engine.step<SumAcc>(
          opt,
          [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
            acc.total += 1.0;
            return sizeof(double);
          },
          [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
            du.value = acc.total;
          }),
      ResourceExhausted);
}

TEST(Engine, GenerousBudgetPasses) {
  const CsrGraph g = gen::erdos_renyi(500, 8000, 33);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::type_i(4, 1ull << 30));
  StepOptions opt{.name = "fine", .dir = EdgeDir::kOut};
  EXPECT_NO_THROW(engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      }));
}

TEST(Engine, ReportAccumulatesSteps) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 2, PartitionStrategy::kHash);
  auto engine = make_engine(g, p, ClusterConfig::type_i(2));
  for (int i = 0; i < 3; ++i) {
    StepOptions opt{.name = "step" + std::to_string(i),
                    .dir = EdgeDir::kOut};
    engine.step<SumAcc>(
        opt,
        [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
          acc.total += 1.0;
          return sizeof(double);
        },
        [](VertexId, Scalar&, SumAcc&, std::size_t) {});
  }
  EXPECT_EQ(engine.report().steps.size(), 3u);
  EXPECT_EQ(engine.report().steps[1].name, "step1");
  EXPECT_GE(engine.report().total_wall_s(), 0.0);
  EXPECT_GT(engine.report().total_net_bytes(), 0u);
}

TEST(Engine, RejectsMismatchedClusterAndPartitioning) {
  const CsrGraph g = small_graph();
  const auto p = Partitioning::create(g, 2, PartitionStrategy::kHash);
  EXPECT_THROW(make_engine(g, p, ClusterConfig::type_i(4)), CheckError);
}

// ---------- network model ----------

TEST(NetworkModel, MaxOverMachinesPlusLatency) {
  ClusterConfig cfg = ClusterConfig::type_i(2);
  cfg.superstep_latency_s = 0.5;
  std::vector<MachineLoad> loads(2);
  loads[0].work_units = 100.0;
  loads[1].work_units = 300.0;
  loads[0].bytes_in = 125'000'000;  // 1s at 1GbE
  const auto t = simulate_step_time(cfg, loads, /*cpu_seconds=*/8.0);
  // Machine 1 has 3/4 of the work: 6 cpu-seconds over 8 type-I cores.
  EXPECT_NEAR(t.compute_s, 6.0 / 8.0, 1e-9);
  EXPECT_NEAR(t.network_s, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.latency_s, 0.5);
  EXPECT_NEAR(t.total(), 6.0 / 8.0 + 1.0 + 0.5, 1e-9);
}

TEST(NetworkModel, MoreMachinesReduceComputeTime) {
  for (const std::size_t machines : {2ul, 4ul, 8ul}) {
    ClusterConfig cfg = ClusterConfig::type_i(machines);
    std::vector<MachineLoad> loads(machines);
    for (auto& l : loads) l.work_units = 1.0;  // balanced
    const auto t = simulate_step_time(cfg, loads, 10.0);
    EXPECT_NEAR(t.compute_s,
                10.0 / static_cast<double>(machines) / 8.0, 1e-9);
  }
}

TEST(NetworkModel, TypeIiFasterNetworkAndCores) {
  std::vector<MachineLoad> loads(4);
  for (auto& l : loads) {
    l.work_units = 1.0;
    l.bytes_in = 1'000'000'000;
  }
  const auto t1 = simulate_step_time(ClusterConfig::type_i(4), loads, 4.0);
  const auto t2 = simulate_step_time(ClusterConfig::type_ii(4), loads, 4.0);
  EXPECT_LT(t2.network_s, t1.network_s);
  EXPECT_LT(t2.compute_s, t1.compute_s);
}

TEST(NetworkModel, SingleMachineSkipsNetwork) {
  std::vector<MachineLoad> loads(1);
  loads[0].work_units = 1.0;
  loads[0].bytes_in = 1'000'000'000;
  const auto t =
      simulate_step_time(ClusterConfig::single_machine(8), loads, 1.0);
  EXPECT_DOUBLE_EQ(t.network_s, 0.0);
}

TEST(NetworkModel, RejectsMismatchedLoads) {
  std::vector<MachineLoad> loads(3);
  EXPECT_THROW(
      static_cast<void>(simulate_step_time(ClusterConfig::type_i(4), loads,
                                           1.0)),
      CheckError);
}

TEST(Cluster, PresetsMatchPaperTestbed) {
  const auto t1 = ClusterConfig::type_i(32);
  EXPECT_EQ(t1.total_cores(), 256u);  // the paper's 256-core deployment
  EXPECT_EQ(t1.machine.cores, 8u);
  const auto t2 = ClusterConfig::type_ii(8);
  EXPECT_EQ(t2.total_cores(), 160u);  // the paper's 160-core deployment
  EXPECT_EQ(t2.machine.cores, 20u);
  EXPECT_GT(t2.machine.bandwidth_bytes_per_s,
            t1.machine.bandwidth_bytes_per_s);
  EXPECT_NE(t1.describe().find("type-I"), std::string::npos);
}

}  // namespace
}  // namespace snaple::gas
