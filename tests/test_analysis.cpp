// Unit tests for structural analysis: clustering, components, BFS.
#include <gtest/gtest.h>

#include <limits>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"

namespace snaple {
namespace {

CsrGraph triangle_plus_tail() {
  // Triangle {0,1,2} (symmetric) plus tail 2 -> 3.
  GraphBuilder b;
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(0, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(Clustering, CompleteGraphIsOne) {
  GraphBuilder b;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = 0; j < 5; ++j) {
      if (i != j) b.add_edge(i, j);
    }
  }
  const CsrGraph g = b.build();
  EXPECT_NEAR(clustering_coefficient(g, 100, 1), 1.0, 1e-12);
}

TEST(Clustering, StarIsZero) {
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 6; ++leaf) b.add_undirected_edge(0, leaf);
  const CsrGraph g = b.build();
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 100, 1), 0.0);
}

TEST(Clustering, TriangleVertexCounts) {
  const CsrGraph g = triangle_plus_tail();
  // Vertices 0,1 have C=1; vertex 2 has neighbors {0,1,3}: one closed of
  // six ordered pairs = 1/6... closed pairs: (0,1) and (1,0) => 2/6 = 1/3.
  const double c = clustering_coefficient(g, 100, 1);
  EXPECT_NEAR(c, (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-9);
}

TEST(Components, DisjointPieces) {
  GraphBuilder b(7);
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(3, 4);
  // 5 and 6 isolated.
  const CsrGraph g = b.build();
  const auto labels = weakly_connected_components(g);
  EXPECT_EQ(count_components(labels), 4u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[5], 5u);
  EXPECT_EQ(labels[6], 6u);
}

TEST(Components, DirectedEdgesStillWeaklyConnect) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(2, 1);  // 0 -> 1 <- 2: weakly one component
  const CsrGraph g = b.build();
  EXPECT_EQ(count_components(weakly_connected_components(g)), 1u);
}

TEST(Bfs, DistancesOnChain) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableIsMax) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  const auto d = bfs_distances(g, 1);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[0], std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(d[2], std::numeric_limits<std::size_t>::max());
}

TEST(TwoHop, CandidateCountExcludesSelfAndNeighbors) {
  const CsrGraph g = triangle_plus_tail();
  // Γ(0) = {1,2}; 2-hop targets: via 1 -> {0,2}, via 2 -> {0,1,3}.
  // Excluding 0 itself and neighbors {1,2}: candidates = {3}.
  EXPECT_EQ(two_hop_candidate_count(g, 0), 1u);
}

TEST(TwoHop, EmptyForIsolated) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_EQ(two_hop_candidate_count(g, 1), 0u);
}

}  // namespace
}  // namespace snaple
