// DynamicModel — incremental model updates (ISSUE 5 + ISSUE 10).
//
// The load-bearing property: after ANY interleaving of add_edge(s) and
// remove_edge(s), the DynamicModel is BIT-identical — every row, every
// machine tag, every served prediction and float score — to
// LinkPredictor::fit run from scratch on the live graph (base ∪ inserts
// − removals) under the same config and the insertion-stable
// (kEdgeLocal) edge placement. Floats make this strict, so the
// assertions are EXPECT_EQ / operator==, never EXPECT_NEAR. The suite
// also pins the version-counter semantics, invalid-insert and
// invalid-remove rejection (atomic, model untouched), and lock-free
// concurrent reads during mixed insert+remove writer bursts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/dynamic_model.hpp"
#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/overlay_graph.hpp"

namespace snaple {
namespace {

using Scored = std::vector<std::pair<VertexId, float>>;

/// Splits `full` into a base graph (shared_ptr, same vertex count) and a
/// deterministic sample of ~`want` edges to replay as live inserts.
struct Split {
  std::shared_ptr<const CsrGraph> base;
  std::vector<Edge> inserts;
};

Split split_graph(const CsrGraph& full, std::size_t want) {
  const auto all = full.edges();
  const std::size_t stride = std::max<std::size_t>(2, all.size() / want);
  Split out;
  GraphBuilder b(full.num_vertices());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i % stride == 1 && out.inserts.size() < want) {
      out.inserts.push_back(all[i]);
    } else {
      b.add_edge(all[i].src, all[i].dst);
    }
  }
  out.base = std::make_shared<const CsrGraph>(b.build());
  return out;
}

/// Non-owning view for serving stack-held models in assertions.
template <typename T>
std::shared_ptr<const T> unowned(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>{}, &ref);
}

/// Fits a model on `g` under the insertion-stable edge placement —
/// the precondition DynamicModel verifies. Partitions with cfg.seed,
/// exactly as LinkPredictor::fit would, so DynamicModel's defaulted
/// partition_seed resolves to the right placement.
std::shared_ptr<const PredictorModel> fit_edge_local(
    const CsrGraph& g, const SnapleConfig& cfg, std::size_t machines,
    gas::ExecutionMode exec) {
  const auto part = gas::Partitioning::create(
      g, machines, gas::PartitionStrategy::kEdgeLocal, cfg.seed);
  const auto cluster = machines == 1 ? gas::ClusterConfig::single_machine(2)
                                     : gas::ClusterConfig::type_i(machines);
  const LinkPredictor predictor(cfg, cluster,
                                gas::PartitionStrategy::kEdgeLocal, exec);
  return std::make_shared<const PredictorModel>(
      predictor.fit_with_partitioning(g, part));
}

/// Materializes the overlay's live graph (base ∪ delta − tombstones) as
/// a CSR, so a from-scratch reference fit can run on it.
CsrGraph materialize(const OverlayGraph& o) {
  GraphBuilder b(o.num_vertices());
  b.reserve_edges(o.num_edges());
  for (VertexId u = 0; u < o.num_vertices(); ++u) {
    o.for_each_out_neighbor(u, [&](VertexId v) { b.add_edge(u, v); });
  }
  return b.build();
}

void expect_identical_serving(const DynamicModel& dyn,
                              const PredictorModel& refit,
                              const std::string& what) {
  const QueryEngine live(unowned(dyn));
  const QueryEngine fresh(unowned(refit));
  for (VertexId u = 0; u < refit.num_vertices(); ++u) {
    ASSERT_EQ(live.topk(u), fresh.topk(u)) << what << " u=" << u;
  }
}

// ---------- incremental ≡ refit (the tentpole property) ----------

TEST(DynamicModelEquivalence, BitIdenticalToRefitAcrossSeedsModesAndK) {
  struct Combo {
    std::size_t k_hops;
    std::size_t machines;
    gas::ExecutionMode exec;
    double hop2_min;
  };
  const Combo combos[] = {
      {2, 1, gas::ExecutionMode::kFlat, 0.0},
      {2, 4, gas::ExecutionMode::kFlat, 0.0},
      {2, 4, gas::ExecutionMode::kSharded, 0.0},
      {3, 1, gas::ExecutionMode::kFlat, 0.0},
      {3, 4, gas::ExecutionMode::kFlat, 0.02},  // knob on: zero-skip live
      {3, 4, gas::ExecutionMode::kSharded, 0.0},
  };
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const CsrGraph full = gen::make_dataset("gowalla", 0.02, seed);
    const Split split = split_graph(full, 30);
    ASSERT_GE(split.inserts.size(), 20u);
    for (const Combo& c : combos) {
      SnapleConfig cfg;
      cfg.k_local = 10;
      cfg.k_hops = c.k_hops;
      cfg.seed = seed;
      cfg.hop2_min_score = c.hop2_min;
      const std::string what = "seed=" + std::to_string(seed) +
                               " K=" + std::to_string(c.k_hops) +
                               " machines=" + std::to_string(c.machines) +
                               (c.exec == gas::ExecutionMode::kSharded
                                    ? " sharded"
                                    : " flat");

      DynamicModel dyn(fit_edge_local(*split.base, cfg, c.machines, c.exec),
                       split.base);
      for (const Edge& e : split.inserts) {
        (void)dyn.add_edge(e.src, e.dst);
      }

      // The union of base + inserts is `full` by construction, so the
      // from-scratch reference is a fit on the full graph.
      const auto refit = fit_edge_local(full, cfg, c.machines, c.exec);
      EXPECT_TRUE(dyn.freeze() == *refit) << what;
      expect_identical_serving(dyn, *refit, what);
    }
  }
}

TEST(DynamicModelEquivalence, BatchedAndSingleInsertsConverge) {
  // One-by-one, one big batch, and uneven chunks must all land at the
  // same refit-on-union state (each recompute reads the final graph).
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 7);
  const Split split = split_graph(full, 24);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = 3;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 4, gas::ExecutionMode::kFlat);

  DynamicModel one_by_one(base_model, split.base);
  for (const Edge& e : split.inserts) (void)one_by_one.add_edge(e.src, e.dst);

  DynamicModel one_batch(base_model, split.base);
  (void)one_batch.add_edges(split.inserts);

  DynamicModel chunked(base_model, split.base);
  for (std::size_t at = 0; at < split.inserts.size(); at += 7) {
    const std::size_t len = std::min<std::size_t>(
        7, split.inserts.size() - at);
    (void)chunked.add_edges({split.inserts.data() + at, len});
  }

  const auto refit = fit_edge_local(full, cfg, 4, gas::ExecutionMode::kFlat);
  EXPECT_TRUE(one_by_one.freeze() == *refit);
  EXPECT_TRUE(one_batch.freeze() == *refit);
  EXPECT_TRUE(chunked.freeze() == *refit);
  EXPECT_EQ(one_by_one.version(), split.inserts.size());
  EXPECT_EQ(one_batch.version(), split.inserts.size());
}

TEST(DynamicModelEquivalence, RandomPolicyKTwoIsExactToo) {
  // Γrnd's shuffle keys on the collected order, which the sims
  // recompute reproduces machine-grouped — so even the randomized
  // control policy replays bit-exactly at K=2.
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 5);
  const Split split = split_graph(full, 16);
  SnapleConfig cfg;
  cfg.k_local = 5;  // small, so the shuffle truncation actually bites
  cfg.policy = SelectionPolicy::kRandom;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 4, gas::ExecutionMode::kFlat);
  DynamicModel dyn(base_model, split.base);
  (void)dyn.add_edges(split.inserts);
  const auto refit = fit_edge_local(full, cfg, 4, gas::ExecutionMode::kFlat);
  EXPECT_TRUE(dyn.freeze() == *refit);
}

// ---------- removals: interleaving ≡ refit on the live graph ----------

TEST(DynamicModelEquivalence, InsertRemoveInterleavingsMatchLiveGraphRefit) {
  // Random interleavings of inserts, removals of base edges, removals
  // of just-inserted edges, and re-adds of removed edges. After the
  // churn the model must equal a fit on the materialized live graph —
  // the tombstone overlay and the stale-set symmetry are both load-
  // bearing here.
  struct Combo {
    std::size_t k_hops;
    gas::ExecutionMode exec;
  };
  const Combo combos[] = {
      {2, gas::ExecutionMode::kFlat},
      {3, gas::ExecutionMode::kSharded},
  };
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const CsrGraph full = gen::make_dataset("gowalla", 0.02, seed);
    const Split split = split_graph(full, 24);
    for (const Combo& c : combos) {
      SnapleConfig cfg;
      cfg.k_local = 10;
      cfg.k_hops = c.k_hops;
      cfg.seed = seed;
      const std::string what =
          "seed=" + std::to_string(seed) + " K=" + std::to_string(c.k_hops);

      DynamicModel dyn(fit_edge_local(*split.base, cfg, 4, c.exec),
                       split.base);
      std::mt19937 rng(static_cast<unsigned>(seed));
      const auto base_edges = split.base->edges();
      std::vector<Edge> removed;  // re-add candidates
      std::size_t next_insert = 0;
      std::size_t removals = 0;
      std::size_t readds = 0;
      for (std::size_t op = 0; op < 60; ++op) {
        switch (rng() % 4) {
          case 0:
          case 1: {  // insert the next pending live edge
            if (next_insert < split.inserts.size()) {
              const Edge e = split.inserts[next_insert++];
              (void)dyn.add_edge(e.src, e.dst);
            }
            break;
          }
          case 2: {  // remove a random currently-live edge
            const Edge e = base_edges[rng() % base_edges.size()];
            if (dyn.graph().has_edge(e.src, e.dst)) {
              (void)dyn.remove_edge(e.src, e.dst);
              removed.push_back(e);
              ++removals;
            }
            break;
          }
          case 3: {  // re-add a previously removed edge
            if (!removed.empty()) {
              const Edge e = removed[rng() % removed.size()];
              if (!dyn.graph().has_edge(e.src, e.dst)) {
                (void)dyn.add_edge(e.src, e.dst);
                ++readds;
              }
            }
            break;
          }
        }
      }
      // A batch removal of freshly-inserted edges exercises the
      // delta-erase path end to end.
      std::vector<Edge> drop;
      for (std::size_t i = 0; i + 1 < next_insert && drop.size() < 4; ++i) {
        const Edge e = split.inserts[i];
        if (dyn.graph().has_edge(e.src, e.dst)) drop.push_back(e);
      }
      if (!drop.empty()) (void)dyn.remove_edges(drop);
      ASSERT_GT(removals, 5u) << what;
      ASSERT_GT(readds, 0u) << what;

      const CsrGraph live = materialize(dyn.graph());
      const auto refit = fit_edge_local(live, cfg, 4, c.exec);
      EXPECT_TRUE(dyn.freeze() == *refit) << what;
      expect_identical_serving(dyn, *refit, what);
    }
  }
}

TEST(DynamicModelEquivalence, RemoveThenReaddRestoresTheOriginalFit) {
  // Removing edges and re-adding the same set must land back at the
  // exact state of a fit on the untouched graph — tombstones leave no
  // residue in any row.
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 5);
  const auto g = std::make_shared<const CsrGraph>(full);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = 3;
  const auto model = fit_edge_local(full, cfg, 4, gas::ExecutionMode::kFlat);

  DynamicModel dyn(model, g);
  const auto all = full.edges();
  std::vector<Edge> victims;
  const std::size_t stride = std::max<std::size_t>(2, all.size() / 12);
  for (std::size_t i = 0; i < all.size() && victims.size() < 12;
       i += stride) {
    victims.push_back(all[i]);
  }

  const auto stats = dyn.remove_edges(victims);
  EXPECT_EQ(stats.edges, victims.size());
  EXPECT_GE(stats.gamma_rows, 1u);
  EXPECT_GE(stats.sims_rows, 1u);
  EXPECT_EQ(dyn.version(), victims.size());
  EXPECT_EQ(dyn.graph().num_removed(), victims.size());

  // The intermediate state equals a fit on the shrunken graph.
  const CsrGraph shrunk = materialize(dyn.graph());
  EXPECT_EQ(shrunk.num_edges(), full.num_edges() - victims.size());
  const auto refit_shrunk =
      fit_edge_local(shrunk, cfg, 4, gas::ExecutionMode::kFlat);
  EXPECT_TRUE(dyn.freeze() == *refit_shrunk);

  (void)dyn.add_edges(victims);
  EXPECT_EQ(dyn.version(), 2 * victims.size());
  EXPECT_EQ(dyn.graph().num_removed(), 0u);
  EXPECT_EQ(dyn.graph().num_inserted(), 0u);
  EXPECT_TRUE(dyn.freeze() == *model);
  expect_identical_serving(dyn, *model, "remove-then-readd");
}

// ---------- version counters ----------

TEST(DynamicModelVersions, PerRowAndGlobalCountersTrackUpdates) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 9);
  const Split split = split_graph(full, 8);
  SnapleConfig cfg;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 1, gas::ExecutionMode::kFlat);
  DynamicModel dyn(base_model, split.base);

  EXPECT_EQ(dyn.version(), 0u);
  for (VertexId u = 0; u < dyn.num_vertices(); ++u) {
    ASSERT_EQ(dyn.row_version(u), 0u) << "fresh model, u=" << u;
  }

  const Edge e = split.inserts.front();
  const auto stats = dyn.add_edge(e.src, e.dst);
  EXPECT_EQ(stats.edges, 1u);
  EXPECT_EQ(stats.gamma_rows, 1u);
  EXPECT_GE(stats.sims_rows, 1u);  // {src} ∪ in(src)
  EXPECT_EQ(stats.hop2_rows, 0u);  // K=2: no hop2 table
  EXPECT_EQ(dyn.version(), 1u);
  EXPECT_GE(dyn.row_version(e.src), 1u);

  // Rows outside the stale set keep version 0 — the update was surgical.
  std::size_t untouched = 0;
  for (VertexId u = 0; u < dyn.num_vertices(); ++u) {
    if (dyn.row_version(u) == 0) ++untouched;
  }
  EXPECT_GT(untouched, dyn.num_vertices() / 2);

  // A batch bumps the global version by its size.
  const std::size_t before = dyn.version();
  (void)dyn.add_edges({split.inserts.data() + 1, 3});
  EXPECT_EQ(dyn.version(), before + 3);
}

// ---------- invalid inserts ----------

TEST(DynamicModelRejection, BadInsertsThrowAndChangeNothing) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 13);
  const Split split = split_graph(full, 8);
  SnapleConfig cfg;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 1, gas::ExecutionMode::kFlat);
  DynamicModel dyn(base_model, split.base);
  ASSERT_GE(split.inserts.size(), 4u);
  const QueryEngine server(unowned(dyn));

  // One good insert first, then a snapshot of vertex 0's serving state:
  // everything rejected below must leave it untouched.
  const Edge fresh = split.inserts.front();
  (void)dyn.add_edge(fresh.src, fresh.dst);
  const Scored want0 = server.topk(0);

  const VertexId n = dyn.num_vertices();
  const Edge existing = split.base->edges().front();

  EXPECT_THROW((void)dyn.add_edge(3, 3), CheckError);          // self-loop
  EXPECT_THROW((void)dyn.add_edge(n, 0), CheckError);          // src range
  EXPECT_THROW((void)dyn.add_edge(0, n + 7), CheckError);      // dst range
  EXPECT_THROW((void)dyn.add_edge(existing.src, existing.dst),
               CheckError);  // duplicate of a base edge
  EXPECT_THROW((void)dyn.add_edge(fresh.src, fresh.dst),
               CheckError);  // duplicate of a previously inserted edge

  // A batch with one bad edge is rejected atomically: nothing applied.
  const std::uint64_t version = dyn.version();
  const std::vector<Edge> bad = {split.inserts[1], split.inserts[2],
                                 {7, 7}};
  EXPECT_THROW((void)dyn.add_edges(bad), CheckError);
  const std::vector<Edge> twice = {split.inserts[3], split.inserts[3]};
  EXPECT_THROW((void)dyn.add_edges(twice), CheckError);
  EXPECT_EQ(dyn.version(), version);
  EXPECT_FALSE(dyn.graph().has_edge(split.inserts[1].src,
                                    split.inserts[1].dst));
  EXPECT_EQ(server.topk(0), want0);
}

TEST(DynamicModelRejection, BadRemovesThrowAndChangeNothing) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 13);
  const Split split = split_graph(full, 8);
  SnapleConfig cfg;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 1, gas::ExecutionMode::kFlat);
  DynamicModel dyn(base_model, split.base);
  const QueryEngine server(unowned(dyn));

  // One good removal first, then a snapshot: everything rejected below
  // must leave the serving state untouched.
  const auto base_edges = split.base->edges();
  const Edge gone = base_edges.front();
  (void)dyn.remove_edge(gone.src, gone.dst);
  const Scored want0 = server.topk(0);
  const std::uint64_t version = dyn.version();
  ASSERT_EQ(version, 1u);

  const VertexId n = dyn.num_vertices();
  EXPECT_THROW((void)dyn.remove_edge(3, 3), CheckError);      // self-loop
  EXPECT_THROW((void)dyn.remove_edge(n, 0), CheckError);      // src range
  EXPECT_THROW((void)dyn.remove_edge(0, n + 7), CheckError);  // dst range
  EXPECT_THROW((void)dyn.remove_edge(gone.src, gone.dst),
               CheckError);  // already removed ⇒ not a live edge
  EXPECT_THROW((void)dyn.remove_edge(split.inserts[0].src,
                                     split.inserts[0].dst),
               CheckError);  // never was a live edge

  // A batch with one bad removal is rejected atomically: the good
  // edges stay live, no row republishes, no version bump.
  const std::vector<Edge> bad = {base_edges[1], base_edges[2], gone};
  EXPECT_THROW((void)dyn.remove_edges(bad), CheckError);
  const std::vector<Edge> twice = {base_edges[3], base_edges[3]};
  EXPECT_THROW((void)dyn.remove_edges(twice), CheckError);
  EXPECT_EQ(dyn.version(), version);
  EXPECT_TRUE(dyn.graph().has_edge(base_edges[1].src, base_edges[1].dst));
  EXPECT_TRUE(dyn.graph().has_edge(base_edges[3].src, base_edges[3].dst));
  EXPECT_EQ(server.topk(0), want0);
}

TEST(DynamicModelRejection, RequiresEdgeLocalTagsAndDeterministicPolicy) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 3);
  const auto g = std::make_shared<const CsrGraph>(full);
  SnapleConfig cfg;

  // A greedy multi-machine fit carries position-dependent tags — the
  // constructor must refuse rather than serve subtly-wrong folds.
  const auto part = gas::Partitioning::create(
      *g, 4, gas::PartitionStrategy::kGreedy, cfg.seed);
  const LinkPredictor greedy(cfg, gas::ClusterConfig::type_i(4));
  const auto wrong = std::make_shared<const PredictorModel>(
      greedy.fit_with_partitioning(*g, part));
  EXPECT_THROW(DynamicModel(wrong, g), CheckError);

  // Single-machine fits always qualify (every tag is 0)...
  const LinkPredictor single(cfg);
  const auto ok = std::make_shared<const PredictorModel>(single.fit(*g));
  EXPECT_NO_THROW(DynamicModel(ok, g));

  // ...as does the documented fit-then-wrap flow on >1 machine: a
  // kEdgeLocal LinkPredictor partitions internally with config.seed,
  // and DynamicModel's defaulted partition_seed must resolve to it.
  const LinkPredictor lp4(cfg, gas::ClusterConfig::type_i(4),
                          gas::PartitionStrategy::kEdgeLocal);
  const auto m4 = std::make_shared<const PredictorModel>(lp4.fit(*g));
  EXPECT_NO_THROW(DynamicModel(m4, g));

  // ...but Γrnd with K=3 cannot be replayed bit-exactly and is refused.
  SnapleConfig rnd3 = cfg;
  rnd3.policy = SelectionPolicy::kRandom;
  rnd3.k_hops = 3;
  const LinkPredictor p3(rnd3);
  const auto m3 = std::make_shared<const PredictorModel>(p3.fit(*g));
  EXPECT_THROW(DynamicModel(m3, g), CheckError);

  // And the graph must be the fit graph.
  const auto other = std::make_shared<const CsrGraph>(
      gen::make_dataset("gowalla", 0.02, 4));
  if (other->num_vertices() == g->num_vertices()) {
    EXPECT_THROW(DynamicModel(ok, other), CheckError);
  }
  EXPECT_THROW(DynamicModel(ok, nullptr), CheckError);
}

// ---------- concurrent readers during a writer burst ----------

TEST(DynamicModelConcurrency, ReadersNeverTearDuringWriterBurst) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.03, 17);
  const Split split = split_graph(full, 64);
  SnapleConfig cfg;
  cfg.k_hops = 3;  // hop2 rows republish too
  cfg.k_local = 10;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 4, gas::ExecutionMode::kFlat);
  auto dyn = std::make_shared<DynamicModel>(base_model, split.base);
  const QueryEngine server{std::shared_ptr<const DynamicModel>(dyn)};

  constexpr std::size_t kThreads = 8;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> bad{0};
  std::atomic<std::size_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  const VertexId n = dyn->num_vertices();
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      VertexId u = static_cast<VertexId>((t * 131) % n);
      while (!done.load(std::memory_order_relaxed)) {
        const Scored got = server.topk(u);
        // Structural invariants that any untorn row state satisfies:
        // bounded size, in-range distinct ids, finite descending scores.
        bool ok = got.size() <= cfg.k;
        for (std::size_t i = 0; i < got.size() && ok; ++i) {
          ok = got[i].first < n && std::isfinite(got[i].second) &&
               (i == 0 || got[i - 1].second >= got[i].second);
          for (std::size_t j = 0; j < i && ok; ++j) {
            ok = got[j].first != got[i].first;
          }
        }
        if (!ok) bad.fetch_add(1, std::memory_order_relaxed);
        queries.fetch_add(1, std::memory_order_relaxed);
        u = (u + 17) % n;
      }
    });
  }
  for (const Edge& e : split.inserts) (void)dyn->add_edge(e.src, e.dst);
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // Once the writer is quiescent, serving equals the union refit.
  const auto refit = fit_edge_local(full, cfg, 4, gas::ExecutionMode::kFlat);
  EXPECT_TRUE(dyn->freeze() == *refit);
  expect_identical_serving(*dyn, *refit, "post-burst");
}

TEST(DynamicModelConcurrency, ReadersNeverTearDuringMixedChurn) {
  // Same reader invariants as above, but the writer interleaves inserts
  // and removals — tombstone publication goes through the same RCU slab
  // path, so readers must stay untorn through both.
  const CsrGraph full = gen::make_dataset("gowalla", 0.03, 17);
  const Split split = split_graph(full, 48);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  cfg.k_local = 10;
  const auto base_model =
      fit_edge_local(*split.base, cfg, 4, gas::ExecutionMode::kFlat);
  auto dyn = std::make_shared<DynamicModel>(base_model, split.base);
  const QueryEngine server{std::shared_ptr<const DynamicModel>(dyn)};

  constexpr std::size_t kThreads = 8;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> bad{0};
  std::atomic<std::size_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  const VertexId n = dyn->num_vertices();
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      VertexId u = static_cast<VertexId>((t * 131) % n);
      while (!done.load(std::memory_order_relaxed)) {
        const Scored got = server.topk(u);
        bool ok = got.size() <= cfg.k;
        for (std::size_t i = 0; i < got.size() && ok; ++i) {
          ok = got[i].first < n && std::isfinite(got[i].second) &&
               (i == 0 || got[i - 1].second >= got[i].second);
          for (std::size_t j = 0; j < i && ok; ++j) {
            ok = got[j].first != got[i].first;
          }
        }
        if (!ok) bad.fetch_add(1, std::memory_order_relaxed);
        queries.fetch_add(1, std::memory_order_relaxed);
        u = (u + 17) % n;
      }
    });
  }
  // Writer: insert each pending edge, and every third op also remove
  // the edge inserted two steps ago (so removals hit both base and
  // delta rows while readers are in flight).
  std::vector<Edge> live;
  for (std::size_t i = 0; i < split.inserts.size(); ++i) {
    const Edge e = split.inserts[i];
    (void)dyn->add_edge(e.src, e.dst);
    live.push_back(e);
    if (i % 3 == 2 && live.size() > 2) {
      const Edge victim = live[live.size() - 3];
      (void)dyn->remove_edge(victim.src, victim.dst);
      live.erase(live.end() - 3);
    }
  }
  done.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // Once the writer is quiescent, serving equals a refit on the live
  // graph (base ∪ surviving inserts).
  const CsrGraph final_graph = materialize(dyn->graph());
  const auto refit =
      fit_edge_local(final_graph, cfg, 4, gas::ExecutionMode::kFlat);
  EXPECT_TRUE(dyn->freeze() == *refit);
  expect_identical_serving(*dyn, *refit, "post-churn");
}

// ---------- QueryEngine dual backend ----------

TEST(DynamicModelServing, QueryEngineExposesTheRightBackend) {
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, 21);
  const auto g = std::make_shared<const CsrGraph>(full);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg);
  const auto model = std::make_shared<const PredictorModel>(predictor.fit(*g));

  const QueryEngine fixed(model);
  EXPECT_EQ(&fixed.model(), model.get());
  EXPECT_EQ(fixed.dynamic_model(), nullptr);
  EXPECT_EQ(fixed.num_vertices(), g->num_vertices());

  const auto dyn = std::make_shared<const DynamicModel>(model, g);
  const QueryEngine live(dyn);
  EXPECT_EQ(live.dynamic_model(), dyn);
  EXPECT_EQ(live.num_vertices(), g->num_vertices());
  EXPECT_EQ(live.config().k, cfg.k);
  EXPECT_THROW((void)live.model(), CheckError);
  EXPECT_THROW((void)live.topk(g->num_vertices()), CheckError);

  // Before any update the two backends serve identical answers (the
  // dynamic read path is the same fold over the same base rows).
  for (VertexId u = 0; u < g->num_vertices(); ++u) {
    ASSERT_EQ(live.topk(u), fixed.topk(u)) << "u=" << u;
  }
  EXPECT_EQ(dyn->overlay_bytes(), 0u);  // no updates yet: zero overhead
}

}  // namespace
}  // namespace snaple
