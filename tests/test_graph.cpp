// Unit tests for the graph substrate: builder, CSR invariants, IO, degrees.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/degree.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace snaple {
namespace {

CsrGraph diamond() {
  // 0 -> {1,2}, 1 -> 3, 2 -> 3
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  return b.build();
}

// ---------- builder ----------

TEST(GraphBuilder, BuildsSortedAdjacency) {
  GraphBuilder b;
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const CsrGraph g = b.build();
  const auto nbrs = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b;
  b.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b;
  b.add_edge(5, 5);
  b.add_edge(5, 6);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(5, 5));
}

TEST(GraphBuilder, GrowsVertexCountFromIds) {
  GraphBuilder b;
  b.add_edge(0, 41);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 42u);
  EXPECT_EQ(g.out_degree(41), 0u);  // isolated but addressable
}

TEST(GraphBuilder, PredeclaredVertexCountKeepsIsolated) {
  GraphBuilder b(10);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(GraphBuilder, SymmetrizeAddsReverseEdges) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  b.symmetrize();
  const CsrGraph g = b.build();
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(GraphBuilder, UndirectedEdgeHelper) {
  GraphBuilder b;
  b.add_undirected_edge(3, 4);
  const CsrGraph g = b.build();
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_TRUE(g.has_edge(4, 3));
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b;
  b.add_edge(0, 1);
  (void)b.build();
  b.add_edge(0, 2);
  const CsrGraph g2 = b.build();
  EXPECT_EQ(g2.num_edges(), 1u);
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 1));
}

// ---------- CSR invariants ----------

TEST(CsrGraph, InOutConsistency) {
  Rng rng(3);
  GraphBuilder b(200);
  for (int i = 0; i < 2000; ++i) {
    b.add_edge(static_cast<VertexId>(rng.next_below(200)),
               static_cast<VertexId>(rng.next_below(200)));
  }
  const CsrGraph g = b.build();
  std::size_t out_total = 0;
  std::size_t in_total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    out_total += g.out_degree(u);
    in_total += g.in_degree(u);
    EXPECT_TRUE(std::is_sorted(g.out_neighbors(u).begin(),
                               g.out_neighbors(u).end()));
    EXPECT_TRUE(std::is_sorted(g.in_neighbors(u).begin(),
                               g.in_neighbors(u).end()));
    for (VertexId v : g.out_neighbors(u)) {
      const auto in_of_v = g.in_neighbors(v);
      EXPECT_TRUE(std::binary_search(in_of_v.begin(), in_of_v.end(), u));
    }
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(CsrGraph, HasEdge) {
  const CsrGraph g = diamond();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(CsrGraph, EdgeIndexRoundTrip) {
  const CsrGraph g = diamond();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      const EdgeIndex e = g.edge_index(u, v);
      ASSERT_LT(e, g.num_edges());
      EXPECT_EQ(g.edge_source(e), u);
      EXPECT_EQ(g.edge_target(e), v);
    }
  }
  EXPECT_EQ(g.edge_index(0, 3), g.num_edges());  // absent edge
}

TEST(CsrGraph, EdgesListsCsrOrder) {
  const CsrGraph g = diamond();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(edges[0], (Edge{0, 1}));
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CsrGraph, MemoryBytesNonZero) {
  EXPECT_GT(diamond().memory_bytes(), 0u);
}

// ---------- IO ----------

TEST(GraphIo, TextRoundTrip) {
  const CsrGraph g = diamond();
  std::stringstream ss;
  save_edge_list_text(g, ss);
  const CsrGraph back = load_edge_list_text(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, TextSkipsCommentsAndBlanks) {
  std::stringstream ss("# comment\n\n0 1\n% other comment\n1 2\n");
  const CsrGraph g = load_edge_list_text(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, TextSymmetrizeOption) {
  std::stringstream ss("0 1\n");
  const CsrGraph g = load_edge_list_text(ss, /*symmetrize=*/true);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

TEST(GraphIo, TextRejectsMalformedLine) {
  std::stringstream ss("0 1\nnot numbers\n");
  EXPECT_THROW(load_edge_list_text(ss), IoError);
}

TEST(GraphIo, BinaryRoundTrip) {
  Rng rng(11);
  GraphBuilder b(50);
  for (int i = 0; i < 300; ++i) {
    b.add_edge(static_cast<VertexId>(rng.next_below(50)),
               static_cast<VertexId>(rng.next_below(50)));
  }
  const CsrGraph g = b.build();
  std::stringstream ss;
  save_binary(g, ss);
  const CsrGraph back = load_binary(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, BinaryRejectsBadMagic) {
  std::stringstream ss("garbage data here");
  EXPECT_THROW(load_binary(ss), IoError);
}

TEST(GraphIo, BinaryRejectsTruncated) {
  const CsrGraph g = diamond();
  std::stringstream ss;
  save_binary(g, ss);
  std::string data = ss.str();
  data.resize(data.size() - 4);
  std::stringstream truncated(data);
  EXPECT_THROW(load_binary(truncated), IoError);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_text_file("/nonexistent/graph.txt"), IoError);
  EXPECT_THROW(load_binary_file("/nonexistent/graph.bin"), IoError);
}

// ---------- degrees ----------

TEST(Degree, VectorsAndSummary) {
  const CsrGraph g = diamond();
  EXPECT_EQ(out_degrees(g), (std::vector<std::size_t>{2, 1, 1, 0}));
  EXPECT_EQ(in_degrees(g), (std::vector<std::size_t>{0, 1, 1, 2}));
  const auto s = summarize_out_degrees(g);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
}

TEST(Degree, CdfMatchesFractionUntruncated) {
  Rng rng(5);
  GraphBuilder b(100);
  for (int i = 0; i < 900; ++i) {
    b.add_edge(static_cast<VertexId>(rng.next_below(100)),
               static_cast<VertexId>(rng.next_below(100)));
  }
  const CsrGraph g = b.build();
  const auto cdf = out_degree_cdf(g);
  for (std::size_t thr : {0ul, 1ul, 5ul, 10ul, 100ul}) {
    EXPECT_DOUBLE_EQ(cdf.at(static_cast<double>(thr)),
                     fraction_untruncated(g, thr));
  }
  EXPECT_DOUBLE_EQ(fraction_untruncated(g, 10000), 1.0);
}

}  // namespace
}  // namespace snaple
