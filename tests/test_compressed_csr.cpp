// Compressed CSR: bit-identity of the representation and of everything
// built on top of it.
//
//  * decompress(from_graph(G)) == G for every generator family — and for
//    the shapes the block format must get right: hub rows (many blocks),
//    width-0 runs, empty rows, isolated tail vertices, V ∈ {0, 1}.
//  * RowCursor streaming equals whole-row decode.
//  * Binary format v3 round-trips; truncation at EVERY byte offset and
//    systematic byte corruption are rejected (or load a fully-valid
//    graph), mirroring the SNAPLEM1 fuzz battery.
//  * The SIMD kernels match their scalar references bit for bit across
//    widths, counts and dispatch levels.
//  * run_snaple on the compressed graph equals the flat engine EXACTLY —
//    predictions, scores and accounting — flat and sharded, and sharded
//    runs over compressed shard slices shrink the structure footprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <sstream>
#include <vector>

#include "core/snaple_program.hpp"
#include "gas/shard.hpp"
#include "graph/builder.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/gen/generators.hpp"
#include "graph/io.hpp"
#include "util/simd.hpp"

namespace snaple {
namespace {

void expect_same_graph(const CsrGraph& a, const CsrGraph& b,
                       const std::string& what) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  EXPECT_TRUE(std::ranges::equal(a.out_offsets(), b.out_offsets())) << what;
  EXPECT_TRUE(std::ranges::equal(a.out_targets(), b.out_targets())) << what;
  EXPECT_TRUE(std::ranges::equal(a.in_offsets(), b.in_offsets())) << what;
  EXPECT_TRUE(std::ranges::equal(a.in_sources(), b.in_sources())) << what;
}

// ---------- representation round trip, all generator families ----------

struct GeneratorCase {
  std::string name;
  std::function<CsrGraph(std::uint64_t seed)> make;
};

std::vector<GeneratorCase> generator_cases() {
  return {
      {"erdos_renyi",
       [](std::uint64_t s) { return gen::erdos_renyi(200, 1500, s); }},
      {"barabasi_albert",
       [](std::uint64_t s) { return gen::barabasi_albert(300, 3, s); }},
      {"holme_kim",
       [](std::uint64_t s) { return gen::holme_kim(300, 3, 0.6, s); }},
      {"watts_strogatz",
       [](std::uint64_t s) { return gen::watts_strogatz(200, 3, 0.2, s); }},
      {"rmat",
       [](std::uint64_t s) {
         gen::RmatParams p;
         p.scale = 9;
         p.edges = 4000;
         return gen::rmat(p, s);
       }},
      {"affiliation",
       [](std::uint64_t s) {
         return gen::affiliation_graph(400, gen::AffiliationParams{}, s);
       }},
      {"dataset_replica",
       [](std::uint64_t s) { return gen::make_dataset("pokec", 0.01, s); }},
  };
}

class CompressedRoundTrip : public ::testing::TestWithParam<GeneratorCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, CompressedRoundTrip,
    ::testing::ValuesIn(generator_cases()),
    [](const auto& info) { return info.param.name; });

TEST_P(CompressedRoundTrip, DecompressIsExactAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const CsrGraph g = GetParam().make(seed);
    const auto c = CompressedCsrGraph::from_graph(g);
    expect_same_graph(c.decompress(), g,
                      "seed " + std::to_string(seed));
  }
}

TEST_P(CompressedRoundTrip, RowAccessorsMatchFlat) {
  const CsrGraph g = GetParam().make(3);
  const auto c = CompressedCsrGraph::from_graph(g);
  ASSERT_EQ(c.num_vertices(), g.num_vertices());
  ASSERT_EQ(c.num_edges(), g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_TRUE(std::ranges::equal(c.out_neighbors(u), g.out_neighbors(u)));
    EXPECT_TRUE(std::ranges::equal(c.in_neighbors(u), g.in_neighbors(u)));
    EXPECT_EQ(c.out_degree(u), g.out_degree(u));
    EXPECT_EQ(c.in_degree(u), g.in_degree(u));
    EXPECT_EQ(c.out_offset(u), g.out_offsets()[u]);
  }
}

TEST_P(CompressedRoundTrip, EdgeIndexAndHasEdgeMatchFlat) {
  const CsrGraph g = GetParam().make(5);
  const auto c = CompressedCsrGraph::from_graph(g);
  EdgeIndex e = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      EXPECT_TRUE(c.has_edge(u, v));
      EXPECT_EQ(c.edge_index(u, v), e);
      ++e;
    }
    // A vertex that is no out-neighbor of u (or the absent self loop).
    if (!g.has_edge(u, u)) {
      EXPECT_FALSE(c.has_edge(u, u));
      EXPECT_EQ(c.edge_index(u, u), g.num_edges());
    }
  }
}

TEST_P(CompressedRoundTrip, RowCursorStreamsWholeRow) {
  const CsrGraph g = GetParam().make(9);
  const auto c = CompressedCsrGraph::from_graph(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    std::vector<VertexId> streamed;
    for (auto cur = c.out_row(u); !cur.done();) {
      const auto block = cur.next_block();
      streamed.insert(streamed.end(), block.begin(), block.end());
    }
    EXPECT_TRUE(std::ranges::equal(streamed, g.out_neighbors(u))) << u;
  }
}

// ---------- adversarial row shapes ----------

TEST(CompressedCsr, EmptyAndTinyGraphs) {
  const CsrGraph empty;
  const auto c0 = CompressedCsrGraph::from_graph(empty);
  EXPECT_EQ(c0.num_vertices(), 0u);
  EXPECT_EQ(c0.num_edges(), 0u);
  EXPECT_EQ(c0.adjacency_bytes(), 0u);
  expect_same_graph(c0.decompress(), empty, "empty");

  GraphBuilder b1;
  b1.declare_vertices(1);  // one vertex, zero edges
  const CsrGraph single = b1.build();
  const auto c1 = CompressedCsrGraph::from_graph(single);
  EXPECT_EQ(c1.num_vertices(), 1u);
  EXPECT_TRUE(c1.out_neighbors(0).empty());
  expect_same_graph(c1.decompress(), single, "single vertex");
}

TEST(CompressedCsr, HubRowSpanningManyBlocks) {
  // A star: one source with 1000 targets — eight blocks, the last one
  // partial — plus 1000 single-entry in-rows.
  GraphBuilder b;
  for (VertexId v = 1; v <= 1000; ++v) b.add_edge(0, v);
  const CsrGraph g = b.build();
  const auto c = CompressedCsrGraph::from_graph(g);
  expect_same_graph(c.decompress(), g, "star");
  EXPECT_TRUE(std::ranges::equal(c.out_neighbors(0), g.out_neighbors(0)));
}

TEST(CompressedCsr, ConsecutiveRunsUseWidthZeroBlocks) {
  // Row 601 → {0, 1, ..., 600}: the first field is the absolute id 0
  // and every delta field is 0, so all five blocks are width-0 — a
  // 601-id row packed into 5 lone header bytes, decoding exactly.
  GraphBuilder b;
  for (VertexId v = 0; v <= 600; ++v) b.add_edge(601, v);
  const CsrGraph g = b.build();
  const auto c = CompressedCsrGraph::from_graph(g);
  EXPECT_EQ(c.out_adjacency().payload_bytes(), 5u);
  expect_same_graph(c.decompress(), g, "consecutive run");
}

TEST(CompressedCsr, WideDeltasAndIsolatedTailVertices) {
  // Deltas spanning the vertex range (wide packed fields), empty rows in
  // the middle and isolated vertices after the last edge. (Width-32
  // fields are exercised at the kernel level below — a graph forcing
  // them would need ~2^32 vertices' worth of offset arrays.)
  constexpr VertexId kLast = (1u << 20) - 3;
  GraphBuilder b;
  b.declare_vertices(kLast + 2);
  b.add_edge(5, 0);
  b.add_edge(5, 1u << 10);
  b.add_edge(5, kLast);
  b.add_edge(9, kLast);
  const CsrGraph g = b.build();
  const auto c = CompressedCsrGraph::from_graph(g);
  ASSERT_EQ(c.num_vertices(), g.num_vertices());
  EXPECT_TRUE(std::ranges::equal(c.out_neighbors(5), g.out_neighbors(5)));
  EXPECT_TRUE(std::ranges::equal(c.out_neighbors(9), g.out_neighbors(9)));
  EXPECT_TRUE(c.out_neighbors(7).empty());
  EXPECT_TRUE(std::ranges::equal(c.in_neighbors(kLast), g.in_neighbors(kLast)));
  expect_same_graph(c.decompress(), g, "wide deltas");
}

TEST(CompressedCsr, CompressionTargetOnMillionEdgeReplica) {
  // The tentpole target: ≥ 2× smaller than the flat out_targets +
  // in_sources on a ~1M-edge dataset replica.
  const CsrGraph g = gen::make_dataset("pokec", 1.5, 7);
  ASSERT_GE(g.num_edges(), 1'000'000u);
  const auto c = CompressedCsrGraph::from_graph(g);
  const std::size_t flat =
      static_cast<std::size_t>(g.num_edges()) * 2 * sizeof(VertexId);
  EXPECT_LE(c.adjacency_bytes() * 2, flat)
      << "compressed " << c.adjacency_bytes() << " B vs flat " << flat
      << " B";
  EXPECT_LT(c.memory_bytes(), g.memory_bytes());
}

// ---------- binary format v3 ----------

TEST(BinaryV3, RoundTripsCompressedAndFlat) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  const auto c = CompressedCsrGraph::from_graph(g);
  std::stringstream ss;
  save_binary_v3(c, ss);

  std::stringstream a(ss.str());
  const auto native = load_binary_compressed(a);
  expect_same_graph(native.decompress(), g, "native v3");
  EXPECT_EQ(native.adjacency_bytes(), c.adjacency_bytes());

  std::stringstream b(ss.str());
  expect_same_graph(load_binary(b), g, "v3 via load_binary");
}

TEST(BinaryV3, LoadsLegacyFormatsCompressed) {
  const CsrGraph g = gen::erdos_renyi(150, 900, 5);
  for (const bool v1 : {false, true}) {
    std::stringstream ss;
    if (v1) {
      save_binary_v1(g, ss);
    } else {
      save_binary(g, ss);
    }
    const auto c = load_binary_compressed(ss);
    expect_same_graph(c.decompress(), g, v1 ? "from v1" : "from v2");
  }
}

TEST(BinaryV3, EmptyGraphRoundTrips) {
  const CompressedCsrGraph c;
  std::stringstream ss;
  save_binary_v3(c, ss);
  const auto back = load_binary_compressed(ss);
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_edges(), 0u);
}

/// Small graph whose v3 bytes cover every section: multi-block hub row,
/// width-0 runs, empty rows, both sides non-trivial.
std::string tiny_v3_bytes() {
  GraphBuilder b;
  for (VertexId v = 1; v <= 200; ++v) b.add_edge(0, v);
  b.add_edge(3, 1);
  b.add_edge(3, 100);
  b.add_edge(7, 3);
  const std::string bytes = [&] {
    std::stringstream ss;
    save_binary_v3(CompressedCsrGraph::from_graph(b.build()), ss);
    return ss.str();
  }();
  return bytes;
}

TEST(BinaryV3Fuzz, TruncationAtEveryByteOffsetIsRejected) {
  const std::string bytes = tiny_v3_bytes();
  ASSERT_GT(bytes.size(), 24u);
  // v3 has no padding or optional tail: every strict prefix is a
  // truncation and must throw IoError — never crash, never hand back a
  // graph built from half the arrays.
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::stringstream cut(bytes.substr(0, keep));
    EXPECT_THROW((void)load_binary_compressed(cut), IoError) << keep;
    std::stringstream cut2(bytes.substr(0, keep));
    EXPECT_THROW((void)load_binary(cut2), IoError) << keep;
  }
  std::stringstream whole(bytes);
  EXPECT_NO_THROW((void)load_binary_compressed(whole));
}

TEST(BinaryV3Fuzz, ByteFlipsNeverCrashOrHalfLoad) {
  const std::string bytes = tiny_v3_bytes();
  std::stringstream ref_in(bytes);
  const CsrGraph reference = load_binary_compressed(ref_in).decompress();
  // Every byte of the file takes three flips (low bit, high bit, all
  // bits). Outcomes allowed: clean IoError, or a graph that passes the
  // full structural validation — nothing in between.
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string mutated = bytes;
      mutated[at] = static_cast<char>(mutated[at] ^ mask);
      std::stringstream in(mutated);
      CompressedCsrGraph c;
      try {
        c = load_binary_compressed(in);
      } catch (const IoError&) {
        continue;  // clean rejection — the expected outcome
      }
      // Validation accepted the mutation (e.g. a flip inside a packed
      // field that still decodes to ascending in-range ids). Then the
      // graph must be completely well-formed: every row decodes, stays
      // ascending and transposes consistently — from_parts pinned that;
      // spot-check by decompressing (CsrGraph::from_parts re-validates).
      const CsrGraph flat = c.decompress();
      ASSERT_EQ(flat.num_vertices(), reference.num_vertices())
          << "at=" << at << " mask=" << int(mask);
    }
  }
}

// ---------- SIMD kernel equivalence ----------

/// Packs `fields` LSB-first at `width` bits each, padded with decode
/// slack — the encoder's inner loop, reproduced for kernel-level tests.
std::vector<std::uint8_t> pack_fields(const std::vector<std::uint32_t>& fields,
                                      unsigned width) {
  std::vector<std::uint8_t> out((fields.size() * width + 7) / 8 +
                                    simd::kDecodeSlack,
                                0);
  std::size_t bit = 0;
  for (const std::uint32_t f : fields) {
    for (unsigned i = 0; i < width; ++i, ++bit) {
      if ((f >> i) & 1u) out[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  return out;
}

TEST(SimdKernels, DeltaUnpackMatchesScalarAcrossWidthsAndCounts) {
  std::mt19937_64 rng(42);
  for (unsigned width = 0; width <= 32; ++width) {
    for (const std::uint32_t count :
         {std::uint32_t{0}, std::uint32_t{1}, std::uint32_t{7},
          std::uint32_t{8}, std::uint32_t{9}, std::uint32_t{64},
          std::uint32_t{127}, std::uint32_t{128}}) {
      std::vector<std::uint32_t> fields(count);
      const std::uint64_t cap =
          width == 32 ? 0xffffffffULL : (1ULL << width) - 1;
      for (auto& f : fields) {
        f = static_cast<std::uint32_t>(rng() & cap);
      }
      const auto packed = pack_fields(fields, width);
      const std::uint32_t prev = CompressedAdjacency::kRowInit;

      std::vector<VertexId> scalar_out(std::max<std::size_t>(count, 1));
      const std::uint32_t scalar_last = simd::delta_unpack_scalar(
          packed.data(), width, count, prev, scalar_out.data());

      std::vector<VertexId> active_out(std::max<std::size_t>(count, 1));
      const std::uint32_t active_last = simd::delta_unpack(
          packed.data(), width, count, prev, active_out.data());

      EXPECT_EQ(active_last, scalar_last) << width << "/" << count;
      EXPECT_EQ(active_out, scalar_out) << width << "/" << count;
    }
  }
}

TEST(SimdKernels, DeltaUnpackIdenticalUnderBothDispatchLevels) {
  // Pin each level in turn (the kAvx2 pin is a no-op on scalar-only
  // builds/CPUs, where both runs take the scalar path — still a valid
  // identity) and compare full decodes of a replica graph.
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 11);
  const auto c = CompressedCsrGraph::from_graph(g);

  const auto decode_all = [&] {
    std::vector<VertexId> all;
    all.reserve(g.num_edges());
    for (VertexId u = 0; u < c.num_vertices(); ++u) {
      const auto row = c.out_neighbors(u);
      all.insert(all.end(), row.begin(), row.end());
    }
    return all;
  };

  simd::override_level(simd::Level::kScalar);
  const auto scalar = decode_all();
  simd::override_level(simd::Level::kAvx2);
  const auto vector = decode_all();
  simd::clear_level_override();

  EXPECT_EQ(scalar, vector);
  EXPECT_TRUE(std::ranges::equal(scalar, g.out_targets()));
}

TEST(SimdKernels, IntersectCountMatchesSetIntersection) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    const auto draw = [&](std::size_t max_len, std::uint32_t universe) {
      std::vector<VertexId> v(rng() % (max_len + 1));
      for (auto& x : v) x = static_cast<VertexId>(rng() % universe);
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return v;
    };
    // Mix of comparable sizes (block path) and lopsided pairs ≥ the
    // gallop ratio, over dense and sparse universes.
    const auto a = draw(round % 3 == 0 ? 400 : 30, 500);
    const auto b = draw(round % 3 == 1 ? 2000 : 25, 3000);
    std::vector<VertexId> expect;
    std::ranges::set_intersection(a, b, std::back_inserter(expect));

    for (const auto level : {simd::Level::kScalar, simd::Level::kAvx2}) {
      simd::override_level(level);
      EXPECT_EQ(simd::intersect_count(a, b), expect.size()) << round;
      EXPECT_EQ(simd::intersect_count(b, a), expect.size()) << round;
    }
    simd::clear_level_override();
    EXPECT_EQ(simd::intersect_count_scalar(a, b), expect.size()) << round;
  }
}

TEST(SimdKernels, SortedMembershipMatchesBinarySearch) {
  std::mt19937_64 rng(13);
  for (int round = 0; round < 100; ++round) {
    std::vector<VertexId> sorted(rng() % 300);
    for (auto& x : sorted) x = static_cast<VertexId>(rng() % 2000);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    simd::SortedMembership member(sorted);
    // Mostly-ascending probe sequence with occasional restarts — the
    // fold path's access pattern (ascending z per list, new list rewinds).
    VertexId probe = 0;
    for (int i = 0; i < 400; ++i) {
      if (rng() % 16 == 0) probe = static_cast<VertexId>(rng() % 100);
      probe += static_cast<VertexId>(rng() % 12);
      EXPECT_EQ(member.contains(probe),
                std::binary_search(sorted.begin(), sorted.end(), probe))
          << round << ":" << i;
    }
  }
}

// ---------- end-to-end bit-identity ----------

void expect_same_result(const SnapleResult& a, const SnapleResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.predictions.size(), b.predictions.size()) << what;
  EXPECT_EQ(a.predictions, b.predictions) << what;
  EXPECT_EQ(a.scored, b.scored) << what;  // float-exact comparison
  ASSERT_EQ(a.report.steps.size(), b.report.steps.size()) << what;
  for (std::size_t i = 0; i < a.report.steps.size(); ++i) {
    const auto& sa = a.report.steps[i];
    const auto& sb = b.report.steps[i];
    EXPECT_EQ(sa.net_bytes, sb.net_bytes) << what << " step " << i;
    EXPECT_EQ(sa.messages, sb.messages) << what << " step " << i;
    EXPECT_EQ(sa.gather_calls, sb.gather_calls) << what << " step " << i;
    EXPECT_EQ(sa.contributions, sb.contributions) << what << " step " << i;
  }
}

TEST(CompressedRun, BitIdenticalToFlatEngine) {
  for (const std::uint64_t seed : {1u, 5u}) {
    const CsrGraph g = gen::make_dataset("gowalla", 0.02, seed);
    const auto c = CompressedCsrGraph::from_graph(g);
    for (const std::size_t k_hops : {std::size_t{2}, std::size_t{3}}) {
      for (const std::size_t machines :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        SnapleConfig cfg;
        cfg.k_hops = k_hops;
        cfg.seed = seed;
        const auto part = gas::Partitioning::create(
            g, machines, gas::PartitionStrategy::kGreedy, cfg.seed);
        const auto cpart = gas::Partitioning::create(
            c, machines, gas::PartitionStrategy::kGreedy, cfg.seed);
        const auto cluster = machines == 1
                                 ? gas::ClusterConfig::single_machine(2)
                                 : gas::ClusterConfig::type_i(machines);
        const std::string what = "seed=" + std::to_string(seed) +
                                 " K=" + std::to_string(k_hops) +
                                 " m=" + std::to_string(machines);
        const auto flat = run_snaple(g, cfg, part, cluster);
        expect_same_result(run_snaple(c, cfg, cpart, cluster), flat, what);
        if (machines > 1) {
          // Sharded execution over compressed shard slices.
          const auto sharded_flat =
              run_snaple(g, cfg, part, cluster, nullptr,
                         gas::ApplyMode::kFused, gas::ExecutionMode::kSharded);
          expect_same_result(
              run_snaple(c, cfg, cpart, cluster, nullptr,
                         gas::ApplyMode::kFused, gas::ExecutionMode::kSharded),
              sharded_flat, what + " sharded");
        }
      }
    }
  }
}

TEST(CompressedRun, PartitioningIdenticalAcrossRepresentations) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 9);
  const auto c = CompressedCsrGraph::from_graph(g);
  for (const auto strategy :
       {gas::PartitionStrategy::kHash, gas::PartitionStrategy::kGreedy,
        gas::PartitionStrategy::kEdgeLocal}) {
    const auto a = gas::Partitioning::create(g, 8, strategy, 11);
    const auto b = gas::Partitioning::create(c, 8, strategy, 11);
    ASSERT_EQ(a.num_machines(), b.num_machines());
    EXPECT_EQ(a.edges_per_machine(), b.edges_per_machine());
    for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(a.edge_machine(e), b.edge_machine(e)) << e;
    }
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      ASSERT_EQ(a.master(u), b.master(u)) << u;
      ASSERT_EQ(a.replicas(u).bits(), b.replicas(u).bits()) << u;
    }
  }
}

TEST(CompressedRun, ShardSlicesCompressAndMatchFlatRows) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 3);
  const auto c = CompressedCsrGraph::from_graph(g);
  const auto part =
      gas::Partitioning::create(g, 8, gas::PartitionStrategy::kGreedy, 3);
  const auto flat_topo = gas::ShardTopology::build(g, part);
  const auto comp_topo = gas::ShardTopology::build(c, part);
  ASSERT_EQ(flat_topo.shards().size(), comp_topo.shards().size());
  std::size_t flat_bytes = 0;
  std::size_t comp_bytes = 0;
  for (std::size_t m = 0; m < flat_topo.shards().size(); ++m) {
    const auto& fs = flat_topo.shards()[m];
    const auto& cs = comp_topo.shards()[m];
    EXPECT_FALSE(fs.compressed());
    EXPECT_TRUE(cs.compressed());
    ASSERT_EQ(fs.num_local(), cs.num_local());
    ASSERT_EQ(fs.num_local_edges(), cs.num_local_edges());
    for (VertexId l = 0; l < fs.num_local(); ++l) {
      ASSERT_TRUE(
          std::ranges::equal(fs.out_neighbors(l), cs.out_neighbors(l)))
          << m << ":" << l;
      ASSERT_TRUE(std::ranges::equal(fs.in_neighbors(l), cs.in_neighbors(l)))
          << m << ":" << l;
    }
    flat_bytes += fs.memory_bytes();
    comp_bytes += cs.memory_bytes();
  }
  // The point of compressed slices: the 8-machine structure peak drops.
  EXPECT_LT(comp_bytes, flat_bytes);
}

}  // namespace
}  // namespace snaple
