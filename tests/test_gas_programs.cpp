// Tests for the classic vertex programs on the GAS engine, each checked
// against an independent reference implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gas/programs/components.hpp"
#include "gas/programs/kcore.hpp"
#include "gas/programs/pagerank.hpp"
#include "gas/programs/sssp.hpp"
#include "gas/programs/triangles.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/gen/generators.hpp"

namespace snaple::gas {
namespace {

struct Ctx {
  CsrGraph graph;
  Partitioning part;
  ClusterConfig cluster;
};

Ctx make_ctx(CsrGraph g, std::size_t machines = 4) {
  auto part = Partitioning::create(g, machines, PartitionStrategy::kGreedy);
  return {std::move(g), std::move(part), ClusterConfig::type_i(machines)};
}

// ---------- PageRank ----------

TEST(PageRankProgram, MatchesDenseReference) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(80, 800, 5));
  PageRankOptions opts;
  opts.max_iterations = 60;
  opts.tolerance = 0.0;  // run all iterations
  const auto got = pagerank(ctx.graph, ctx.part, ctx.cluster, opts);

  const auto n = static_cast<std::size_t>(ctx.graph.num_vertices());
  std::vector<double> ref(n, 1.0 / static_cast<double>(n));
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    std::vector<double> next(n, 0.15 / static_cast<double>(n));
    for (VertexId u = 0; u < ctx.graph.num_vertices(); ++u) {
      const auto deg = ctx.graph.out_degree(u);
      if (deg == 0) continue;
      for (VertexId v : ctx.graph.out_neighbors(u)) {
        next[v] += 0.85 * ref[u] / static_cast<double>(deg);
      }
    }
    ref = std::move(next);
  }
  for (std::size_t u = 0; u < n; ++u) {
    EXPECT_NEAR(got.ranks[u], ref[u], 1e-9);
  }
}

TEST(PageRankProgram, ConvergesEarlyWithTolerance) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(100, 1000, 7));
  PageRankOptions opts;
  opts.max_iterations = 500;
  opts.tolerance = 1e-8;
  const auto result = pagerank(ctx.graph, ctx.part, ctx.cluster, opts);
  EXPECT_LT(result.iterations, 500u);
  EXPECT_GT(result.iterations, 3u);
}

TEST(PageRankProgram, RanksArePositiveishAndBounded) {
  const Ctx ctx = make_ctx(gen::barabasi_albert(500, 3, 9));
  const auto result = pagerank(ctx.graph, ctx.part, ctx.cluster);
  double total = 0.0;
  for (const double r : result.ranks) {
    EXPECT_GT(r, 0.0);
    EXPECT_LT(r, 1.0);
    total += r;
  }
  // Dangling mass leaks in this formulation (as in the reference), so the
  // sum is <= 1 but bounded away from 0.
  EXPECT_GT(total, 0.5);
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(PageRankProgram, HubOutranksLeaves) {
  // Star pointing INTO vertex 0: 0 must dominate.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 20; ++leaf) b.add_edge(leaf, 0);
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto result = pagerank(ctx.graph, ctx.part, ctx.cluster);
  for (VertexId leaf = 1; leaf <= 20; ++leaf) {
    EXPECT_GT(result.ranks[0], result.ranks[leaf]);
  }
}

TEST(PageRankProgram, RejectsBadDamping) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(20, 50, 3), 1);
  PageRankOptions opts;
  opts.damping = 1.5;
  EXPECT_THROW(pagerank(ctx.graph, ctx.part, ctx.cluster, opts),
               CheckError);
}

// ---------- connected components ----------

TEST(ComponentsProgram, MatchesUnionFindReference) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(300, 350, 11));  // sparse: many components
  const auto got = connected_components(ctx.graph, ctx.part, ctx.cluster);
  const auto ref = weakly_connected_components(ctx.graph);
  EXPECT_EQ(got.labels, ref);
}

TEST(ComponentsProgram, SingleComponentClique) {
  GraphBuilder b;
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) b.add_undirected_edge(i, j);
  }
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto got = connected_components(ctx.graph, ctx.part, ctx.cluster);
  for (const VertexId label : got.labels) EXPECT_EQ(label, 0u);
}

TEST(ComponentsProgram, DirectedEdgesConnectWeakly) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  b.add_edge(3, 2);
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto got = connected_components(ctx.graph, ctx.part, ctx.cluster);
  for (const VertexId label : got.labels) EXPECT_EQ(label, 0u);
}

TEST(ComponentsProgram, IterationsBoundedByDiameterish) {
  // A chain of 40 needs ~40 supersteps; a clique needs ~2.
  GraphBuilder chain(40);
  for (VertexId i = 0; i + 1 < 40; ++i) chain.add_undirected_edge(i, i + 1);
  const Ctx c1 = make_ctx(chain.build(), 2);
  const auto slow = connected_components(c1.graph, c1.part, c1.cluster);
  EXPECT_GT(slow.iterations, 10u);

  GraphBuilder clique;
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) clique.add_undirected_edge(i, j);
  }
  const Ctx c2 = make_ctx(clique.build(), 2);
  const auto fast = connected_components(c2.graph, c2.part, c2.cluster);
  EXPECT_LE(fast.iterations, 3u);
}

// ---------- SSSP ----------

TEST(SsspProgram, MatchesBfsReference) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(200, 800, 13));
  const auto got = shortest_paths(ctx.graph, 0, ctx.part, ctx.cluster);
  const auto ref = bfs_distances(ctx.graph, 0);
  for (VertexId u = 0; u < ctx.graph.num_vertices(); ++u) {
    if (ref[u] == std::numeric_limits<std::size_t>::max()) {
      EXPECT_EQ(got.distances[u], kInfiniteDistance);
    } else {
      EXPECT_EQ(got.distances[u], ref[u]);
    }
  }
}

TEST(SsspProgram, ChainDistances) {
  GraphBuilder b(5);
  for (VertexId i = 0; i + 1 < 5; ++i) b.add_edge(i, i + 1);
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto got = shortest_paths(ctx.graph, 0, ctx.part, ctx.cluster);
  EXPECT_EQ(got.distances,
            (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SsspProgram, RespectsEdgeDirection) {
  GraphBuilder b(3);
  b.add_edge(1, 0);  // only points AT the source
  b.add_edge(0, 2);
  const Ctx ctx = make_ctx(b.build(), 1);
  const auto got = shortest_paths(ctx.graph, 0, ctx.part, ctx.cluster);
  EXPECT_EQ(got.distances[1], kInfiniteDistance);
  EXPECT_EQ(got.distances[2], 1u);
}

TEST(SsspProgram, RejectsBadSource) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(10, 20, 3), 1);
  EXPECT_THROW(shortest_paths(ctx.graph, 99, ctx.part, ctx.cluster),
               CheckError);
}

// ---------- triangles ----------

TEST(TriangleProgram, MatchesBruteForceReference) {
  const Ctx ctx = make_ctx(gen::holme_kim(400, 4, 0.7, 17));
  const auto got = count_triangles(ctx.graph, ctx.part, ctx.cluster);
  EXPECT_EQ(got.total_triangles, count_triangles_reference(ctx.graph));
}

TEST(TriangleProgram, SingleTriangle) {
  GraphBuilder b;
  b.add_undirected_edge(0, 1);
  b.add_undirected_edge(1, 2);
  b.add_undirected_edge(0, 2);
  const Ctx ctx = make_ctx(b.build(), 1);
  const auto got = count_triangles(ctx.graph, ctx.part, ctx.cluster);
  EXPECT_EQ(got.total_triangles, 1u);
  EXPECT_EQ(got.triangles_per_vertex,
            (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(TriangleProgram, CliqueCount) {
  GraphBuilder b;
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) b.add_undirected_edge(i, j);
  }
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto got = count_triangles(ctx.graph, ctx.part, ctx.cluster);
  EXPECT_EQ(got.total_triangles, 20u);  // C(6,3)
  for (const auto c : got.triangles_per_vertex) EXPECT_EQ(c, 10u);  // C(5,2)
}

TEST(TriangleProgram, RejectsAsymmetricGraph) {
  GraphBuilder b(8);
  for (VertexId i = 0; i < 8; ++i) b.add_edge(i, (i + 1) % 8);
  const CsrGraph g = b.build();
  const auto part = Partitioning::create(g, 1, PartitionStrategy::kHash);
  EXPECT_THROW(
      count_triangles(g, part, ClusterConfig::single_machine(1)),
      CheckError);
}

// ---------- k-core ----------

TEST(KCoreProgram, CliqueSurvivesChainDoesNot) {
  // K5 plus a pendant chain: 3-core = the clique only.
  GraphBuilder b;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) b.add_undirected_edge(i, j);
  }
  b.add_undirected_edge(4, 5);
  b.add_undirected_edge(5, 6);
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto got = k_core(ctx.graph, 3, ctx.part, ctx.cluster);
  EXPECT_EQ(got.core_size, 5u);
  for (VertexId u = 0; u < 5; ++u) EXPECT_TRUE(got.in_core[u]);
  EXPECT_FALSE(got.in_core[5]);
  EXPECT_FALSE(got.in_core[6]);
}

TEST(KCoreProgram, ZeroCoreKeepsEverything) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(50, 100, 3), 2);
  const auto got = k_core(ctx.graph, 0, ctx.part, ctx.cluster);
  EXPECT_EQ(got.core_size, 50u);
}

TEST(KCoreProgram, HugeKEmptiesGraph) {
  const Ctx ctx = make_ctx(gen::erdos_renyi(50, 100, 3), 2);
  const auto got = k_core(ctx.graph, 1000, ctx.part, ctx.cluster);
  EXPECT_EQ(got.core_size, 0u);
}

TEST(KCoreProgram, PeelingCascades) {
  // A chain peels from the ends inward under k=2: everything dies, but
  // it takes several supersteps.
  GraphBuilder b(30);
  for (VertexId i = 0; i + 1 < 30; ++i) b.add_undirected_edge(i, i + 1);
  const Ctx ctx = make_ctx(b.build(), 2);
  const auto got = k_core(ctx.graph, 2, ctx.part, ctx.cluster);
  EXPECT_EQ(got.core_size, 0u);
  EXPECT_GT(got.iterations, 5u);
}

TEST(KCoreProgram, MonotoneInK) {
  const Ctx ctx = make_ctx(gen::make_dataset("gowalla", 0.02, 5), 2);
  std::size_t last = ctx.graph.num_vertices() + 1;
  for (const std::size_t k : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    const auto got = k_core(ctx.graph, k, ctx.part, ctx.cluster);
    EXPECT_LE(got.core_size, last);
    last = got.core_size;
  }
}

}  // namespace
}  // namespace snaple::gas
