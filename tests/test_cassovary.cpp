// Tests for the Cassovary-style random-walk engine (§5.9 comparator).
#include <gtest/gtest.h>

#include <algorithm>

#include "cassovary/random_walk.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"

namespace snaple::cassovary {
namespace {

TEST(RandomWalk, DeterministicForSeed) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  const RandomWalkEngine engine(g);
  WalkConfig cfg;
  cfg.walks = 50;
  const auto a = engine.predict_all(cfg);
  const auto b = engine.predict_all(cfg);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.total_steps, b.total_steps);
}

TEST(RandomWalk, DeterministicAcrossThreadCounts) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  ThreadPool one(1);
  ThreadPool many(8);
  WalkConfig cfg;
  cfg.walks = 30;
  const auto a = RandomWalkEngine(g, &one).predict_all(cfg);
  const auto b = RandomWalkEngine(g, &many).predict_all(cfg);
  EXPECT_EQ(a.predictions, b.predictions);
}

TEST(RandomWalk, VisitsStayWithinDepth) {
  // Chain 0 -> 1 -> 2 -> 3 -> 4: depth-2 walks from 0 never reach 3.
  GraphBuilder b(5);
  for (VertexId i = 0; i + 1 < 5; ++i) b.add_edge(i, i + 1);
  const CsrGraph g = b.build();
  const RandomWalkEngine engine(g);
  WalkConfig cfg;
  cfg.walks = 100;
  cfg.depth = 2;
  cfg.restart_at_sink = false;
  const auto counts = engine.visit_counts(0, cfg);
  for (const auto& [z, n] : counts) {
    EXPECT_LE(z, 2u);
    EXPECT_GT(n, 0u);
  }
}

TEST(RandomWalk, CountsAccumulateOverWalks) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  const CsrGraph g = b.build();
  const RandomWalkEngine engine(g);
  WalkConfig cfg;
  cfg.walks = 10;
  cfg.depth = 4;
  const auto counts = engine.visit_counts(0, cfg);
  // Deterministic two-cycle: every walk visits 1 twice (depth 4).
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].first, 1u);
  EXPECT_EQ(counts[0].second, 20u);
}

TEST(RandomWalk, PredictionsExcludeSelfAndNeighbors) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  const RandomWalkEngine engine(g);
  WalkConfig cfg;
  cfg.walks = 50;
  cfg.depth = 3;
  const auto result = engine.predict_all(cfg);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId z : result.predictions[u]) {
      EXPECT_NE(z, u);
      EXPECT_FALSE(g.has_edge(u, z));
    }
  }
}

TEST(RandomWalk, SinkRestartKeepsWalking) {
  // 0 -> 1 (sink). With restart, walks bounce back through 0 repeatedly.
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  const RandomWalkEngine engine(g);
  WalkConfig with_restart;
  with_restart.walks = 10;
  with_restart.depth = 6;
  with_restart.restart_at_sink = true;
  WalkConfig no_restart = with_restart;
  no_restart.restart_at_sink = false;
  const auto a = engine.visit_counts(0, with_restart);
  const auto b2 = engine.visit_counts(0, no_restart);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_GT(a[0].second, b2[0].second);
}

TEST(RandomWalk, IsolatedVertexGetsNoPredictions) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();  // vertex 2 isolated
  const RandomWalkEngine engine(g);
  WalkConfig cfg;
  const auto result = engine.predict_all(cfg);
  EXPECT_TRUE(result.predictions[2].empty());
}

TEST(RandomWalk, MoreWalksImproveRecall) {
  // Figure 11's main trend: recall grows with w (at fixed small depth).
  const CsrGraph g = gen::make_dataset("gowalla", 0.05, 7);
  const auto holdout = eval::remove_random_edges(g, 1, 9);
  const RandomWalkEngine engine(holdout.train);
  auto recall_for = [&](std::size_t walks) {
    WalkConfig cfg;
    cfg.walks = walks;
    cfg.depth = 3;
    return eval::recall(engine.predict_all(cfg).predictions,
                        holdout.hidden);
  };
  const double r10 = recall_for(10);
  const double r200 = recall_for(200);
  EXPECT_GT(r200, r10);
}

TEST(RandomWalk, TotalStepsScaleWithWalks) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 7);
  const RandomWalkEngine engine(g);
  WalkConfig cfg;
  cfg.walks = 10;
  cfg.depth = 3;
  const auto small = engine.predict_all(cfg).total_steps;
  cfg.walks = 100;
  const auto large = engine.predict_all(cfg).total_steps;
  EXPECT_GT(large, 5 * small);
}

}  // namespace
}  // namespace snaple::cassovary
