// Tests for combinators (Table 1), aggregators (Table 2), and the score
// registry (Table 3) — including the paper's worked Figure-3 example.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/aggregator.hpp"
#include "core/combinator.hpp"
#include "core/scoring.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace snaple {
namespace {

// ---------- combinators (Table 1) ----------

TEST(Combinator, Table1Definitions) {
  EXPECT_DOUBLE_EQ(Combinator::linear(0.9)(0.5, 0.1), 0.9 * 0.5 + 0.1 * 0.1);
  EXPECT_DOUBLE_EQ(Combinator::euclidean()(0.3, 0.4), 0.5);
  EXPECT_DOUBLE_EQ(Combinator::geometric()(0.25, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(Combinator::sum()(0.3, 0.4), 0.7);
  EXPECT_DOUBLE_EQ(Combinator::count()(0.3, 0.4), 1.0);
}

TEST(Combinator, LinearIsConvexCombination) {
  const auto c = Combinator::linear(0.5);
  EXPECT_DOUBLE_EQ(c(1.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(c(0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Combinator::linear(1.0)(0.7, 0.2), 0.7);
  EXPECT_DOUBLE_EQ(Combinator::linear(0.0)(0.7, 0.2), 0.2);
}

TEST(Combinator, RejectsAlphaOutOfRange) {
  EXPECT_THROW(static_cast<void>(Combinator::linear(-0.1)), CheckError);
  EXPECT_THROW(static_cast<void>(Combinator::linear(1.1)), CheckError);
}

TEST(Combinator, Names) {
  EXPECT_EQ(Combinator::linear(0.9).name(), "linear");
  EXPECT_EQ(Combinator::euclidean().name(), "eucl");
  EXPECT_EQ(Combinator::geometric().name(), "geom");
  EXPECT_EQ(Combinator::sum().name(), "sum");
  EXPECT_EQ(Combinator::count().name(), "count");
}

/// §3.1 requires every combinator to be monotonically increasing in both
/// arguments — sweep all of them over random similarity pairs.
class CombinatorMonotonicity : public ::testing::TestWithParam<Combinator> {
};

INSTANTIATE_TEST_SUITE_P(
    AllCombinators, CombinatorMonotonicity,
    ::testing::Values(Combinator::linear(0.9), Combinator::linear(0.5),
                      Combinator::linear(0.1), Combinator::euclidean(),
                      Combinator::geometric(), Combinator::sum(),
                      Combinator::count()),
    [](const auto& info) {
      return info.param.name() +
             std::to_string(static_cast<int>(info.param.alpha() * 10));
    });

TEST_P(CombinatorMonotonicity, NonDecreasingInBothArguments) {
  const Combinator& c = GetParam();
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    const double eps = 0.01 + rng.next_double() * 0.5;
    EXPECT_LE(c(a, b), c(a + eps, b) + 1e-12);
    EXPECT_LE(c(a, b), c(a, b + eps) + 1e-12);
  }
}

TEST_P(CombinatorMonotonicity, NonNegativeOnSimilarities) {
  const Combinator& c = GetParam();
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(c(rng.next_double(), rng.next_double()), 0.0);
  }
}

// ---------- aggregators (Table 2) ----------

TEST(Aggregator, Table2Definitions) {
  const std::vector<double> xs{0.2, 0.4, 0.9};
  const Aggregator sum(AggregatorKind::kSum);
  const Aggregator mean(AggregatorKind::kMean);
  const Aggregator geom(AggregatorKind::kGeom);
  EXPECT_NEAR(sum.aggregate(xs.begin(), xs.end()), 1.5, 1e-12);
  EXPECT_NEAR(mean.aggregate(xs.begin(), xs.end()), 0.5, 1e-12);
  EXPECT_NEAR(geom.aggregate(xs.begin(), xs.end()),
              std::pow(0.2 * 0.4 * 0.9, 1.0 / 3.0), 1e-12);
}

TEST(Aggregator, EmptyInputIsZero) {
  const std::vector<double> none;
  for (const auto kind : {AggregatorKind::kSum, AggregatorKind::kMean,
                          AggregatorKind::kGeom}) {
    EXPECT_DOUBLE_EQ(Aggregator(kind).aggregate(none.begin(), none.end()),
                     0.0);
  }
}

TEST(Aggregator, GeomZeroPathAnnihilates) {
  // "the Geom aggregator penalizes vertices ... connected through paths
  // with very low path-similarity" — a zero path forces a zero score.
  const std::vector<double> xs{0.9, 0.8, 0.0};
  EXPECT_DOUBLE_EQ(Aggregator(AggregatorKind::kGeom)
                       .aggregate(xs.begin(), xs.end()),
                   0.0);
}

/// eq. (10): the ⊕pre/⊕post decomposition must equal the direct formula
/// for any multiset of path similarities and any fold order.
class AggregatorDecomposition
    : public ::testing::TestWithParam<AggregatorKind> {};

INSTANTIATE_TEST_SUITE_P(All, AggregatorDecomposition,
                         ::testing::Values(AggregatorKind::kSum,
                                           AggregatorKind::kMean,
                                           AggregatorKind::kGeom),
                         [](const auto& info) {
                           return Aggregator(info.param).name();
                         });

TEST_P(AggregatorDecomposition, PrePostMatchesDirect) {
  const Aggregator agg(GetParam());
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(12);
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.next_double());

    double sigma = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) {
      sigma = agg.pre(sigma, xs[i]);
    }
    const double via_decomposition =
        agg.post(sigma, static_cast<std::uint32_t>(n));

    double direct = 0.0;
    if (GetParam() == AggregatorKind::kSum) {
      for (double x : xs) direct += x;
    } else if (GetParam() == AggregatorKind::kMean) {
      for (double x : xs) direct += x;
      direct /= static_cast<double>(n);
    } else {
      direct = 1.0;
      for (double x : xs) direct *= x;
      direct = std::pow(direct, 1.0 / static_cast<double>(n));
    }
    EXPECT_NEAR(via_decomposition, direct, 1e-9);
  }
}

TEST_P(AggregatorDecomposition, PreIsCommutative) {
  const Aggregator agg(GetParam());
  Rng rng(19);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    EXPECT_DOUBLE_EQ(agg.pre(a, b), agg.pre(b, a));
  }
}

// ---------- Figure 3: the paper's worked example ----------
// Path-similarities with the linear combinator (α = 0.5):
//   e: {0.3, 0};  f: {0.35, 0.25};  g: {0.25, 0.3, 0.2}
// Expected (table in Figure 3, 2 decimals):
//   linearSum : e=0.3,  f=0.6,  g=0.75  (g wins)
//   linearMean: e=0.15, f=0.3,  g=0.25  (f wins)
//   linearGeom: e=0,    f≈0.28, g≈0.24  (f wins)
TEST(Figure3, WorkedExampleReproduces) {
  const std::vector<double> e_paths{0.3, 0.0};
  const std::vector<double> f_paths{0.35, 0.25};
  const std::vector<double> g_paths{0.25, 0.3, 0.2};

  const Aggregator sum(AggregatorKind::kSum);
  EXPECT_NEAR(sum.aggregate(e_paths.begin(), e_paths.end()), 0.3, 1e-9);
  EXPECT_NEAR(sum.aggregate(f_paths.begin(), f_paths.end()), 0.6, 1e-9);
  EXPECT_NEAR(sum.aggregate(g_paths.begin(), g_paths.end()), 0.75, 1e-9);

  const Aggregator mean(AggregatorKind::kMean);
  EXPECT_NEAR(mean.aggregate(e_paths.begin(), e_paths.end()), 0.15, 1e-9);
  EXPECT_NEAR(mean.aggregate(f_paths.begin(), f_paths.end()), 0.3, 1e-9);
  EXPECT_NEAR(mean.aggregate(g_paths.begin(), g_paths.end()), 0.25, 1e-9);

  const Aggregator geom(AggregatorKind::kGeom);
  EXPECT_NEAR(geom.aggregate(e_paths.begin(), e_paths.end()), 0.0, 1e-9);
  EXPECT_NEAR(geom.aggregate(f_paths.begin(), f_paths.end()), 0.2958,
              1e-3);  // paper rounds to 0.28/0.29 territory
  EXPECT_NEAR(geom.aggregate(g_paths.begin(), g_paths.end()), 0.2466, 1e-3);

  // The qualitative claim: Sum ranks g first, Mean and Geom rank f first.
  EXPECT_GT(sum.aggregate(g_paths.begin(), g_paths.end()),
            sum.aggregate(f_paths.begin(), f_paths.end()));
  EXPECT_GT(mean.aggregate(f_paths.begin(), f_paths.end()),
            mean.aggregate(g_paths.begin(), g_paths.end()));
  EXPECT_GT(geom.aggregate(f_paths.begin(), f_paths.end()),
            geom.aggregate(g_paths.begin(), g_paths.end()));
}

// ---------- score registry (Table 3) ----------

TEST(ScoreRegistry, ElevenRows) {
  EXPECT_EQ(all_score_kinds().size(), 11u);
}

TEST(ScoreRegistry, NamesRoundTrip) {
  for (const ScoreKind kind : all_score_kinds()) {
    EXPECT_EQ(parse_score_kind(score_name(kind)), kind);
  }
  EXPECT_THROW(static_cast<void>(parse_score_kind("definitelyNotAScore")),
               CheckError);
}

TEST(ScoreRegistry, Table3Composition) {
  const auto linear_sum = score_config(ScoreKind::kLinearSum, 0.9);
  EXPECT_EQ(linear_sum.metric, SimilarityMetric::kJaccard);
  EXPECT_EQ(linear_sum.combinator.kind(), CombinatorKind::kLinear);
  EXPECT_DOUBLE_EQ(linear_sum.combinator.alpha(), 0.9);
  EXPECT_EQ(linear_sum.aggregator.kind(), AggregatorKind::kSum);

  const auto ppr = score_config(ScoreKind::kPpr);
  EXPECT_EQ(ppr.metric, SimilarityMetric::kInverseDegree);
  EXPECT_EQ(ppr.combinator.kind(), CombinatorKind::kSum);
  EXPECT_EQ(ppr.aggregator.kind(), AggregatorKind::kSum);

  const auto counter = score_config(ScoreKind::kCounter);
  EXPECT_EQ(counter.metric, SimilarityMetric::kConstant);
  EXPECT_EQ(counter.combinator.kind(), CombinatorKind::kCount);

  const auto geom_geom = score_config(ScoreKind::kGeomGeom);
  EXPECT_EQ(geom_geom.combinator.kind(), CombinatorKind::kGeometric);
  EXPECT_EQ(geom_geom.aggregator.kind(), AggregatorKind::kGeom);
}

TEST(ScoreRegistry, AggregatorGrouping) {
  // Figure 8 groups scores by aggregator: 5 Sum rows (incl. PPR+counter),
  // 3 Mean rows, 3 Geom rows.
  EXPECT_EQ(score_kinds_with_aggregator(AggregatorKind::kSum).size(), 5u);
  EXPECT_EQ(score_kinds_with_aggregator(AggregatorKind::kMean).size(), 3u);
  EXPECT_EQ(score_kinds_with_aggregator(AggregatorKind::kGeom).size(), 3u);
}

TEST(ScoreRegistry, AlphaPropagates) {
  const auto cfg = score_config(ScoreKind::kLinearMean, 0.42);
  EXPECT_DOUBLE_EQ(cfg.combinator.alpha(), 0.42);
}

}  // namespace
}  // namespace snaple
