// Tests for true sharded execution: shard topology construction, the
// explicit message-exchange buffers, and the flat-vs-sharded equivalence
// property — every program must produce bit-identical vertex data and
// identical accounting in both execution modes, for any partitioning.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "baseline/gas_baseline.hpp"
#include "core/snaple_program.hpp"
#include "gas/engine.hpp"
#include "gas/exchange.hpp"
#include "gas/programs/components.hpp"
#include "gas/programs/kcore.hpp"
#include "gas/programs/pagerank.hpp"
#include "gas/programs/sssp.hpp"
#include "gas/programs/triangles.hpp"
#include "gas/shard.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace snaple::gas {
namespace {

// ---------------------------------------------------------------------
// Shard topology structure
// ---------------------------------------------------------------------

TEST(ShardTopology, EdgesPartitionExactlyAcrossShards) {
  const CsrGraph g = gen::erdos_renyi(300, 2500, 7);
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kGreedy}) {
    const auto p = Partitioning::create(g, 8, strategy);
    const auto topo = ShardTopology::build(g, p);
    ASSERT_EQ(topo.num_machines(), 8u);

    EdgeIndex total = 0;
    std::vector<std::size_t> seen(g.num_edges(), 0);
    for (const Shard& sh : topo.shards()) {
      total += sh.num_local_edges();
      EXPECT_EQ(sh.num_local_edges(),
                p.edges_per_machine()[sh.machine()]);
      // Every local edge maps back to a global edge owned by this shard.
      for (VertexId l = 0; l < sh.num_local(); ++l) {
        const VertexId u = sh.global_id(l);
        for (const VertexId lt : sh.out_neighbors(l)) {
          const VertexId v = sh.global_id(lt);
          const EdgeIndex e = g.edge_index(u, v);
          ASSERT_LT(e, g.num_edges());
          EXPECT_EQ(p.edge_machine(e), sh.machine());
          ++seen[e];
        }
      }
    }
    EXPECT_EQ(total, g.num_edges());
    // ... and each global edge lives in exactly one shard.
    for (EdgeIndex e = 0; e < g.num_edges(); ++e) EXPECT_EQ(seen[e], 1u);
  }
}

TEST(ShardTopology, ReplicasAndMastersMatchPartitioning) {
  const CsrGraph g = gen::erdos_renyi(200, 1500, 3);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kGreedy);
  const auto topo = ShardTopology::build(g, p);

  std::vector<int> mastered(g.num_vertices(), 0);
  for (const Shard& sh : topo.shards()) {
    const MachineId m = sh.machine();
    // Local vertex set == replicas containing m, ascending.
    VertexId l = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (!p.replicas(u).contains(m)) continue;
      ASSERT_LT(l, sh.num_local());
      EXPECT_EQ(sh.global_id(l), u);
      EXPECT_EQ(sh.local_id(u), l);
      EXPECT_EQ(sh.owns(l), p.master(u) == m);
      if (sh.owns(l)) ++mastered[u];
      ++l;
    }
    EXPECT_EQ(l, sh.num_local());
    EXPECT_EQ(sh.num_masters() + sh.num_mirrors(), sh.num_local());
    EXPECT_GT(sh.memory_bytes(), 0u);
  }
  // Every vertex is mastered on exactly one shard.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(mastered[u], 1) << "vertex " << u;
  }
}

TEST(ShardTopology, LocalAdjacencyMatchesFilteredGlobal) {
  const CsrGraph g = gen::erdos_renyi(150, 1200, 11);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash);
  const auto topo = ShardTopology::build(g, p);
  for (const Shard& sh : topo.shards()) {
    const MachineId m = sh.machine();
    for (VertexId l = 0; l < sh.num_local(); ++l) {
      const VertexId u = sh.global_id(l);
      // Out-neighbors: the global list filtered to this machine's edges,
      // order preserved.
      std::vector<VertexId> expect_out;
      const EdgeIndex base = g.out_offset(u);
      const auto nbrs = g.out_neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (p.edge_machine(base + i) == m) expect_out.push_back(nbrs[i]);
      }
      std::vector<VertexId> got_out;
      for (const VertexId lt : sh.out_neighbors(l)) {
        got_out.push_back(sh.global_id(lt));
      }
      EXPECT_EQ(got_out, expect_out) << "vertex " << u;

      // In-neighbors likewise (ascending global source order).
      std::vector<VertexId> expect_in;
      for (const VertexId v : g.in_neighbors(u)) {
        if (p.edge_machine(g.edge_index(v, u)) == m) expect_in.push_back(v);
      }
      std::vector<VertexId> got_in;
      for (const VertexId ls : sh.in_neighbors(l)) {
        got_in.push_back(sh.global_id(ls));
      }
      EXPECT_EQ(got_in, expect_in) << "vertex " << u;
    }
  }
}

TEST(ShardTopology, SingleMachineShardIsTheWholeGraph) {
  const CsrGraph g = gen::erdos_renyi(100, 700, 5);
  const auto p = Partitioning::create(g, 1, PartitionStrategy::kGreedy);
  const auto topo = ShardTopology::build(g, p);
  ASSERT_EQ(topo.num_machines(), 1u);
  const Shard& sh = topo.shard(0);
  EXPECT_EQ(sh.num_local(), g.num_vertices());
  EXPECT_EQ(sh.num_masters(), g.num_vertices());
  EXPECT_EQ(sh.num_mirrors(), 0u);
  EXPECT_EQ(sh.num_local_edges(), g.num_edges());
}

TEST(ShardTopology, IsolatedVerticesLandOnTheirMasterShard) {
  GraphBuilder b(12);
  b.add_edge(0, 1);  // vertices 2..11 isolated
  const CsrGraph g = b.build();
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kGreedy);
  const auto topo = ShardTopology::build(g, p);
  std::size_t replicas_total = 0;
  for (const Shard& sh : topo.shards()) replicas_total += sh.num_local();
  // Each isolated vertex has exactly one replica (its master).
  std::size_t expected = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    expected += static_cast<std::size_t>(p.replicas(u).count());
  }
  EXPECT_EQ(replicas_total, expected);
  for (VertexId u = 2; u < 12; ++u) {
    const Shard& sh = topo.shard(p.master(u));
    const VertexId l = sh.local_id(u);
    EXPECT_TRUE(sh.owns(l));
    EXPECT_TRUE(sh.out_neighbors(l).empty());
    EXPECT_TRUE(sh.in_neighbors(l).empty());
  }
}

// ---------------------------------------------------------------------
// Message buffers
// ---------------------------------------------------------------------

TEST(Exchange, WireBytesAreHeaderPlusPayload) {
  MessageBuffer<std::vector<VertexId>> buf;
  EXPECT_EQ(buf.wire_bytes(), 0u);
  buf.push(3, 12, 3, std::vector<VertexId>{1, 2, 3});
  buf.push(9, 4, 1, std::vector<VertexId>{7});
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.wire_bytes(), 2 * kMessageHeaderBytes + 12 + 4);
  std::vector<VertexId> order;
  for (const auto& m : buf) order.push_back(m.vertex);
  EXPECT_EQ(order, (std::vector<VertexId>{3, 9}));
  buf.clear();
  EXPECT_EQ(buf.wire_bytes(), 0u);
}

TEST(Exchange, GridMeasuresOnlyCrossMachineTraffic) {
  ExchangeGrid<int> grid(3);
  grid.outbox(0, 1).push(5, 8, 1, 42);
  grid.outbox(2, 2).push(6, 100, 1, 7);  // diagonal: local, free
  EXPECT_EQ(grid.wire_bytes(), kMessageHeaderBytes + 8);
  EXPECT_EQ(grid.message_count(), 1u);
  // inbox(d, s) aliases outbox(s, d).
  EXPECT_EQ(grid.inbox(1, 0).size(), 1u);
  EXPECT_EQ(grid.inbox(1, 0)[0].payload, 42);
}

// ---------------------------------------------------------------------
// Flat vs sharded equivalence (the acceptance property)
// ---------------------------------------------------------------------

template <typename T>
void expect_bit_identical(const std::vector<T>& flat,
                          const std::vector<T>& sharded,
                          const char* what) {
  ASSERT_EQ(flat.size(), sharded.size()) << what;
  if constexpr (std::is_trivially_copyable_v<T>) {
    EXPECT_EQ(std::memcmp(flat.data(), sharded.data(),
                          flat.size() * sizeof(T)),
              0)
        << what;
  } else {
    EXPECT_EQ(flat, sharded) << what;
  }
}

void expect_reports_equal(const EngineReport& flat,
                          const EngineReport& sharded) {
  ASSERT_EQ(flat.steps.size(), sharded.steps.size());
  for (std::size_t i = 0; i < flat.steps.size(); ++i) {
    const StepStats& a = flat.steps[i];
    const StepStats& b = sharded.steps[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.net_bytes, b.net_bytes) << a.name;
    EXPECT_EQ(a.messages, b.messages) << a.name;
    EXPECT_EQ(a.gather_calls, b.gather_calls) << a.name;
    EXPECT_EQ(a.contributions, b.contributions) << a.name;
    EXPECT_EQ(a.accumulator_bytes_peak, b.accumulator_bytes_peak) << a.name;
    EXPECT_EQ(a.vertex_data_bytes_peak, b.vertex_data_bytes_peak) << a.name;
  }
}

struct Config {
  std::uint64_t seed;
  PartitionStrategy strategy;
  std::size_t machines;
};

std::vector<Config> equivalence_matrix() {
  std::vector<Config> configs;
  for (const std::uint64_t seed : {3ull, 17ull, 99ull}) {
    for (const auto strategy :
         {PartitionStrategy::kHash, PartitionStrategy::kGreedy}) {
      for (const std::size_t machines : {1ul, 2ul, 8ul}) {
        configs.push_back({seed, strategy, machines});
      }
    }
  }
  return configs;
}

std::string describe(const Config& c) {
  return "seed=" + std::to_string(c.seed) + " strategy=" +
         (c.strategy == PartitionStrategy::kHash ? "hash" : "greedy") +
         " machines=" + std::to_string(c.machines);
}

TEST(FlatShardedEquivalence, PageRank) {
  for (const Config& c : equivalence_matrix()) {
    SCOPED_TRACE(describe(c));
    const CsrGraph g = gen::erdos_renyi(250, 2000, c.seed);
    const auto p = Partitioning::create(g, c.machines, c.strategy, c.seed);
    const auto cluster = ClusterConfig::type_i(c.machines);
    PageRankOptions opt;
    opt.max_iterations = 8;
    const auto flat = pagerank(g, p, cluster, opt, nullptr,
                               ExecutionMode::kFlat);
    const auto sharded = pagerank(g, p, cluster, opt, nullptr,
                                  ExecutionMode::kSharded);
    EXPECT_EQ(flat.iterations, sharded.iterations);
    expect_bit_identical(flat.ranks, sharded.ranks, "ranks");
    expect_reports_equal(flat.report, sharded.report);
  }
}

TEST(FlatShardedEquivalence, ConnectedComponents) {
  for (const Config& c : equivalence_matrix()) {
    SCOPED_TRACE(describe(c));
    const CsrGraph g = gen::erdos_renyi(250, 1200, c.seed);
    const auto p = Partitioning::create(g, c.machines, c.strategy, c.seed);
    const auto cluster = ClusterConfig::type_i(c.machines);
    const auto flat = connected_components(g, p, cluster, nullptr,
                                           ExecutionMode::kFlat);
    const auto sharded = connected_components(g, p, cluster, nullptr,
                                              ExecutionMode::kSharded);
    EXPECT_EQ(flat.iterations, sharded.iterations);
    expect_bit_identical(flat.labels, sharded.labels, "labels");
    expect_reports_equal(flat.report, sharded.report);
  }
}

TEST(FlatShardedEquivalence, Sssp) {
  for (const Config& c : equivalence_matrix()) {
    SCOPED_TRACE(describe(c));
    const CsrGraph g = gen::erdos_renyi(250, 1800, c.seed);
    const auto p = Partitioning::create(g, c.machines, c.strategy, c.seed);
    const auto cluster = ClusterConfig::type_i(c.machines);
    const auto flat = shortest_paths(g, 0, p, cluster, nullptr,
                                     ExecutionMode::kFlat);
    const auto sharded = shortest_paths(g, 0, p, cluster, nullptr,
                                        ExecutionMode::kSharded);
    EXPECT_EQ(flat.iterations, sharded.iterations);
    expect_bit_identical(flat.distances, sharded.distances, "distances");
    expect_reports_equal(flat.report, sharded.report);
  }
}

TEST(FlatShardedEquivalence, KCore) {
  for (const Config& c : equivalence_matrix()) {
    SCOPED_TRACE(describe(c));
    const CsrGraph g = gen::barabasi_albert(250, 4, c.seed);
    const auto p = Partitioning::create(g, c.machines, c.strategy, c.seed);
    const auto cluster = ClusterConfig::type_i(c.machines);
    const auto flat =
        k_core(g, 3, p, cluster, nullptr, ExecutionMode::kFlat);
    const auto sharded =
        k_core(g, 3, p, cluster, nullptr, ExecutionMode::kSharded);
    EXPECT_EQ(flat.iterations, sharded.iterations);
    EXPECT_EQ(flat.core_size, sharded.core_size);
    EXPECT_EQ(flat.in_core, sharded.in_core);
    expect_reports_equal(flat.report, sharded.report);
  }
}

TEST(FlatShardedEquivalence, Triangles) {
  for (const Config& c : equivalence_matrix()) {
    SCOPED_TRACE(describe(c));
    const CsrGraph g = gen::barabasi_albert(200, 3, c.seed);
    const auto p = Partitioning::create(g, c.machines, c.strategy, c.seed);
    const auto cluster = ClusterConfig::type_i(c.machines);
    const auto flat =
        count_triangles(g, p, cluster, nullptr, ExecutionMode::kFlat);
    const auto sharded =
        count_triangles(g, p, cluster, nullptr, ExecutionMode::kSharded);
    EXPECT_EQ(flat.total_triangles, sharded.total_triangles);
    expect_bit_identical(flat.triangles_per_vertex,
                         sharded.triangles_per_vertex, "triangles");
    expect_reports_equal(flat.report, sharded.report);
  }
}

void expect_snaple_equal(const SnapleResult& flat,
                         const SnapleResult& sharded) {
  ASSERT_EQ(flat.predictions.size(), sharded.predictions.size());
  EXPECT_EQ(flat.predictions, sharded.predictions);
  ASSERT_EQ(flat.scored.size(), sharded.scored.size());
  for (std::size_t u = 0; u < flat.scored.size(); ++u) {
    ASSERT_EQ(flat.scored[u].size(), sharded.scored[u].size());
    for (std::size_t i = 0; i < flat.scored[u].size(); ++i) {
      EXPECT_EQ(flat.scored[u][i].first, sharded.scored[u][i].first);
      // Bit-level float comparison: the merge order is pinned, so even
      // the accumulated similarity scores must agree exactly.
      EXPECT_EQ(std::memcmp(&flat.scored[u][i].second,
                            &sharded.scored[u][i].second, sizeof(float)),
                0)
          << "vertex " << u;
    }
  }
  expect_reports_equal(flat.report, sharded.report);
}

TEST(FlatShardedEquivalence, RunSnaple) {
  for (const Config& c : equivalence_matrix()) {
    SCOPED_TRACE(describe(c));
    const CsrGraph g = gen::erdos_renyi(200, 1600, c.seed);
    const auto p = Partitioning::create(g, c.machines, c.strategy, c.seed);
    const auto cluster = ClusterConfig::type_i(c.machines);
    snaple::SnapleConfig cfg;
    cfg.k_local = 10;
    cfg.thr_gamma = 50;
    cfg.seed = c.seed;
    const auto flat =
        run_snaple(g, cfg, p, cluster, nullptr, ApplyMode::kFused,
                   ExecutionMode::kFlat);
    const auto sharded =
        run_snaple(g, cfg, p, cluster, nullptr, ApplyMode::kFused,
                   ExecutionMode::kSharded);
    expect_snaple_equal(flat, sharded);
  }
}

TEST(FlatShardedEquivalence, RunSnapleTwoPhaseAndKHops3) {
  const CsrGraph g = gen::erdos_renyi(150, 1100, 23);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kGreedy, 23);
  const auto cluster = ClusterConfig::type_i(4);
  snaple::SnapleConfig cfg;
  cfg.k_local = 8;
  cfg.k_hops = 3;
  const auto flat = run_snaple(g, cfg, p, cluster, nullptr,
                               ApplyMode::kTwoPhase, ExecutionMode::kFlat);
  const auto sharded =
      run_snaple(g, cfg, p, cluster, nullptr, ApplyMode::kTwoPhase,
                 ExecutionMode::kSharded);
  expect_snaple_equal(flat, sharded);
}

TEST(FlatShardedEquivalence, BaselineProgram) {
  const CsrGraph g = gen::erdos_renyi(120, 800, 31);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash, 31);
  const auto cluster = ClusterConfig::type_i(4);
  baseline::BaselineConfig cfg;
  const auto flat = baseline::run_baseline(g, cfg, p, cluster, nullptr,
                                           ExecutionMode::kFlat);
  const auto sharded = baseline::run_baseline(g, cfg, p, cluster, nullptr,
                                              ExecutionMode::kSharded);
  EXPECT_EQ(flat.predictions, sharded.predictions);
  expect_reports_equal(flat.report, sharded.report);
}

// ---------------------------------------------------------------------
// Sharded engine behavior
// ---------------------------------------------------------------------

struct Scalar {
  double value = 0.0;
};

struct SumAcc {
  double total = 0.0;
  void clear() { total = 0.0; }
  void merge(SumAcc&& other) { total += other.total; }
};

// The flat engine's hand-verified 44-byte scenario, replayed sharded:
// the measured buffers must carry exactly the bytes the tally predicted
// (see Engine.ByteAccountingMatchesHandComputation in test_engine.cpp).
TEST(ShardedEngine, MeasuredBuffersMatchHandComputedBytes) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const CsrGraph g = b.build();
  const auto p = Partitioning::from_edge_assignment(g, 2, {0, 1});
  Engine<Scalar> engine(
      g, p, ClusterConfig::type_i(2),
      [](const Scalar&) { return std::size_t{4}; }, nullptr,
      ExecutionMode::kSharded);
  StepOptions opt{.name = "hand", .dir = EdgeDir::kOut};
  const auto stats = engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
        acc.total += 1.0;
        return std::size_t{8};
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  EXPECT_EQ(stats.net_bytes, 44u);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.gather_calls, 2u);
  EXPECT_EQ(stats.contributions, 2u);
  EXPECT_DOUBLE_EQ(engine.data()[0].value, 2.0);
}

TEST(ShardedEngine, MirrorsObserveAppliedValuesNextStep) {
  // Step 1 writes each vertex's id; step 2 gathers neighbor values —
  // which reach remote shards only through the sync buffers.
  const CsrGraph g = gen::erdos_renyi(100, 800, 13);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash, 13);
  Engine<Scalar> engine(
      g, p, ClusterConfig::type_i(4),
      [](const Scalar&) { return sizeof(double); }, nullptr,
      ExecutionMode::kSharded);
  StepOptions init{.name = "init", .dir = EdgeDir::kOut};
  engine.step<SumAcc>(
      init,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc&) {
        return std::size_t{0};
      },
      [](VertexId u, Scalar& du, SumAcc&, std::size_t) {
        du.value = static_cast<double>(u);
      });
  StepOptions sum{.name = "sum", .dir = EdgeDir::kOut};
  engine.step<SumAcc>(
      sum,
      [](VertexId, VertexId, const Scalar&, const Scalar& dv, SumAcc& acc) {
        acc.total += dv.value;
        return sizeof(double);
      },
      [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
        du.value = acc.total;
      });
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    double expect = 0.0;
    for (const VertexId v : g.out_neighbors(u)) {
      expect += static_cast<double>(v);
    }
    EXPECT_DOUBLE_EQ(engine.data()[u].value, expect) << "vertex " << u;
  }
}

TEST(ShardedEngine, HostDataRoundTripsThroughShards) {
  // Mutating data() between sharded steps re-scatters to the shards.
  const CsrGraph g = gen::erdos_renyi(60, 300, 5);
  const auto p = Partitioning::create(g, 2, PartitionStrategy::kGreedy);
  Engine<Scalar> engine(
      g, p, ClusterConfig::type_i(2),
      [](const Scalar&) { return sizeof(double); }, nullptr,
      ExecutionMode::kSharded);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    engine.data()[u].value = 100.0 + u;
  }
  StepOptions opt{.name = "echo", .dir = EdgeDir::kOut};
  engine.step<SumAcc>(
      opt,
      [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc&) {
        return std::size_t{0};
      },
      [](VertexId, Scalar& du, SumAcc&, std::size_t) { du.value += 1.0; });
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_DOUBLE_EQ(engine.data()[u].value, 101.0 + u);
  }
}

TEST(ShardedEngine, MemoryBudgetTriggersResourceExhausted) {
  const CsrGraph g = gen::erdos_renyi(500, 8000, 33);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kHash);
  Engine<Scalar> engine(
      g, p, ClusterConfig::type_i(4, 100),
      [](const Scalar&) { return sizeof(double); }, nullptr,
      ExecutionMode::kSharded);
  StepOptions opt{.name = "boom", .dir = EdgeDir::kOut};
  EXPECT_THROW(
      engine.step<SumAcc>(
          opt,
          [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
            acc.total += 1.0;
            return sizeof(double);
          },
          [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
            du.value = acc.total;
          }),
      ResourceExhausted);
}

TEST(ShardedEngine, DeterministicAcrossPoolSizes) {
  const CsrGraph g = gen::erdos_renyi(200, 1600, 41);
  const auto p = Partitioning::create(g, 8, PartitionStrategy::kGreedy, 41);
  const auto cluster = ClusterConfig::type_i(8);
  snaple::SnapleConfig cfg;
  cfg.k_local = 10;
  ThreadPool one(1);
  ThreadPool many(4);
  const auto a = run_snaple(g, cfg, p, cluster, &one, ApplyMode::kFused,
                            ExecutionMode::kSharded);
  const auto b = run_snaple(g, cfg, p, cluster, &many, ApplyMode::kFused,
                            ExecutionMode::kSharded);
  expect_snaple_equal(a, b);
}

TEST(Engine, ExplicitGrainMatchesAutoGrainResults) {
  const CsrGraph g = gen::erdos_renyi(300, 2400, 9);
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kGreedy);
  std::vector<double> values[2];
  std::size_t net[2];
  int i = 0;
  for (const std::size_t grain : {0ul, 7ul}) {
    Engine<Scalar> engine(g, p, ClusterConfig::type_i(4),
                          [](const Scalar&) { return sizeof(double); });
    StepOptions opt{.name = "deg", .dir = EdgeDir::kOut, .grain = grain};
    const auto stats = engine.step<SumAcc>(
        opt,
        [](VertexId, VertexId, const Scalar&, const Scalar&, SumAcc& acc) {
          acc.total += 1.0;
          return sizeof(double);
        },
        [](VertexId, Scalar& du, SumAcc& acc, std::size_t) {
          du.value = acc.total;
        });
    for (const auto& d : engine.data()) values[i].push_back(d.value);
    net[i] = stats.net_bytes;
    ++i;
  }
  EXPECT_EQ(values[0], values[1]);
  EXPECT_EQ(net[0], net[1]);
}

}  // namespace
}  // namespace snaple::gas
