// Serving API: PredictorModel (fit artifact + binary format) and
// QueryEngine (on-demand single-vertex prediction).
//
// The load-bearing property: QueryEngine::topk(u) is BIT-identical —
// predictions and float scores — to the batch path run_snaple for every
// vertex, across seeds, flat/sharded-built models and K=2/K=3. Floats
// make this strict: the query replays step 3's machine-grouped ⊕pre fold
// exactly (model.hpp), so EXPECT_EQ on (id, score) pairs is the right
// assertion, not EXPECT_NEAR.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "core/dynamic_model.hpp"
#include "core/model.hpp"
#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "core/snaple_program.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/io.hpp"

namespace snaple {
namespace {

using Scored = std::vector<std::pair<VertexId, float>>;

struct BatchAndModel {
  SnapleResult batch;
  std::shared_ptr<const PredictorModel> model;
};

/// Runs the batch primitive and fits a model on the SAME partitioning /
/// cluster / execution mode, so the two sides see identical float folds.
BatchAndModel batch_and_model(const CsrGraph& g, const SnapleConfig& cfg,
                              std::size_t machines,
                              gas::ExecutionMode exec) {
  const auto part = gas::Partitioning::create(
      g, machines, gas::PartitionStrategy::kGreedy, cfg.seed);
  const auto cluster = machines == 1 ? gas::ClusterConfig::single_machine(2)
                                     : gas::ClusterConfig::type_i(machines);
  BatchAndModel out;
  out.batch = run_snaple(g, cfg, part, cluster, nullptr,
                         gas::ApplyMode::kFused, exec);
  const LinkPredictor predictor(cfg, cluster,
                                gas::PartitionStrategy::kGreedy, exec);
  out.model = std::make_shared<const PredictorModel>(
      predictor.fit_with_partitioning(g, part));
  return out;
}

// ---------- query ≡ batch equivalence (the tentpole property) ----------

TEST(QueryEquivalence, BitIdenticalToBatchAcrossSeedsModesAndK) {
  for (const std::uint64_t seed : {3ull, 5ull, 11ull}) {
    const CsrGraph g = gen::make_dataset("gowalla", 0.02, seed);
    for (const std::size_t k_hops : {2ul, 3ul}) {
      for (const auto exec :
           {gas::ExecutionMode::kFlat, gas::ExecutionMode::kSharded}) {
        const std::size_t machines =
            exec == gas::ExecutionMode::kSharded ? 4 : 1;
        SnapleConfig cfg;
        cfg.k_local = 10;
        cfg.k_hops = k_hops;
        cfg.seed = seed;
        const auto [batch, model] = batch_and_model(g, cfg, machines, exec);
        const QueryEngine server(model);
        for (VertexId u = 0; u < g.num_vertices(); ++u) {
          const Scored got = server.topk(u);
          ASSERT_EQ(got, batch.scored[u])
              << "seed=" << seed << " K=" << k_hops << " machines="
              << machines << " u=" << u;
        }
      }
    }
  }
}

TEST(QueryEquivalence, MultiMachineFlatFoldReplayed) {
  // Flat multi-machine accounting groups step-3 folds by edge machine;
  // the model's per-edge tags must replay that grouping (float sums are
  // order-sensitive, so a wrong grouping shows up as score mismatches).
  const CsrGraph g = gen::make_dataset("livejournal", 0.02, 7);
  SnapleConfig cfg;
  cfg.k_local = 20;
  const auto [batch, model] =
      batch_and_model(g, cfg, 8, gas::ExecutionMode::kFlat);
  EXPECT_EQ(model->num_machines(), 8u);
  const QueryEngine server(model);
  const auto all = server.topk_all();
  ASSERT_EQ(all.size(), batch.scored.size());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ASSERT_EQ(all[u], batch.scored[u]) << "u=" << u;
  }
}

TEST(QueryEquivalence, PredictIsFitPlusServe) {
  // The sugar path: LinkPredictor::predict == run_snaple predictions.
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 9);
  SnapleConfig cfg;
  const auto part = gas::Partitioning::create(
      g, 4, gas::PartitionStrategy::kGreedy, cfg.seed);
  const auto cluster = gas::ClusterConfig::type_i(4);
  const auto batch = run_snaple(g, cfg, part, cluster);
  const LinkPredictor predictor(cfg, cluster);
  const auto run = predictor.predict_with_partitioning(g, part);
  EXPECT_EQ(run.predictions, batch.predictions);
  // Report: the fit steps plus the serve pass (no network bytes there).
  ASSERT_EQ(run.report.steps.size(), 3u);
  EXPECT_EQ(run.report.steps.back().name, "3:recommend (serve)");
  EXPECT_EQ(run.report.steps.back().net_bytes, 0u);
  EXPECT_GT(run.network_bytes, 0u);
}

TEST(QueryEngineApi, TopkBatchAndArbitraryK) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg);
  const auto model =
      std::make_shared<const PredictorModel>(predictor.fit(g));
  const QueryEngine server(model);

  const std::vector<VertexId> users = {0, 3, 3, 7};
  const auto batch = server.topk_batch(users);
  ASSERT_EQ(batch.size(), users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(batch[i], server.topk(users[i]));
  }

  // k=1 is a prefix of the configured k; a huge k returns the whole
  // candidate tail without truncation artifacts.
  for (const VertexId u : users) {
    const auto five = server.topk(u);
    const auto one = server.topk(u, 1);
    ASSERT_EQ(one.size(), std::min<std::size_t>(1, five.size()));
    if (!five.empty()) {
      EXPECT_EQ(one[0], five[0]);
    }
    const auto many = server.topk(u, 1000);
    EXPECT_GE(many.size(), five.size());
    for (std::size_t i = 0; i + 1 < many.size(); ++i) {
      EXPECT_GE(many[i].second, many[i + 1].second);  // best first
    }
    // An absurd k means "everything" — it must clamp, not let the
    // bounded heap try to reserve SIZE_MAX slots.
    EXPECT_EQ(server.topk(u, kUnlimited), many);
  }

  EXPECT_THROW((void)server.topk(g.num_vertices()), CheckError);
}

TEST(QueryEngineApi, ConcurrentCallersAgree) {
  const CsrGraph g = gen::make_dataset("livejournal", 0.02, 13);
  SnapleConfig cfg;
  cfg.k_hops = 3;  // exercise the hop2 read path under concurrency too
  cfg.k_local = 10;
  const LinkPredictor predictor(cfg);
  const auto model =
      std::make_shared<const PredictorModel>(predictor.fit(g));
  const QueryEngine server(model);

  // Reference answers computed single-threaded.
  std::vector<Scored> want(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) want[u] = server.topk(u);

  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread sweeps every vertex from a different starting point,
      // so all threads hammer overlapping queries simultaneously.
      const VertexId n = server.model().num_vertices();
      for (VertexId i = 0; i < n; ++i) {
        const auto u = static_cast<VertexId>((i + t * 37) % n);
        if (server.topk(u) != want[u]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---------- model serialization ----------

TEST(ModelFormat, SaveLoadRoundTripsExactly) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  for (const std::size_t k_hops : {2ul, 3ul}) {
    SnapleConfig cfg;
    cfg.k_hops = k_hops;
    cfg.k_local = 15;
    cfg.hop2_min_score = k_hops == 3 ? 0.01 : 0.0;
    // Multi-machine so the round trip covers nontrivial machine tags.
    const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(4));
    const PredictorModel model = predictor.fit(g);

    std::stringstream buf;
    model.save(buf);
    const PredictorModel loaded = PredictorModel::load(buf);
    EXPECT_TRUE(model == loaded) << "K=" << k_hops;
    EXPECT_EQ(loaded.config(), cfg);
    EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
    EXPECT_EQ(loaded.num_machines(), 4u);
    EXPECT_EQ(loaded.graph(), nullptr);
    EXPECT_TRUE(loaded.fit_report().steps.empty());

    // A loaded model serves identical answers — no graph needed.
    const QueryEngine a(std::make_shared<const PredictorModel>(model));
    const QueryEngine b(std::make_shared<const PredictorModel>(loaded));
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      ASSERT_EQ(a.topk(u), b.topk(u)) << "u=" << u;
    }
  }
}

TEST(ModelFormat, TruncatedAndCorruptFilesAreRejected) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(2));
  std::stringstream buf;
  predictor.fit(g).save(buf);
  const std::string bytes = buf.str();

  // Truncation anywhere — inside the magic, the header, or the arrays —
  // must throw IoError, never crash or return a half-read model.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{12}, std::size_t{60},
        bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream cut(bytes.substr(0, keep));
    EXPECT_THROW((void)PredictorModel::load(cut), IoError) << keep;
  }

  // Wrong magic.
  std::string wrong = bytes;
  wrong[7] = '9';
  std::stringstream bad_magic(wrong);
  EXPECT_THROW((void)PredictorModel::load(bad_magic), IoError);

  // Corrupt version field.
  std::string bad_version = bytes;
  bad_version[8] = 0x7f;
  std::stringstream bad_ver(bad_version);
  EXPECT_THROW((void)PredictorModel::load(bad_ver), IoError);
}

TEST(ModelFormat, UnsortedRowsAreRejected) {
  // The query path binary-searches gamma rows; a model whose rows lost
  // their ordering must be rejected at load, not serve wrong answers.
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg);
  const PredictorModel model = predictor.fit(g);
  std::stringstream buf;
  model.save(buf);
  std::string bytes = buf.str();

  // Serialized layout: 8 magic + 4 version + 4 machines + 8 V +
  // 64 config + 24 counts = 112 bytes of header, then gamma_offsets
  // ((V+1) × u64) and gamma_ids (u32 each). Swap the first two ids of
  // some vertex's Γ̂ row of size ≥ 2: strictly-ascending becomes
  // descending, which load() must reject.
  const std::size_t gamma_ids_base =
      112 + (static_cast<std::size_t>(g.num_vertices()) + 1) * 8;
  bool corrupted = false;
  for (VertexId u = 0; u < g.num_vertices() && !corrupted; ++u) {
    const auto row = model.gamma_hat(u);
    if (row.size() < 2) continue;
    const std::size_t at =
        gamma_ids_base +
        static_cast<std::size_t>(row.data() -
                                 model.gamma_hat(0).data()) *
            sizeof(VertexId);
    for (std::size_t b = 0; b < sizeof(VertexId); ++b) {
      std::swap(bytes[at + b], bytes[at + sizeof(VertexId) + b]);
    }
    corrupted = true;
  }
  ASSERT_TRUE(corrupted);
  std::stringstream cut(bytes);
  EXPECT_THROW((void)PredictorModel::load(cut), IoError);
}

TEST(ModelFormat, FileRoundTripAndMemoryAccounting) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 7);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg);
  const PredictorModel model = predictor.fit(g);
  const std::string path = ::testing::TempDir() + "snaple_model.bin";
  model.save_file(path);
  const PredictorModel loaded = PredictorModel::load_file(path);
  EXPECT_TRUE(model == loaded);
  EXPECT_GT(model.memory_bytes(), 0u);
  EXPECT_EQ(model.memory_bytes(), loaded.memory_bytes());
  std::remove(path.c_str());
}

TEST(ModelApi, FitKeepsSharedGraphAndReport) {
  const auto g = std::make_shared<const CsrGraph>(
      gen::make_dataset("gowalla", 0.02, 5));
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg);
  const PredictorModel model = predictor.fit(g);
  EXPECT_EQ(model.graph(), g);
  // K=2 fit ran exactly the two model-building steps.
  ASSERT_EQ(model.fit_report().steps.size(), 2u);
  EXPECT_EQ(model.fit_report().steps[0].name, "1:sample-neighborhood");
  EXPECT_EQ(model.fit_report().steps[1].name, "2:similarities");

  cfg.k_hops = 3;
  const LinkPredictor p3(cfg);
  const PredictorModel m3 = p3.fit(*g);
  EXPECT_EQ(m3.graph(), nullptr);  // plain-reference fit keeps no graph
  ASSERT_EQ(m3.fit_report().steps.size(), 3u);
  EXPECT_EQ(m3.fit_report().steps[2].name, "2b:hop2-scores");
}

// ---------- K=3 pruning knob (hop2_min_score) ----------

TEST(Hop2Pruning, ZeroThresholdIsBitIdentical) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 11);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  cfg.k_local = 10;
  SnapleConfig zero = cfg;
  zero.hop2_min_score = 0.0;  // explicit off == default off

  const LinkPredictor a(cfg);
  const LinkPredictor b(zero);
  const PredictorModel ma = a.fit(g);
  const PredictorModel mb = b.fit(g);
  EXPECT_TRUE(ma == mb);

  const auto ra = a.predict(g);
  const auto rb = b.predict(g);
  EXPECT_EQ(ra.predictions, rb.predictions);
}

TEST(Hop2Pruning, PositiveThresholdOnlyRemovesBelowThresholdCandidates) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 7);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  cfg.k_local = kUnlimited;  // no selection cut: pruning is the only
                             // difference, so exact set algebra holds
  const LinkPredictor unpruned(cfg);
  const PredictorModel full = unpruned.fit(g);

  // Pick a threshold that actually bites: the median retained 2-hop
  // score across the model.
  std::vector<float> scores;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto h = full.hop2(u);
    scores.insert(scores.end(), h.scores.begin(), h.scores.end());
  }
  ASSERT_FALSE(scores.empty());
  std::sort(scores.begin(), scores.end());
  const double thr = scores[scores.size() / 2];
  ASSERT_GT(thr, 0.0);

  SnapleConfig pruned_cfg = cfg;
  pruned_cfg.hop2_min_score = thr;
  const LinkPredictor pruner(pruned_cfg);
  const PredictorModel pruned = pruner.fit(g);

  bool removed_any = false;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto f = full.hop2(u);
    const auto p = pruned.hop2(u);
    // Exactly the >= threshold subset survives, order preserved.
    std::size_t pi = 0;
    for (std::size_t fi = 0; fi < f.ids.size(); ++fi) {
      if (f.scores[fi] < thr) {
        removed_any = true;
        continue;
      }
      ASSERT_LT(pi, p.ids.size()) << "u=" << u;
      EXPECT_EQ(p.ids[pi], f.ids[fi]);
      EXPECT_EQ(p.scores[pi], f.scores[fi]);
      ++pi;
    }
    EXPECT_EQ(pi, p.ids.size()) << "u=" << u;
    for (const float s : p.scores) EXPECT_GE(s, thr);
  }
  EXPECT_TRUE(removed_any);  // the threshold did prune something

  // Γ̂ and sims are untouched by 2b pruning.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto gf = full.gamma_hat(u);
    const auto gp = pruned.gamma_hat(u);
    ASSERT_TRUE(std::equal(gf.begin(), gf.end(), gp.begin(), gp.end()));
  }
}

// ---------- format fuzzing: every truncation, systematic bit flips ----------

/// Small fit whose serialized form covers every section of the format:
/// K=3 (hop2 arrays present), 2 machines (nontrivial tags).
std::string tiny_model_bytes() {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 1);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(2));
  std::stringstream buf;
  predictor.fit(b.build()).save(buf);
  return buf.str();
}

TEST(ModelFormatFuzz, TruncationAtEveryByteOffsetIsRejected) {
  const std::string bytes = tiny_model_bytes();
  ASSERT_GT(bytes.size(), 112u);  // header + all sections present
  // The format has no padding or optional tail: EVERY strict prefix is
  // a truncation and must throw IoError — not crash, not hand back a
  // model built from half the arrays.
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::stringstream cut(bytes.substr(0, keep));
    EXPECT_THROW((void)PredictorModel::load(cut), IoError) << keep;
  }
  std::stringstream whole(bytes);
  EXPECT_NO_THROW((void)PredictorModel::load(whole));
}

TEST(ModelFormatFuzz, HeaderAndOffsetByteFlipsNeverCrashOrHalfLoad) {
  const std::string bytes = tiny_model_bytes();
  // Corruption target: the full header (112 bytes: magic, version,
  // machines, V, config, counts) plus the gamma offset table right
  // after it — the fields that steer every later read. Each byte takes
  // three flips: low bit, high bit, all bits.
  std::stringstream whole(bytes);
  const PredictorModel reference = PredictorModel::load(whole);
  const std::size_t offsets_end =
      112 + (static_cast<std::size_t>(reference.num_vertices()) + 1) * 8;
  ASSERT_LT(offsets_end, bytes.size());

  for (std::size_t at = 0; at < offsets_end; ++at) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string mutated = bytes;
      mutated[at] = static_cast<char>(mutated[at] ^ mask);
      std::stringstream in(mutated);
      PredictorModel m;
      try {
        m = PredictorModel::load(in);
      } catch (const IoError&) {
        continue;  // clean rejection — the expected outcome
      }
      // The mutation passed validation (a config field like α or the
      // seed, or an offset shift that still yields consistent rows).
      // Then it must be a COMPLETE model: every vertex serves without
      // crashing and every row accessor stays in bounds.
      ASSERT_EQ(m.num_vertices(), reference.num_vertices())
          << "at=" << at << " mask=" << int(mask);
      const QueryEngine engine(
          std::make_shared<const PredictorModel>(std::move(m)));
      for (VertexId u = 0; u < reference.num_vertices(); ++u) {
        (void)engine.topk(u);
      }
    }
  }

  // The identification fields specifically can never survive a flip.
  for (std::size_t at = 0; at < 12; ++at) {  // magic + version
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
    std::stringstream in(mutated);
    EXPECT_THROW((void)PredictorModel::load(in), IoError) << at;
  }
}

// ---------- topk edge cases, over both serving backends ----------

/// Runs `check` against a QueryEngine over the static model and over a
/// DynamicModel wrap of the same fit — the two serving backends must
/// agree on every edge-case contract.
template <typename Fn>
void for_both_backends(const CsrGraph& g, const SnapleConfig& cfg,
                       Fn&& check) {
  const LinkPredictor predictor(cfg);
  const auto graph = std::make_shared<const CsrGraph>(g);
  const auto model =
      std::make_shared<const PredictorModel>(predictor.fit(*graph));
  check(QueryEngine(model), "static");
  const auto dynamic = std::make_shared<const DynamicModel>(model, graph);
  check(QueryEngine(dynamic), "dynamic");
}

TEST(QueryEdgeCases, IsolatedVertexHasNoRecommendations) {
  // Vertex 4 exists (GraphBuilder pins the vertex count) but has no
  // edges at all: no retained paths, so topk must be empty, not a
  // crash or an out-of-range row read.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  SnapleConfig cfg;
  for_both_backends(b.build(), cfg, [](const QueryEngine& e,
                                       const char* backend) {
    EXPECT_EQ(e.num_vertices(), 5u) << backend;
    EXPECT_TRUE(e.topk(4).empty()) << backend;
    EXPECT_TRUE(e.topk(4, 100).empty()) << backend;
  });
}

TEST(QueryEdgeCases, AllCandidatesSelfOrAlreadyNeighbors) {
  // 0 ↔ 1 only: every 2-hop path from 0 lands back on 0 itself, and
  // every path from 1 lands on 1 — the candidate filter must leave
  // nothing, for both backends.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  SnapleConfig cfg;
  cfg.k_local = kUnlimited;
  for_both_backends(b.build(), cfg, [](const QueryEngine& e,
                                       const char* backend) {
    EXPECT_TRUE(e.topk(0).empty()) << backend;
    EXPECT_TRUE(e.topk(1).empty()) << backend;
  });
}

TEST(QueryEdgeCases, KZeroMeansConfiguredKOnBothBackends) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 17);
  SnapleConfig cfg;
  cfg.k = 3;
  for_both_backends(g, cfg, [&g](const QueryEngine& e,
                                 const char* backend) {
    for (VertexId u = 0; u < g.num_vertices(); u += 23) {
      const auto dflt = e.topk(u);
      EXPECT_LE(dflt.size(), 3u) << backend << " u=" << u;
      EXPECT_EQ(dflt, e.topk(u, 3)) << backend << " u=" << u;
    }
  });
}

TEST(QueryEdgeCases, KBeyondCandidateSetClampsOnBothBackends) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 17);
  SnapleConfig cfg;
  for_both_backends(g, cfg, [&g](const QueryEngine& e,
                                 const char* backend) {
    for (VertexId u = 0; u < g.num_vertices(); u += 23) {
      const auto all = e.topk(u, kUnlimited);
      // Asking for even more changes nothing — the candidate set is
      // exhausted, not padded.
      EXPECT_EQ(e.topk(u, all.size() + 1000), all)
          << backend << " u=" << u;
      for (std::size_t i = 0; i + 1 < all.size(); ++i) {
        EXPECT_GE(all[i].second, all[i + 1].second)
            << backend << " u=" << u;
      }
    }
  });
}

// ---------- hand-checkable single query ----------

TEST(QueryEngineApi, HandGraphSingleQuery) {
  // Same hand graph as test_snaple: 0→{1,2}, 1→{2,3}, 2→{1,3}, 3→{1}.
  // Candidate for 0 is exactly 3. Jaccard: sim(0,1)=sim(0,2)=1/3,
  // sim(1,3)=0, sim(2,3)=|{1}|/|{1,3}|=1/2. linearSum (α=0.9):
  //   path 0→1→3: 0.9·(1/3)+0.1·0   = 0.3
  //   path 0→2→3: 0.9·(1/3)+0.1·0.5 = 0.35   → score 0.65.
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 1);
  const CsrGraph g = b.build();
  SnapleConfig cfg;
  cfg.k_local = kUnlimited;
  cfg.thr_gamma = kUnlimited;
  const LinkPredictor predictor(cfg);
  const QueryEngine server(
      std::make_shared<const PredictorModel>(predictor.fit(g)));
  const auto recs = server.topk(0);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].first, 3u);
  EXPECT_NEAR(recs[0].second, 0.65, 1e-6);
}

}  // namespace
}  // namespace snaple
