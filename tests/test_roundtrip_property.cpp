// Property sweep: every generator's output survives text and binary IO
// round-trips bit-for-bit, and satisfies the CSR structural invariants.
// Parameterized across generator families so a new generator added to the
// suite gets the whole battery for free.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/gen/generators.hpp"
#include "graph/io.hpp"

namespace snaple {
namespace {

struct GeneratorCase {
  std::string name;
  std::function<CsrGraph(std::uint64_t seed)> make;
};

std::vector<GeneratorCase> generator_cases() {
  return {
      {"erdos_renyi",
       [](std::uint64_t s) { return gen::erdos_renyi(200, 1500, s); }},
      {"barabasi_albert",
       [](std::uint64_t s) { return gen::barabasi_albert(300, 3, s); }},
      {"holme_kim",
       [](std::uint64_t s) { return gen::holme_kim(300, 3, 0.6, s); }},
      {"watts_strogatz",
       [](std::uint64_t s) { return gen::watts_strogatz(200, 3, 0.2, s); }},
      {"rmat",
       [](std::uint64_t s) {
         gen::RmatParams p;
         p.scale = 9;
         p.edges = 4000;
         return gen::rmat(p, s);
       }},
      {"affiliation",
       [](std::uint64_t s) {
         return gen::affiliation_graph(400, gen::AffiliationParams{}, s);
       }},
      {"dataset_replica",
       [](std::uint64_t s) { return gen::make_dataset("pokec", 0.01, s); }},
  };
}

class GeneratorProperty : public ::testing::TestWithParam<GeneratorCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorProperty,
    ::testing::ValuesIn(generator_cases()),
    [](const auto& info) { return info.param.name; });

TEST_P(GeneratorProperty, TextRoundTripIsExact) {
  const CsrGraph g = GetParam().make(11);
  std::stringstream ss;
  save_edge_list_text(g, ss);
  const CsrGraph back = load_edge_list_text(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST_P(GeneratorProperty, BinaryRoundTripIsExact) {
  const CsrGraph g = GetParam().make(13);
  std::stringstream ss;
  save_binary(g, ss);
  const CsrGraph back = load_binary(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST_P(GeneratorProperty, CsrInvariantsHold) {
  const CsrGraph g = GetParam().make(17);
  ASSERT_GT(g.num_vertices(), 0u);
  std::size_t out_total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    out_total += nbrs.size();
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end())
        << "duplicate edge at vertex " << u;
    for (VertexId v : nbrs) {
      ASSERT_LT(v, g.num_vertices());
      EXPECT_NE(v, u) << "self loop at " << u;
      const auto in_of_v = g.in_neighbors(v);
      EXPECT_TRUE(std::binary_search(in_of_v.begin(), in_of_v.end(), u));
    }
  }
  EXPECT_EQ(out_total, g.num_edges());
}

TEST_P(GeneratorProperty, SeedChangesOutput) {
  const CsrGraph a = GetParam().make(1);
  const CsrGraph b = GetParam().make(2);
  EXPECT_NE(a.edges(), b.edges());
}

TEST_P(GeneratorProperty, SameSeedSameGraph) {
  const CsrGraph a = GetParam().make(5);
  const CsrGraph b = GetParam().make(5);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST_P(GeneratorProperty, EdgeIndexBijection) {
  const CsrGraph g = GetParam().make(19);
  EdgeIndex e = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      EXPECT_EQ(g.edge_index(u, v), e);
      EXPECT_EQ(g.edge_source(e), u);
      EXPECT_EQ(g.edge_target(e), v);
      ++e;
    }
  }
}

}  // namespace
}  // namespace snaple
