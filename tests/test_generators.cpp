// Tests for the synthetic generators and the dataset registry — these
// verify the structural properties the reproduction depends on (power-law
// tails, clustering, dataset ordering), not exact topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "graph/analysis.hpp"
#include "graph/degree.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/gen/generators.hpp"

namespace snaple::gen {
namespace {

TEST(ErdosRenyi, ExactEdgeCountAndDeterminism) {
  const CsrGraph a = erdos_renyi(100, 500, 7);
  const CsrGraph b = erdos_renyi(100, 500, 7);
  EXPECT_EQ(a.num_edges(), 500u);
  EXPECT_EQ(a.edges(), b.edges());
  const CsrGraph c = erdos_renyi(100, 500, 8);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(ErdosRenyi, RejectsImpossibleRequest) {
  EXPECT_THROW(erdos_renyi(3, 100, 1), CheckError);
}

TEST(BarabasiAlbert, SymmetricWithExpectedSize) {
  const CsrGraph g = barabasi_albert(1000, 4, 11);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
  // ~ m edges per added vertex (each symmetric = 2 directed).
  EXPECT_GT(g.num_edges(), 2 * 4 * 900u);
}

TEST(BarabasiAlbert, ProducesHeavyTail) {
  const CsrGraph g = barabasi_albert(5000, 3, 13);
  const auto s = summarize_out_degrees(g);
  EXPECT_GT(static_cast<double>(s.max), 8.0 * s.mean);
}

TEST(HolmeKim, HigherClusteringThanBa) {
  const CsrGraph ba = barabasi_albert(3000, 4, 17);
  const CsrGraph hk = holme_kim(3000, 4, 0.8, 17);
  const double c_ba = clustering_coefficient(ba, 3000, 1);
  const double c_hk = clustering_coefficient(hk, 3000, 1);
  EXPECT_GT(c_hk, 2.0 * c_ba);
}

TEST(HolmeKim, RejectsBadParams) {
  EXPECT_THROW(holme_kim(100, 4, 1.5, 1), CheckError);
  EXPECT_THROW(holme_kim(3, 4, 0.5, 1), CheckError);
}

TEST(WattsStrogatz, RingLatticeAtBetaZero) {
  const CsrGraph g = watts_strogatz(50, 2, 0.0, 3);
  // Every vertex connects to 2 neighbors on each side: out-degree 4.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(g.out_degree(u), 4u);
  }
  const double c = clustering_coefficient(g, 50, 1);
  EXPECT_GT(c, 0.3);  // ring lattice k=2 has C = 0.5 per vertex
}

TEST(WattsStrogatz, RewiringReducesClustering) {
  const CsrGraph lattice = watts_strogatz(2000, 4, 0.0, 5);
  const CsrGraph random = watts_strogatz(2000, 4, 1.0, 5);
  EXPECT_GT(clustering_coefficient(lattice, 2000, 1),
            4.0 * clustering_coefficient(random, 2000, 1));
}

TEST(Rmat, SkewAndDeterminism) {
  RmatParams params;
  params.scale = 12;
  params.edges = 40000;
  const CsrGraph a = rmat(params, 23);
  const CsrGraph b = rmat(params, 23);
  EXPECT_EQ(a.edges(), b.edges());
  const auto s = summarize_out_degrees(a);
  EXPECT_GT(static_cast<double>(s.max), 10.0 * s.mean);  // hub exists
}

TEST(Rmat, RejectsBadWeights) {
  RmatParams params;
  params.a = 0.9;  // sums to > 1 with defaults
  EXPECT_THROW(rmat(params, 1), CheckError);
}

TEST(Affiliation, HitsDegreeTargetApproximately) {
  AffiliationParams params;
  params.target_avg_degree = 12.0;
  const CsrGraph g = affiliation_graph(8000, params, 31);
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
  EXPECT_NEAR(avg, 12.0, 4.0);
}

TEST(Affiliation, HighClustering) {
  AffiliationParams params;
  params.target_avg_degree = 12.0;
  const CsrGraph g = affiliation_graph(5000, params, 37);
  EXPECT_GT(clustering_coefficient(g, 4000, 1), 0.15);
}

TEST(Affiliation, HeavyTailFromMembershipWeights) {
  AffiliationParams params;
  params.target_avg_degree = 10.0;
  const CsrGraph g = affiliation_graph(10000, params, 41);
  const auto s = summarize_out_degrees(g);
  EXPECT_GT(static_cast<double>(s.max), 5.0 * s.mean);
  EXPECT_GT(s.p99, 2.0 * s.mean);
}

TEST(Affiliation, SymmetricSubstrate) {
  AffiliationParams params;
  const CsrGraph g = affiliation_graph(1000, params, 43);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
}

TEST(Affiliation, Deterministic) {
  AffiliationParams params;
  const CsrGraph a = affiliation_graph(2000, params, 47);
  const CsrGraph b = affiliation_graph(2000, params, 47);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Orient, FullReciprocityKeepsSymmetry) {
  const CsrGraph sym = affiliation_graph(1000, AffiliationParams{}, 51);
  const CsrGraph g = orient(sym, 1.0, 53);
  EXPECT_EQ(g.num_edges(), sym.num_edges());
}

TEST(Orient, ZeroReciprocityHalvesEdges) {
  const CsrGraph sym = affiliation_graph(1000, AffiliationParams{}, 51);
  const CsrGraph g = orient(sym, 0.0, 53);
  EXPECT_EQ(g.num_edges(), sym.num_edges() / 2);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      EXPECT_FALSE(g.has_edge(v, u));
    }
  }
}

TEST(Orient, PartialReciprocityInBetween) {
  const CsrGraph sym = affiliation_graph(2000, AffiliationParams{}, 51);
  const CsrGraph g = orient(sym, 0.5, 53);
  // Expected directed edges = pairs * (0.5*2 + 0.5*1) = 0.75 * sym edges.
  const double expected = 0.75 * static_cast<double>(sym.num_edges());
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.1);
}

// ---------- dataset registry ----------

TEST(Datasets, FiveSpecsInPaperOrder) {
  const auto& specs = dataset_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "gowalla-s");
  EXPECT_EQ(specs[1].name, "pokec-s");
  EXPECT_EQ(specs[2].name, "orkut-s");
  EXPECT_EQ(specs[3].name, "livejournal-s");
  EXPECT_EQ(specs[4].name, "twitter-s");
}

TEST(Datasets, LookupAcceptsBothNames) {
  EXPECT_EQ(dataset_spec("livejournal").name, "livejournal-s");
  EXPECT_EQ(dataset_spec("livejournal-s").name, "livejournal-s");
  EXPECT_THROW(static_cast<void>(dataset_spec("facebook")), CheckError);
}

TEST(Datasets, ReplicaEdgeOrderingMatchesPaper) {
  // Table 4 ordering: gowalla < pokec < livejournal < orkut < twitter.
  const double scale = 0.05;
  const auto gowalla = make_dataset("gowalla", scale, 1).num_edges();
  const auto pokec = make_dataset("pokec", scale, 1).num_edges();
  const auto orkut = make_dataset("orkut", scale, 1).num_edges();
  const auto lj = make_dataset("livejournal", scale, 1).num_edges();
  const auto twitter = make_dataset("twitter", scale, 1).num_edges();
  EXPECT_LT(gowalla, pokec);
  EXPECT_LT(pokec, lj);
  EXPECT_LT(lj, orkut);
  EXPECT_LT(orkut, twitter);
}

TEST(Datasets, UndirectedReplicasAreSymmetric) {
  const CsrGraph g = make_dataset("gowalla", 0.02, 3);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u));
    }
  }
}

TEST(Datasets, DirectedReplicasAreAsymmetric) {
  const CsrGraph g = make_dataset("twitter", 0.01, 3);
  std::size_t reciprocal = 0;
  std::size_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      ++total;
      reciprocal += g.has_edge(v, u);
    }
  }
  ASSERT_GT(total, 0u);
  // Twitter replica reciprocity ~0.2 -> ~1/3 of directed arcs reciprocated.
  EXPECT_LT(static_cast<double>(reciprocal) / static_cast<double>(total),
            0.6);
}

TEST(Datasets, CachingRoundTrips) {
  const auto dir =
      std::filesystem::temp_directory_path() / "snaple-test-cache";
  std::filesystem::remove_all(dir);
  const CsrGraph a = load_or_generate("gowalla", 0.02, 5, dir.string());
  EXPECT_TRUE(std::filesystem::exists(dir));
  const CsrGraph b = load_or_generate("gowalla", 0.02, 5, dir.string());
  EXPECT_EQ(a.edges(), b.edges());
  std::filesystem::remove_all(dir);
}

TEST(Datasets, ScaleControlsSize) {
  const auto small = make_dataset("gowalla", 0.02, 1).num_vertices();
  const auto larger = make_dataset("gowalla", 0.05, 1).num_vertices();
  EXPECT_LT(small, larger);
}

}  // namespace
}  // namespace snaple::gen
