// The parallel ingestion path: chunked text parsing must match the
// serial reference loader exactly (graphs AND error reporting), binary
// v2 must round-trip every CSR detail, and legacy v1 files must stay
// readable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/gen/generators.hpp"
#include "graph/io.hpp"
#include "util/thread_pool.hpp"

namespace snaple {
namespace {

CsrGraph parallel_load(const std::string& text, bool symmetrize = false,
                       ThreadPool* pool = nullptr) {
  return load_edge_list_text_buffer(text.data(), text.size(), symmetrize,
                                    pool);
}

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.out_offsets().begin(), a.out_offsets().end(),
                         b.out_offsets().begin()));
  EXPECT_TRUE(std::equal(a.out_targets().begin(), a.out_targets().end(),
                         b.out_targets().begin()));
  EXPECT_TRUE(std::equal(a.in_offsets().begin(), a.in_offsets().end(),
                         b.in_offsets().begin()));
  EXPECT_TRUE(std::equal(a.in_sources().begin(), a.in_sources().end(),
                         b.in_sources().begin()));
}

// ---------- parallel loader == serial reference ----------

TEST(ParallelTextLoader, MatchesSerialOnGeneratedGraphs) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    for (const VertexId n : {50u, 500u, 3000u}) {
      for (const bool symmetrize : {false, true}) {
        const CsrGraph g = gen::barabasi_albert(n, 4, seed);
        std::stringstream ss;
        save_edge_list_text(g, ss);
        const std::string text = ss.str();

        std::stringstream serial_in(text);
        const CsrGraph serial = load_edge_list_text(serial_in, symmetrize);
        const CsrGraph parallel = parallel_load(text, symmetrize);
        expect_same_graph(serial, parallel);
      }
    }
  }
}

TEST(ParallelTextLoader, DeterministicAcrossPoolSizes) {
  const CsrGraph g = gen::rmat({.scale = 12, .edges = 40'000}, 5);
  std::stringstream ss;
  save_edge_list_text(g, ss);
  const std::string text = ss.str();

  const CsrGraph reference = parallel_load(text);
  expect_same_graph(g, reference);
  for (const std::size_t workers : {1ul, 3ul, 7ul}) {
    ThreadPool pool(workers);
    expect_same_graph(reference, parallel_load(text, false, &pool));
  }
}

TEST(ParallelTextLoader, HandlesCommentsBlanksAndMissingFinalNewline) {
  const std::string text = "# comment\n\n0 1\n% other\n1 2\n2 0";
  const CsrGraph g = parallel_load(text);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(ParallelTextLoader, HonorsSnapleVertexCountHeader) {
  const CsrGraph g = parallel_load("# snaple edge list: 9 vertices\n0 1\n");
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.out_degree(8), 0u);
}

TEST(ParallelTextLoader, TrailingIsolatedVerticesRoundTripThroughText) {
  GraphBuilder b(12);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  std::stringstream ss;
  save_edge_list_text(g, ss);
  const std::string text = ss.str();
  expect_same_graph(g, parallel_load(text));
}

TEST(ParallelTextLoader, SymmetrizeMatchesSerial) {
  const std::string text = "0 1\n2 1\n";
  std::stringstream serial_in(text);
  const CsrGraph serial = load_edge_list_text(serial_in, true);
  const CsrGraph parallel = parallel_load(text, true);
  expect_same_graph(serial, parallel);
  EXPECT_TRUE(parallel.has_edge(1, 0));
  EXPECT_TRUE(parallel.has_edge(1, 2));
}

TEST(ParallelTextLoader, ManyTinyLinesAcrossManyChunks) {
  // Enough volume to exceed the loader's 64 KiB minimum chunk size so the
  // buffer genuinely splits; every line must land in exactly one chunk.
  std::string text;
  for (VertexId u = 0; u < 60'000; ++u) {
    text += std::to_string(u) + " " + std::to_string(u + 1) + "\n";
  }
  ThreadPool pool(5);
  const CsrGraph g = parallel_load(text, false, &pool);
  EXPECT_EQ(g.num_edges(), 60'000u);
  EXPECT_EQ(g.num_vertices(), 60'001u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(59'999, 60'000));
}

// ---------- error reporting ----------

void expect_error_at_line(const std::string& text, std::size_t line,
                          const std::string& what_contains) {
  // Both loaders must agree on the failing line.
  const std::string needle = "line " + std::to_string(line);
  try {
    (void)parallel_load(text);
    FAIL() << "parallel loader accepted malformed input";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(what_contains), std::string::npos)
        << e.what();
  }
  std::stringstream in(text);
  try {
    (void)load_edge_list_text(in);
    FAIL() << "serial loader accepted malformed input";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ParallelTextLoader, MalformedLineNumberFirstLine) {
  expect_error_at_line("junk\n0 1\n", 1, "malformed edge");
}

TEST(ParallelTextLoader, MalformedLineNumberMidFile) {
  expect_error_at_line("0 1\n1 2\nnot numbers\n2 3\n", 3, "malformed edge");
}

TEST(ParallelTextLoader, MissingSecondIdIsMalformed) {
  expect_error_at_line("0 1\n42\n", 2, "malformed edge");
}

TEST(ParallelTextLoader, IdOver32BitsReported) {
  expect_error_at_line("0 1\n1 4294967296\n", 2, "exceeds 32 bits");
}

TEST(ParallelTextLoader, IdAtExactly32BitMaxRejected) {
  // 0xffffffff would wrap the vertex count (max id + 1) to zero; both
  // loaders must reject it instead of corrupting the build.
  expect_error_at_line("0 1\n4294967295 0\n", 2, "exceeds 32 bits");
}

TEST(ParallelTextLoader, SignedIdsMatchStreamSemantics) {
  // num_get accepts '+' and negates '-' modulo 2^64; the scanner must
  // agree: "+1" parses, "-1" becomes huge and hits the 32-bit check.
  const std::string plus = "+1 2\n";
  std::stringstream serial_in(plus);
  expect_same_graph(load_edge_list_text(serial_in), parallel_load(plus));
  expect_error_at_line("0 1\n-1 2\n", 2, "exceeds 32 bits");
}

TEST(ParallelTextLoader, LineNumberCorrectDeepIntoChunkedFile) {
  // Build a file large enough to split into several chunks and plant the
  // bad line far from the start; the global line number must survive the
  // per-chunk parse.
  std::string text = "# snaple edge list: 70000 vertices\n";
  const std::size_t good_lines = 65'000;
  for (std::size_t i = 0; i < good_lines; ++i) {
    text += std::to_string(i % 7) + " " + std::to_string(i % 6000 + 1) + "\n";
  }
  text += "oops\n";
  ThreadPool pool(5);
  try {
    (void)load_edge_list_text_buffer(text.data(), text.size(), false, &pool);
    FAIL() << "accepted malformed input";
  } catch (const IoError& e) {
    const std::string needle =
        "line " + std::to_string(good_lines + 2);  // +1 header, 1-based
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

// ---------- bulk builder API ----------

TEST(GraphBuilder, EdgeBlocksMatchIncrementalAdds) {
  GraphBuilder incremental;
  GraphBuilder bulk;
  std::vector<Edge> block1;
  std::vector<Edge> block2;
  for (VertexId u = 0; u < 200; ++u) {
    const VertexId v = (u * 13 + 1) % 200;
    incremental.add_edge(u, v);
    (u % 2 == 0 ? block1 : block2).push_back({u, v});
  }
  bulk.add_edge_block(std::move(block1));
  bulk.add_edge_block(std::move(block2));
  expect_same_graph(incremental.build(), bulk.build());
}

TEST(GraphBuilder, EdgeBlocksDropSelfLoopsAndDuplicates) {
  GraphBuilder b;
  b.add_edge_block({{3, 3}, {1, 2}, {1, 2}, {2, 1}});
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  // The self-loop at 3 contributes no vertex id, exactly like add_edge,
  // which drops self-loops before looking at their endpoints.
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(GraphBuilder, SymmetrizeCoversBlockEdges) {
  GraphBuilder b;
  b.add_edge_block({{0, 1}, {2, 1}});
  b.symmetrize();
  const CsrGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
}

// ---------- binary v2 ----------

TEST(BinaryV2, RoundTripsGraphWithTrailingIsolatedVertices) {
  GraphBuilder b(40);  // vertices 25..39 isolated
  for (VertexId u = 0; u < 25; ++u) b.add_edge(u, (u + 3) % 25);
  const CsrGraph g = b.build();
  std::stringstream ss;
  save_binary(g, ss);
  expect_same_graph(g, load_binary(ss));
}

TEST(BinaryV2, RoundTripsEmptyGraph) {
  const CsrGraph empty;
  std::stringstream ss;
  save_binary(empty, ss);
  const CsrGraph back = load_binary(ss);
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST(BinaryV2, RejectsCorruptOffsets) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  std::stringstream ss;
  save_binary(g, ss);
  std::string data = ss.str();
  // Corrupt the first out-offset entry (must be 0).
  data[24] = 0x7f;
  std::stringstream corrupted(data);
  EXPECT_THROW((void)load_binary(corrupted), IoError);
}

TEST(BinaryV2, RejectsImplausibleHeaderWithoutAllocating) {
  // Magic + a header demanding terabytes must fail as IoError (checked
  // against the bytes actually present), not die in std::bad_alloc.
  std::string bytes = "SNAPLEG2";
  const auto push_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  push_u64(4'000'000'000ULL);          // vertices
  push_u64(std::uint64_t{1} << 39);    // edges (~4 TB of arrays)
  std::stringstream in(bytes);
  EXPECT_THROW((void)load_binary(in), IoError);
}

TEST(BinaryV2, RejectsInAdjacencyNotMatchingTranspose) {
  // Tamper with one in_sources entry while keeping its row sorted and in
  // range: the transpose-consistency pass must still catch it.
  GraphBuilder b;
  b.add_edge(3, 5);
  b.add_edge(4, 5);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  std::stringstream ss;
  save_binary(g, ss);
  std::string data = ss.str();
  // in_sources is the final E*4 bytes, [0, 3, 4]; rewriting the 3 to 2
  // keeps vertex 5's row {2, 4} sorted and in range, but (2,5) is not an
  // out-edge.
  const std::size_t in_sources_off = data.size() - 3 * sizeof(VertexId);
  ASSERT_EQ(static_cast<unsigned char>(data[in_sources_off + 4]), 3u);
  data[in_sources_off + 4] = 2;
  std::stringstream corrupted(data);
  EXPECT_THROW((void)load_binary(corrupted), IoError);
}

TEST(BinaryV2, StreamAndFileAgree) {
  const CsrGraph g = gen::barabasi_albert(300, 3, 9);
  std::stringstream ss;
  save_binary(g, ss);
  expect_same_graph(g, load_binary(ss));
}

// ---------- binary v1 backward compatibility ----------

TEST(BinaryV1, HandAuthoredFixtureStillLoads) {
  // A v1 file built byte-by-byte, independent of save_binary_v1: proves
  // the on-disk format (not just the current writer) stays readable.
  // Graph: 5 vertices, edges (0,2), (1,0), (4,1).
  std::string bytes = "SNAPLEG1";
  const auto push_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  const auto push_u32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  push_u64(5);  // vertices
  push_u64(3);  // edges
  push_u32(0); push_u32(2);
  push_u32(1); push_u32(0);
  push_u32(4); push_u32(1);
  std::stringstream in(bytes);
  const CsrGraph g = load_binary(in);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(4, 1));
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(BinaryV1, WriterRoundTripsThroughAutodetect) {
  const CsrGraph g = gen::barabasi_albert(200, 3, 4);
  std::stringstream ss;
  save_binary_v1(g, ss);
  expect_same_graph(g, load_binary(ss));
}

TEST(BinaryV1, V1AndV2OfSameGraphLoadIdentically) {
  const CsrGraph g = gen::rmat({.scale = 10, .edges = 8'000}, 3);
  std::stringstream v1;
  std::stringstream v2;
  save_binary_v1(g, v1);
  save_binary(g, v2);
  expect_same_graph(load_binary(v1), load_binary(v2));
}

// ---------- from_parts validation ----------

TEST(CsrFromParts, AcceptsValidArraysAndRejectsBadRows) {
  // 2 vertices, edge 0->1.
  const CsrGraph ok = CsrGraph::from_parts({0, 1, 1}, {1}, {0, 0, 1}, {0});
  EXPECT_TRUE(ok.has_edge(0, 1));
  // Target out of range.
  EXPECT_THROW((void)CsrGraph::from_parts({0, 1, 1}, {7}, {0, 0, 1}, {0}),
               CheckError);
  // Non-monotone offsets.
  EXPECT_THROW((void)CsrGraph::from_parts({0, 2, 1}, {1}, {0, 0, 1}, {0}),
               CheckError);
  // Unsorted row.
  EXPECT_THROW(
      (void)CsrGraph::from_parts({0, 2, 2}, {1, 0}, {0, 1, 2}, {0, 0}),
      CheckError);
}

}  // namespace
}  // namespace snaple
