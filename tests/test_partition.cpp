// Tests for the vertex-cut partitioner.
#include <gtest/gtest.h>

#include "gas/partition.hpp"
#include "graph/builder.hpp"
#include "graph/gen/generators.hpp"

namespace snaple::gas {
namespace {

CsrGraph test_graph() { return gen::erdos_renyi(300, 3000, 5); }

class PartitionStrategies
    : public ::testing::TestWithParam<PartitionStrategy> {};

INSTANTIATE_TEST_SUITE_P(Both, PartitionStrategies,
                         ::testing::Values(PartitionStrategy::kHash,
                                           PartitionStrategy::kGreedy),
                         [](const auto& info) {
                           return info.param == PartitionStrategy::kHash
                                      ? "hash"
                                      : "greedy";
                         });

TEST_P(PartitionStrategies, EveryEdgeAssignedWithinRange) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 8, GetParam());
  EdgeIndex total = 0;
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(p.edge_machine(e), 8);
  }
  for (const auto load : p.edges_per_machine()) total += load;
  EXPECT_EQ(total, g.num_edges());
}

TEST_P(PartitionStrategies, ReplicasCoverEdgeEndpoints) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 8, GetParam());
  EdgeIndex e = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for ([[maybe_unused]] VertexId v : g.out_neighbors(u)) {
      const MachineId m = p.edge_machine(e);
      EXPECT_TRUE(p.replicas(u).contains(m));
      EXPECT_TRUE(p.replicas(g.edge_target(e)).contains(m));
      ++e;
    }
  }
}

TEST_P(PartitionStrategies, MasterIsAReplica) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 8, GetParam());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_TRUE(p.replicas(u).contains(p.master(u)));
    EXPECT_GE(p.replicas(u).count(), 1);
  }
}

TEST_P(PartitionStrategies, ReplicationFactorBounds) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 8, GetParam());
  EXPECT_GE(p.replication_factor(), 1.0);
  EXPECT_LE(p.replication_factor(), 8.0);
}

TEST_P(PartitionStrategies, Deterministic) {
  const CsrGraph g = test_graph();
  const auto a = Partitioning::create(g, 4, GetParam(), 9);
  const auto b = Partitioning::create(g, 4, GetParam(), 9);
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(a.edge_machine(e), b.edge_machine(e));
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(a.master(u), b.master(u));
  }
}

TEST(Partitioning, SingleMachineTrivial) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 1, PartitionStrategy::kGreedy);
  EXPECT_DOUBLE_EQ(p.replication_factor(), 1.0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(p.master(u), 0);
  }
}

TEST(Partitioning, GreedyBeatsHashOnReplication) {
  // The greedy heuristic's whole point (PowerGraph §4): fewer replicas on
  // power-law graphs. Compare on a BA graph.
  const CsrGraph g = gen::barabasi_albert(2000, 5, 7);
  const auto hash = Partitioning::create(g, 16, PartitionStrategy::kHash);
  const auto greedy =
      Partitioning::create(g, 16, PartitionStrategy::kGreedy);
  EXPECT_LT(greedy.replication_factor(), hash.replication_factor());
}

TEST(Partitioning, GreedyBalancesLoad) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 8, PartitionStrategy::kGreedy);
  const auto& loads = p.edges_per_machine();
  const EdgeIndex expected = g.num_edges() / 8;
  for (const auto load : loads) {
    EXPECT_GT(load, expected / 3);
    EXPECT_LT(load, expected * 3);
  }
}

TEST(Partitioning, IsolatedVerticesGetPlacement) {
  GraphBuilder b(10);
  b.add_edge(0, 1);  // vertices 2..9 isolated
  const CsrGraph g = b.build();
  const auto p = Partitioning::create(g, 4, PartitionStrategy::kGreedy);
  for (VertexId u = 2; u < 10; ++u) {
    EXPECT_EQ(p.replicas(u).count(), 1);
    EXPECT_TRUE(p.replicas(u).contains(p.master(u)));
  }
}

TEST(Partitioning, RejectsTooManyMachines) {
  const CsrGraph g = test_graph();
  EXPECT_THROW(Partitioning::create(g, 65, PartitionStrategy::kHash),
               CheckError);
  EXPECT_THROW(Partitioning::create(g, 0, PartitionStrategy::kHash),
               CheckError);
}

TEST(Partitioning, SixtyFourMachinesSupported) {
  const CsrGraph g = test_graph();
  const auto p = Partitioning::create(g, 64, PartitionStrategy::kHash);
  EXPECT_EQ(p.num_machines(), 64u);
}

// ---------- from_edge_assignment edge cases ----------

TEST(FromEdgeAssignment, RejectsOutOfRangeMachineWithClearError) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const CsrGraph g = b.build();
  try {
    const auto p = Partitioning::from_edge_assignment(g, 4, {0, 9});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    // The error names the offending index, value and machine count —
    // nothing may be indexed before validation runs.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("edge_machine[1] = 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 machines"), std::string::npos) << msg;
  }
  // Boundary: machine id == machines is already out of range.
  EXPECT_THROW(Partitioning::from_edge_assignment(g, 2, {0, 2}),
               CheckError);
}

TEST(FromEdgeAssignment, IsolatedVerticesGetDeterministicPlacement) {
  GraphBuilder b(8);
  b.add_edge(0, 1);  // vertices 2..7 isolated
  const CsrGraph g = b.build();
  const auto p = Partitioning::from_edge_assignment(g, 4, {2});
  EXPECT_EQ(p.master(0), 2);
  EXPECT_EQ(p.master(1), 2);
  for (VertexId u = 2; u < 8; ++u) {
    EXPECT_EQ(p.replicas(u).count(), 1);
    EXPECT_TRUE(p.replicas(u).contains(p.master(u)));
    EXPECT_LT(p.master(u), 4);
  }
  const auto q = Partitioning::from_edge_assignment(g, 4, {2});
  for (VertexId u = 0; u < 8; ++u) EXPECT_EQ(p.master(u), q.master(u));
}

TEST(FromEdgeAssignment, SingleMachineIsTrivial) {
  const CsrGraph g = test_graph();
  const std::vector<MachineId> all_zero(g.num_edges(), 0);
  const auto p = Partitioning::from_edge_assignment(g, 1, all_zero);
  EXPECT_DOUBLE_EQ(p.replication_factor(), 1.0);
  EXPECT_EQ(p.edges_per_machine()[0], g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(p.master(u), 0);
  }
}

TEST(FromEdgeAssignment, AllEdgesOnOneMachineOfMany) {
  const CsrGraph g = test_graph();
  const std::vector<MachineId> all_three(g.num_edges(), 3);
  const auto p = Partitioning::from_edge_assignment(g, 8, all_three);
  EXPECT_EQ(p.edges_per_machine()[3], g.num_edges());
  for (std::size_t m = 0; m < 8; ++m) {
    if (m != 3) {
      EXPECT_EQ(p.edges_per_machine()[m], 0u);
    }
  }
  // Every connected vertex lives (and is mastered) on machine 3 only.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.out_degree(u) + g.in_degree(u) == 0) continue;
    EXPECT_EQ(p.replicas(u).count(), 1);
    EXPECT_EQ(p.master(u), 3);
  }
  EXPECT_DOUBLE_EQ(p.replication_factor(), 1.0);
}

TEST(FromEdgeAssignment, SixtyFourMachinesRoundRobin) {
  const CsrGraph g = gen::erdos_renyi(300, 3000, 21);
  std::vector<MachineId> assign(g.num_edges());
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
    assign[e] = static_cast<MachineId>(e % 64);
  }
  const auto p = Partitioning::from_edge_assignment(g, 64, assign);
  EXPECT_EQ(p.num_machines(), 64u);
  EdgeIndex total = 0;
  for (const auto load : p.edges_per_machine()) total += load;
  EXPECT_EQ(total, g.num_edges());
  for (EdgeIndex e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(p.edge_machine(e), e % 64);
  }
  // Machine 64 would be one past the mask.
  assign[0] = 64;
  EXPECT_THROW(Partitioning::from_edge_assignment(g, 64, assign),
               CheckError);
}

TEST(ReplicaSet, BitOperations) {
  ReplicaSet r;
  EXPECT_TRUE(r.empty());
  r.add(0);
  r.add(63);
  r.add(0);  // idempotent
  EXPECT_EQ(r.count(), 2);
  EXPECT_TRUE(r.contains(0));
  EXPECT_TRUE(r.contains(63));
  EXPECT_FALSE(r.contains(5));
  std::vector<int> seen;
  r.for_each([&](MachineId m) { seen.push_back(m); });
  EXPECT_EQ(seen, (std::vector<int>{0, 63}));
}

}  // namespace
}  // namespace snaple::gas
