// Tests for the supervised ensemble extension (core/ensemble.hpp) and the
// extended rank metrics that evaluate it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ensemble.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"

namespace snaple {
namespace {

const eval::PreparedDataset& dataset() {
  static const eval::PreparedDataset ds =
      eval::prepare_dataset("livejournal", 0.04, 77);
  return ds;
}

const gas::ClusterConfig& cluster() {
  static const gas::ClusterConfig c = gas::ClusterConfig::type_ii(2);
  return c;
}

TEST(Ensemble, TrainsFiniteNonTrivialWeights) {
  EnsembleConfig cfg;
  cfg.seed = 5;
  const auto model = train_ensemble(dataset().train, cfg, cluster());
  ASSERT_EQ(model.weights.size(), cfg.components.size());
  double magnitude = 0.0;
  for (const double w : model.weights) {
    ASSERT_TRUE(std::isfinite(w));
    magnitude += std::abs(w);
  }
  EXPECT_GT(magnitude, 1e-3);  // learned something
  EXPECT_TRUE(std::isfinite(model.bias));
  for (const double s : model.scales) EXPECT_GT(s, 0.0);
}

TEST(Ensemble, Deterministic) {
  EnsembleConfig cfg;
  cfg.seed = 5;
  const auto a = run_ensemble(dataset().train, cfg, cluster());
  const auto b = run_ensemble(dataset().train, cfg, cluster());
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.model.weights, b.model.weights);
}

TEST(Ensemble, PredictionsRespectK) {
  EnsembleConfig cfg;
  cfg.k = 3;
  const auto result = run_ensemble(dataset().train, cfg, cluster());
  for (const auto& p : result.predictions) EXPECT_LE(p.size(), 3u);
}

TEST(Ensemble, ExcludesExistingNeighbors) {
  EnsembleConfig cfg;
  // Without truncation the candidate filter sees full neighborhoods, so
  // exclusion is exact. (With thrΓ < deg(u), Algorithm 2 line 15 only
  // excludes the *sampled* Γ̂(u) — re-predicting a hub's existing edge is
  // paper-faithful behaviour, not a bug.)
  cfg.thr_gamma = kUnlimited;
  const auto result = run_ensemble(dataset().train, cfg, cluster());
  const auto& g = dataset().train;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId z : result.predictions[u]) {
      EXPECT_NE(z, u);
      EXPECT_FALSE(g.has_edge(u, z));
    }
  }
}

// The headline property the paper hopes for from supervised extensions:
// the blend should not be worse than its weakest component and should
// approach (or beat) the best one.
TEST(Ensemble, CompetitiveWithBestComponent) {
  EnsembleConfig cfg;
  cfg.seed = 9;
  const auto ensemble = run_ensemble(dataset().train, cfg, cluster());
  const double ensemble_recall =
      eval::recall(ensemble.predictions, dataset().hidden);

  double best_component = 0.0;
  double worst_component = 1.0;
  for (const ScoreKind kind : cfg.components) {
    SnapleConfig scfg;
    scfg.score = kind;
    scfg.k = cfg.k;
    scfg.k_local = cfg.k_local;
    scfg.thr_gamma = cfg.thr_gamma;
    const auto out = eval::run_snaple_experiment(dataset(), scfg, cluster());
    best_component = std::max(best_component, out.recall);
    worst_component = std::min(worst_component, out.recall);
  }
  EXPECT_GT(ensemble_recall, worst_component);
  EXPECT_GE(ensemble_recall, best_component * 0.9);
}

TEST(Ensemble, RejectsMismatchedModel) {
  EnsembleConfig cfg;
  EnsembleModel model;
  model.weights = {1.0};  // wrong arity for 3 components
  model.scales = {1.0};
  EXPECT_THROW(predict_ensemble(dataset().train, cfg, model, cluster()),
               CheckError);
}

// ---------- extended metrics ----------

TEST(RankMetrics, RecallAtPrefix) {
  std::vector<std::vector<VertexId>> preds = {{7, 8, 9}};
  std::vector<Edge> hidden = {{0, 9}};
  EXPECT_DOUBLE_EQ(eval::recall_at(preds, hidden, 1), 0.0);
  EXPECT_DOUBLE_EQ(eval::recall_at(preds, hidden, 2), 0.0);
  EXPECT_DOUBLE_EQ(eval::recall_at(preds, hidden, 3), 1.0);
  EXPECT_DOUBLE_EQ(eval::recall_at(preds, hidden, 99), 1.0);
}

TEST(RankMetrics, RecallAtMatchesFullRecall) {
  const auto& ds = dataset();
  SnapleConfig cfg;
  cfg.k = 20;
  LinkPredictor predictor(cfg, cluster());
  const auto run = predictor.predict(ds.train);
  EXPECT_DOUBLE_EQ(eval::recall_at(run.predictions, ds.hidden, 20),
                   eval::recall(run.predictions, ds.hidden));
  // Prefix recall is monotone in k.
  double last = 0.0;
  for (const std::size_t k : {1ul, 5ul, 10ul, 20ul}) {
    const double r = eval::recall_at(run.predictions, ds.hidden, k);
    EXPECT_GE(r, last);
    last = r;
  }
}

TEST(RankMetrics, MrrHandCase) {
  std::vector<std::vector<VertexId>> preds = {{5, 7}, {9}, {}};
  std::vector<Edge> hidden = {{0, 7}, {1, 9}, {2, 1}};
  // ranks: 2, 1, absent -> (1/2 + 1 + 0) / 3
  EXPECT_DOUBLE_EQ(eval::mean_reciprocal_rank(preds, hidden), 0.5);
}

TEST(RankMetrics, MrrBoundedByRecall) {
  const auto& ds = dataset();
  SnapleConfig cfg;
  LinkPredictor predictor(cfg, cluster());
  const auto run = predictor.predict(ds.train);
  const double mrr = eval::mean_reciprocal_rank(run.predictions, ds.hidden);
  const double r = eval::recall(run.predictions, ds.hidden);
  EXPECT_GT(mrr, 0.0);
  EXPECT_LE(mrr, r + 1e-12);  // each found edge contributes <= 1
}

}  // namespace
}  // namespace snaple
