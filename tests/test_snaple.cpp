// End-to-end tests for the SNAPLE program (Algorithm 2) and predictor API.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/predictor.hpp"
#include "core/snaple_program.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/gen/generators.hpp"
#include "reference_snaple.hpp"

namespace snaple {
namespace {

/// Hand graph: 0 -> {1,2}; 1 -> {2,3}; 2 -> {1,3}; 3 -> {1}.
/// Candidates for 0 (2-hop, non-neighbors): only 3 (via 1 and via 2).
CsrGraph hand_graph() {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 1);
  return b.build();
}

SnapleConfig unrestricted(ScoreKind kind = ScoreKind::kLinearSum) {
  SnapleConfig cfg;
  cfg.score = kind;
  cfg.k_local = kUnlimited;
  cfg.thr_gamma = kUnlimited;
  return cfg;
}

SnapleResult run_on(const CsrGraph& g, const SnapleConfig& cfg,
                    std::size_t machines = 1,
                    gas::ApplyMode mode = gas::ApplyMode::kFused) {
  const auto part = gas::Partitioning::create(
      g, machines, gas::PartitionStrategy::kGreedy);
  const auto cluster = machines == 1 ? gas::ClusterConfig::single_machine(2)
                                     : gas::ClusterConfig::type_i(machines);
  return run_snaple(g, cfg, part, cluster, nullptr, mode);
}

TEST(SnapleProgram, HandComputedScores) {
  const CsrGraph g = hand_graph();
  // Γ(0)={1,2}, Γ(1)={2,3}, Γ(2)={1,3}, Γ(3)={1}.
  // sim = Jaccard: sim(0,1)=|{2}|/|{1,2,3}|=1/3; sim(0,2)=|{1}|/3=1/3.
  // Paths 0→1→3: sim(1,3)=|∅|/|{1,2,3}|=0    → path=0.9·(1/3)+0.1·0  =0.3
  //       0→2→3: sim(2,3)=|{1}|/|{1,3}|=1/2 → path=0.9·(1/3)+0.1·0.5=0.35
  // Candidate z=3 only (2∈Γ(0) excluded, 1∈Γ(0) excluded).
  // linearSum score(0,3)=0.65 (test_model_query checks the value).
  const auto result = run_on(g, unrestricted());
  ASSERT_EQ(result.predictions[0], (std::vector<VertexId>{3}));

  // counter: two paths → score 2, same single candidate.
  const auto counted = run_on(g, unrestricted(ScoreKind::kCounter));
  ASSERT_EQ(counted.predictions[0], (std::vector<VertexId>{3}));
}

TEST(SnapleProgram, PredictionsExcludeSelfAndNeighbors) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 5);
  const auto result = run_on(g, unrestricted());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId z : result.predictions[u]) {
      EXPECT_NE(z, u);
      EXPECT_FALSE(g.has_edge(u, z)) << u << "->" << z;
    }
  }
}

TEST(SnapleProgram, AtMostKPredictions) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 5);
  SnapleConfig cfg = unrestricted();
  cfg.k = 3;
  const auto result = run_on(g, cfg);
  for (const auto& p : result.predictions) EXPECT_LE(p.size(), 3u);
}

TEST(SnapleProgram, MatchesReferenceImplementationUnrestricted) {
  // With thrΓ = klocal = ∞ the pipeline must reproduce eq. (8)-(10)
  // exactly (modulo float accumulation on ties).
  const CsrGraph g = gen::make_dataset("gowalla", 0.05, 11);
  for (const ScoreKind kind :
       {ScoreKind::kLinearSum, ScoreKind::kCounter, ScoreKind::kPpr,
        ScoreKind::kLinearMean, ScoreKind::kGeomGeom}) {
    const SnapleConfig cfg = unrestricted(kind);
    const auto got = run_on(g, cfg).predictions;
    const auto want = testing::reference_snaple_predictions(
        g, cfg.resolve_score(), cfg.k);
    std::size_t agree = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      agree += (got[u] == want[u]);
    }
    // Allow a whisker of float-vs-double tie divergence.
    EXPECT_GE(static_cast<double>(agree) / g.num_vertices(), 0.98)
        << score_name(kind);
  }
}

TEST(SnapleProgram, FusedEqualsTwoPhase) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 7);
  SnapleConfig cfg;  // defaults: klocal=20, thr=200
  const auto fused = run_on(g, cfg, 4, gas::ApplyMode::kFused);
  const auto strict = run_on(g, cfg, 4, gas::ApplyMode::kTwoPhase);
  EXPECT_EQ(fused.predictions, strict.predictions);
}

TEST(SnapleProgram, DeterministicAcrossThreadCounts) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 7);
  const auto part =
      gas::Partitioning::create(g, 4, gas::PartitionStrategy::kGreedy);
  const auto cluster = gas::ClusterConfig::type_i(4);
  SnapleConfig cfg;
  ThreadPool one(1);
  ThreadPool many(8);
  const auto a = run_snaple(g, cfg, part, cluster, &one);
  const auto b = run_snaple(g, cfg, part, cluster, &many);
  EXPECT_EQ(a.predictions, b.predictions);
}

TEST(SnapleProgram, DeterministicAcrossRuns) {
  const CsrGraph g = gen::make_dataset("livejournal", 0.02, 7);
  SnapleConfig cfg;
  const auto a = run_on(g, cfg, 4);
  const auto b = run_on(g, cfg, 4);
  EXPECT_EQ(a.predictions, b.predictions);
}

TEST(SnapleProgram, KlocalLimitsSimsSize) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 9);
  SnapleConfig cfg;
  cfg.k_local = 7;
  // Peek at vertex data through a manual engine run mirror: re-run the
  // program and verify via its observable effect — predictions only use
  // klocal neighbors, so compare against the unrestricted run.
  const auto limited = run_on(g, cfg);
  cfg.k_local = kUnlimited;
  const auto full = run_on(g, cfg);
  // Structural check: limited run returns no more predictions than full.
  std::size_t limited_total = 0;
  std::size_t full_total = 0;
  for (const auto& p : limited.predictions) limited_total += p.size();
  for (const auto& p : full.predictions) full_total += p.size();
  EXPECT_LE(limited_total, full_total);
}

TEST(SnapleProgram, TruncationReducesNetworkBytes) {
  // Table 5 pairs thrΓ with klocal when claiming savings: with klocal
  // bounded, truncation slims the step-1 neighborhood shipping without
  // inflating step 3. (With klocal=∞, truncating Γ̂ would *weaken* the
  // step-3 neighbor-exclusion filter and can add triplets — a subtlety
  // the direct comparison below avoids, as the paper does.)
  const CsrGraph g = gen::make_dataset("orkut", 0.02, 9);
  SnapleConfig cfg;
  cfg.k_local = 20;
  cfg.thr_gamma = kUnlimited;
  const auto part =
      gas::Partitioning::create(g, 4, gas::PartitionStrategy::kGreedy);
  const auto cluster = gas::ClusterConfig::type_i(4);
  const auto full = run_snaple(g, cfg, part, cluster);
  cfg.thr_gamma = 20;
  const auto truncated = run_snaple(g, cfg, part, cluster);
  EXPECT_LT(truncated.report.total_net_bytes(),
            full.report.total_net_bytes());
}

TEST(SnapleProgram, TruncationApproximatesThreshold) {
  // Vertices far above thrΓ keep ≈ thrΓ sampled neighbors (Bernoulli
  // truncation, Algorithm 2 line 3) — verify via step-1 network volume:
  // a star hub with degree 400 and thr=40 should ship ~40 ids.
  GraphBuilder b;
  for (VertexId leaf = 1; leaf <= 400; ++leaf) b.add_edge(0, leaf);
  const CsrGraph g = b.build();
  SnapleConfig cfg;
  cfg.thr_gamma = 40;
  cfg.k_local = kUnlimited;
  const auto result = run_on(g, cfg);
  // Hub kept Γ̂ of size ~Binomial(400, 0.1): wide margin [15, 80].
  // The ids survive into step 2 sims (k_local unlimited), observable as
  // bytes: step-2 gather ships one (id,sim) pair per edge regardless;
  // instead verify through step-1 accumulator memory accounting.
  const auto& step1 = result.report.steps.at(0);
  const std::size_t hub_gamma_bytes = step1.accumulator_bytes_peak;
  EXPECT_GT(hub_gamma_bytes, 15 * sizeof(VertexId));
  EXPECT_LT(hub_gamma_bytes,
            400 * sizeof(VertexId));  // decisively below full degree
}

TEST(SnapleProgram, SelectionPoliciesChangeOutcome) {
  const CsrGraph g = gen::make_dataset("livejournal", 0.02, 13);
  const auto holdout = eval::remove_random_edges(g, 1, 17);
  auto run_policy = [&](SelectionPolicy policy) {
    SnapleConfig cfg;
    cfg.k_local = 5;
    cfg.policy = policy;
    const auto result = run_on(holdout.train, cfg);
    return eval::recall(result.predictions, holdout.hidden);
  };
  const double r_max = run_policy(SelectionPolicy::kMax);
  const double r_min = run_policy(SelectionPolicy::kMin);
  const double r_rnd = run_policy(SelectionPolicy::kRandom);
  // Figure 7: Γmax dominates at small klocal; Γmin is the worst control.
  EXPECT_GT(r_max, r_rnd);
  EXPECT_GT(r_rnd, r_min);
}

TEST(SnapleProgram, VertexDataBytesCountsAllFields) {
  SnapleVertexData d;
  const auto empty = snaple_vertex_data_bytes(d);
  d.gamma_hat = {1, 2, 3};
  d.sims = {{1, 0.5f}};
  d.predicted = {9};
  EXPECT_EQ(snaple_vertex_data_bytes(d),
            empty + 3 * sizeof(VertexId) + (sizeof(VertexId) + sizeof(float)) +
                (sizeof(VertexId) + sizeof(float)));
}

TEST(SnapleProgram, ScoredPredictionsAlignWithPlain) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  const auto result = run_on(g, unrestricted());
  ASSERT_EQ(result.scored.size(), result.predictions.size());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ASSERT_EQ(result.scored[u].size(), result.predictions[u].size());
    for (std::size_t i = 0; i < result.scored[u].size(); ++i) {
      EXPECT_EQ(result.scored[u][i].first, result.predictions[u][i]);
      if (i > 0) {
        EXPECT_GE(result.scored[u][i - 1].second,
                  result.scored[u][i].second);  // best first
      }
    }
  }
}

// ---------- K=3 extension (paper §3.1 footnote 2) ----------

TEST(SnapleThreeHop, ReachesThreeHopCandidates) {
  // Chain 0→1→2→3→4 (+ some sideways edges so similarities are nonzero).
  GraphBuilder b;
  for (VertexId i = 0; i + 1 < 5; ++i) b.add_edge(i, i + 1);
  b.add_edge(0, 5);
  b.add_edge(1, 5);  // gives sim(0,1) > 0 via common neighbor 5
  b.add_edge(2, 6);
  b.add_edge(1, 6);  // sim(1,2) > 0
  b.add_edge(3, 7);
  b.add_edge(2, 7);  // sim(2,3) > 0
  const CsrGraph g = b.build();

  SnapleConfig two = unrestricted(ScoreKind::kCounter);
  const auto r2 = run_on(g, two);
  // K=2 from vertex 0 can reach {2, 6} (via 1) but never 3.
  EXPECT_EQ(std::count(r2.predictions[0].begin(), r2.predictions[0].end(),
                       VertexId{3}),
            0);

  SnapleConfig three = two;
  three.k_hops = 3;
  const auto r3 = run_on(g, three);
  EXPECT_EQ(std::count(r3.predictions[0].begin(), r3.predictions[0].end(),
                       VertexId{3}),
            1);
  // K=3 keeps the 2-hop candidates too (paths of length 2 and 3).
  EXPECT_EQ(std::count(r3.predictions[0].begin(), r3.predictions[0].end(),
                       VertexId{2}),
            1);
}

TEST(SnapleThreeHop, DeterministicAndWellFormed) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  cfg.k_local = 10;
  const auto a = run_on(g, cfg);
  const auto b = run_on(g, cfg);
  EXPECT_EQ(a.predictions, b.predictions);
  for (const auto& p : a.predictions) EXPECT_LE(p.size(), cfg.k);
}

TEST(SnapleThreeHop, RunsFourGasSteps) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  SnapleConfig cfg;
  cfg.k_hops = 3;
  const auto result = run_on(g, cfg);
  EXPECT_EQ(result.report.steps.size(), 4u);
  EXPECT_EQ(result.report.steps[2].name, "2b:hop2-scores");
}

TEST(SnapleThreeHop, RecallStaysInBandOnReplica) {
  // The extra hop adds weaker candidates; recall should stay in the same
  // ballpark as K=2 (the extension trades precision for reach).
  const CsrGraph g = gen::make_dataset("livejournal", 0.02, 13);
  const auto holdout = eval::remove_random_edges(g, 1, 17);
  SnapleConfig cfg;
  cfg.k_local = 20;
  const auto r2 = run_on(holdout.train, cfg);
  cfg.k_hops = 3;
  const auto r3 = run_on(holdout.train, cfg);
  const double recall2 = eval::recall(r2.predictions, holdout.hidden);
  const double recall3 = eval::recall(r3.predictions, holdout.hidden);
  EXPECT_GT(recall3, recall2 * 0.5);
}

TEST(SnapleThreeHop, RejectsUnsupportedK) {
  const CsrGraph g = hand_graph();
  SnapleConfig cfg;
  cfg.k_hops = 4;
  EXPECT_THROW(run_on(g, cfg), CheckError);
}

TEST(SnapleConfigTest, DescribeMentionsKnobs) {
  SnapleConfig cfg;
  cfg.k_local = kUnlimited;
  cfg.policy = SelectionPolicy::kRandom;
  const auto desc = cfg.describe();
  EXPECT_NE(desc.find("linearSum"), std::string::npos);
  EXPECT_NE(desc.find("klocal=inf"), std::string::npos);
  EXPECT_NE(desc.find("policy=rnd"), std::string::npos);
}

TEST(LinkPredictorApi, PredictReturnsTimingAndTraffic) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(4));
  const auto run = predictor.predict(g);
  EXPECT_EQ(run.predictions.size(), g.num_vertices());
  EXPECT_GT(run.wall_seconds, 0.0);
  EXPECT_GT(run.simulated_seconds, 0.0);
  EXPECT_GT(run.network_bytes, 0u);
  EXPECT_GE(run.replication_factor, 1.0);
  // Two fit steps (K=2) plus the batch-serve pass — predict() is sugar
  // over fit + query; run_snaple keeps the fully-accounted 3-step path.
  EXPECT_EQ(run.report.steps.size(), 3u);
}

TEST(LinkPredictorApi, ReusablePartitioning) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 5);
  const auto part =
      gas::Partitioning::create(g, 4, gas::PartitionStrategy::kGreedy);
  SnapleConfig cfg;
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(4));
  const auto a = predictor.predict_with_partitioning(g, part);
  const auto b = predictor.predict_with_partitioning(g, part);
  EXPECT_EQ(a.predictions, b.predictions);
}

}  // namespace
}  // namespace snaple
