// Tests for the evaluation harness: protocol, metrics, experiment runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"

namespace snaple::eval {
namespace {

TEST(Protocol, RemovesOneEdgePerQualifyingVertex) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 3);
  const Holdout h = remove_random_edges(g, 1, 7);
  std::size_t qualifying = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    qualifying += (g.out_degree(u) > 3);
  }
  EXPECT_EQ(h.hidden.size(), qualifying);
  EXPECT_EQ(h.train.num_edges() + h.hidden.size(), g.num_edges());
}

TEST(Protocol, HiddenEdgesExistInOriginalNotTrain) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  const Holdout h = remove_random_edges(g, 1, 7);
  for (const Edge& e : h.hidden) {
    EXPECT_TRUE(g.has_edge(e.src, e.dst));
    EXPECT_FALSE(h.train.has_edge(e.src, e.dst));
  }
}

TEST(Protocol, LowDegreeVerticesUntouched) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);  // degree exactly 3: |Γ|>3 is false -> keep all
  for (VertexId v = 1; v <= 8; ++v) b.add_edge(10, v);  // degree 8
  const CsrGraph g = b.build();
  const Holdout h = remove_random_edges(g, 1, 5);
  EXPECT_EQ(h.train.out_degree(0), 3u);
  EXPECT_EQ(h.train.out_degree(10), 7u);
  ASSERT_EQ(h.hidden.size(), 1u);
  EXPECT_EQ(h.hidden[0].src, 10u);
}

TEST(Protocol, MultiRemovalNeverEmptiesVertex) {
  // Figure 10 rule: "If a vertex has less edges than the number to be
  // removed, we removed all the edges except one."
  GraphBuilder b;
  for (VertexId v = 1; v <= 5; ++v) b.add_edge(0, v);  // degree 5
  const CsrGraph g = b.build();
  const Holdout h = remove_random_edges(g, 10, 11);
  EXPECT_EQ(h.train.out_degree(0), 1u);
  EXPECT_EQ(h.hidden.size(), 4u);
}

TEST(Protocol, RemovedCountScalesWithParameter) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 3);
  const auto h1 = remove_random_edges(g, 1, 7);
  const auto h3 = remove_random_edges(g, 3, 7);
  EXPECT_GT(h3.hidden.size(), 2 * h1.hidden.size());
}

TEST(Protocol, DeterministicForSeed) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 3);
  const auto a = remove_random_edges(g, 1, 7);
  const auto b = remove_random_edges(g, 1, 7);
  EXPECT_EQ(a.hidden, b.hidden);
  const auto c = remove_random_edges(g, 1, 8);
  EXPECT_NE(a.hidden, c.hidden);
}

// ---------- metrics ----------

TEST(Metrics, RecallHandCase) {
  std::vector<std::vector<VertexId>> preds = {{1, 2}, {3}, {}};
  std::vector<Edge> hidden = {{0, 2}, {1, 9}, {2, 5}};
  // Hits: (0,2) yes; (1,9) no; (2,5) no.
  EXPECT_EQ(hits(preds, hidden), 1u);
  EXPECT_DOUBLE_EQ(recall(preds, hidden), 1.0 / 3.0);
}

TEST(Metrics, PrecisionHandCase) {
  std::vector<std::vector<VertexId>> preds = {{1, 2}, {3}, {}};
  std::vector<Edge> hidden = {{0, 2}, {1, 3}};
  EXPECT_DOUBLE_EQ(precision(preds, hidden), 2.0 / 3.0);
  EXPECT_EQ(prediction_count(preds), 3u);
}

TEST(Metrics, EmptyEdgeCases) {
  EXPECT_DOUBLE_EQ(recall({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(precision({{}}, {{0, 1}}), 0.0);
  std::vector<Edge> hidden = {{5, 1}};  // src out of prediction range
  EXPECT_DOUBLE_EQ(recall({{1}}, hidden), 0.0);
}

TEST(Metrics, PrecisionProportionalToRecall) {
  // §5.2: with fixed removals and fixed k, precision ∝ recall. Verify the
  // exact relation precision = recall * |hidden| / |predictions|.
  auto ds = prepare_dataset("gowalla", 0.03, 5);
  SnapleConfig cfg;
  LinkPredictor predictor(cfg);
  const auto run = predictor.predict(ds.train);
  const double r = recall(run.predictions, ds.hidden);
  const double p = precision(run.predictions, ds.hidden);
  const double expected_p = r * static_cast<double>(ds.hidden.size()) /
                            static_cast<double>(
                                prediction_count(run.predictions));
  EXPECT_NEAR(p, expected_p, 1e-12);
}

// ---------- experiment runner ----------

TEST(Experiment, PrepareDatasetWiring) {
  const auto ds = prepare_dataset("gowalla", 0.02, 5, 2);
  EXPECT_EQ(ds.name, "gowalla-s");
  EXPECT_GT(ds.original_edges, ds.train.num_edges());
  EXPECT_FALSE(ds.hidden.empty());
}

TEST(Experiment, SnapleOutcomePopulated) {
  const auto ds = prepare_dataset("gowalla", 0.02, 5);
  SnapleConfig cfg;
  const auto out =
      run_snaple_experiment(ds, cfg, gas::ClusterConfig::type_i(2));
  EXPECT_FALSE(out.out_of_memory);
  EXPECT_GT(out.recall, 0.0);
  EXPECT_GT(out.wall_seconds, 0.0);
  EXPECT_GT(out.simulated_seconds, 0.0);
  EXPECT_GT(out.network_bytes, 0u);
  EXPECT_DOUBLE_EQ(out.reported_seconds(true), out.simulated_seconds);
  EXPECT_DOUBLE_EQ(out.reported_seconds(false), out.wall_seconds);
}

TEST(Experiment, BaselineOomOutcomeInsteadOfThrow) {
  const auto ds = prepare_dataset("orkut", 0.03, 5);
  baseline::BaselineConfig cfg;
  const std::size_t tight = ds.train.num_edges() * 2 * sizeof(VertexId);
  const auto out = run_baseline_experiment(
      ds, cfg, gas::ClusterConfig::type_i(4, tight));
  EXPECT_TRUE(out.out_of_memory);
  EXPECT_FALSE(out.error.empty());
}

TEST(Experiment, CassovaryOutcome) {
  const auto ds = prepare_dataset("gowalla", 0.02, 5);
  cassovary::WalkConfig cfg;
  cfg.walks = 50;
  const auto out = run_cassovary_experiment(ds, cfg);
  EXPECT_GT(out.recall, 0.0);
  EXPECT_GT(out.wall_seconds, 0.0);
  EXPECT_FALSE(out.out_of_memory);
}

TEST(Experiment, PrepareGraphAcceptsCustomGraph) {
  GraphBuilder b;
  for (VertexId v = 1; v <= 8; ++v) b.add_edge(0, v);
  auto ds = prepare_graph("custom", b.build(), 3);
  EXPECT_EQ(ds.name, "custom");
  EXPECT_EQ(ds.hidden.size(), 1u);
}

}  // namespace
}  // namespace snaple::eval
