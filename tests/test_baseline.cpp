// Tests for the BASELINE comparator (direct Algorithm 1 on GAS).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "baseline/gas_baseline.hpp"
#include "core/similarity.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "util/top_k.hpp"

namespace snaple::baseline {
namespace {

BaselineResult run_on(const CsrGraph& g, std::size_t machines = 1,
                      std::size_t budget = 0, std::size_t k = 5) {
  const auto part = gas::Partitioning::create(
      g, machines, gas::PartitionStrategy::kGreedy);
  const auto cluster = machines == 1
                           ? gas::ClusterConfig::single_machine(2)
                           : gas::ClusterConfig::type_i(machines, budget);
  return run_baseline(g, BaselineConfig{.k = k}, part, cluster);
}

/// Brute-force Algorithm 1 with the 2-hop restriction: exact Jaccard over
/// full neighborhoods, top-k.
std::vector<std::vector<VertexId>> brute_force(const CsrGraph& g,
                                               std::size_t k) {
  std::vector<std::vector<VertexId>> preds(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.out_neighbors(u);
    std::unordered_set<VertexId> candidates;
    for (VertexId v : nu) {
      for (VertexId z : g.out_neighbors(v)) {
        if (z == u) continue;
        if (std::binary_search(nu.begin(), nu.end(), z)) continue;
        candidates.insert(z);
      }
    }
    TopK<VertexId, double> top(k);
    for (VertexId z : candidates) {
      top.offer(z, jaccard(nu, g.out_neighbors(z)));
    }
    preds[u] = top.take_items();
  }
  return preds;
}

TEST(Baseline, MatchesBruteForceAlgorithm1) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.04, 21);
  const auto got = run_on(g).predictions;
  const auto want = brute_force(g, 5);
  std::size_t agree = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    agree += (got[u] == want[u]);
  }
  EXPECT_GE(static_cast<double>(agree) / g.num_vertices(), 0.999);
}

TEST(Baseline, ExcludesSelfAndNeighbors) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 23);
  const auto result = run_on(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId z : result.predictions[u]) {
      EXPECT_NE(z, u);
      EXPECT_FALSE(g.has_edge(u, z));
    }
  }
}

TEST(Baseline, DeterministicAcrossRuns) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.03, 23);
  EXPECT_EQ(run_on(g, 4).predictions, run_on(g, 4).predictions);
}

TEST(Baseline, ThreeGasSteps) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 23);
  const auto result = run_on(g, 2);
  EXPECT_EQ(result.report.steps.size(), 3u);
}

TEST(Baseline, ExhaustsTightMemoryBudget) {
  // The §5.3 phenomenon in miniature: a budget that fits the graph but
  // not the propagated neighborhoods must abort with ResourceExhausted.
  const CsrGraph g = gen::make_dataset("orkut", 0.03, 25);
  const std::size_t tight =
      g.num_edges() * 2 * sizeof(VertexId);  // ~graph-sized budget
  EXPECT_THROW(run_on(g, 4, tight), ResourceExhausted);
}

TEST(Baseline, RunsUnderGenerousBudget) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, 25);
  EXPECT_NO_THROW(run_on(g, 4, 1ull << 33));
}

}  // namespace
}  // namespace snaple::baseline
