// Tombstone overlay removals (ISSUE 10).
//
// The OverlayGraph invariant under test: after ANY interleaving of
// insert()/remove(), every accessor — has_edge, out/in degrees, the
// merged neighbor iteration, num_edges — is identical to a CSR rebuilt
// from scratch on the surviving edge set. That equivalence is what lets
// every row recompute fold over the overlay as if it were the live
// graph. The suite also pins the tombstone bookkeeping invariants
// (delta ∩ base = ∅, tombstones ⊆ base, re-add clears the tombstone,
// remove of a delta edge erases it) and the remove-batch validation
// edge cases with the same deterministic atomic-rejection semantics as
// inserts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "core/row_recompute.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "graph/overlay_graph.hpp"

namespace snaple {
namespace {

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

std::shared_ptr<const CsrGraph> make_base(double scale,
                                          std::uint64_t seed) {
  return std::make_shared<const CsrGraph>(
      gen::make_dataset("gowalla", scale, seed));
}

std::vector<VertexId> merged_out(const OverlayGraph& o, VertexId u) {
  std::vector<VertexId> row;
  o.for_each_out_neighbor(u, [&](VertexId v) { row.push_back(v); });
  return row;
}

std::vector<VertexId> merged_in(const OverlayGraph& o, VertexId u) {
  std::vector<VertexId> row;
  o.for_each_in_neighbor(u, [&](VertexId v) { row.push_back(v); });
  return row;
}

/// Every accessor of `o` must agree with a CSR rebuilt from `live`.
void expect_matches_rebuilt(const OverlayGraph& o, const EdgeSet& live,
                            const std::string& what) {
  const VertexId n = o.num_vertices();
  GraphBuilder b(n);
  for (const auto& [u, v] : live) b.add_edge(u, v);
  const CsrGraph rebuilt = b.build();

  ASSERT_EQ(o.num_edges(), rebuilt.num_edges()) << what;
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(o.out_degree(u), rebuilt.out_degree(u)) << what << " u=" << u;
    ASSERT_EQ(o.in_degree(u), rebuilt.in_degree(u)) << what << " u=" << u;
    const auto out = rebuilt.out_neighbors(u);
    const auto in = rebuilt.in_neighbors(u);
    ASSERT_EQ(merged_out(o, u),
              std::vector<VertexId>(out.begin(), out.end()))
        << what << " u=" << u;
    ASSERT_EQ(merged_in(o, u),
              std::vector<VertexId>(in.begin(), in.end()))
        << what << " u=" << u;
    for (const VertexId v : out) {
      ASSERT_TRUE(o.has_edge(u, v)) << what << " (" << u << "," << v << ")";
    }
  }
}

// ---------- the property: overlay ≡ rebuilt CSR under churn ----------

TEST(OverlayRemoval, RandomInsertRemoveInterleavingsMatchRebuiltCsr) {
  for (const double scale : {0.02, 0.03}) {
    for (const std::uint64_t seed : {3ull, 11ull}) {
      const auto base = make_base(scale, seed);
      const VertexId n = base->num_vertices();
      OverlayGraph overlay(base);

      EdgeSet live;
      std::vector<std::pair<VertexId, VertexId>> pool;  // removal sample
      for (const Edge& e : base->edges()) {
        live.emplace(e.src, e.dst);
        pool.emplace_back(e.src, e.dst);
      }

      std::mt19937 rng(static_cast<unsigned>(seed * 1000 + scale * 100));
      std::uniform_int_distribution<VertexId> pick(0, n - 1);
      std::size_t inserted = 0;
      std::size_t removed = 0;
      for (std::size_t op = 0; op < 400; ++op) {
        if (rng() % 2 == 0 && !pool.empty()) {
          // Remove a random live edge (pool may hold already-removed
          // entries — skip those, mirroring a replayed stream).
          const auto e = pool[rng() % pool.size()];
          if (live.erase(e) == 0) continue;
          ASSERT_TRUE(overlay.remove(e.first, e.second));
          ++removed;
        } else {
          const VertexId u = pick(rng);
          const VertexId v = pick(rng);
          if (u == v) continue;
          if (!live.emplace(u, v).second) continue;
          ASSERT_TRUE(overlay.insert(u, v));
          pool.emplace_back(u, v);
          ++inserted;
        }
      }
      ASSERT_GT(inserted, 50u);
      ASSERT_GT(removed, 50u);
      expect_matches_rebuilt(overlay, live,
                             "scale=" + std::to_string(scale) +
                                 " seed=" + std::to_string(seed));
    }
  }
}

// ---------- tombstone bookkeeping invariants ----------

TEST(OverlayRemoval, RemoveThenReaddClearsTheTombstone) {
  const auto base = make_base(0.02, 7);
  OverlayGraph overlay(base);
  const Edge e = base->edges().front();
  const EdgeIndex edges = overlay.num_edges();

  ASSERT_TRUE(overlay.remove(e.src, e.dst));
  EXPECT_FALSE(overlay.has_edge(e.src, e.dst));
  EXPECT_EQ(overlay.num_removed(), 1u);
  EXPECT_EQ(overlay.num_edges(), edges - 1);
  ASSERT_EQ(overlay.removed_out(e.src).size(), 1u);
  EXPECT_EQ(overlay.removed_out(e.src)[0], e.dst);
  ASSERT_EQ(overlay.removed_in(e.dst).size(), 1u);
  EXPECT_EQ(overlay.removed_in(e.dst)[0], e.src);

  // Re-adding a tombstoned BASE edge clears the tombstone — it must not
  // land in the delta (delta ∩ base stays empty).
  ASSERT_TRUE(overlay.insert(e.src, e.dst));
  EXPECT_TRUE(overlay.has_edge(e.src, e.dst));
  EXPECT_EQ(overlay.num_removed(), 0u);
  EXPECT_EQ(overlay.num_inserted(), 0u);
  EXPECT_EQ(overlay.num_edges(), edges);
  EXPECT_TRUE(overlay.extra_out(e.src).empty());
  EXPECT_TRUE(overlay.removed_out(e.src).empty());
}

TEST(OverlayRemoval, RemoveOfADeltaEdgeErasesItInstead) {
  const auto base = make_base(0.02, 7);
  OverlayGraph overlay(base);
  const VertexId n = overlay.num_vertices();
  // Find an absent edge to insert live.
  Edge fresh{0, 1};
  for (VertexId v = 1; v < n; ++v) {
    if (!base->has_edge(0, v)) {
      fresh = {0, v};
      break;
    }
  }
  ASSERT_FALSE(base->has_edge(fresh.src, fresh.dst));

  ASSERT_TRUE(overlay.insert(fresh.src, fresh.dst));
  EXPECT_EQ(overlay.num_inserted(), 1u);
  ASSERT_TRUE(overlay.remove(fresh.src, fresh.dst));
  // Back to pristine: the delta edge is gone, NOT tombstoned
  // (tombstones ⊆ base).
  EXPECT_EQ(overlay.num_inserted(), 0u);
  EXPECT_EQ(overlay.num_removed(), 0u);
  EXPECT_FALSE(overlay.has_edge(fresh.src, fresh.dst));
  EXPECT_TRUE(overlay.extra_out(fresh.src).empty());
  EXPECT_TRUE(overlay.removed_out(fresh.src).empty());
  EXPECT_EQ(overlay.num_edges(), base->num_edges());
  EXPECT_EQ(overlay.memory_bytes(), 0u);  // all buckets dropped
}

TEST(OverlayRemoval, InvalidRemovesThrowOrReturnFalse) {
  const auto base = make_base(0.02, 7);
  OverlayGraph overlay(base);
  const VertexId n = overlay.num_vertices();
  const Edge e = base->edges().front();

  EXPECT_THROW((void)overlay.remove(3, 3), CheckError);      // self-loop
  EXPECT_THROW((void)overlay.remove(n, 0), CheckError);      // src range
  EXPECT_THROW((void)overlay.remove(0, n + 7), CheckError);  // dst range

  // Removing an absent edge is a no-op `false`, like inserting a
  // present one.
  VertexId v = 1;
  while (base->has_edge(0, v)) ++v;
  EXPECT_FALSE(overlay.remove(0, v));
  // Removing the same edge twice: the second is absent by then.
  ASSERT_TRUE(overlay.remove(e.src, e.dst));
  EXPECT_FALSE(overlay.remove(e.src, e.dst));
  EXPECT_EQ(overlay.num_removed(), 1u);
}

// ---------- remove-batch validation: deterministic, all-or-nothing ----------

TEST(OverlayRemoval, ValidateRemoveBatchRejectsTheWholeBatch) {
  const auto base = make_base(0.02, 13);
  OverlayGraph overlay(base);
  const VertexId n = overlay.num_vertices();
  const auto edges = base->edges();
  ASSERT_GE(edges.size(), 3u);
  const Edge a = edges[0];
  const Edge b = edges[1];

  // A clean batch passes.
  const std::vector<Edge> good = {a, b};
  EXPECT_NO_THROW(rows::validate_remove_batch(overlay, good));

  VertexId w = 1;
  while (base->has_edge(0, w)) ++w;
  const auto expect_reject = [&](std::vector<Edge> batch) {
    EXPECT_THROW(rows::validate_remove_batch(overlay, batch), CheckError);
  };
  expect_reject({a, {3, 3}});                          // self-loop
  expect_reject({a, {n, 0}});                          // src out of range
  expect_reject({a, {0, static_cast<VertexId>(n + 7)}});  // dst range
  expect_reject({a, {0, w}});                          // nonexistent edge
  expect_reject({a, b, a});                            // duplicate in batch

  // Validation never mutates: the full graph is intact and the clean
  // batch still validates afterwards.
  EXPECT_EQ(overlay.num_edges(), base->num_edges());
  EXPECT_NO_THROW(rows::validate_remove_batch(overlay, good));

  // A removed edge invalidates later batches naming it — the check runs
  // against the LIVE graph, so shards replaying the same op stream
  // agree at every step.
  ASSERT_TRUE(overlay.remove(a.src, a.dst));
  expect_reject({a});
  // ...and a tombstoned edge is insertable again, which the insert
  // validator must agree with.
  EXPECT_NO_THROW(rows::validate_insert_batch(overlay, {&a, 1}));
}

}  // namespace
}  // namespace snaple
