// Unit tests for src/util: RNG, TopK, ScoreMap, stats, tables, timing.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/score_map.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/top_k.hpp"

namespace snaple {
namespace {

// ---------- RNG ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(13);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.next_in_range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesDecorrelatedStreams) {
  Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const auto original = v;
  Rng rng(17);
  shuffle(v, rng);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Rng, ShuffleTinyInputs) {
  std::vector<int> empty;
  std::vector<int> one{42};
  Rng rng(1);
  shuffle(empty, rng);
  shuffle(one, rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one, std::vector<int>{42});
}

// ---------- TopK ----------

TEST(TopK, KeepsBestK) {
  TopK<int, double> top(3);
  top.offer(1, 0.5);
  top.offer(2, 0.9);
  top.offer(3, 0.1);
  top.offer(4, 0.7);
  top.offer(5, 0.3);
  EXPECT_EQ(top.take_items(), (std::vector<int>{2, 4, 1}));
}

// Regression: an inverted comparator once made TopK keep the k WORST
// items after the heap filled — silently wrecking every recall number.
TEST(TopK, RegressionDoesNotKeepWorst) {
  TopK<int, double> top(2);
  top.offer(10, 0.1);
  top.offer(20, 0.2);  // heap now full with {0.1, 0.2}
  top.offer(30, 0.9);  // must evict 0.1
  top.offer(40, 0.8);  // must evict 0.2
  EXPECT_EQ(top.take_items(), (std::vector<int>{30, 40}));
}

TEST(TopK, MatchesFullSortOnRandomInput) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<int, double>> items;
    for (int i = 0; i < 200; ++i) {
      items.emplace_back(i, rng.next_double());
    }
    TopK<int, double> top(10);
    for (const auto& [id, s] : items) top.offer(id, s);
    const auto got = top.take_items();

    auto expect = items;
    std::sort(expect.begin(), expect.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], expect[i].first);
  }
}

TEST(TopK, DeterministicTieBreakPrefersSmallerItem) {
  TopK<int, double> top(2);
  top.offer(9, 0.5);
  top.offer(3, 0.5);
  top.offer(7, 0.5);
  EXPECT_EQ(top.take_items(), (std::vector<int>{3, 7}));
}

TEST(TopK, FewerItemsThanK) {
  TopK<int, double> top(10);
  top.offer(1, 0.3);
  top.offer(2, 0.6);
  EXPECT_EQ(top.take_items(), (std::vector<int>{2, 1}));
}

TEST(TopK, ZeroCapacity) {
  TopK<int, double> top(0);
  top.offer(1, 0.5);
  EXPECT_TRUE(top.take_items().empty());
}

TEST(TopK, TakeSortedDescending) {
  TopK<int, double> top(4);
  for (int i = 0; i < 20; ++i) top.offer(i, static_cast<double>(i % 7));
  const auto entries = top.take_sorted();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].score, entries[i].score);
  }
  EXPECT_TRUE(top.empty());  // take_* leaves the selector reusable
}

// ---------- ScoreMap ----------

TEST(ScoreMap, AccumulateSumsAndCounts) {
  ScoreMap m;
  auto plus = [](float a, float b) { return a + b; };
  m.accumulate(5, 1.0f, 1, plus);
  m.accumulate(5, 2.0f, 1, plus);
  m.accumulate(7, 4.0f, 3, plus);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_FLOAT_EQ(m.find(5)->score, 3.0f);
  EXPECT_EQ(m.find(5)->count, 2u);
  EXPECT_FLOAT_EQ(m.find(7)->score, 4.0f);
  EXPECT_EQ(m.find(7)->count, 3u);
  EXPECT_EQ(m.find(9), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(ScoreMap, ProductPreOp) {
  ScoreMap m;
  auto times = [](float a, float b) { return a * b; };
  m.accumulate(1, 0.5f, 1, times);
  m.accumulate(1, 0.5f, 1, times);
  EXPECT_FLOAT_EQ(m.find(1)->score, 0.25f);
}

TEST(ScoreMap, GrowsPastInitialCapacity) {
  ScoreMap m(4);
  auto plus = [](float a, float b) { return a + b; };
  for (std::uint32_t k = 0; k < 1000; ++k) m.accumulate(k, 1.0f, 1, plus);
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
  }
}

TEST(ScoreMap, ClearKeepsMemoryAndEmpties) {
  ScoreMap m;
  auto plus = [](float a, float b) { return a + b; };
  for (std::uint32_t k = 0; k < 100; ++k) m.accumulate(k, 1.0f, 1, plus);
  const auto bytes = m.memory_bytes();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.memory_bytes(), bytes);
  EXPECT_EQ(m.find(5), nullptr);
}

TEST(ScoreMap, MatchesUnorderedMapReference) {
  Rng rng(77);
  auto plus = [](float a, float b) { return a + b; };
  for (int trial = 0; trial < 10; ++trial) {
    ScoreMap m;
    std::unordered_map<std::uint32_t, std::pair<float, std::uint32_t>> ref;
    for (int i = 0; i < 3000; ++i) {
      const auto key = static_cast<std::uint32_t>(rng.next_below(500));
      const auto val = static_cast<float>(rng.next_double());
      m.accumulate(key, val, 1, plus);
      auto [it, inserted] = ref.try_emplace(key, val, 1);
      if (!inserted) {
        it->second.first += val;
        it->second.second += 1;
      }
    }
    EXPECT_EQ(m.size(), ref.size());
    std::size_t visited = 0;
    m.for_each([&](std::uint32_t k, float s, std::uint32_t n) {
      ++visited;
      ASSERT_TRUE(ref.count(k));
      EXPECT_NEAR(s, ref[k].first, 1e-3);
      EXPECT_EQ(n, ref[k].second);
    });
    EXPECT_EQ(visited, ref.size());
  }
}

TEST(ScoreMap, DefaultConstructionIsLazy) {
  ScoreMap m;
  EXPECT_EQ(m.memory_bytes(), 0u);  // no table until the first entry
  EXPECT_EQ(m.find(3), nullptr);
  m.clear();  // no-op on the lazy-empty state
  auto plus = [](float a, float b) { return a + b; };
  m.accumulate(3, 1.0f, 1, plus);
  EXPECT_GT(m.memory_bytes(), 0u);
  EXPECT_FLOAT_EQ(m.find(3)->score, 1.0f);
}

TEST(ScoreMap, ExportCompactSealsEntriesAndResetsSource) {
  ScoreMap m;
  auto plus = [](float a, float b) { return a + b; };
  for (std::uint32_t k = 0; k < 50; ++k) m.accumulate(k, 1.0f, 1, plus);
  const auto bytes = m.memory_bytes();
  ScoreMap sealed = m.export_compact();
  // Source is empty but keeps its table for the next vertex.
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.memory_bytes(), bytes);
  // The sealed map holds exactly the entries, densely.
  EXPECT_EQ(sealed.size(), 50u);
  EXPECT_EQ(sealed.memory_bytes(), 50 * sizeof(ScoreMap::Slot));
  std::size_t visited = 0;
  sealed.for_each([&](std::uint32_t k, float s, std::uint32_t n) {
    ++visited;
    EXPECT_LT(k, 50u);
    EXPECT_FLOAT_EQ(s, 1.0f);
    EXPECT_EQ(n, 1u);
  });
  EXPECT_EQ(visited, 50u);
  // The source map is immediately reusable.
  m.accumulate(7, 2.0f, 1, plus);
  EXPECT_FLOAT_EQ(m.find(7)->score, 2.0f);
}

TEST(ScoreMap, AccumulateIntoSealedMapSelfHeals) {
  ScoreMap m;
  auto plus = [](float a, float b) { return a + b; };
  for (std::uint32_t k = 0; k < 20; ++k) m.accumulate(k, 1.0f, 1, plus);
  ScoreMap sealed = m.export_compact();
  // Folding into a sealed map rebuilds a real probing table first.
  sealed.accumulate(5, 2.0f, 1, plus);
  sealed.accumulate(100, 1.0f, 1, plus);
  EXPECT_EQ(sealed.size(), 21u);
  EXPECT_FLOAT_EQ(sealed.find(5)->score, 3.0f);
  EXPECT_FLOAT_EQ(sealed.find(100)->score, 1.0f);
}

TEST(ScoreMap, ClearOnSealedMapRestoresLazyEmpty) {
  ScoreMap m;
  auto plus = [](float a, float b) { return a + b; };
  for (std::uint32_t k = 0; k < 30; ++k) m.accumulate(k, 1.0f, 1, plus);
  ScoreMap sealed = m.export_compact();
  sealed.clear();
  EXPECT_TRUE(sealed.empty());
  EXPECT_EQ(sealed.find(3), nullptr);
  for (std::uint32_t k = 0; k < 40; ++k) sealed.accumulate(k, 1.0f, 1, plus);
  EXPECT_EQ(sealed.size(), 40u);
  for (std::uint32_t k = 0; k < 40; ++k) {
    ASSERT_NE(sealed.find(k), nullptr) << k;
  }
}

TEST(ScoreMap, ShrinksLogicalTableAfterHubVertex) {
  ScoreMap m;
  auto plus = [](float a, float b) { return a + b; };
  // A hub inflates the table…
  for (std::uint32_t k = 0; k < 5000; ++k) m.accumulate(k, 1.0f, 1, plus);
  const auto hub_bytes = m.memory_bytes();
  // …then a clear after a small occupancy shrinks the logical table so
  // later clears stop sweeping a hub-sized array.
  m.clear();
  for (std::uint32_t k = 0; k < 8; ++k) m.accumulate(k, 1.0f, 1, plus);
  m.clear();
  EXPECT_LT(m.memory_bytes(), hub_bytes);
  // Still a fully working map afterwards.
  for (std::uint32_t k = 0; k < 300; ++k) m.accumulate(k, 2.0f, 1, plus);
  EXPECT_EQ(m.size(), 300u);
  EXPECT_FLOAT_EQ(m.find(123)->score, 2.0f);
}

// ---------- Stats ----------

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(EmpiricalCdf, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, Quantile) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
}

TEST(Percentile, InterpolatesAndHandlesEdges) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
}

// ---------- Table / formatting ----------

TEST(Table, AlignsAndPrints) {
  Table t({"name", "value"});
  t.add_row({"x", Table::fmt(1.5)});
  t.add_row({"long-name", Table::fmt_int(42)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  EXPECT_THROW(t.add_row({"a", "b"}), CheckError);
}

TEST(Table, PadsMissingCells) {
  Table t({"a", "b"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(FormatDuration, PaperStyle) {
  EXPECT_EQ(format_duration(45.8), "45.80s");
  EXPECT_EQ(format_duration(177.0), "2min57s");
  EXPECT_EQ(format_duration(600.7), "10min00s");
  EXPECT_EQ(format_duration(-1.0), "0.00s");
}

TEST(WallTimer, MeasuresForwardTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

// ---------- check macros ----------

TEST(Check, ThrowsWithMessage) {
  try {
    SNAPLE_CHECK_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(SNAPLE_CHECK(1 + 1 == 2));
}

}  // namespace
}  // namespace snaple
