// Integration tests: the paper's qualitative claims, asserted end to end
// on the dataset replicas. These are the properties EXPERIMENTS.md
// reports; if one breaks, the reproduction story breaks.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "eval/metrics.hpp"

namespace snaple {
namespace {

using eval::PreparedDataset;

const PreparedDataset& lj() {
  static const PreparedDataset ds =
      eval::prepare_dataset("livejournal", 0.06, 42);
  return ds;
}

const gas::ClusterConfig& cluster4() {
  static const gas::ClusterConfig c = gas::ClusterConfig::type_ii(4);
  return c;
}

// Table 5's headline: SNAPLE beats BASELINE on recall AND is cheaper on
// the network — the data-flow argument of the whole paper.
TEST(Integration, SnapleBeatsBaselineOnRecallAndTraffic) {
  SnapleConfig scfg;  // klocal=20, thr=200, linearSum
  const auto snaple_out = eval::run_snaple_experiment(lj(), scfg, cluster4());
  const auto baseline_out = eval::run_baseline_experiment(
      lj(), baseline::BaselineConfig{}, cluster4());
  ASSERT_FALSE(snaple_out.out_of_memory);
  ASSERT_FALSE(baseline_out.out_of_memory);
  EXPECT_GT(snaple_out.recall, baseline_out.recall);
  EXPECT_LT(snaple_out.network_bytes, baseline_out.network_bytes / 5);
  EXPECT_LT(snaple_out.simulated_seconds, baseline_out.simulated_seconds);
}

// §5.3: recall is respectable in absolute terms (the paper reports
// 0.12-0.33 at k=5; our replicas land even higher thanks to denser
// communities — what matters is it's far above noise).
TEST(Integration, AbsoluteRecallIsStrong) {
  SnapleConfig cfg;
  const auto out = eval::run_snaple_experiment(lj(), cfg, cluster4());
  EXPECT_GT(out.recall, 0.2);
}

// §5.3: klocal is the big cost lever, with minimal recall impact.
TEST(Integration, SamplingCutsCostNotRecall) {
  SnapleConfig unrestricted;
  unrestricted.k_local = kUnlimited;
  unrestricted.thr_gamma = kUnlimited;
  SnapleConfig sampled;
  sampled.k_local = 20;
  sampled.thr_gamma = kUnlimited;
  const auto full = eval::run_snaple_experiment(lj(), unrestricted, cluster4());
  const auto cheap = eval::run_snaple_experiment(lj(), sampled, cluster4());
  EXPECT_LT(cheap.network_bytes, full.network_bytes);
  EXPECT_LT(cheap.simulated_seconds, full.simulated_seconds);
  EXPECT_GT(cheap.recall, full.recall * 0.7);
}

// §5.5: truncation barely moves recall once thrΓ covers most vertices.
TEST(Integration, GenerousTruncationIsFree) {
  SnapleConfig thr200;
  thr200.thr_gamma = 200;
  SnapleConfig thrInf;
  thrInf.thr_gamma = kUnlimited;
  const auto a = eval::run_snaple_experiment(lj(), thr200, cluster4());
  const auto b = eval::run_snaple_experiment(lj(), thrInf, cluster4());
  EXPECT_NEAR(a.recall, b.recall, 0.05);
}

// Figure 9: recall grows with k.
TEST(Integration, RecallGrowsWithK) {
  double last = -1.0;
  for (const std::size_t k : {5ul, 10ul, 20ul}) {
    SnapleConfig cfg;
    cfg.k = k;
    cfg.k_local = 80;
    const auto out = eval::run_snaple_experiment(lj(), cfg, cluster4());
    EXPECT_GT(out.recall, last);
    last = out.recall;
  }
}

// Figure 10: recall decreases as more edges are hidden per vertex.
TEST(Integration, RecallDropsWithMoreRemovedEdges) {
  double last = 2.0;
  for (const std::size_t removed : {1ul, 3ul, 5ul}) {
    const auto ds = eval::prepare_dataset("livejournal", 0.05, 42, removed);
    SnapleConfig cfg;
    cfg.k_local = 80;
    const auto out = eval::run_snaple_experiment(ds, cfg, cluster4());
    EXPECT_LT(out.recall, last);
    last = out.recall;
  }
}

// §5.3/§5.4: BASELINE exhausts a budget SNAPLE comfortably fits.
TEST(Integration, BaselineOomsWhereSnapleFits) {
  const auto ds = eval::prepare_dataset("orkut", 0.04, 42);
  // Budget scaled to the replica: ~40 bytes per edge per machine.
  const std::size_t budget = ds.train.num_edges() * 40;
  const auto cluster = gas::ClusterConfig::type_ii(4, budget);
  SnapleConfig scfg;
  const auto snaple_out = eval::run_snaple_experiment(ds, scfg, cluster);
  const auto baseline_out =
      eval::run_baseline_experiment(ds, baseline::BaselineConfig{}, cluster);
  EXPECT_FALSE(snaple_out.out_of_memory);
  EXPECT_GT(snaple_out.recall, 0.1);
  EXPECT_TRUE(baseline_out.out_of_memory);
}

// Table 6: SNAPLE on one machine beats the random-walk comparator —
// higher recall in less time, even granting Cassovary the walk budget
// (w=1000) that maximizes its recall in Figure 11.
TEST(Integration, SingleMachineSnapleBeatsCassovary) {
  SnapleConfig scfg;
  scfg.k_local = 20;
  const auto cluster = gas::ClusterConfig::single_machine(8);
  const auto snaple_out = eval::run_snaple_experiment(lj(), scfg, cluster);
  cassovary::WalkConfig wcfg;
  wcfg.walks = 1000;
  wcfg.depth = 3;
  const auto cass_out = eval::run_cassovary_experiment(lj(), wcfg);
  EXPECT_GT(snaple_out.recall, cass_out.recall);
  EXPECT_LT(snaple_out.wall_seconds, cass_out.wall_seconds);
}

// Figure 5: simulated time shrinks as machines are added (fixed work).
TEST(Integration, SimulatedTimeImprovesWithMachines) {
  SnapleConfig cfg;
  cfg.k_local = 40;
  const auto t8 = eval::run_snaple_experiment(
      lj(), cfg, gas::ClusterConfig::type_i(8));
  const auto t32 = eval::run_snaple_experiment(
      lj(), cfg, gas::ClusterConfig::type_i(32));
  EXPECT_LT(t32.simulated_seconds, t8.simulated_seconds);
}

// Figure 5: simulated time grows with graph size on a fixed cluster.
TEST(Integration, SimulatedTimeGrowsWithEdges) {
  SnapleConfig cfg;
  cfg.k_local = 40;
  const auto small = eval::prepare_dataset("livejournal", 0.03, 42);
  const auto big = eval::prepare_dataset("livejournal", 0.08, 42);
  const auto ts = eval::run_snaple_experiment(
      small, cfg, gas::ClusterConfig::type_i(8));
  const auto tb = eval::run_snaple_experiment(
      big, cfg, gas::ClusterConfig::type_i(8));
  EXPECT_GT(tb.simulated_seconds, ts.simulated_seconds);
}

// Figure 8 family: Sum-aggregator scores dominate Mean/Geom at klocal=80
// on replicas (popularity information matters).
TEST(Integration, SumAggregatorDominatesAtLargeKlocal) {
  SnapleConfig sum_cfg;
  sum_cfg.score = ScoreKind::kLinearSum;
  sum_cfg.k_local = 80;
  SnapleConfig mean_cfg = sum_cfg;
  mean_cfg.score = ScoreKind::kLinearMean;
  SnapleConfig geom_cfg = sum_cfg;
  geom_cfg.score = ScoreKind::kLinearGeom;
  const auto r_sum = eval::run_snaple_experiment(lj(), sum_cfg, cluster4());
  const auto r_mean = eval::run_snaple_experiment(lj(), mean_cfg, cluster4());
  const auto r_geom = eval::run_snaple_experiment(lj(), geom_cfg, cluster4());
  EXPECT_GT(r_sum.recall, r_mean.recall);
  EXPECT_GT(r_sum.recall, r_geom.recall);
}

}  // namespace
}  // namespace snaple
