// Unit tests for the thread pool: coverage, worker ids, exceptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace snaple {
namespace {

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(10000);
  pool.parallel_for_each(0, visits.size(), [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for_each(100, 200, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for_each(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for_each(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, WorkerIdsWithinSlotRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.parallel_for(0, 5000, [&](std::size_t, std::size_t worker) {
    if (worker >= pool.slot_count()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(pool.slot_count(), 4u);  // 3 workers + caller
}

TEST(ThreadPool, PerWorkerScratchNeedsNoLocking) {
  ThreadPool pool(4);
  std::vector<std::size_t> per_worker(pool.slot_count(), 0);
  pool.parallel_for(0, 100000,
                    [&](std::size_t, std::size_t w) { ++per_worker[w]; });
  const auto total =
      std::accumulate(per_worker.begin(), per_worker.end(), std::size_t{0});
  EXPECT_EQ(total, 100000u);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for_each(0, 100, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, PropagatesExceptionToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_each(0, 10000,
                             [&](std::size_t i) {
                               if (i == 5000) {
                                 throw std::runtime_error("boom");
                               }
                             }),
      std::runtime_error);
  // Pool must remain usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for_each(0, 100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionSkipsRemainingWork) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for_each(
        0, 1000000,
        [&](std::size_t i) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (i == 0) throw std::runtime_error("early");
        },
        /*grain=*/1);
  } catch (const std::runtime_error&) {
  }
  // Not all million iterations should have run.
  EXPECT_LT(executed.load(), 1000000);
}

TEST(ThreadPool, RejectsNestedUse) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_each(0, 100,
                             [&](std::size_t) {
                               pool.parallel_for_each(0, 10,
                                                      [](std::size_t) {});
                             }),
      CheckError);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  // With grain >= n the pool runs inline on the caller (worker id 0).
  std::vector<std::size_t> ids;
  pool.parallel_for(
      0, 4, [&](std::size_t, std::size_t w) { ids.push_back(w); },
      /*grain=*/100);
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 0, 0, 0}));
}

TEST(ThreadPool, DefaultPoolIsUsable) {
  std::atomic<int> n{0};
  default_pool().parallel_for_each(0, 64, [&](std::size_t) {
    n.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, ParallelBlocksCoverRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(100'000);
  pool.parallel_blocks(
      0, visits.size(),
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) {
          visits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*min_block=*/1024);
  for (const auto& v : visits) ASSERT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelBlocksRespectsMinBlockAndNonZeroBegin) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  pool.parallel_blocks(
      1000, 1100,
      [&](std::size_t b, std::size_t e, std::size_t) {
        std::scoped_lock lock(mu);
        blocks.emplace_back(b, e);
      },
      /*min_block=*/64);
  std::sort(blocks.begin(), blocks.end());
  ASSERT_FALSE(blocks.empty());
  EXPECT_EQ(blocks.front().first, 1000u);
  EXPECT_EQ(blocks.back().second, 1100u);
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].second, blocks[i + 1].first);  // contiguous
  }
  // 100 items at min_block 64 → at most 2 blocks.
  EXPECT_LE(blocks.size(), 2u);
}

TEST(ThreadPool, ParallelBlocksEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_blocks(5, 5,
                       [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, LoadBalancesSkewedWork) {
  // Power-law-ish per-item cost; just verify completion and coverage.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for_each(0, 2000, [&](std::size_t i) {
    volatile std::uint64_t sink = 0;
    const std::size_t reps = (i % 97 == 0) ? 20000 : 10;
    for (std::size_t r = 0; r < reps; ++r) sink = sink + r;
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 2000u);
}

}  // namespace
}  // namespace snaple
