// Sharded serving tier: range planning, byte transports, wire routing.
//
// The load-bearing property mirrors test_model_query's: a topk served
// by a ServingCluster — u routed to its owning shard, neighbor rows
// co-located or remote-fetched, floats crossing a byte transport — is
// BIT-identical to the single-process QueryEngine on the unsharded
// model, for every vertex, across seeds × shard counts × K × both
// transports. Scores travel as raw f32 bytes and the shard replays the
// same machine-grouped fold, so EXPECT_EQ on (id, score) pairs holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <numeric>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "serve/model_shard.hpp"
#include "serve/router.hpp"
#include "serve/transport.hpp"

namespace snaple {
namespace {

using serve::ByteChannel;
using serve::ModelShard;
using serve::ServeOptions;
using serve::ServingCluster;
using serve::TransportError;
using serve::TransportKind;
using serve::TransportTimeout;
using Scored = std::vector<std::pair<VertexId, float>>;

constexpr TransportKind kTransports[] = {TransportKind::kInProcess,
                                         TransportKind::kUnixSocket,
                                         TransportKind::kTcp};

std::shared_ptr<const PredictorModel> fit_model(std::uint64_t seed,
                                                std::size_t k_hops) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, seed);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = k_hops;
  cfg.seed = seed;
  // Multi-machine fit: nontrivial machine tags must survive the wire.
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(4));
  return std::make_shared<const PredictorModel>(predictor.fit(g));
}

// ---------- range planning ----------

TEST(RangePlanning, UniformWeightsSplitEvenly) {
  std::vector<std::uint64_t> prefix(101);
  for (std::size_t i = 0; i <= 100; ++i) prefix[i] = i;  // weight 1 each
  const auto ranges = gas::split_weighted_ranges(prefix, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_EQ(ranges.back().end, 100u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ranges[i].size(), 25u) << i;
    if (i > 0) {
      EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
    }
  }
}

TEST(RangePlanning, SkewedWeightIsolatesTheHub) {
  // One vertex carries ~all the weight: with 2 parts it must sit alone
  // on one side rather than drag half the light vertices with it.
  std::vector<std::uint64_t> prefix = {0, 1000, 1001, 1002, 1003, 1004};
  const auto ranges = gas::split_weighted_ranges(prefix, 2);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (gas::VertexRange{0, 1}));
  EXPECT_EQ(ranges[1], (gas::VertexRange{1, 5}));
}

TEST(RangePlanning, MorePartsThanVerticesYieldsEmptyRanges) {
  std::vector<std::uint64_t> prefix = {0, 1, 2};
  const auto ranges = gas::split_weighted_ranges(prefix, 5);
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges.back().end, 2u);
  std::size_t covered = 0;
  for (const auto& r : ranges) covered += r.size();
  EXPECT_EQ(covered, 2u);  // disjoint contiguous cover of [0, 2)
  // Owner lookup skips the empty ranges.
  for (VertexId u = 0; u < 2; ++u) {
    EXPECT_TRUE(ranges[gas::range_owner(ranges, u)].contains(u)) << u;
  }
}

TEST(RangePlanning, RejectsBadPrefixAndOutOfRangeLookup) {
  std::vector<std::uint64_t> no_zero = {1, 2};
  EXPECT_THROW((void)gas::split_weighted_ranges(no_zero, 2), CheckError);
  std::vector<std::uint64_t> ok = {0, 1, 2};
  EXPECT_THROW((void)gas::split_weighted_ranges(ok, 0), CheckError);
  const auto ranges = gas::split_weighted_ranges(ok, 2);
  EXPECT_THROW((void)gas::range_owner(ranges, 2), CheckError);
}

TEST(RangePlanning, ShardRangesBalanceModelBytes) {
  const auto model = fit_model(5, 3);
  const auto ranges = serve::plan_shard_ranges(*model, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.back().end, model->num_vertices());
  std::uint64_t total = 0;
  std::vector<std::uint64_t> bytes(4, 0);
  for (std::size_t s = 0; s < 4; ++s) {
    for (VertexId u = ranges[s].begin; u < ranges[s].end; ++u) {
      bytes[s] += model->row_bytes(u);
    }
    total += bytes[s];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    // A contiguous split can't be perfect; 2× the ideal share is the
    // "clearly balanced" bar on this graph.
    EXPECT_LT(bytes[s], total / 2) << "shard " << s;
  }
}

// ---------- transports ----------

TEST(Transport, RoundTripAndByteAccounting) {
  for (const auto kind : kTransports) {
    auto pair = serve::make_channel_pair(kind);
    const std::string ping = "hello shards";
    pair.client->send(ping.data(), ping.size());
    std::string got(ping.size(), '\0');
    pair.server->recv(got.data(), got.size());
    EXPECT_EQ(got, ping) << serve::to_string(kind);
    EXPECT_EQ(pair.client->bytes_sent(), ping.size());
    EXPECT_EQ(pair.server->bytes_received(), ping.size());

    // And the other direction, split over two sends / one recv.
    pair.server->send(ping.data(), 5);
    pair.server->send(ping.data() + 5, ping.size() - 5);
    std::string back(ping.size(), '\0');
    pair.client->recv(back.data(), back.size());
    EXPECT_EQ(back, ping) << serve::to_string(kind);
  }
}

TEST(Transport, CloseWakesBlockedReaderAndFailsFurtherUse) {
  for (const auto kind : kTransports) {
    auto pair = serve::make_channel_pair(kind);
    std::atomic<bool> threw{false};
    std::thread reader([&] {
      char byte;
      try {
        pair.server->recv(&byte, 1);
      } catch (const TransportError&) {
        threw = true;
      }
    });
    pair.client->close();
    reader.join();
    EXPECT_TRUE(threw.load()) << serve::to_string(kind);
    char byte = 0;
    EXPECT_THROW(pair.client->send(&byte, 1), TransportError);
  }
}

TEST(Transport, QueuedBytesReadableAfterPeerCloses) {
  // Socket EOF semantics: data sent before close must still arrive.
  auto pair = serve::make_channel_pair(TransportKind::kInProcess);
  const std::uint32_t value = 0xabcd1234;
  pair.client->send(&value, sizeof(value));
  pair.client->close();
  std::uint32_t got = 0;
  pair.server->recv(&got, sizeof(got));
  EXPECT_EQ(got, value);
  char extra;
  EXPECT_THROW(pair.server->recv(&extra, 1), TransportError);
}

TEST(Transport, TcpListenerHandsOutEphemeralPortsAndConnects) {
  serve::TcpListener listener(0);
  EXPECT_GT(listener.port(), 0u);  // kernel-assigned, reported back
  auto client = serve::tcp_connect("127.0.0.1", listener.port());
  auto server = listener.accept();
  const std::uint64_t value = 0x123456789abcdef0ull;
  client->send(&value, sizeof(value));
  std::uint64_t got = 0;
  server->recv(&got, sizeof(got));
  EXPECT_EQ(got, value);
  // A closed listener stops accepting; live channels are unaffected.
  listener.close();
  server->send(&value, sizeof(value));
  got = 0;
  client->recv(&got, sizeof(got));
  EXPECT_EQ(got, value);
}

TEST(Transport, RecvDeadlineSurfacesSilentPeerAsTimeout) {
  using namespace std::chrono_literals;
  for (const auto kind : kTransports) {
    auto pair = serve::make_channel_pair(kind);
    pair.client->set_recv_timeout(50ms);
    char byte = 0;
    // Nothing queued and nobody sending: the deadline must fire rather
    // than block forever — as the TransportError subclass, so generic
    // error paths still catch it.
    EXPECT_THROW(pair.client->recv(&byte, 1), TransportTimeout)
        << serve::to_string(kind);
    EXPECT_THROW(pair.client->recv(&byte, 1), TransportError)
        << serve::to_string(kind);
    // The channel survives a timeout: once the peer does respond, the
    // same recv path delivers the bytes.
    const char ping = 'x';
    pair.server->send(&ping, 1);
    pair.client->recv(&byte, 1);
    EXPECT_EQ(byte, 'x') << serve::to_string(kind);
    // Disarming (0) restores blocking recv: data already queued works.
    pair.client->set_recv_timeout(0ms);
    pair.server->send(&ping, 1);
    byte = 0;
    pair.client->recv(&byte, 1);
    EXPECT_EQ(byte, 'x') << serve::to_string(kind);
  }
}

TEST(Transport, DeadlineDistinguishesSilenceFromEof) {
  using namespace std::chrono_literals;
  for (const auto kind : kTransports) {
    auto pair = serve::make_channel_pair(kind);
    pair.server->set_recv_timeout(50ms);
    pair.client->close();
    char byte = 0;
    // Peer is GONE, not slow: plain TransportError (EOF), not timeout.
    try {
      pair.server->recv(&byte, 1);
      FAIL() << serve::to_string(kind);
    } catch (const TransportTimeout&) {
      FAIL() << serve::to_string(kind) << ": EOF misreported as timeout";
    } catch (const TransportError&) {
      // expected
    }
  }
}

// ---------- shard-local slicing ----------

TEST(ModelShardApi, ColocatedShardAnswersWithoutFetches) {
  const auto model = fit_model(3, 2);
  const QueryEngine engine(model);
  const auto ranges = serve::plan_shard_ranges(*model, 3);
  for (const auto& range : ranges) {
    const ModelShard shard = ModelShard::build(*model, range, true);
    for (VertexId u = range.begin; u < range.end; ++u) {
      EXPECT_TRUE(shard.missing_rows(u).empty()) << u;
      ASSERT_EQ(shard.topk(u), engine.topk(u)) << u;
    }
  }
}

TEST(ModelShardApi, FetchModeNamesMissingRowsAndRejectsBlindTopk) {
  const auto model = fit_model(3, 3);
  const auto ranges = serve::plan_shard_ranges(*model, 4);
  const ModelShard shard = ModelShard::build(*model, ranges[1], false);
  EXPECT_EQ(shard.replica_count(), 0u);
  bool any_missing = false;
  for (VertexId u = ranges[1].begin; u < ranges[1].end; ++u) {
    const auto missing = shard.missing_rows(u);
    for (const VertexId v : missing) {
      EXPECT_FALSE(ranges[1].contains(v));
    }
    if (!missing.empty()) {
      any_missing = true;
      // Serving without the fetched rows must throw, never misscore.
      EXPECT_THROW((void)shard.topk(u), CheckError);
    }
  }
  EXPECT_TRUE(any_missing);  // 1/4 of this graph surely has remote edges
  // Misrouted query: not owned here.
  EXPECT_THROW((void)shard.topk(ranges[1].end), CheckError);
}

// ---------- the tentpole: sharded ≡ single-process, bit for bit ----------

TEST(ShardedServing, BitIdenticalToQueryEngineAcrossTheMatrix) {
  for (const std::uint64_t seed : {3ull, 5ull, 11ull}) {
    for (const std::size_t k_hops : {2ul, 3ul}) {
      const auto model = fit_model(seed, k_hops);
      const QueryEngine engine(model);
      std::vector<Scored> want(model->num_vertices());
      for (VertexId u = 0; u < model->num_vertices(); ++u) {
        want[u] = engine.topk(u);
      }
      for (const std::size_t shards : {1ul, 2ul, 8ul}) {
        for (const auto transport : kTransports) {
          for (const bool colocate : {true, false}) {
            ServeOptions opt;
            opt.num_shards = shards;
            opt.transport = transport;
            opt.colocate = colocate;
            ServingCluster cluster(*model, opt);
            for (VertexId u = 0; u < model->num_vertices(); ++u) {
              ASSERT_EQ(cluster.router().topk(u), want[u])
                  << "seed=" << seed << " K=" << k_hops << " shards="
                  << shards << " transport="
                  << serve::to_string(transport)
                  << " colocate=" << colocate << " u=" << u;
            }
          }
        }
      }
    }
  }
}

TEST(ShardedServing, KPlumbsThroughTheWire) {
  const auto model = fit_model(5, 2);
  const QueryEngine engine(model);
  ServeOptions opt;
  opt.num_shards = 2;
  ServingCluster cluster(*model, opt);
  for (const VertexId u : {VertexId{0}, VertexId{7}, VertexId{399}}) {
    EXPECT_EQ(cluster.router().topk(u, 1), engine.topk(u, 1)) << u;
    // k=0 means the model's configured k on both sides; a huge k means
    // the whole candidate tail, clamped identically.
    EXPECT_EQ(cluster.router().topk(u), engine.topk(u)) << u;
    EXPECT_EQ(cluster.router().topk(u, kUnlimited),
              engine.topk(u, kUnlimited))
        << u;
  }
}

// ---------- pipelined + batched submission ----------

TEST(ShardedServing, BatchedSubmissionBitIdenticalOneMessagePerShard) {
  const auto model = fit_model(5, 3);
  const QueryEngine engine(model);
  const VertexId n = model->num_vertices();
  std::vector<Scored> want(n);
  for (VertexId u = 0; u < n; ++u) want[u] = engine.topk(u);

  for (const std::size_t shards : {2ul, 8ul}) {
    for (const auto transport : kTransports) {
      for (const bool colocate : {true, false}) {
        ServeOptions opt;
        opt.num_shards = shards;
        opt.transport = transport;
        opt.colocate = colocate;
        ServingCluster cluster(*model, opt);
        auto& router = cluster.router();

        // Shuffled order so every chunk straddles shard boundaries.
        std::vector<VertexId> users(n);
        std::iota(users.begin(), users.end(), VertexId{0});
        std::mt19937 rng(7);
        std::shuffle(users.begin(), users.end(), rng);

        constexpr std::size_t kChunk = 64;
        std::uint64_t expect_messages = 0;
        for (std::size_t i = 0; i < users.size(); i += kChunk) {
          const std::span<const VertexId> chunk(
              users.data() + i, std::min(kChunk, users.size() - i));
          std::set<std::size_t> owners;
          for (const VertexId u : chunk) owners.insert(router.shard_of(u));
          expect_messages += owners.size();
          const auto got = router.topk_batch(chunk);
          ASSERT_EQ(got.size(), chunk.size());
          for (std::size_t j = 0; j < chunk.size(); ++j) {
            ASSERT_EQ(got[j], want[chunk[j]])
                << "shards=" << shards << " transport="
                << serve::to_string(transport) << " colocate=" << colocate
                << " u=" << chunk[j];
          }
        }
        // The batching contract: ONE counted wire message per owning
        // shard per chunk — never one per query.
        const auto rs = router.stats();
        EXPECT_EQ(rs.requests, expect_messages);
        EXPECT_EQ(rs.batch_requests, expect_messages);
        EXPECT_EQ(rs.batched_queries, n);
      }
    }
  }
}

TEST(ShardedServing, AsyncSubmissionPipelinesOnOneConnection) {
  const auto model = fit_model(3, 2);
  const QueryEngine engine(model);
  ServeOptions opt;
  opt.num_shards = 2;
  opt.colocate = false;
  opt.connections_per_shard = 1;  // all overlap happens on single links
  ServingCluster cluster(*model, opt);

  const VertexId n = model->num_vertices();
  std::vector<std::future<Scored>> futures;
  futures.reserve(n);
  for (VertexId u = 0; u < n; ++u) {
    futures.push_back(cluster.router().topk_async(u));
  }
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(futures[u].get(), engine.topk(u)) << u;
  }
  const auto rs = cluster.router().stats();
  EXPECT_EQ(rs.requests, n);
  // Submitting everything before awaiting anything must actually have
  // overlapped round trips, not degenerated to lockstep.
  EXPECT_GT(rs.max_inflight, 1u);
}

TEST(ShardedServing, BatchValidatesUpFrontAndBatchErrorsCrossTheWire) {
  const auto model = fit_model(3, 2);
  const QueryEngine engine(model);
  const VertexId n = model->num_vertices();
  {
    ServeOptions opt;
    opt.num_shards = 2;
    ServingCluster cluster(*model, opt);
    // A bad id anywhere rejects the whole batch before submission.
    const VertexId bad[] = {0, n};
    EXPECT_THROW((void)cluster.router().topk_batch(bad), CheckError);
    EXPECT_EQ(cluster.router().stats().batch_requests, 0u);
    const std::vector<VertexId> none;
    EXPECT_TRUE(cluster.router().topk_batch(none).empty());
  }

  // A misrouted batch (router with a wrong layout) fails as ONE error
  // response — raised as CheckError — and the connection survives.
  const gas::VertexRange half{0, n / 2};
  serve::ShardServer server(ModelShard::build(*model, half, true),
                            {gas::VertexRange{0, n}});
  auto link = serve::make_channel_pair(TransportKind::kInProcess);
  server.serve(std::move(link.server));
  std::vector<std::vector<std::unique_ptr<ByteChannel>>> pool(1);
  pool[0].push_back(std::move(link.client));
  serve::QueryRouter router({gas::VertexRange{0, n}}, std::move(pool));
  const VertexId misrouted[] = {0, n - 1};
  EXPECT_THROW((void)router.topk_batch(misrouted), CheckError);
  const VertexId fine[] = {0, 1};
  const auto got = router.topk_batch(fine);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], engine.topk(0));
  EXPECT_EQ(got[1], engine.topk(1));
  EXPECT_EQ(server.stats().errors, 1u);
}

// ---------- cost-model accounting ----------

TEST(ShardedServing, ColocationTradesReplicaBytesForZeroFetches) {
  const auto model = fit_model(7, 3);
  ServeOptions colocated;
  colocated.num_shards = 4;
  colocated.colocate = true;
  ServingCluster a(*model, colocated);
  ServeOptions fetching = colocated;
  fetching.colocate = false;
  ServingCluster b(*model, fetching);

  const VertexId n = model->num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(a.router().topk(u), b.router().topk(u)) << u;
  }

  std::uint64_t a_queries = 0, a_replicas = 0, a_fetches = 0;
  for (const auto& s : a.stats()) {
    a_queries += s.queries;
    a_replicas += s.replica_count;
    a_fetches += s.remote_fetch_requests;
    EXPECT_EQ(s.peer_bytes_out, 0u);  // no peer links in colocate mode
  }
  EXPECT_EQ(a_queries, n);
  EXPECT_GT(a_replicas, 0u);  // the co-location cost is real…
  EXPECT_EQ(a_fetches, 0u);   // …and buys query-time locality

  std::uint64_t b_fetches = 0, b_rows = 0, b_peer_bytes = 0;
  for (const auto& s : b.stats()) {
    EXPECT_EQ(s.replica_count, 0u);
    b_fetches += s.remote_fetch_requests;
    b_rows += s.remote_rows;
    b_peer_bytes += s.peer_bytes_out + s.peer_bytes_in;
  }
  EXPECT_GT(b_fetches, 0u);
  EXPECT_GT(b_rows, 0u);
  EXPECT_GT(b_peer_bytes, 0u);
  // One batched fetch per owning shard per query, never per row: with 4
  // shards a query contacts at most 3 peers.
  EXPECT_LE(b_fetches, static_cast<std::uint64_t>(n) * 3);

  // Router-side byte accounting matches the shards' frontend counters.
  std::uint64_t frontend_in = 0;
  for (const auto& s : b.stats()) frontend_in += s.frontend_bytes_in;
  EXPECT_EQ(frontend_in, b.router().bytes_sent());
  EXPECT_GT(b.router().bytes_received(), 0u);
}

TEST(ShardedServing, SingleShardNeverFetches) {
  const auto model = fit_model(3, 2);
  ServeOptions opt;
  opt.num_shards = 1;
  opt.colocate = false;
  ServingCluster cluster(*model, opt);
  for (VertexId u = 0; u < model->num_vertices(); u += 17) {
    (void)cluster.router().topk(u);
  }
  const auto stats = cluster.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].remote_fetch_requests, 0u);
  EXPECT_EQ(stats[0].remote_rows, 0u);
}

// ---------- errors and concurrency ----------

TEST(ShardedServing, ErrorsCrossTheWireAsCheckErrors) {
  const auto model = fit_model(3, 2);
  ServeOptions opt;
  opt.num_shards = 2;
  ServingCluster cluster(*model, opt);
  // Out of model range: rejected router-side, same as QueryEngine.
  EXPECT_THROW((void)cluster.router().topk(model->num_vertices()),
               CheckError);

  // A misrouted query must come back as an error *response* — raised on
  // the caller's side as CheckError — and leave the connection usable.
  // Build the misroute directly: a router whose (wrong) layout claims
  // one shard owns everything, over a server owning only [0, half).
  const VertexId n = model->num_vertices();
  const gas::VertexRange half{0, n / 2};
  serve::ShardServer server(ModelShard::build(*model, half, true),
                            {gas::VertexRange{0, n}});
  auto link = serve::make_channel_pair(TransportKind::kInProcess);
  server.serve(std::move(link.server));
  std::vector<std::vector<std::unique_ptr<ByteChannel>>> pool(1);
  pool[0].push_back(std::move(link.client));
  serve::QueryRouter router({gas::VertexRange{0, n}}, std::move(pool));
  EXPECT_THROW((void)router.topk(n - 1), CheckError);
  const QueryEngine engine(model);
  EXPECT_EQ(router.topk(0), engine.topk(0));  // connection survived
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ShardedServing, UnresponsiveShardFailsInflightAndGoesDead) {
  using namespace std::chrono_literals;
  const auto model = fit_model(3, 2);
  const VertexId n = model->num_vertices();

  // A link whose server end is held open but NEVER serviced: the shard
  // is reachable yet silent. Without a deadline the drain thread would
  // block forever; with one, every pending future fails fast.
  auto link = serve::make_channel_pair(TransportKind::kInProcess);
  std::vector<std::vector<std::unique_ptr<ByteChannel>>> pool(1);
  pool[0].push_back(std::move(link.client));
  serve::QueryRouter router({gas::VertexRange{0, n}}, std::move(pool),
                            100ms);

  auto f1 = router.topk_async(0);
  auto f2 = router.topk_async(1);
  EXPECT_THROW((void)f1.get(), TransportError);
  EXPECT_THROW((void)f2.get(), TransportError);
  // The connection is condemned, not retried: later queries fail
  // immediately instead of burning another deadline each.
  EXPECT_THROW((void)router.topk(2), TransportError);
  (void)link.server;  // kept alive the whole time: silence, not EOF
}

TEST(ShardedServing, IdleDeadlineDoesNotKillHealthyConnections) {
  using namespace std::chrono_literals;
  // A router whose deadline is far shorter than the gaps between
  // queries: timeouts with nothing inflight must be ignored, and slow
  //-but-alive service must still complete.
  const auto model = fit_model(3, 2);
  const QueryEngine engine(model);
  ServeOptions opt;
  opt.num_shards = 2;
  opt.recv_timeout_ms = 50;
  ServingCluster cluster(*model, opt);
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(120ms);  // > 2 idle deadline windows
    for (const VertexId u : {VertexId{0}, VertexId{7}}) {
      EXPECT_EQ(cluster.router().topk(u), engine.topk(u))
          << "round " << round << " u=" << u;
    }
  }
}

TEST(ShardedServing, ConcurrentCallersOverPooledConnectionsAgree) {
  const auto model = fit_model(13, 3);
  const QueryEngine engine(model);
  std::vector<Scored> want(model->num_vertices());
  for (VertexId u = 0; u < model->num_vertices(); ++u) {
    want[u] = engine.topk(u);
  }
  for (const auto transport : kTransports) {
    for (const bool colocate : {true, false}) {
      ServeOptions opt;
      opt.num_shards = 4;
      opt.transport = transport;
      opt.colocate = colocate;
      opt.connections_per_shard = 4;
      ServingCluster cluster(*model, opt);

      constexpr std::size_t kThreads = 8;
      std::atomic<std::size_t> mismatches{0};
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          const VertexId n = model->num_vertices();
          for (VertexId i = 0; i < n; ++i) {
            const auto u = static_cast<VertexId>((i + t * 37) % n);
            if (cluster.router().topk(u) != want[u]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& th : threads) th.join();
      EXPECT_EQ(mismatches.load(), 0u)
          << serve::to_string(transport) << " colocate=" << colocate;
    }
  }
}

TEST(ShardedServing, TinyModelWithMoreShardsThanRows) {
  // 5-vertex graph, 8 shards: trailing ranges are empty, routing must
  // still land every query on the owning shard.
  const CsrGraph g = [] {
    GraphBuilder b;
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    b.add_edge(3, 1);
    b.add_edge(4, 2);
    return b.build();
  }();
  SnapleConfig cfg;
  cfg.k_local = kUnlimited;
  const LinkPredictor predictor(cfg);
  const auto model =
      std::make_shared<const PredictorModel>(predictor.fit(g));
  const QueryEngine engine(model);
  ServeOptions opt;
  opt.num_shards = 8;
  ServingCluster cluster(*model, opt);
  for (VertexId u = 0; u < model->num_vertices(); ++u) {
    EXPECT_EQ(cluster.router().topk(u), engine.topk(u)) << u;
  }
}

}  // namespace
}  // namespace snaple
