// Test-only reference implementation of SNAPLE scoring, computed directly
// from equations (8)-(10) with no GAS engine, no truncation and no
// sampling. Used to validate the production pipeline end to end.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/scoring.hpp"
#include "graph/csr_graph.hpp"
#include "util/top_k.hpp"

namespace snaple::testing {

inline std::vector<std::vector<VertexId>> reference_snaple_predictions(
    const CsrGraph& g, const ScoreConfig& sc, std::size_t k) {
  std::vector<std::vector<VertexId>> preds(g.num_vertices());
  auto sim = [&](VertexId x, VertexId y) {
    return similarity(sc.metric, g.out_neighbors(x), g.out_neighbors(y),
                      g.out_degree(y));
  };
  std::unordered_map<VertexId, std::pair<double, std::uint32_t>> agg;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.out_neighbors(u);
    agg.clear();
    for (VertexId v : nu) {
      const double suv = sim(u, v);
      for (VertexId z : g.out_neighbors(v)) {
        if (z == u) continue;
        if (std::binary_search(nu.begin(), nu.end(), z)) continue;
        const double path = sc.combinator(suv, sim(v, z));
        auto [it, inserted] = agg.try_emplace(z, path, 1);
        if (!inserted) {
          it->second.first = sc.aggregator.pre(it->second.first, path);
          it->second.second += 1;
        }
      }
    }
    TopK<VertexId, double> top(k);
    for (const auto& [z, sn] : agg) {
      top.offer(z, sc.aggregator.post(sn.first, sn.second));
    }
    preds[u] = top.take_items();
  }
  return preds;
}

}  // namespace snaple::testing
