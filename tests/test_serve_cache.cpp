// Versioned hot-row cache (serve/row_cache.hpp) — unit semantics and
// the serving-tier integration (ISSUE 7).
//
// The load-bearing properties:
//   * a cache hit returns the identical row bytes a peer fetch would
//     have carried, so cached serving stays BIT-identical to the
//     single-process QueryEngine (EXPECT_EQ, never EXPECT_NEAR);
//   * entries are keyed by (vertex, row_version): after an update
//     republishes a row, the old entry can never serve again — the
//     bumped version misses and drops it, no invalidation broadcast.
//     The lifecycle test plants a poisoned stale entry exactly where a
//     re-sharded cluster will look, and bit-identity proves the keyed
//     miss (a hit would misscore visibly);
//   * the cache is bounded: hammering a tiny cache from 8 threads
//     evicts constantly and still never disagrees (the TSan job runs
//     this suite).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/dynamic_model.hpp"
#include "core/predictor.hpp"
#include "core/query_engine.hpp"
#include "graph/builder.hpp"
#include "graph/gen/datasets.hpp"
#include "serve/model_shard.hpp"
#include "serve/router.hpp"
#include "serve/row_cache.hpp"

namespace snaple {
namespace {

using serve::HotRow;
using serve::RowCache;
using serve::RowCacheStats;
using serve::ServeOptions;
using serve::ServingCluster;
using serve::TransportKind;
using Scored = std::vector<std::pair<VertexId, float>>;

std::shared_ptr<const HotRow> make_row(VertexId tag,
                                       std::size_t width = 8) {
  auto row = std::make_shared<HotRow>();
  for (std::size_t i = 0; i < width; ++i) {
    row->sims_ids.push_back(tag + static_cast<VertexId>(i));
    row->sims_scores.push_back(static_cast<float>(tag) + 0.5f);
    row->hop2_ids.push_back(tag + static_cast<VertexId>(i));
    row->hop2_scores.push_back(0.25f);
  }
  return row;
}

// ---------- RowCache unit semantics ----------

TEST(RowCacheUnit, MissThenHitThenStats) {
  RowCache cache(1 << 20);
  EXPECT_EQ(cache.get(7, 0), nullptr);
  const auto row = make_row(7);
  cache.put(7, 0, row);
  const auto hit = cache.get(7, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), row.get());  // the very same row object
  const RowCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.capacity_bytes, std::size_t{1} << 20);
}

TEST(RowCacheUnit, StaleVersionMissesAndDropsTheEntry) {
  RowCache cache(1 << 20);
  cache.put(3, /*version=*/0, make_row(3));
  // The caller now believes version 2 is current: the version-0 entry
  // must miss AND leave the cache (monotonicity proves it stale).
  EXPECT_EQ(cache.get(3, 2), nullptr);
  RowCacheStats s = cache.stats();
  EXPECT_EQ(s.stale_drops, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 0u);
  // Not even the old version can see it anymore.
  EXPECT_EQ(cache.get(3, 0), nullptr);
}

TEST(RowCacheUnit, PutReplacesWhateverVersionWasResident) {
  RowCache cache(1 << 20);
  cache.put(3, 0, make_row(100));
  const auto fresh = make_row(200);
  cache.put(3, 5, fresh);
  EXPECT_EQ(cache.stats().entries, 1u);
  const auto hit = cache.get(3, 5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->sims_ids.front(), 200u);
}

TEST(RowCacheUnit, LruEvictsTheColdEndFirst) {
  // Single segment so LRU order is global; capacity fits two rows
  // (payload + bookkeeping bounded by +64 bytes each) but not three.
  const std::size_t row_cost = make_row(0)->bytes();
  RowCache cache(2 * (row_cost + 64), /*segments=*/1);
  cache.put(1, 0, make_row(1));
  cache.put(2, 0, make_row(2));
  ASSERT_NE(cache.get(1, 0), nullptr);  // re-warm 1: now 2 is coldest
  cache.put(3, 0, make_row(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.get(1, 0), nullptr);
  EXPECT_EQ(cache.get(2, 0), nullptr);  // the cold end went
  EXPECT_NE(cache.get(3, 0), nullptr);
}

TEST(RowCacheUnit, ByteBoundHoldsUnderChurnAndOversizedRowsNeverReside) {
  const std::size_t cap = 4096;
  RowCache cache(cap, 4);
  for (VertexId v = 0; v < 512; ++v) {
    cache.put(v, 0, make_row(v));
    EXPECT_LE(cache.stats().bytes, cap);
  }
  EXPECT_GT(cache.stats().evictions, 0u);

  // A row bigger than a whole segment evicts itself: bounded > resident.
  RowCache tiny(64);
  tiny.put(9, 0, make_row(9, /*width=*/64));
  EXPECT_EQ(tiny.stats().entries, 0u);
  EXPECT_EQ(tiny.stats().evictions, 1u);
  EXPECT_EQ(tiny.get(9, 0), nullptr);
}

TEST(RowCacheUnit, RejectsZeroBudgetAndClampsSegments) {
  EXPECT_THROW(RowCache(0), CheckError);
  // 64 bytes cannot carry 16 useful segments; construction still works.
  const RowCache small(64, 16);
  EXPECT_EQ(small.capacity_bytes(), 64u);
}

// ---------- serving-tier integration ----------

std::shared_ptr<const PredictorModel> fit_model(std::uint64_t seed,
                                                std::size_t k_hops) {
  const CsrGraph g = gen::make_dataset("gowalla", 0.02, seed);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = k_hops;
  cfg.seed = seed;
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(4));
  return std::make_shared<const PredictorModel>(predictor.fit(g));
}

TEST(ServeCache, CachedServingBitIdenticalAndRepeatTrafficNeverFetches) {
  const auto model = fit_model(5, 3);
  const QueryEngine engine(model);
  const VertexId n = model->num_vertices();
  std::vector<Scored> want(n);
  for (VertexId u = 0; u < n; ++u) want[u] = engine.topk(u);

  for (const auto transport :
       {TransportKind::kInProcess, TransportKind::kUnixSocket}) {
    ServeOptions opt;
    opt.num_shards = 4;
    opt.transport = transport;
    opt.colocate = false;
    opt.cache_bytes = 32u << 20;  // ample: every fetched row stays
    ServingCluster cluster(*model, opt);

    for (VertexId u = 0; u < n; ++u) {
      ASSERT_EQ(cluster.router().topk(u), want[u]) << "pass 1, u=" << u;
    }
    std::uint64_t fetches_pass1 = 0;
    for (const auto& s : cluster.stats()) {
      fetches_pass1 += s.remote_fetch_requests;
    }
    EXPECT_GT(fetches_pass1, 0u);  // cold cache had to fetch

    for (VertexId u = 0; u < n; ++u) {
      ASSERT_EQ(cluster.router().topk(u), want[u]) << "pass 2, u=" << u;
    }
    std::uint64_t fetches_pass2 = 0, shard_hits = 0, shard_misses = 0;
    for (const auto& s : cluster.stats()) {
      fetches_pass2 += s.remote_fetch_requests;
      shard_hits += s.cache_hits;
      shard_misses += s.cache_misses;
    }
    // Identical repeat traffic: every non-resident row is warm, so the
    // second pass issues ZERO new fetches.
    EXPECT_EQ(fetches_pass2, fetches_pass1);
    EXPECT_GT(shard_hits, 0u);

    const RowCacheStats cs = cluster.cache_stats();
    EXPECT_EQ(cs.hits, shard_hits);      // shard counters ≡ cache counters
    EXPECT_EQ(cs.misses, shard_misses);
    EXPECT_EQ(cs.evictions, 0u);         // the budget was ample
    EXPECT_GT(cs.entries, 0u);
  }
}

/// Splits `full` into a base graph and ~`want` held-back edges to
/// replay as live inserts (same recipe as test_dynamic_model).
struct Split {
  std::shared_ptr<const CsrGraph> base;
  std::vector<Edge> inserts;
};

Split split_graph(const CsrGraph& full, std::size_t want) {
  const auto all = full.edges();
  const std::size_t stride = std::max<std::size_t>(2, all.size() / want);
  Split out;
  GraphBuilder b(full.num_vertices());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i % stride == 1 && out.inserts.size() < want) {
      out.inserts.push_back(all[i]);
    } else {
      b.add_edge(all[i].src, all[i].dst);
    }
  }
  out.base = std::make_shared<const CsrGraph>(b.build());
  return out;
}

/// Insertion-stable (kEdgeLocal) fit — the precondition DynamicModel
/// verifies before it will update a model in place.
std::shared_ptr<const PredictorModel> fit_edge_local(const CsrGraph& g,
                                                     const SnapleConfig& cfg) {
  const auto part = gas::Partitioning::create(
      g, 4, gas::PartitionStrategy::kEdgeLocal, cfg.seed);
  const LinkPredictor predictor(cfg, gas::ClusterConfig::type_i(4),
                                gas::PartitionStrategy::kEdgeLocal);
  return std::make_shared<const PredictorModel>(
      predictor.fit_with_partitioning(g, part));
}

TEST(ServeCache, UpdateLifecycleVersionKeysRetireStaleRowsAcrossReshard) {
  const std::uint64_t seed = 11;
  const CsrGraph full = gen::make_dataset("gowalla", 0.02, seed);
  const Split split = split_graph(full, 30);
  SnapleConfig cfg;
  cfg.k_local = 10;
  cfg.k_hops = 3;
  cfg.seed = seed;
  const auto base_model = fit_edge_local(*split.base, cfg);
  const VertexId n = base_model->num_vertices();

  // ONE cache carried across both cluster generations — the
  // warm-restart pattern the version keys exist for.
  const auto cache = std::make_shared<RowCache>(std::size_t{32} << 20);

  // Generation A serves the base model (every row at version 0) and
  // warms the shared cache.
  {
    ServeOptions opt;
    opt.num_shards = 4;
    opt.colocate = false;
    opt.shared_cache = cache;
    ServingCluster cluster(*base_model, opt);
    const QueryEngine engine(base_model);
    for (VertexId u = 0; u < n; ++u) {
      ASSERT_EQ(cluster.router().topk(u), engine.topk(u)) << u;
    }
  }
  EXPECT_GT(cache->stats().entries, 0u);

  // A live update burst, then freeze → the re-shard input. row_version
  // records which rows the burst republished.
  DynamicModel dyn(base_model, split.base);
  for (const Edge& e : split.inserts) (void)dyn.add_edge(e.src, e.dst);
  const auto updated =
      std::make_shared<const PredictorModel>(dyn.freeze());
  auto versions = std::make_shared<std::vector<std::uint64_t>>(n, 0);
  std::size_t republished = 0;
  for (VertexId u = 0; u < n; ++u) {
    (*versions)[u] = dyn.row_version(u);
    if ((*versions)[u] > 0) ++republished;
  }
  ASSERT_GT(republished, 0u);

  ServeOptions opt;
  opt.num_shards = 4;
  opt.colocate = false;
  opt.shared_cache = cache;
  opt.row_versions = versions;
  ServingCluster cluster(*updated, opt);

  // Plant a poisoned row where generation B will definitely look: a
  // republished vertex that is a non-resident neighbor of some owned
  // vertex under B's ranges, cached under its OLD version. If version
  // keying failed, the garbage would be folded into a served score and
  // the bit-identity loop below would catch it.
  const auto& ranges = cluster.ranges();
  bool planted = false;
  for (VertexId u = 0; u < n && !planted; ++u) {
    const auto& owner = ranges[gas::range_owner(ranges, u)];
    for (const VertexId v : updated->sims(u).ids) {
      if (!owner.contains(v) && (*versions)[v] > 0) {
        cache->put(v, 0, make_row(v));  // stale version, garbage payload
        planted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(planted) << "30 inserts must republish some remote neighbor";
  const std::uint64_t stale_before = cache->stats().stale_drops;

  const QueryEngine engine(updated);
  std::uint64_t warm_hits = cache->stats().hits;
  for (VertexId u = 0; u < n; ++u) {
    ASSERT_EQ(cluster.router().topk(u), engine.topk(u)) << u;
  }
  warm_hits = cache->stats().hits - warm_hits;
  // Carried-over entries for untouched rows kept serving…
  EXPECT_GT(warm_hits, 0u);
  // …and the planted stale entry was retired by its version key.
  EXPECT_GT(cache->stats().stale_drops, stale_before);
}

TEST(ServeCacheConcurrency, EightThreadsHammerATinyCacheAndAgree) {
  const auto model = fit_model(7, 3);
  const QueryEngine engine(model);
  const VertexId n = model->num_vertices();
  std::vector<Scored> want(n);
  for (VertexId u = 0; u < n; ++u) want[u] = engine.topk(u);

  ServeOptions opt;
  opt.num_shards = 4;
  opt.colocate = false;
  opt.connections_per_shard = 4;
  opt.cache_bytes = 64 * 1024;  // tiny on purpose: constant eviction
  ServingCluster cluster(*model, opt);

  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (VertexId i = 0; i < n; ++i) {
        const auto u = static_cast<VertexId>((i + t * 131) % n);
        if (cluster.router().topk(u) != want[u]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);

  const RowCacheStats cs = cluster.cache_stats();
  EXPECT_GT(cs.evictions, 0u);  // the bound did real work
  EXPECT_GT(cs.hits, 0u);       // and hot rows still hit through it
  EXPECT_LE(cs.bytes, cs.capacity_bytes);
}

}  // namespace
}  // namespace snaple
