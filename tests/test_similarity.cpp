// Tests for the raw similarity metrics (eq. 6 building blocks).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/similarity.hpp"
#include "util/rng.hpp"

namespace snaple {
namespace {

using V = std::vector<VertexId>;

TEST(Intersection, HandCases) {
  EXPECT_EQ(sorted_intersection_size(V{1, 2, 3}, V{2, 3, 4}), 2u);
  EXPECT_EQ(sorted_intersection_size(V{1, 2}, V{3, 4}), 0u);
  EXPECT_EQ(sorted_intersection_size(V{}, V{1}), 0u);
  EXPECT_EQ(sorted_intersection_size(V{5}, V{5}), 1u);
}

TEST(Intersection, MatchesStdSetIntersection) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<VertexId> sa;
    std::set<VertexId> sb;
    for (int i = 0; i < 60; ++i) {
      sa.insert(static_cast<VertexId>(rng.next_below(100)));
      sb.insert(static_cast<VertexId>(rng.next_below(100)));
    }
    const V a(sa.begin(), sa.end());
    const V b(sb.begin(), sb.end());
    V expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(sorted_intersection_size(a, b), expected.size());
  }
}

TEST(Jaccard, HandCases) {
  EXPECT_DOUBLE_EQ(jaccard(V{1, 2, 3}, V{2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(jaccard(V{1, 2}, V{1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard(V{1}, V{2}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard(V{}, V{}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard(V{}, V{1, 2}), 0.0);
}

TEST(Jaccard, SymmetricAndBounded) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::set<VertexId> sa;
    std::set<VertexId> sb;
    for (int i = 0; i < 30; ++i) {
      sa.insert(static_cast<VertexId>(rng.next_below(50)));
      sb.insert(static_cast<VertexId>(rng.next_below(50)));
    }
    const V a(sa.begin(), sa.end());
    const V b(sb.begin(), sb.end());
    const double jab = jaccard(a, b);
    EXPECT_DOUBLE_EQ(jab, jaccard(b, a));
    EXPECT_GE(jab, 0.0);
    EXPECT_LE(jab, 1.0);
  }
}

TEST(Cosine, HandCases) {
  EXPECT_DOUBLE_EQ(cosine(V{1, 2}, V{1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(cosine(V{1, 2, 3, 4}, V{1}), 0.5);  // 1/sqrt(4*1)
  EXPECT_DOUBLE_EQ(cosine(V{}, V{1}), 0.0);
}

TEST(Overlap, HandCases) {
  EXPECT_DOUBLE_EQ(overlap(V{1, 2, 3, 4}, V{1, 2}), 1.0);  // subset
  EXPECT_DOUBLE_EQ(overlap(V{1, 2}, V{2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(overlap(V{}, V{}), 0.0);
}

TEST(CommonNeighbors, CountsIntersection) {
  EXPECT_DOUBLE_EQ(common_neighbors(V{1, 2, 3}, V{2, 3, 4}), 2.0);
}

TEST(Similarity, DispatchMatchesDirectCalls) {
  const V a{1, 2, 3};
  const V b{2, 3, 4};
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kJaccard, a, b, 9),
                   jaccard(a, b));
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kCosine, a, b, 9),
                   cosine(a, b));
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kCommonNeighbors, a, b, 9),
                   common_neighbors(a, b));
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kOverlap, a, b, 9),
                   overlap(a, b));
}

TEST(Similarity, InverseDegreeUsesTargetDegree) {
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kInverseDegree, {}, {}, 4),
                   0.25);
  // Degree 0 guards to 1 (no division by zero).
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kInverseDegree, {}, {}, 0),
                   1.0);
}

TEST(Similarity, ConstantIsOne) {
  EXPECT_DOUBLE_EQ(similarity(SimilarityMetric::kConstant, {}, {}, 123),
                   1.0);
}

TEST(Similarity, NamesAreStable) {
  EXPECT_EQ(similarity_name(SimilarityMetric::kJaccard), "jaccard");
  EXPECT_EQ(similarity_name(SimilarityMetric::kInverseDegree), "1/deg");
  EXPECT_EQ(similarity_name(SimilarityMetric::kConstant), "const");
}

}  // namespace
}  // namespace snaple
