#include "baseline/gas_baseline.hpp"

#include <algorithm>

#include "core/similarity.hpp"
#include "util/top_k.hpp"

namespace snaple::baseline {

namespace {

/// Vertex state: own neighborhood, then neighbors' neighborhoods.
struct BaselineVertexData {
  std::vector<VertexId> gamma;  // Γ(u), sorted
  std::vector<std::pair<VertexId, std::vector<VertexId>>> nbrhood;  // {(v, Γv)}
  std::vector<VertexId> predicted;
};

std::size_t vertex_bytes(const BaselineVertexData& d) {
  std::size_t total = sizeof(std::uint32_t) * 3 +
                      d.gamma.size() * sizeof(VertexId) +
                      d.predicted.size() * sizeof(VertexId);
  for (const auto& [v, gv] : d.nbrhood) {
    total += sizeof(VertexId) + sizeof(std::uint32_t) +
             gv.size() * sizeof(VertexId);
  }
  return total;
}

using NbrhoodAcc = std::vector<std::pair<VertexId, std::vector<VertexId>>>;

}  // namespace

BaselineResult run_baseline(const CsrGraph& graph,
                            const BaselineConfig& config,
                            const gas::Partitioning& partitioning,
                            const gas::ClusterConfig& cluster,
                            ThreadPool* pool, gas::ExecutionMode exec) {
  gas::Engine<BaselineVertexData> engine(graph, partitioning, cluster,
                                         &vertex_bytes, pool, exec);

  // ---- Step 0: collect own neighbor ids. ----
  {
    gas::StepOptions opt{.name = "0:own-neighborhood",
                         .dir = gas::EdgeDir::kOut,
                         .mode = gas::ApplyMode::kFused};
    engine.step<std::vector<VertexId>>(
        opt,
        [](VertexId, VertexId v, const BaselineVertexData&,
           const BaselineVertexData&, std::vector<VertexId>& acc)
            -> std::size_t {
          acc.push_back(v);
          return sizeof(VertexId);
        },
        [](VertexId, BaselineVertexData& du, std::vector<VertexId>& acc,
           std::size_t) {
          du.gamma.assign(acc.begin(), acc.end());
          std::sort(du.gamma.begin(), du.gamma.end());
        });
  }

  // ---- Step 1: replicate every neighbor's full neighborhood (eq. 7). ----
  {
    gas::StepOptions opt{.name = "1:propagate-neighborhoods",
                         .dir = gas::EdgeDir::kOut,
                         .mode = gas::ApplyMode::kFused};
    engine.step<NbrhoodAcc>(
        opt,
        [](VertexId, VertexId v, const BaselineVertexData&,
           const BaselineVertexData& dv, NbrhoodAcc& acc) -> std::size_t {
          acc.emplace_back(v, dv.gamma);
          return sizeof(VertexId) + sizeof(std::uint32_t) +
                 dv.gamma.size() * sizeof(VertexId);
        },
        [](VertexId, BaselineVertexData& du, NbrhoodAcc& acc, std::size_t) {
          du.nbrhood.assign(std::make_move_iterator(acc.begin()),
                            std::make_move_iterator(acc.end()));
        });
  }

  // ---- Step 2: gather (z, Γz) over 2-hop paths, score, rank. ----
  {
    gas::StepOptions opt{.name = "2:score-candidates",
                         .dir = gas::EdgeDir::kOut,
                         .mode = gas::ApplyMode::kFused};
    engine.step<NbrhoodAcc>(
        opt,
        [](VertexId u, VertexId /*v*/, const BaselineVertexData&,
           const BaselineVertexData& dv, NbrhoodAcc& acc) -> std::size_t {
          std::size_t bytes = 0;
          for (const auto& [z, gz] : dv.nbrhood) {
            if (z == u) continue;
            acc.emplace_back(z, gz);
            bytes += sizeof(VertexId) + sizeof(std::uint32_t) +
                     gz.size() * sizeof(VertexId);
          }
          // v's own entry never reaches u through this hop (v ∈ Γ(u) is
          // not a candidate), but its table just crossed the wire whole —
          // the redundancy the paper's Figure 1 illustrates.
          return bytes;
        },
        [&](VertexId /*u*/, BaselineVertexData& du, NbrhoodAcc& acc,
            std::size_t) {
          // Deduplicate candidates (the same z arrives once per path).
          std::sort(acc.begin(), acc.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          TopK<VertexId, double> top(config.k);
          const auto& gamma = du.gamma;
          for (std::size_t i = 0; i < acc.size(); ++i) {
            if (i > 0 && acc[i].first == acc[i - 1].first) continue;
            const VertexId z = acc[i].first;
            if (std::binary_search(gamma.begin(), gamma.end(), z)) continue;
            top.offer(z, jaccard(gamma, acc[i].second));
          }
          du.predicted = top.take_items();
        });
  }

  BaselineResult result;
  result.predictions.resize(graph.num_vertices());
  auto& data = engine.data();
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    result.predictions[u] = std::move(data[u].predicted);
  }
  result.report = engine.report();
  return result;
}

}  // namespace snaple::baseline
