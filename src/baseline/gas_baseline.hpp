// BASELINE: the direct GAS implementation of unsupervised link prediction
// (Algorithm 1 with the 2-hop optimization) that Table 5 compares SNAPLE
// against.
//
// Because a GAS gather can only see direct neighbors, scoring candidates
// two hops away forces neighborhoods to travel along every 2-hop path
// (the naive approach of eq. 7 / Figure 1):
//
//   Step 0  collect own neighbor ids:            Du.gamma   = Γ(u)
//   Step 1  pull each neighbor's neighborhood:   Du.nbrhood = {(v, Γ(v))}
//   Step 2  pull the neighbors' nbrhood tables, giving u the pairs
//           (z, Γ(z)) for every z ∈ Γ²(u); score the distinct candidates
//           z ∉ Γ(u) with Jaccard(Γ(u), Γ(z)) and keep the top k.
//
// The redundant transfer and storage this causes is the point: vertex data
// after step 1 is Σ_{v∈Γ(u)} |Γ(v)| ids — O(E·d̄) cluster-wide — and the
// step-2 gather accumulates a further O(E·d̄²). On the larger datasets
// this exhausts the simulated machines' memory (ResourceExhausted),
// reproducing the paper's "BASELINE fails by exhausting the available
// memory" (§5.3). No truncation or sampling is applied — that is SNAPLE's
// contribution, not the baseline's.
#pragma once

#include <cstddef>
#include <vector>

#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::baseline {

struct BaselineConfig {
  /// Predictions per vertex (k of Algorithm 1).
  std::size_t k = 5;
};

struct BaselineResult {
  std::vector<std::vector<VertexId>> predictions;
  gas::EngineReport report;
};

/// Runs BASELINE on the simulated cluster. Throws gas::ResourceExhausted
/// when the per-machine memory budget is exceeded, as GraphLab does on the
/// paper's orkut / twitter-rv runs.
[[nodiscard]] BaselineResult run_baseline(
    const CsrGraph& graph, const BaselineConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool = nullptr,
    gas::ExecutionMode exec = gas::ExecutionMode::kFlat);

}  // namespace snaple::baseline
