#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace snaple {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[idx == 0 ? 0 : idx - 1];
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace snaple
