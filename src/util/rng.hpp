// Deterministic, fast pseudo-random number generation.
//
// Every randomized component in the library (generators, truncation,
// sampling policies, the evaluation protocol) takes an explicit seed so
// experiments are reproducible. We use SplitMix64 for seeding and
// Xoshiro256++ as the workhorse generator: both are tiny, fast, and good
// enough statistically for simulation workloads (this is not a crypto RNG).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace snaple {

/// SplitMix64: used to expand a single 64-bit seed into a stream of
/// well-mixed values (and to seed Xoshiro). Reference: Steele et al.,
/// "Fast Splittable Pseudorandom Number Generators" (OOPSLA'14).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ by Blackman & Vigna. Satisfies UniformRandomBitGenerator
/// so it can be plugged into <random> distributions if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'5eed'5eed'5eedULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// A decorrelated child generator; use to give each thread / vertex its
  /// own stream derived from a parent seed.
  Rng split(std::uint64_t stream) noexcept {
    SplitMix64 sm(state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    Rng child(sm.next());
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle of a random-access container.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  if (c.size() < 2) return;
  for (std::size_t i = c.size() - 1; i > 0; --i) {
    const std::size_t j = rng.next_below(i + 1);
    using std::swap;
    swap(c[i], c[j]);
  }
}

}  // namespace snaple
