// Bounded top-k selection — the `argtopk` operator of the paper
// (Algorithm 1 line 2, Algorithm 2 lines 11 and 20).
//
// Keeps the k largest items by score in a binary min-heap of size k, so
// selecting the top k of n items costs O(n log k) and O(k) memory.
// Ties are broken by item (smaller item wins) to keep results fully
// deterministic across runs and thread counts.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace snaple {

template <typename Item, typename Score = double>
class TopK {
 public:
  struct Entry {
    Item item{};
    Score score{};

    /// Heap/order comparison: lower score first; ties broken so larger
    /// items are evicted first (deterministic results).
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score < b.score;
      return a.item > b.item;
    }
  };

  explicit TopK(std::size_t k) : k_(k) { heap_.reserve(k); }

  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  void clear() noexcept { heap_.clear(); }

  /// Offers an item; keeps it only if it ranks among the k best so far.
  void offer(const Item& item, Score score) {
    if (k_ == 0) return;
    Entry e{item, score};
    if (heap_.size() < k_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), MinFirst{});
      return;
    }
    // Keep e only if it beats the current minimum (heap top).
    if (!(heap_.front() < e)) return;
    std::pop_heap(heap_.begin(), heap_.end(), MinFirst{});
    heap_.back() = e;
    std::push_heap(heap_.begin(), heap_.end(), MinFirst{});
  }

  /// Returns entries sorted by descending score (ascending item on ties)
  /// and leaves the selector empty.
  [[nodiscard]] std::vector<Entry> take_sorted() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return b < a; });
    return out;
  }

  /// Returns just the items, best first, and leaves the selector empty.
  [[nodiscard]] std::vector<Item> take_items() {
    auto entries = take_sorted();
    std::vector<Item> out;
    out.reserve(entries.size());
    for (const auto& e : entries) out.push_back(e.item);
    return out;
  }

 private:
  // std::push_heap builds a max-heap for the given "less"; we want the
  // minimum on top so the comparator is the natural operator<.
  struct MinFirst {
    bool operator()(const Entry& a, const Entry& b) const { return b < a; }
  };

  std::size_t k_;
  std::vector<Entry> heap_;
};

/// One-shot helper: top k of a whole range of (item, score) pairs.
template <typename Item, typename Score>
[[nodiscard]] std::vector<Item> top_k_items(
    const std::vector<std::pair<Item, Score>>& pairs, std::size_t k) {
  TopK<Item, Score> sel(k);
  for (const auto& [item, score] : pairs) sel.offer(item, score);
  return sel.take_items();
}

}  // namespace snaple
