#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace snaple {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SNAPLE_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SNAPLE_CHECK_MSG(cells.size() <= headers_.size(),
                   "row has more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad)
        os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
void csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      csv_cell(os, cells[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

namespace {

/// True iff `s` is a strict JSON number literal (so it can be emitted
/// verbatim): -?int frac? exp?, no leading zeros, no inf/nan.
bool is_json_number(const std::string& s) {
  const char* p = s.c_str();
  if (*p == '-') ++p;
  if (*p < '0' || *p > '9') return false;
  if (*p == '0' && p[1] >= '0' && p[1] <= '9') return false;
  while (*p >= '0' && *p <= '9') ++p;
  if (*p == '.') {
    ++p;
    if (*p < '0' || *p > '9') return false;
    while (*p >= '0' && *p <= '9') ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (*p < '0' || *p > '9') return false;
    while (*p >= '0' && *p <= '9') ++p;
  }
  return *p == '\0';
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  os << '[';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      json_string(os, headers_[c]);
      os << ": ";
      const std::string& cell = rows_[r][c];
      if (is_json_number(cell)) {
        os << cell;
      } else {
        json_string(os, cell);
      }
    }
    os << '}';
  }
  os << "\n]";
}

}  // namespace snaple
