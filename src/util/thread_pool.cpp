#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace snaple {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    // Worker ids start at 1; the submitting thread acts as worker 0.
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::drain(const std::shared_ptr<Job>& job,
                       std::size_t worker_id) {
  for (;;) {
    const std::size_t start =
        job->cursor.fetch_add(job->grain, std::memory_order_relaxed);
    if (start >= job->end) break;
    const std::size_t stop = std::min(job->end, start + job->grain);
    if (!job->failed.load(std::memory_order_acquire)) {
      try {
        for (std::size_t i = start; i < stop; ++i) (*job->body)(i, worker_id);
      } catch (...) {
        std::scoped_lock lock(job->error_mutex);
        if (!job->error) job->error = std::current_exception();
        job->failed.store(true, std::memory_order_release);
      }
    }
    if (job->remaining.fetch_sub(stop - start, std::memory_order_acq_rel) ==
        stop - start) {
      // We finished the last chunk. Take the mutex (empty scope) before
      // notifying so the waiter cannot lose the wakeup between its
      // predicate check and its block.
      { std::scoped_lock lock(mutex_); }
      work_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (current_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (stopping_) return;
      job = current_;
      seen_epoch = job_epoch_;
    }
    drain(job, worker_id);
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    // Aim for ~8 chunks per worker so skewed items still balance without
    // paying an atomic per element.
    grain = std::max<std::size_t>(1, n / (8 * slot_count()));
  }

  // Small ranges are cheaper inline than waking the pool; exceptions
  // propagate naturally on this path.
  if (n <= grain || worker_count() == 0) {
    for (std::size_t i = begin; i < end; ++i) body(i, 0);
    return;
  }

  auto job = std::make_shared<Job>();
  job->end = end;
  job->grain = grain;
  job->cursor.store(begin, std::memory_order_relaxed);
  job->remaining.store(n, std::memory_order_relaxed);
  job->body = &body;

  {
    std::scoped_lock lock(mutex_);
    SNAPLE_CHECK_MSG(current_ == nullptr,
                     "nested parallel_for on the same pool is not supported");
    current_ = job;
    ++job_epoch_;
  }
  work_ready_.notify_all();

  drain(job, 0);  // the caller participates

  {
    std::unique_lock lock(mutex_);
    work_done_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    current_.reset();
  }
  if (job->failed.load(std::memory_order_acquire)) {
    std::scoped_lock lock(job->error_mutex);
    std::rethrow_exception(job->error);
  }
}

void ThreadPool::parallel_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t min_block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (min_block == 0) min_block = 1;
  std::size_t blocks =
      std::min((n + min_block - 1) / min_block, 8 * slot_count());
  blocks = std::max<std::size_t>(blocks, 1);
  parallel_for(
      0, blocks,
      [&](std::size_t bi, std::size_t worker) {
        const std::size_t b = begin + n / blocks * bi + std::min(bi, n % blocks);
        const std::size_t e =
            begin + n / blocks * (bi + 1) + std::min(bi + 1, n % blocks);
        if (b < e) body(b, e, worker);
      },
      /*grain=*/1);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace snaple
