// Open-addressing accumulator map: vertex id -> (accumulated score, count).
//
// This is the data structure behind `merge(⊕pre, γ1, γ2)` in Algorithm 2
// (line 16): during step 3 every source vertex folds up to klocal² candidate
// triplets (z, s, n) into one associative container. A std::unordered_map
// would allocate a node per candidate; this map is a flat power-of-two
// table with linear probing that callers reset and reuse across vertices,
// so the hot loop performs zero allocations in steady state.
// docs/ARCHITECTURE.md documents the rationale; micro_kernels benchmarks it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace snaple {

/// Accumulates (score, path-count) per key with a user-supplied ⊕pre.
/// Keys are 32-bit vertex ids; kEmpty is reserved as the empty marker.
class ScoreMap {
 public:
  using Key = std::uint32_t;
  static constexpr Key kEmpty = 0xffffffffu;

  struct Slot {
    Key key = kEmpty;
    float score = 0.0f;
    std::uint32_t count = 0;
  };

  /// Default construction allocates nothing — the table appears on the
  /// first accumulate(). The GAS engine default-constructs one map per
  /// deferred master vertex each superstep; lazy allocation keeps the
  /// empty ones (and the moved-from message payloads) free.
  explicit ScoreMap(std::size_t expected = 0) {
    if (expected > 0) rehash_for(expected);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Removes all entries but keeps the table memory for reuse. A hub
  /// vertex balloons the reused table; once occupancy falls far below
  /// capacity the logical table is shrunk (vector capacity is retained,
  /// so this allocates nothing) — otherwise every later clear() would
  /// keep sweeping a hub-sized array for a handful of entries.
  void clear() noexcept {
    if (slots_.size() != mask_ + 1) {
      // Sealed (dense) or never-allocated representation: drop to the
      // lazy-empty state; a probing table reappears on first accumulate.
      slots_.clear();
      size_ = 0;
      mask_ = 0;
      shift_ = 64;
      return;
    }
    if (size_ == 0) return;
    const std::size_t last = size_;
    size_ = 0;
    if (!shrink_if_oversized(last)) {
      for (auto& s : slots_) s.key = kEmpty;
    }
  }

  /// Folds (key, score, count) into the map. On first sight the entry is
  /// (score, count); afterwards score' = pre(score', score) and
  /// count' += count. `pre` is the paper's ⊕pre: any commutative,
  /// associative binary op on scores (e.g. + for Sum/Mean, × for Geom).
  template <typename PreOp>
  void accumulate(Key key, float score, std::uint32_t count, PreOp&& pre) {
    SNAPLE_DCHECK(key != kEmpty);
    if ((size_ + 1) * 4 >= slots_.size() * 3) rehash_for(slots_.size());
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.score = pre(s.score, score);
        s.count += count;
        return;
      }
      if (s.key == kEmpty) {
        s.key = key;
        s.score = score;
        s.count = count;
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns the entry for `key`, or nullptr if absent. On a sealed map
  /// (export_compact()) lookups fall back to a linear scan — sealed
  /// partials are meant for iteration, but a stray find() must stay
  /// correct rather than probe a table that does not exist.
  [[nodiscard]] const Slot* find(Key key) const noexcept {
    if (slots_.empty()) return nullptr;
    if (mask_ == 0) {  // sealed/dense: no probing structure (real tables
                       // have capacity >= 16, so mask_ >= 15)
      for (const auto& s : slots_) {
        if (s.key == key) return &s;
      }
      return nullptr;
    }
    std::size_t i = probe_start(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  /// Visits every occupied slot (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.score, s.count);
    }
  }

  /// Approximate heap footprint, used by the GAS memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

  /// Extracts the contents into a *sealed* map, leaving *this empty but
  /// with its table memory (capacity) intact. The sharded GAS engine
  /// exports mirror partials with this: a moved-from scratch would regrow
  /// through the whole rehash chain on the next vertex, and a plain copy
  /// followed by clear() would sweep the (possibly hub-sized) table
  /// twice — this does read-out and reset in the same single sweep.
  ///
  /// A sealed map stores its entries densely (slots_.size() == size(),
  /// no empty slots, mask_ == 0): for_each() and clear() work normally —
  /// all a serialized partial needs — while find() on it is invalid
  /// (DCHECKed) and the first accumulate() transparently rebuilds a real
  /// probing table from the dense entries via the normal growth rehash.
  [[nodiscard]] ScoreMap export_compact() {
    ScoreMap out;
    if (size_ == 0) return out;
    out.slots_.reserve(size_);
    for (auto& s : slots_) {
      if (s.key == kEmpty) continue;
      out.slots_.push_back(s);
      s.key = kEmpty;
    }
    out.size_ = size_;
    size_ = 0;
    shrink_if_oversized(out.size_);  // same hub hygiene as clear()
    return out;
  }

 private:
  /// Shrinks the (empty) logical table when the last occupancy used far
  /// less than its capacity. Reuses the vector's existing storage, so it
  /// never allocates; returns true if the table was re-initialized.
  /// Call only with size_ == 0.
  bool shrink_if_oversized(std::size_t last_occupancy) noexcept {
    if (slots_.size() < 256) return false;
    std::size_t target = 16;
    while (target * 3 < last_occupancy * 4 + 4) target <<= 1;
    target <<= 1;  // headroom: the next vertex is likely similar
    if (target * 4 > slots_.size()) return false;
    slots_.assign(target, Slot{});
    mask_ = target - 1;
    shift_ = 64 - count_bits(target);
    return true;
  }

  [[nodiscard]] std::size_t probe_start(Key key) const noexcept {
    // Fibonacci hashing spreads sequential vertex ids well.
    const std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_) & mask_;
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 3 < expected * 4 + 4) cap <<= 1;
    if (cap <= slots_.size()) cap = slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    shift_ = 64 - count_bits(cap);
    size_ = 0;
    for (const auto& s : old) {
      if (s.key != kEmpty) {
        // Re-insert without growth checks; capacity is sufficient.
        std::size_t i = probe_start(s.key);
        while (slots_[i].key != kEmpty) i = (i + 1) & mask_;
        slots_[i] = s;
        ++size_;
      }
    }
  }

  static constexpr int count_bits(std::size_t pow2) noexcept {
    int b = 0;
    while ((std::size_t{1} << b) < pow2) ++b;
    return b;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  int shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace snaple
