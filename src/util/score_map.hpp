// Open-addressing accumulator map: vertex id -> (accumulated score, count).
//
// This is the data structure behind `merge(⊕pre, γ1, γ2)` in Algorithm 2
// (line 16): during step 3 every source vertex folds up to klocal² candidate
// triplets (z, s, n) into one associative container. A std::unordered_map
// would allocate a node per candidate; this map is a flat power-of-two
// table with linear probing that callers reset and reuse across vertices,
// so the hot loop performs zero allocations in steady state.
// docs/ARCHITECTURE.md documents the rationale; micro_kernels benchmarks it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace snaple {

/// Accumulates (score, path-count) per key with a user-supplied ⊕pre.
/// Keys are 32-bit vertex ids; kEmpty is reserved as the empty marker.
class ScoreMap {
 public:
  using Key = std::uint32_t;
  static constexpr Key kEmpty = 0xffffffffu;

  struct Slot {
    Key key = kEmpty;
    float score = 0.0f;
    std::uint32_t count = 0;
  };

  explicit ScoreMap(std::size_t expected = 16) { rehash_for(expected); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Removes all entries but keeps the table memory for reuse.
  void clear() noexcept {
    if (size_ == 0) return;
    for (auto& s : slots_) s.key = kEmpty;
    size_ = 0;
  }

  /// Folds (key, score, count) into the map. On first sight the entry is
  /// (score, count); afterwards score' = pre(score', score) and
  /// count' += count. `pre` is the paper's ⊕pre: any commutative,
  /// associative binary op on scores (e.g. + for Sum/Mean, × for Geom).
  template <typename PreOp>
  void accumulate(Key key, float score, std::uint32_t count, PreOp&& pre) {
    SNAPLE_DCHECK(key != kEmpty);
    if ((size_ + 1) * 4 >= slots_.size() * 3) rehash_for(slots_.size());
    std::size_t i = probe_start(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.score = pre(s.score, score);
        s.count += count;
        return;
      }
      if (s.key == kEmpty) {
        s.key = key;
        s.score = score;
        s.count = count;
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns the entry for `key`, or nullptr if absent.
  [[nodiscard]] const Slot* find(Key key) const noexcept {
    std::size_t i = probe_start(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == kEmpty) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  /// Visits every occupied slot (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_) {
      if (s.key != kEmpty) fn(s.key, s.score, s.count);
    }
  }

  /// Approximate heap footprint, used by the GAS memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

 private:
  [[nodiscard]] std::size_t probe_start(Key key) const noexcept {
    // Fibonacci hashing spreads sequential vertex ids well.
    const std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_) & mask_;
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap * 3 < expected * 4 + 4) cap <<= 1;
    if (cap <= slots_.size()) cap = slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    shift_ = 64 - count_bits(cap);
    size_ = 0;
    for (const auto& s : old) {
      if (s.key != kEmpty) {
        // Re-insert without growth checks; capacity is sufficient.
        std::size_t i = probe_start(s.key);
        while (slots_[i].key != kEmpty) i = (i + 1) & mask_;
        slots_[i] = s;
        ++size_;
      }
    }
  }

  static constexpr int count_bits(std::size_t pow2) noexcept {
    int b = 0;
    while ((std::size_t{1} << b) < pow2) ++b;
    return b;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  int shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace snaple
