// rng.hpp is header-only; this translation unit exists so the library has
// an archive member for it and to host a compile-time smoke check.
#include "util/rng.hpp"

namespace snaple {
static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);
}  // namespace snaple
