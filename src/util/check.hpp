// Lightweight precondition / invariant checking.
//
// SNAPLE_CHECK is always on (cheap checks on API boundaries, per the
// "catch run-time errors early" rule); SNAPLE_DCHECK compiles away in
// release builds and is meant for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace snaple {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a simulated machine exceeds its memory budget, mirroring
/// GraphLab's behaviour when a naive program replicates too much state.
class ResourceExhausted : public std::runtime_error {
 public:
  explicit ResourceExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace snaple

#define SNAPLE_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::snaple::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define SNAPLE_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::snaple::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define SNAPLE_DCHECK(expr) ((void)0)
#else
#define SNAPLE_DCHECK(expr) SNAPLE_CHECK(expr)
#endif
