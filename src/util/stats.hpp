// Summary statistics and empirical CDFs.
//
// Used by the degree-distribution analysis (Figure 6a–c reproduces the
// out-degree CDFs of orkut/livejournal/twitter with thrΓ markers) and by
// bench reporting (mean ± stddev over repetitions).
#pragma once

#include <cstddef>
#include <vector>

namespace snaple {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// An empirical CDF over a sample of values.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x) under the empirical distribution.
  [[nodiscard]] double at(double x) const noexcept;

  /// Smallest sample value v with P(X <= v) >= q, for q in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return sorted_.size();
  }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

/// Percentile (q in [0,1]) of a sample by linear interpolation; the input
/// does not need to be sorted. Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::vector<double> values, double q);

}  // namespace snaple
