#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

// The AVX2 bodies are compiled whenever the compiler supports the
// function-level target attribute on x86-64 (gcc/clang); they are never
// *executed* unless CPUID says the instructions exist. SNAPLE_NO_AVX2
// (set by -DSNAPLE_DISABLE_AVX2=ON) compiles them out entirely for the
// CI leg that proves the scalar fallback stands alone.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SNAPLE_NO_AVX2)
#define SNAPLE_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace snaple::simd {

namespace {

/// -1 = no override; otherwise the pinned Level.
std::atomic<int> g_override{-1};

bool detect_avx2() {
#ifdef SNAPLE_HAVE_AVX2_KERNELS
  const char* force = std::getenv("SNAPLE_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return false;
  }
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Level detected_level() {
  static const Level level = detect_avx2() ? Level::kAvx2 : Level::kScalar;
  return level;
}

constexpr std::uint64_t field_mask(unsigned width) {
  return width >= 32 ? 0xffffffffULL : ((std::uint64_t{1} << width) - 1);
}

}  // namespace

Level active_level() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    const auto level = static_cast<Level>(forced);
    // Never dispatch to code the build or CPU cannot run.
    if (level == Level::kAvx2 && detected_level() != Level::kAvx2) {
      return Level::kScalar;
    }
    return level;
  }
  return detected_level();
}

void override_level(Level level) noexcept {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_level_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

const char* level_name(Level level) noexcept {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

// ---------------------------------------------------------------------
// delta_unpack
// ---------------------------------------------------------------------

std::uint32_t delta_unpack_scalar(const std::uint8_t* in, unsigned width,
                                  std::uint32_t count, std::uint32_t prev,
                                  VertexId* out) noexcept {
  if (width == 0) {
    // A zero-width block is a consecutive run: every field is 0.
    for (std::uint32_t i = 0; i < count; ++i) out[i] = ++prev;
    return prev;
  }
  const std::uint64_t mask = field_mask(width);
  std::uint64_t bitpos = 0;
  for (std::uint32_t i = 0; i < count; ++i, bitpos += width) {
    // Unaligned 64-bit window: shift ≤ 7 plus width ≤ 32 always fits.
    std::uint64_t w;
    std::memcpy(&w, in + (bitpos >> 3), sizeof(w));
    const auto field = static_cast<std::uint32_t>((w >> (bitpos & 7)) & mask);
    out[i] = prev = prev + 1 + field;
  }
  return prev;
}

#ifdef SNAPLE_HAVE_AVX2_KERNELS

/// 8 fields per iteration. Two ways to land each field's 32-bit window
/// in its lane:
///
///   * width ≤ 14: lane 7's window ends at byte (7*width)/8 + 3 ≤ 15,
///     so all 8 windows live in the 16 bytes at `p` — one 128-bit load
///     broadcast to both halves + a per-lane byte shuffle (pshufb
///     indexes within each 128-bit half, and both halves hold the same
///     16 bytes). This is the common case: width 14 covers deltas up
///     to 16383.
///   * 14 < width ≤ 25: a byte-offset gather pulls the windows (lane
///     i's window starts shift ≤ 7 bits into its byte, so widths up to
///     25 fit a 32-bit lane). Slower, but rare — near-random deltas.
///
/// Either way a variable shift + mask isolates the field, then +1 and
/// a vectorized inclusive prefix sum (two in-lane shifts, one
/// cross-lane broadcast) reconstruct the ascending ids. Wider blocks
/// take the scalar loop. Eight fields advance the stream by exactly
/// `width` bytes, so the per-lane offsets and shuffle masks are loop
/// constants.
/// Per-width loop constants, computed once: lane i's window starts at
/// byte (i*width)>>3, shifted by (i*width)&7; the shuffle mask places
/// those four window bytes into lane i%4 of half i/4 (pshufb indexes
/// within each 128-bit half, and both halves hold the same 16 bytes).
/// A lookup beats recomputing — short rows make the per-call setup part
/// of the hot path.
struct UnpackLut {
  alignas(32) int byte_off[26][8];
  alignas(32) std::uint32_t bit_off[26][8];
  alignas(32) std::uint8_t shuf[26][32];
};

constexpr UnpackLut make_unpack_lut() {
  UnpackLut lut{};
  for (unsigned width = 0; width <= 25; ++width) {
    for (unsigned lane = 0; lane < 8; ++lane) {
      const auto first_byte = static_cast<std::uint8_t>((lane * width) >> 3);
      lut.byte_off[width][lane] = first_byte;
      lut.bit_off[width][lane] = (lane * width) & 7;
      for (unsigned b = 0; b < 4; ++b) {
        lut.shuf[width][(lane & 4) * 4 + (lane & 3) * 4 + b] =
            static_cast<std::uint8_t>(first_byte + b);
      }
    }
  }
  return lut;
}

constexpr UnpackLut kUnpackLut = make_unpack_lut();

__attribute__((target("avx2"))) std::uint32_t delta_unpack_avx2(
    const std::uint8_t* in, unsigned width, std::uint32_t count,
    std::uint32_t prev, VertexId* out) noexcept {
  if (width == 0 || width > 25 || count < 8) {
    return delta_unpack_scalar(in, width, count, prev, out);
  }
  const __m256i voff = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kUnpackLut.byte_off[width]));
  const __m256i vshuf = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kUnpackLut.shuf[width]));
  const __m256i vshift = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kUnpackLut.bit_off[width]));
  const __m256i vmask =
      _mm256_set1_epi32(static_cast<int>(field_mask(width)));
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i bcast3 = _mm256_set1_epi32(3);
  const __m256i bcast7 = _mm256_set1_epi32(7);
  __m256i carry = _mm256_set1_epi32(static_cast<int>(prev));

  // The prefix-sum + carry tail is identical for both load strategies
  // (a lambda cannot carry the avx2 target attribute, hence a macro).
#define SNAPLE_UNPACK_FINISH(v_)                                          \
  do {                                                                    \
    __m256i v = (v_);                                                     \
    v = _mm256_srlv_epi32(v, vshift);                                     \
    v = _mm256_and_si256(v, vmask);                                       \
    v = _mm256_add_epi32(v, vone);                                        \
    /* Inclusive prefix sum across the 8 lanes. */                        \
    v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));                     \
    v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));                     \
    const __m256i low_total = _mm256_permutevar8x32_epi32(v, bcast3);     \
    v = _mm256_add_epi32(                                                 \
        v, _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0));  \
    /* Broadcasting lane 7 commutes with the broadcast carry add, so   */ \
    /* the loop-carried chain is ONE add (not add + 3-cycle permute):  */ \
    /* next_carry = bcast7(local) + carry == bcast7(local + carry).    */ \
    const __m256i total = _mm256_permutevar8x32_epi32(v, bcast7);         \
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),              \
                        _mm256_add_epi32(v, carry));                      \
    carry = _mm256_add_epi32(total, carry);                               \
  } while (0)

  std::uint32_t i = 0;
  const std::uint8_t* p = in;
  if (width <= 14) {
    for (; i + 8 <= count; i += 8, p += width) {
      const __m256i window = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
      SNAPLE_UNPACK_FINISH(_mm256_shuffle_epi8(window, vshuf));
    }
  } else {
    for (; i + 8 <= count; i += 8, p += width) {
      SNAPLE_UNPACK_FINISH(
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(p), voff, 1));
    }
  }
#undef SNAPLE_UNPACK_FINISH
  prev = static_cast<std::uint32_t>(_mm256_cvtsi256_si32(carry));

  // Scalar tail (< 8 fields), continuing at bit position i*width.
  const std::uint64_t mask = field_mask(width);
  std::uint64_t bitpos = static_cast<std::uint64_t>(i) * width;
  for (; i < count; ++i, bitpos += width) {
    std::uint64_t w;
    std::memcpy(&w, in + (bitpos >> 3), sizeof(w));
    const auto field = static_cast<std::uint32_t>((w >> (bitpos & 7)) & mask);
    out[i] = prev = prev + 1 + field;
  }
  return prev;
}

#endif  // SNAPLE_HAVE_AVX2_KERNELS

std::uint32_t delta_unpack(const std::uint8_t* in, unsigned width,
                           std::uint32_t count, std::uint32_t prev,
                           VertexId* out) noexcept {
#ifdef SNAPLE_HAVE_AVX2_KERNELS
  if (active_level() == Level::kAvx2) {
    return delta_unpack_avx2(in, width, count, prev, out);
  }
#endif
  return delta_unpack_scalar(in, width, count, prev, out);
}

UnpackFn unpack_kernel() noexcept {
#ifdef SNAPLE_HAVE_AVX2_KERNELS
  if (active_level() == Level::kAvx2) return &delta_unpack_avx2;
#endif
  return &delta_unpack_scalar;
}

// ---------------------------------------------------------------------
// intersect_count
// ---------------------------------------------------------------------

namespace {

/// Linear merge — the reference; exact for any strictly-ascending input.
std::size_t intersect_merge(const VertexId* a, std::size_t na,
                            const VertexId* b, std::size_t nb) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Galloping for lopsided sizes: binary-search each element of the
/// short list in the remaining suffix of the long one.
std::size_t intersect_gallop(const VertexId* small, std::size_t ns,
                             const VertexId* big, std::size_t nb) noexcept {
  std::size_t count = 0;
  SortedMembership member({big, nb});
  for (std::size_t i = 0; i < ns; ++i) {
    if (member.contains(small[i])) ++count;
  }
  return count;
}

/// One side is ≥ 32× the other: galloping beats both the merge and the
/// block compare (thrΓ bounds most SNAPLE rows, but overlay/serving
/// paths do intersect short lists against hub rows).
constexpr std::size_t kGallopRatio = 32;

}  // namespace

std::size_t intersect_count_scalar(std::span<const VertexId> a,
                                   std::span<const VertexId> b) noexcept {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= kGallopRatio) {
    return intersect_gallop(a.data(), a.size(), b.data(), b.size());
  }
  return intersect_merge(a.data(), a.size(), b.data(), b.size());
}

#ifdef SNAPLE_HAVE_AVX2_KERNELS

/// 8×8 block compare: va against all 8 rotations of vb covers every
/// pair; ids are strictly ascending so each id matches at most once and
/// the OR of the equality masks popcounts to the exact intersection
/// size. Blocks advance by whichever maximum is smaller (both on ties).
__attribute__((target("avx2"))) std::size_t intersect_avx2(
    const VertexId* a, std::size_t na, const VertexId* b,
    std::size_t nb) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    count += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    const VertexId amax = a[i + 7];
    const VertexId bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + intersect_merge(a + i, na - i, b + j, nb - j);
}

#endif  // SNAPLE_HAVE_AVX2_KERNELS

std::size_t intersect_count(std::span<const VertexId> a,
                            std::span<const VertexId> b) noexcept {
#ifdef SNAPLE_HAVE_AVX2_KERNELS
  if (active_level() == Level::kAvx2) {
    if (a.size() > b.size()) std::swap(a, b);
    if (a.empty()) return 0;
    if (b.size() / a.size() >= kGallopRatio) {
      return intersect_gallop(a.data(), a.size(), b.data(), b.size());
    }
    return intersect_avx2(a.data(), a.size(), b.data(), b.size());
  }
#endif
  return intersect_count_scalar(a, b);
}

}  // namespace snaple::simd
