// A small persistent thread pool with a blocking parallel_for.
//
// The GAS engine and the random-walk engine both need "run this index range
// across N workers and wait" — nothing fancier. Workers are created once
// (CP.41: minimize thread creation) and parked on a condition variable
// between jobs (CP.42: don't wait without a condition). Work is handed out
// in dynamically-sized chunks through an atomic cursor so skewed per-item
// costs (power-law degree distributions!) still balance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace snaple {

class ThreadPool {
 public:
  /// Creates a pool with `workers` threads. 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Runs body over [begin, end) across the pool and blocks until every
  /// index has been processed. `body` receives (index, worker_id);
  /// worker_id is in [0, worker_count()] and is stable within a call, so
  /// callers can keep per-worker scratch state without locking.
  ///
  /// The calling thread participates (as worker id 0), so a pool of W
  /// threads applies (W+1)-way parallelism. Nested calls on the same pool
  /// are rejected.
  ///
  /// If a body invocation throws, remaining chunks are skipped and the
  /// first exception is rethrown here, on the calling thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 0);

  /// Convenience overload for bodies that do not need the worker id.
  void parallel_for_each(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         std::size_t grain = 0) {
    parallel_for(
        begin, end, [&](std::size_t i, std::size_t) { body(i); }, grain);
  }

  /// Splits [begin, end) into contiguous blocks and runs `body(block_begin,
  /// block_end, worker_id)` once per block across the pool. Unlike
  /// parallel_for — which pays a std::function call per *index* — the body
  /// here receives whole ranges, so per-element work can be a tight loop.
  /// This is the right shape for bandwidth-bound passes over edge arrays
  /// (histograms, scatters, bulk parsing). Blocks are sized ≥ `min_block`
  /// (default 1) and there are at most ~8 per worker slot so skewed block
  /// costs still balance through the pool's dynamic chunking.
  void parallel_blocks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
      std::size_t min_block = 1);

  /// Number of worker slots (worker_count() + 1 for the caller); useful for
  /// sizing per-worker scratch vectors before calling parallel_for.
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return threads_.size() + 1;
  }

 private:
  // One batch of work. Shared with workers via shared_ptr so a straggler
  // finishing its last chunk can never observe a destroyed job.
  struct Job {
    std::size_t end = 0;
    std::size_t grain = 1;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> remaining{0};
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    // First exception thrown by any body invocation; rethrown to the
    // submitter after the job drains. Later chunks are skipped once set.
    std::mutex error_mutex;
    std::exception_ptr error;
    std::atomic<bool> failed{false};
  };

  void worker_loop(std::size_t worker_id);
  void drain(const std::shared_ptr<Job>& job, std::size_t worker_id);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::shared_ptr<Job> current_;  // guarded by mutex_
  std::uint64_t job_epoch_ = 0;   // guarded by mutex_
  bool stopping_ = false;         // guarded by mutex_
};

/// The process-wide default pool (sized to hardware_concurrency). Library
/// entry points accept an optional pool pointer; when null they fall back
/// to this one, so casual callers never manage threads themselves.
ThreadPool& default_pool();

}  // namespace snaple
