// ASCII table / CSV rendering for bench harnesses.
//
// Every bench binary prints the rows of the paper table or figure series it
// reproduces; this helper keeps the formatting uniform and also emits CSV
// (for replotting) when asked.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace snaple {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are rejected.
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers for cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  /// Renders as a JSON array of row objects keyed by header. Cells that
  /// are valid JSON number literals are emitted unquoted so downstream
  /// tooling (bench/check_regression.py) can compare them numerically.
  void print_json(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snaple
