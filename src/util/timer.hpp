// Wall-clock timing for experiments. The paper measures "from when the
// graph has been successfully loaded until after all predictions have been
// computed" — experiment code wraps exactly that region with a WallTimer.
#pragma once

#include <chrono>
#include <string>

namespace snaple {

class WallTimer {
 public:
  WallTimer() noexcept { restart(); }

  void restart() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration the way the paper reports them ("2min57s", "45.8s").
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace snaple
