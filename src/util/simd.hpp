// Runtime-dispatched SIMD kernels for the compressed-CSR hot paths.
//
// Three kernels, each with an AVX2 and a scalar implementation compiled
// side by side (the AVX2 bodies carry __attribute__((target("avx2"))),
// so no translation unit needs -mavx2 and the scalar build stays legal
// on any x86-64 or non-x86 host):
//
//   * delta_unpack — decodes one block of the compressed adjacency
//     format (graph/compressed_csr.hpp): `count` fields of `width` bits,
//     LSB-first in a little-endian bit stream, reconstructed to strictly
//     ascending ids via out[i] = prev + 1 + field_i. The AVX2 path
//     gathers 8 fields at a time (byte-offset gather + variable shift)
//     and finishes the reconstruction with a vectorized prefix sum.
//   * intersect_count — |a ∩ b| of two strictly-ascending id lists: the
//     raw-similarity kernel behind core/similarity.cpp. The AVX2 path
//     compares 8×8 blocks via lane rotations; very lopsided inputs take
//     a galloping path instead (same exact count either way).
//   * SortedMembership — a galloping membership cursor for ascending
//     probe sequences, replacing the per-probe binary search in
//     snaple_rows.hpp's fold paths (scalar by construction; it lives
//     here because it is part of the same decoded-block consumption
//     story).
//
// Dispatch: active_level() is resolved once from CPUID
// (__builtin_cpu_supports) and the SNAPLE_FORCE_SCALAR environment
// variable; tests and benches can pin either path with override_level().
// Building with -DSNAPLE_DISABLE_AVX2=ON (CMake) compiles the AVX2
// bodies out entirely — the CI scalar leg uses both knobs so the
// fallback is exercised end to end.
//
// Every kernel is exact: the integer outputs are identical across
// paths, which is why swapping them under the float pipeline preserves
// bit-identity (the floats are computed from exact integer counts and
// identical decoded ids, never from SIMD float arithmetic).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/types.hpp"

namespace snaple::simd {

enum class Level { kScalar, kAvx2 };

/// The dispatch level in effect: the override if one is set, else the
/// detected one (AVX2 iff the CPU has it, the build compiled it in, and
/// SNAPLE_FORCE_SCALAR is unset/empty/"0").
[[nodiscard]] Level active_level() noexcept;

/// Pins the dispatch level (tests/benches measuring one path). Passing
/// kAvx2 on a build or CPU without it is ignored. Not thread-safe
/// against concurrent kernel calls — flip it between runs, not during.
void override_level(Level level) noexcept;
void clear_level_override() noexcept;

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Decodes `count` fields of `width` bits (0 ≤ width ≤ 32) from the
/// LSB-first bit stream at `in`, writing strictly ascending ids:
/// out[i] = prev + 1 + field_i, carried left to right (u32 wraparound is
/// intended: a row's initial prev of 0xffffffff makes the first field an
/// absolute id). Returns the last value written (prev when count == 0).
/// `in` must have at least kDecodeSlack readable bytes beyond the last
/// field — the encoder pads its buffers accordingly.
std::uint32_t delta_unpack(const std::uint8_t* in, unsigned width,
                           std::uint32_t count, std::uint32_t prev,
                           VertexId* out) noexcept;

/// The scalar reference the AVX2 path must match bit for bit (exposed
/// for the equivalence tests and the kernel benches).
std::uint32_t delta_unpack_scalar(const std::uint8_t* in, unsigned width,
                                  std::uint32_t count, std::uint32_t prev,
                                  VertexId* out) noexcept;

/// delta_unpack with the dispatch decision hoisted out: resolves the
/// active level once and returns the kernel, so per-row decoders that
/// call it block by block don't re-read the dispatch state per block.
using UnpackFn = std::uint32_t (*)(const std::uint8_t*, unsigned,
                                   std::uint32_t, std::uint32_t,
                                   VertexId*) noexcept;
[[nodiscard]] UnpackFn unpack_kernel() noexcept;

/// Readable slack delta_unpack may touch past the final field's byte.
inline constexpr std::size_t kDecodeSlack = 32;

/// |a ∩ b| for strictly-ascending id lists (exact integer count).
[[nodiscard]] std::size_t intersect_count(std::span<const VertexId> a,
                                          std::span<const VertexId> b) noexcept;
[[nodiscard]] std::size_t intersect_count_scalar(
    std::span<const VertexId> a, std::span<const VertexId> b) noexcept;

/// Galloping membership tester over one sorted, strictly-ascending id
/// list. Probes that arrive in ascending order resume from the previous
/// position (amortized O(log gap) per probe instead of O(log n)); a
/// descending probe restarts from the front, so the answer is always
/// exactly std::binary_search's.
class SortedMembership {
 public:
  explicit SortedMembership(std::span<const VertexId> sorted) noexcept
      : s_(sorted) {}

  [[nodiscard]] bool contains(VertexId z) noexcept {
    if (z < last_) pos_ = 0;  // non-monotone probe: restart the cursor
    last_ = z;
    // Gallop: widen [lo, cur] until s_[cur] >= z (everything before the
    // cursor is < every probe seen since the last restart).
    std::size_t lo = pos_;
    std::size_t cur = pos_;
    std::size_t step = 1;
    while (cur < s_.size() && s_[cur] < z) {
      lo = cur + 1;
      cur += step;
      step <<= 1;
    }
    const std::size_t end = std::min(cur + 1, s_.size());
    const auto* it = std::lower_bound(s_.data() + lo, s_.data() + end, z);
    pos_ = static_cast<std::size_t>(it - s_.data());
    return pos_ < s_.size() && s_[pos_] == z;
  }

 private:
  std::span<const VertexId> s_;
  std::size_t pos_ = 0;
  VertexId last_ = 0;
};

}  // namespace snaple::simd
