#include "util/timer.hpp"

#include <cmath>
#include <cstdio>

namespace snaple {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    const auto mins = static_cast<long>(seconds / 60.0);
    const double rem = seconds - static_cast<double>(mins) * 60.0;
    std::snprintf(buf, sizeof(buf), "%ldmin%02.0fs", mins, std::floor(rem));
  }
  return buf;
}

}  // namespace snaple
