#include "core/combinator.hpp"

#include <cmath>

#include "util/check.hpp"

namespace snaple {

Combinator Combinator::linear(double alpha) {
  SNAPLE_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  return Combinator(CombinatorKind::kLinear, alpha);
}
Combinator Combinator::euclidean() {
  return Combinator(CombinatorKind::kEuclidean, 0.0);
}
Combinator Combinator::geometric() {
  return Combinator(CombinatorKind::kGeometric, 0.0);
}
Combinator Combinator::sum() { return Combinator(CombinatorKind::kSum, 0.0); }
Combinator Combinator::count() {
  return Combinator(CombinatorKind::kCount, 0.0);
}

double Combinator::operator()(double a, double b) const noexcept {
  switch (kind_) {
    case CombinatorKind::kLinear:
      return alpha_ * a + (1.0 - alpha_) * b;
    case CombinatorKind::kEuclidean:
      return std::sqrt(a * a + b * b);
    case CombinatorKind::kGeometric:
      return std::sqrt(a * b);
    case CombinatorKind::kSum:
      return a + b;
    case CombinatorKind::kCount:
      return 1.0;
  }
  return 0.0;
}

std::string Combinator::name() const {
  switch (kind_) {
    case CombinatorKind::kLinear:
      return "linear";
    case CombinatorKind::kEuclidean:
      return "eucl";
    case CombinatorKind::kGeometric:
      return "geom";
    case CombinatorKind::kSum:
      return "sum";
    case CombinatorKind::kCount:
      return "count";
  }
  return "?";
}

}  // namespace snaple
