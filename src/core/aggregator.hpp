// Path-aggregation operators ⊕ — Table 2 of the paper.
//
// Multiple 2-hop paths can reach the same candidate z; the aggregator
// summarizes their path-similarities into one score (eq. 9). Following
// eq. (10), ⊕ decomposes into an incremental generalized sum ⊕pre (a
// commutative, associative binary op — exactly what a GAS sum() can fold)
// and a final normalization ⊕post applied with the number of aggregated
// paths:
//
//   name | a ⊕pre b | ⊕post(σ, n)
//   Sum  | a + b    | σ            — favors well-connected candidates
//   Mean | a + b    | σ / n        — averages out path count
//   Geom | a × b    | σ^(1/n)      — punishes any low-similarity path
#pragma once

#include <cstdint>
#include <string>

namespace snaple {

enum class AggregatorKind { kSum, kMean, kGeom };

class Aggregator {
 public:
  constexpr Aggregator() = default;
  explicit constexpr Aggregator(AggregatorKind kind) : kind_(kind) {}

  [[nodiscard]] AggregatorKind kind() const noexcept { return kind_; }

  /// ⊕pre: folds one more path-similarity into the running value.
  [[nodiscard]] double pre(double acc, double value) const noexcept {
    return kind_ == AggregatorKind::kGeom ? acc * value : acc + value;
  }

  /// ⊕post: turns the generalized sum σ over n paths into the final score.
  [[nodiscard]] double post(double sigma, std::uint32_t n) const noexcept;

  /// Full ⊕ over a small set, for tests/reference (eq. 10 composition).
  template <typename Iter>
  [[nodiscard]] double aggregate(Iter begin, Iter end) const {
    std::uint32_t n = 0;
    double sigma = 0.0;
    for (Iter it = begin; it != end; ++it) {
      sigma = (n == 0) ? static_cast<double>(*it)
                       : pre(sigma, static_cast<double>(*it));
      ++n;
    }
    return n == 0 ? 0.0 : post(sigma, n);
  }

  [[nodiscard]] std::string name() const;

 private:
  AggregatorKind kind_ = AggregatorKind::kSum;
};

}  // namespace snaple
