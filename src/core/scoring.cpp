#include "core/scoring.hpp"

#include "util/check.hpp"

namespace snaple {

ScoreConfig score_config(ScoreKind kind, double alpha) {
  ScoreConfig cfg;
  cfg.name = score_name(kind);
  switch (kind) {
    case ScoreKind::kLinearSum:
      cfg.combinator = Combinator::linear(alpha);
      cfg.aggregator = Aggregator(AggregatorKind::kSum);
      break;
    case ScoreKind::kEuclSum:
      cfg.combinator = Combinator::euclidean();
      cfg.aggregator = Aggregator(AggregatorKind::kSum);
      break;
    case ScoreKind::kGeomSum:
      cfg.combinator = Combinator::geometric();
      cfg.aggregator = Aggregator(AggregatorKind::kSum);
      break;
    case ScoreKind::kPpr:
      cfg.metric = SimilarityMetric::kInverseDegree;
      cfg.combinator = Combinator::sum();
      cfg.aggregator = Aggregator(AggregatorKind::kSum);
      break;
    case ScoreKind::kCounter:
      cfg.metric = SimilarityMetric::kConstant;
      cfg.combinator = Combinator::count();
      cfg.aggregator = Aggregator(AggregatorKind::kSum);
      break;
    case ScoreKind::kLinearMean:
      cfg.combinator = Combinator::linear(alpha);
      cfg.aggregator = Aggregator(AggregatorKind::kMean);
      break;
    case ScoreKind::kEuclMean:
      cfg.combinator = Combinator::euclidean();
      cfg.aggregator = Aggregator(AggregatorKind::kMean);
      break;
    case ScoreKind::kGeomMean:
      cfg.combinator = Combinator::geometric();
      cfg.aggregator = Aggregator(AggregatorKind::kMean);
      break;
    case ScoreKind::kLinearGeom:
      cfg.combinator = Combinator::linear(alpha);
      cfg.aggregator = Aggregator(AggregatorKind::kGeom);
      break;
    case ScoreKind::kEuclGeom:
      cfg.combinator = Combinator::euclidean();
      cfg.aggregator = Aggregator(AggregatorKind::kGeom);
      break;
    case ScoreKind::kGeomGeom:
      cfg.combinator = Combinator::geometric();
      cfg.aggregator = Aggregator(AggregatorKind::kGeom);
      break;
  }
  return cfg;
}

std::vector<ScoreKind> all_score_kinds() {
  return {ScoreKind::kLinearSum,  ScoreKind::kEuclSum,
          ScoreKind::kGeomSum,    ScoreKind::kPpr,
          ScoreKind::kCounter,    ScoreKind::kLinearMean,
          ScoreKind::kEuclMean,   ScoreKind::kGeomMean,
          ScoreKind::kLinearGeom, ScoreKind::kEuclGeom,
          ScoreKind::kGeomGeom};
}

std::vector<ScoreKind> score_kinds_with_aggregator(AggregatorKind agg) {
  std::vector<ScoreKind> out;
  for (ScoreKind kind : all_score_kinds()) {
    if (score_config(kind).aggregator.kind() == agg) out.push_back(kind);
  }
  return out;
}

std::string score_name(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kLinearSum:
      return "linearSum";
    case ScoreKind::kEuclSum:
      return "euclSum";
    case ScoreKind::kGeomSum:
      return "geomSum";
    case ScoreKind::kPpr:
      return "PPR";
    case ScoreKind::kCounter:
      return "counter";
    case ScoreKind::kLinearMean:
      return "linearMean";
    case ScoreKind::kEuclMean:
      return "euclMean";
    case ScoreKind::kGeomMean:
      return "geomMean";
    case ScoreKind::kLinearGeom:
      return "linearGeom";
    case ScoreKind::kEuclGeom:
      return "euclGeom";
    case ScoreKind::kGeomGeom:
      return "geomGeom";
  }
  return "?";
}

ScoreKind parse_score_kind(const std::string& name) {
  for (ScoreKind kind : all_score_kinds()) {
    if (score_name(kind) == name) return kind;
  }
  throw CheckError("unknown score configuration '" + name + "'");
}

}  // namespace snaple
