// Raw vertex-pair similarities — the building block sim(u,v) of eq. (6):
//   sim(u,z) = f(Γ(u), Γ(z))
// computed on (possibly truncated) sorted neighborhood lists. The paper
// uses Jaccard's coefficient throughout its evaluation, plus an
// inverse-degree weight (1/|Γv|) for the PPR score and a constant 1 for
// the `counter` score (Table 3); the additional set metrics make the
// framework's extensibility concrete.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "graph/types.hpp"

namespace snaple {

enum class SimilarityMetric {
  kJaccard,          // |A∩B| / |A∪B|
  kCommonNeighbors,  // |A∩B|
  kCosine,           // |A∩B| / sqrt(|A||B|)
  kOverlap,          // |A∩B| / min(|A|,|B|)
  kInverseDegree,    // 1/|Γ(v)|  (PPR edge weight; degree-based, not set-based)
  kConstant,         // 1         (counter score)
};

[[nodiscard]] std::string similarity_name(SimilarityMetric metric);

/// Number of common elements of two ascending-sorted id lists.
[[nodiscard]] std::size_t sorted_intersection_size(
    std::span<const VertexId> a, std::span<const VertexId> b) noexcept;

[[nodiscard]] double jaccard(std::span<const VertexId> a,
                             std::span<const VertexId> b) noexcept;
[[nodiscard]] double common_neighbors(std::span<const VertexId> a,
                                      std::span<const VertexId> b) noexcept;
[[nodiscard]] double cosine(std::span<const VertexId> a,
                            std::span<const VertexId> b) noexcept;
[[nodiscard]] double overlap(std::span<const VertexId> a,
                             std::span<const VertexId> b) noexcept;

/// Dispatches the set-based metrics; `target_out_degree` feeds
/// kInverseDegree (the *full* out-degree of the edge target, untruncated).
[[nodiscard]] double similarity(SimilarityMetric metric,
                                std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                std::size_t target_out_degree) noexcept;

}  // namespace snaple
