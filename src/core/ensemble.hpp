// Supervised ensemble scoring — the paper's principal future-work item
// (§7: "the extension of SNAPLE to supervised link-prediction strategies,
// which may improve recall while taking advantage of distributed
// computing").
//
// The design follows the supervised literature the paper cites ([37],
// [22]): unsupervised scores become *features* and a learned model blends
// them. Here the features are the ⊕post scores of several SNAPLE
// configurations (e.g. linearSum + counter + PPR — each captures a
// different signal: path quality, path count, inverse-popularity), and
// the model is L2-regularized logistic regression trained by gradient
// descent on a self-supervised split: hide a second set of edges *inside
// the training graph*, label candidates by whether they are hidden, fit,
// then re-rank the union of the components' candidates on the real graph.
//
// Everything heavy (the component runs) stays inside the GAS engine, so
// the distributed story is unchanged — the learned part only touches the
// per-vertex top-M candidate lists, exactly the extension seam the paper
// describes.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/snaple_program.hpp"
#include "gas/cluster.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple {

struct EnsembleConfig {
  /// Component scoring methods; one feature per component.
  std::vector<ScoreKind> components = {ScoreKind::kLinearSum,
                                       ScoreKind::kCounter,
                                       ScoreKind::kPpr};
  /// Final predictions per vertex.
  std::size_t k = 5;
  /// Candidates gathered per component per vertex (the rerank pool).
  std::size_t candidate_pool = 20;
  /// klocal / thrΓ forwarded to every component run.
  std::size_t k_local = 40;
  std::size_t thr_gamma = 200;
  /// Self-supervised split: edges hidden per vertex for label generation.
  std::size_t holdout_per_vertex = 1;
  /// Logistic-regression training.
  std::size_t epochs = 40;
  double learning_rate = 0.5;
  double l2 = 1e-4;
  std::uint64_t seed = 1;
};

struct EnsembleModel {
  std::vector<double> weights;  // one per component
  double bias = 0.0;
  /// Per-component score normalizers (max score seen in training).
  std::vector<double> scales;
};

struct EnsembleResult {
  std::vector<std::vector<VertexId>> predictions;
  EnsembleModel model;
};

/// Trains the blend weights on a self-supervised holdout inside `graph`.
[[nodiscard]] EnsembleModel train_ensemble(
    const CsrGraph& graph, const EnsembleConfig& config,
    const gas::ClusterConfig& cluster, ThreadPool* pool = nullptr);

/// Runs every component on `graph`, blends candidate scores with the
/// model, returns the re-ranked top-k per vertex.
[[nodiscard]] EnsembleResult predict_ensemble(
    const CsrGraph& graph, const EnsembleConfig& config,
    const EnsembleModel& model, const gas::ClusterConfig& cluster,
    ThreadPool* pool = nullptr);

/// Convenience: train + predict in one call.
[[nodiscard]] EnsembleResult run_ensemble(
    const CsrGraph& graph, const EnsembleConfig& config,
    const gas::ClusterConfig& cluster, ThreadPool* pool = nullptr);

}  // namespace snaple
