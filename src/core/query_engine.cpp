#include "core/query_engine.hpp"

#include <algorithm>

#include "util/score_map.hpp"
#include "util/thread_pool.hpp"
#include "util/top_k.hpp"

namespace snaple {

namespace {

/// Reused fold state. One per thread (see local_scratch): topk() must be
/// safe for concurrent callers, and reuse keeps the hot path
/// allocation-free in steady state exactly like the batch engine's
/// per-worker accumulators.
struct QueryScratch {
  ScoreMap partial;
  ScoreMap merged;
};

QueryScratch& local_scratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

/// Replays step 3 for one vertex into scratch.merged, reproducing the
/// batch engine's canonical fold bit-exactly: u's retained edges grouped
/// by their fit-time machine tag, folded in ascending-id order within a
/// group (CSR order), groups merged in ascending machine order with the
/// same ⊕pre the engine's cross-machine merge uses. The first
/// contributing group folds straight into `merged` — the engine swaps
/// the first partial in wholesale, so this is the same float chain.
void score_candidates(const PredictorModel& model, const ScoreConfig& score,
                      VertexId u, QueryScratch& scratch) {
  const Combinator comb = score.combinator;
  const Aggregator agg = score.aggregator;
  const auto pre = [&agg](float a, float b) {
    return static_cast<float>(agg.pre(a, b));
  };
  const auto gamma = model.gamma_hat(u);
  const auto su = model.sims(u);
  const bool three_hop = model.config().k_hops == 3;
  scratch.merged.clear();

  std::uint64_t machines = 0;
  for (const gas::MachineId m : su.machines) {
    machines |= std::uint64_t{1} << m;
  }
  while (machines != 0) {
    const auto mach = static_cast<gas::MachineId>(
        __builtin_ctzll(machines));
    machines &= machines - 1;
    ScoreMap& acc =
        scratch.merged.empty() ? scratch.merged : scratch.partial;
    for (std::size_t i = 0; i < su.ids.size(); ++i) {
      if (su.machines[i] != mach) continue;
      const float suv = su.scores[i];
      auto fold_candidate = [&](VertexId z, float downstream) {
        if (z == u) return;
        if (std::binary_search(gamma.begin(), gamma.end(), z)) {
          return;  // already a neighbor: not a missing-edge candidate
        }
        const double path_sim = comb(suv, downstream);
        acc.accumulate(z, static_cast<float>(path_sim), 1, pre);
      };
      const auto sv = model.sims(su.ids[i]);
      for (std::size_t j = 0; j < sv.ids.size(); ++j) {
        fold_candidate(sv.ids[j], sv.scores[j]);
      }
      if (three_hop) {
        const auto hv = model.hop2(su.ids[i]);
        for (std::size_t j = 0; j < hv.ids.size(); ++j) {
          fold_candidate(hv.ids[j], hv.scores[j]);
        }
      }
    }
    if (&acc == &scratch.partial && !scratch.partial.empty()) {
      // Cross-group merge — the engine's merge_scores on whole partials.
      scratch.partial.for_each(
          [&](VertexId z, float sigma, std::uint32_t paths) {
            scratch.merged.accumulate(z, sigma, paths, pre);
          });
      scratch.partial.clear();
    }
  }
}

std::vector<std::pair<VertexId, float>> rank(const ScoreMap& candidates,
                                             const Aggregator agg,
                                             std::size_t k) {
  // At most size() entries can come back, so clamp before TopK reserves
  // k slots — a huge caller k (e.g. "inf" from a CLI) must mean "all",
  // not a length_error from the reserve.
  k = std::min(k, candidates.size());
  TopK<VertexId, double> top(k);
  candidates.for_each([&](VertexId z, float sigma, std::uint32_t n) {
    top.offer(z, agg.post(sigma, n));
  });
  std::vector<std::pair<VertexId, float>> out;
  const auto entries = top.take_sorted();
  out.reserve(entries.size());
  for (const auto& entry : entries) {
    out.emplace_back(entry.item, static_cast<float>(entry.score));
  }
  return out;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const PredictorModel> model)
    : model_(std::move(model)) {
  SNAPLE_CHECK_MSG(model_ != nullptr, "QueryEngine needs a model");
  score_ = model_->config().resolve_score();
}

std::vector<std::pair<VertexId, float>> QueryEngine::topk(
    VertexId u, std::size_t k) const {
  SNAPLE_CHECK_MSG(u < model_->num_vertices(),
                   "query vertex out of model range");
  QueryScratch& scratch = local_scratch();
  score_candidates(*model_, score_, u, scratch);
  return rank(scratch.merged, score_.aggregator,
              k == 0 ? model_->config().k : k);
}

std::vector<std::vector<std::pair<VertexId, float>>> QueryEngine::topk_batch(
    std::span<const VertexId> users, std::size_t k, ThreadPool* pool) const {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  std::vector<std::vector<std::pair<VertexId, float>>> out(users.size());
  tp.parallel_for(0, users.size(), [&](std::size_t i, std::size_t) {
    out[i] = topk(users[i], k);
  });
  return out;
}

std::vector<std::vector<std::pair<VertexId, float>>> QueryEngine::topk_all(
    std::size_t k, ThreadPool* pool) const {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  std::vector<std::vector<std::pair<VertexId, float>>> out(
      model_->num_vertices());
  tp.parallel_for(0, model_->num_vertices(), [&](std::size_t i, std::size_t) {
    out[i] = topk(static_cast<VertexId>(i), k);
  });
  return out;
}

std::vector<std::vector<VertexId>> prediction_lists(
    const std::vector<std::vector<std::pair<VertexId, float>>>& scored) {
  std::vector<std::vector<VertexId>> out(scored.size());
  for (std::size_t u = 0; u < scored.size(); ++u) {
    out[u].reserve(scored[u].size());
    for (const auto& zs : scored[u]) out[u].push_back(zs.first);
  }
  return out;
}

}  // namespace snaple
