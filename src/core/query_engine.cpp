#include "core/query_engine.hpp"

#include <algorithm>

#include "core/dynamic_model.hpp"
#include "core/snaple_rows.hpp"
#include "util/score_map.hpp"
#include "util/thread_pool.hpp"
#include "util/top_k.hpp"

namespace snaple {

namespace {

/// Reused fold state. One per thread: topk() must be safe for concurrent
/// callers, and reuse keeps the hot path allocation-free in steady state
/// exactly like the batch engine's per-worker accumulators. The fold
/// itself — the machine-grouped bit-exact replay of step 3 — lives in
/// core/snaple_rows.hpp (rows::fold_vertex_paths), shared with the
/// incremental-update recompute path.
rows::PathFoldScratch& local_scratch() {
  static thread_local rows::PathFoldScratch scratch;
  return scratch;
}

}  // namespace

std::vector<std::pair<VertexId, float>> rank_candidates(
    const ScoreMap& candidates, const Aggregator& agg, std::size_t k) {
  // At most size() entries can come back, so clamp before TopK reserves
  // k slots — a huge caller k (e.g. "inf" from a CLI) must mean "all",
  // not a length_error from the reserve.
  k = std::min(k, candidates.size());
  TopK<VertexId, double> top(k);
  candidates.for_each([&](VertexId z, float sigma, std::uint32_t n) {
    top.offer(z, agg.post(sigma, n));
  });
  std::vector<std::pair<VertexId, float>> out;
  const auto entries = top.take_sorted();
  out.reserve(entries.size());
  for (const auto& entry : entries) {
    out.emplace_back(entry.item, static_cast<float>(entry.score));
  }
  return out;
}

QueryEngine::QueryEngine(std::shared_ptr<const PredictorModel> model)
    : model_(std::move(model)) {
  SNAPLE_CHECK_MSG(model_ != nullptr, "QueryEngine needs a model");
  score_ = model_->config().resolve_score();
}

QueryEngine::QueryEngine(std::shared_ptr<const DynamicModel> model)
    : dynamic_(std::move(model)) {
  SNAPLE_CHECK_MSG(dynamic_ != nullptr, "QueryEngine needs a model");
  score_ = dynamic_->config().resolve_score();
}

const PredictorModel& QueryEngine::model() const {
  SNAPLE_CHECK_MSG(model_ != nullptr,
                   "this engine serves a DynamicModel — use "
                   "dynamic_model() (or freeze() it for an artifact)");
  return *model_;
}

VertexId QueryEngine::num_vertices() const noexcept {
  return model_ != nullptr ? model_->num_vertices()
                           : dynamic_->num_vertices();
}

const SnapleConfig& QueryEngine::config() const noexcept {
  return model_ != nullptr ? model_->config() : dynamic_->config();
}

std::vector<std::pair<VertexId, float>> QueryEngine::topk(
    VertexId u, std::size_t k) const {
  SNAPLE_CHECK_MSG(u < num_vertices(), "query vertex out of model range");
  rows::PathFoldScratch& scratch = local_scratch();
  if (model_ != nullptr) {
    rows::fold_vertex_paths(*model_, score_, u, rows::PathFold::kRecommend,
                            /*zero_skip=*/false, scratch);
  } else {
    rows::fold_vertex_paths(*dynamic_, score_, u,
                            rows::PathFold::kRecommend,
                            /*zero_skip=*/false, scratch);
  }
  return rank_candidates(scratch.merged, score_.aggregator,
                         k == 0 ? config().k : k);
}

std::vector<std::vector<std::pair<VertexId, float>>> QueryEngine::topk_batch(
    std::span<const VertexId> users, std::size_t k, ThreadPool* pool) const {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  std::vector<std::vector<std::pair<VertexId, float>>> out(users.size());
  tp.parallel_for(0, users.size(), [&](std::size_t i, std::size_t) {
    out[i] = topk(users[i], k);
  });
  return out;
}

std::vector<std::vector<std::pair<VertexId, float>>> QueryEngine::topk_all(
    std::size_t k, ThreadPool* pool) const {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  std::vector<std::vector<std::pair<VertexId, float>>> out(num_vertices());
  tp.parallel_for(0, num_vertices(), [&](std::size_t i, std::size_t) {
    out[i] = topk(static_cast<VertexId>(i), k);
  });
  return out;
}

std::vector<std::vector<VertexId>> prediction_lists(
    const std::vector<std::vector<std::pair<VertexId, float>>>& scored) {
  std::vector<std::vector<VertexId>> out(scored.size());
  for (std::size_t u = 0; u < scored.size(); ++u) {
    out[u].reserve(scored[u].size());
    for (const auto& zs : scored[u]) out[u].push_back(zs.first);
  }
  return out;
}

}  // namespace snaple
