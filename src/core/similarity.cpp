#include "core/similarity.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/simd.hpp"

namespace snaple {

std::string similarity_name(SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kJaccard:
      return "jaccard";
    case SimilarityMetric::kCommonNeighbors:
      return "common";
    case SimilarityMetric::kCosine:
      return "cosine";
    case SimilarityMetric::kOverlap:
      return "overlap";
    case SimilarityMetric::kInverseDegree:
      return "1/deg";
    case SimilarityMetric::kConstant:
      return "const";
  }
  return "?";
}

std::size_t sorted_intersection_size(std::span<const VertexId> a,
                                     std::span<const VertexId> b) noexcept {
  // Exact integer count whichever kernel dispatch picks (AVX2 block
  // compare, galloping for lopsided lists, or the linear merge), so the
  // downstream float metrics are bit-identical across paths.
  return simd::intersect_count(a, b);
}

double jaccard(std::span<const VertexId> a,
               std::span<const VertexId> b) noexcept {
  if (a.empty() && b.empty()) return 0.0;
  const auto inter = static_cast<double>(sorted_intersection_size(a, b));
  const double uni =
      static_cast<double>(a.size()) + static_cast<double>(b.size()) - inter;
  return uni == 0.0 ? 0.0 : inter / uni;
}

double common_neighbors(std::span<const VertexId> a,
                        std::span<const VertexId> b) noexcept {
  return static_cast<double>(sorted_intersection_size(a, b));
}

double cosine(std::span<const VertexId> a,
              std::span<const VertexId> b) noexcept {
  if (a.empty() || b.empty()) return 0.0;
  const auto inter = static_cast<double>(sorted_intersection_size(a, b));
  return inter / std::sqrt(static_cast<double>(a.size()) *
                           static_cast<double>(b.size()));
}

double overlap(std::span<const VertexId> a,
               std::span<const VertexId> b) noexcept {
  if (a.empty() || b.empty()) return 0.0;
  const auto inter = static_cast<double>(sorted_intersection_size(a, b));
  return inter / static_cast<double>(std::min(a.size(), b.size()));
}

double similarity(SimilarityMetric metric, std::span<const VertexId> a,
                  std::span<const VertexId> b,
                  std::size_t target_out_degree) noexcept {
  switch (metric) {
    case SimilarityMetric::kJaccard:
      return jaccard(a, b);
    case SimilarityMetric::kCommonNeighbors:
      return common_neighbors(a, b);
    case SimilarityMetric::kCosine:
      return cosine(a, b);
    case SimilarityMetric::kOverlap:
      return overlap(a, b);
    case SimilarityMetric::kInverseDegree:
      return 1.0 / static_cast<double>(std::max<std::size_t>(
                 1, target_out_degree));
    case SimilarityMetric::kConstant:
      return 1.0;
  }
  return 0.0;
}

}  // namespace snaple
