#include "core/model.hpp"

#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "graph/io.hpp"
#include "util/thread_pool.hpp"

namespace snaple {

namespace {

constexpr std::array<char, 8> kModelMagic = {'S', 'N', 'A', 'P',
                                             'L', 'E', 'M', '1'};

// Same ceiling as the graph loaders: the vertex COUNT must fit VertexId.
constexpr std::uint64_t kMaxVertices = 0xffffffffULL;

// Entry counts are bounded by remaining file bytes on load, but reject
// absurd headers outright before any allocation (mirrors io.cpp's
// kMaxEdges discipline).
constexpr std::uint64_t kMaxEntries = std::uint64_t{1} << 40;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  if (v.empty()) return;
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
}

template <typename T>
void read_vec(std::istream& in, std::vector<T>& v) {
  if (v.empty()) return;
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Offsets must be size V+1, start at 0, be monotone, and end at `count`.
void check_offsets(const std::vector<EdgeIndex>& offsets,
                   std::uint64_t count, const char* what) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != count) {
    throw IoError(std::string("corrupt model: bad ") + what + " offsets");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw IoError(std::string("corrupt model: ") + what +
                    " offsets not monotone");
    }
  }
}

void check_ids(const std::vector<VertexId>& ids, std::uint64_t num_vertices,
               const char* what) {
  for (const VertexId v : ids) {
    if (v >= num_vertices) {
      throw IoError(std::string("corrupt model: ") + what +
                    " id out of range");
    }
  }
}

/// Every per-vertex id row must be strictly ascending — the query path
/// binary-searches gamma rows and relies on sims/hop2 row order for the
/// bit-exact fold replay, so an unsorted row would serve silently wrong
/// answers rather than fail.
void check_sorted_rows(const std::vector<EdgeIndex>& offsets,
                       const std::vector<VertexId>& ids, const char* what) {
  for (std::size_t u = 0; u + 1 < offsets.size(); ++u) {
    for (EdgeIndex i = offsets[u] + 1; i < offsets[u + 1]; ++i) {
      if (ids[i - 1] >= ids[i]) {
        throw IoError(std::string("corrupt model: ") + what +
                      " row not strictly ascending");
      }
    }
  }
}

}  // namespace

PredictorModel PredictorModel::build(SnapleConfig config,
                                     const CsrGraph& graph,
                                     const gas::Partitioning& partitioning,
                                     SnapleFitData fit,
                                     std::shared_ptr<const CsrGraph> owned,
                                     ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  SNAPLE_CHECK_MSG(fit.vertex_data.size() == n,
                   "fit state does not match the graph");
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();

  PredictorModel m;
  m.config_ = config;
  m.num_machines_ =
      static_cast<std::uint32_t>(partitioning.num_machines());
  m.num_vertices_ = n;
  m.graph_ = std::move(owned);
  m.fit_report_ = std::move(fit.report);

  // Offsets from the harvested list sizes (serial O(V) prefix sums).
  m.gamma_offsets_.resize(static_cast<std::size_t>(n) + 1);
  m.sims_offsets_.resize(static_cast<std::size_t>(n) + 1);
  if (config.k_hops == 3) {
    m.hop2_offsets_.resize(static_cast<std::size_t>(n) + 1);
  }
  EdgeIndex gamma_total = 0;
  EdgeIndex sims_total = 0;
  EdgeIndex hop2_total = 0;
  for (VertexId u = 0; u < n; ++u) {
    const SnapleVertexData& du = fit.vertex_data[u];
    m.gamma_offsets_[u] = gamma_total;
    m.sims_offsets_[u] = sims_total;
    gamma_total += du.gamma_hat.size();
    sims_total += du.sims.size();
    if (config.k_hops == 3) {
      m.hop2_offsets_[u] = hop2_total;
      hop2_total += du.hop2.size();
    }
  }
  m.gamma_offsets_[n] = gamma_total;
  m.sims_offsets_[n] = sims_total;
  if (config.k_hops == 3) m.hop2_offsets_[n] = hop2_total;

  m.gamma_ids_.resize(gamma_total);
  m.sims_ids_.resize(sims_total);
  m.sims_scores_.resize(sims_total);
  m.sims_machines_.resize(sims_total);
  m.hop2_ids_.resize(hop2_total);
  m.hop2_scores_.resize(hop2_total);

  // Parallel scatter. Machine tags: every retained neighbor is an
  // out-neighbor of u, and both lists are ascending, so one merge scan
  // over the CSR row resolves each retained edge's CSR index — and with
  // it the machine the partitioning assigned that edge to.
  tp.parallel_for(0, n, [&](std::size_t i, std::size_t) {
    const auto u = static_cast<VertexId>(i);
    const SnapleVertexData& du = fit.vertex_data[u];
    std::copy(du.gamma_hat.begin(), du.gamma_hat.end(),
              m.gamma_ids_.begin() +
                  static_cast<std::ptrdiff_t>(m.gamma_offsets_[u]));
    const auto nbrs = graph.out_neighbors(u);
    const EdgeIndex base = graph.out_offset(u);
    std::size_t pos = 0;
    std::size_t at = m.sims_offsets_[u];
    for (const auto& [v, s] : du.sims) {
      while (pos < nbrs.size() && nbrs[pos] < v) ++pos;
      SNAPLE_CHECK_MSG(pos < nbrs.size() && nbrs[pos] == v,
                       "retained neighbor is not an out-edge of the graph");
      m.sims_ids_[at] = v;
      m.sims_scores_[at] = s;
      m.sims_machines_[at] = partitioning.edge_machine(base + pos);
      ++at;
    }
    if (config.k_hops == 3) {
      std::size_t h = m.hop2_offsets_[u];
      for (const auto& [z, s] : du.hop2) {
        m.hop2_ids_[h] = z;
        m.hop2_scores_[h] = s;
        ++h;
      }
    }
  });
  return m;
}

PredictorModel::RowsSlice PredictorModel::slice_rows(VertexId begin,
                                                     VertexId end) const {
  SNAPLE_CHECK_MSG(begin <= end && end <= num_vertices_,
                   "slice range out of model bounds");
  RowsSlice s;
  s.begin = begin;
  s.end = end;
  if (num_vertices_ == 0) {  // empty model: no offset tables to slice
    s.gamma_offsets.assign(1, 0);
    s.sims_offsets.assign(1, 0);
    return s;
  }

  const auto rebase = [](const std::vector<EdgeIndex>& offsets,
                         VertexId lo, VertexId hi,
                         std::vector<EdgeIndex>& out) {
    out.resize(static_cast<std::size_t>(hi - lo) + 1);
    const EdgeIndex base = offsets[lo];
    for (VertexId u = lo; u <= hi; ++u) out[u - lo] = offsets[u] - base;
  };
  const auto copy_span = [](const auto& src, EdgeIndex lo, EdgeIndex hi,
                            auto& out) {
    out.assign(src.begin() + static_cast<std::ptrdiff_t>(lo),
               src.begin() + static_cast<std::ptrdiff_t>(hi));
  };

  rebase(gamma_offsets_, begin, end, s.gamma_offsets);
  copy_span(gamma_ids_, gamma_offsets_[begin], gamma_offsets_[end],
            s.gamma_ids);
  rebase(sims_offsets_, begin, end, s.sims_offsets);
  copy_span(sims_ids_, sims_offsets_[begin], sims_offsets_[end], s.sims_ids);
  copy_span(sims_scores_, sims_offsets_[begin], sims_offsets_[end],
            s.sims_scores);
  copy_span(sims_machines_, sims_offsets_[begin], sims_offsets_[end],
            s.sims_machines);
  if (!hop2_offsets_.empty()) {
    rebase(hop2_offsets_, begin, end, s.hop2_offsets);
    copy_span(hop2_ids_, hop2_offsets_[begin], hop2_offsets_[end],
              s.hop2_ids);
    copy_span(hop2_scores_, hop2_offsets_[begin], hop2_offsets_[end],
              s.hop2_scores);
  }
  return s;
}

std::size_t PredictorModel::memory_bytes() const noexcept {
  return (gamma_offsets_.size() + sims_offsets_.size() +
          hop2_offsets_.size()) *
             sizeof(EdgeIndex) +
         (gamma_ids_.size() + sims_ids_.size() + hop2_ids_.size()) *
             sizeof(VertexId) +
         (sims_scores_.size() + hop2_scores_.size()) * sizeof(float) +
         sims_machines_.size() * sizeof(gas::MachineId);
}

void PredictorModel::save(std::ostream& out) const {
  out.write(kModelMagic.data(), kModelMagic.size());
  write_pod(out, kFormatVersion);
  write_pod(out, num_machines_);
  write_pod(out, static_cast<std::uint64_t>(num_vertices_));

  write_pod(out, static_cast<std::uint64_t>(config_.k));
  write_pod(out, static_cast<std::uint64_t>(config_.k_local));
  write_pod(out, static_cast<std::uint64_t>(config_.thr_gamma));
  write_pod(out, static_cast<std::uint32_t>(config_.score));
  write_pod(out, static_cast<std::uint32_t>(config_.policy));
  write_pod(out, static_cast<std::uint64_t>(config_.k_hops));
  write_pod(out, config_.seed);
  write_pod(out, config_.alpha);
  write_pod(out, config_.hop2_min_score);

  write_pod(out, static_cast<std::uint64_t>(gamma_ids_.size()));
  write_pod(out, static_cast<std::uint64_t>(sims_ids_.size()));
  write_pod(out, static_cast<std::uint64_t>(hop2_ids_.size()));

  // Empty model (V=0): offset arrays may be empty in memory; the format
  // always carries V+1 entries per offset table, so emit the single 0.
  const auto write_offsets = [&out](const std::vector<EdgeIndex>& v) {
    if (v.empty()) {
      write_pod(out, EdgeIndex{0});
    } else {
      write_vec(out, v);
    }
  };
  write_offsets(gamma_offsets_);
  write_vec(out, gamma_ids_);
  write_offsets(sims_offsets_);
  write_vec(out, sims_ids_);
  write_vec(out, sims_scores_);
  write_vec(out, sims_machines_);
  if (config_.k_hops == 3) {
    write_offsets(hop2_offsets_);
    write_vec(out, hop2_ids_);
    write_vec(out, hop2_scores_);
  }
  if (!out) throw IoError("write failure while saving predictor model");
}

void PredictorModel::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save(out);
}

PredictorModel PredictorModel::load(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kModelMagic) {
    throw IoError("bad magic in predictor model");
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (!in || version != kFormatVersion) {
    throw IoError("unsupported predictor model version " +
                  std::to_string(version));
  }

  PredictorModel m;
  std::uint64_t num_vertices = 0;
  read_pod(in, m.num_machines_);
  read_pod(in, num_vertices);

  std::uint64_t k = 0;
  std::uint64_t k_local = 0;
  std::uint64_t thr_gamma = 0;
  std::uint32_t score = 0;
  std::uint32_t policy = 0;
  std::uint64_t k_hops = 0;
  read_pod(in, k);
  read_pod(in, k_local);
  read_pod(in, thr_gamma);
  read_pod(in, score);
  read_pod(in, policy);
  read_pod(in, k_hops);
  read_pod(in, m.config_.seed);
  read_pod(in, m.config_.alpha);
  read_pod(in, m.config_.hop2_min_score);

  std::uint64_t gamma_count = 0;
  std::uint64_t sims_count = 0;
  std::uint64_t hop2_count = 0;
  read_pod(in, gamma_count);
  read_pod(in, sims_count);
  read_pod(in, hop2_count);

  if (!in || num_vertices > kMaxVertices ||
      m.num_machines_ < 1 || m.num_machines_ > 64 ||
      score > static_cast<std::uint32_t>(ScoreKind::kGeomGeom) ||
      policy > static_cast<std::uint32_t>(SelectionPolicy::kRandom) ||
      (k_hops != 2 && k_hops != 3) || (k_hops == 2 && hop2_count != 0) ||
      gamma_count > kMaxEntries || sims_count > kMaxEntries ||
      hop2_count > kMaxEntries) {
    throw IoError("bad predictor model header");
  }
  // Config floats have invariants the scoring layer checks at use time;
  // reject a corrupt file here instead of handing out a model that
  // throws on its first query. The comparisons also reject NaN.
  if (!(m.config_.alpha >= 0.0 && m.config_.alpha <= 1.0) ||
      !(m.config_.hop2_min_score >= 0.0)) {
    throw IoError("bad predictor model header (config out of range)");
  }
  m.config_.k = static_cast<std::size_t>(k);
  m.config_.k_local = static_cast<std::size_t>(k_local);
  m.config_.thr_gamma = static_cast<std::size_t>(thr_gamma);
  m.config_.score = static_cast<ScoreKind>(score);
  m.config_.policy = static_cast<SelectionPolicy>(policy);
  m.config_.k_hops = static_cast<std::size_t>(k_hops);
  m.num_vertices_ = static_cast<VertexId>(num_vertices);

  // Payload size implied by the header, checked against the bytes left
  // (when seekable) before any allocation — exactly like graph format v2.
  const std::uint64_t offsets_bytes =
      (num_vertices + 1) * sizeof(EdgeIndex);
  std::uint64_t payload =
      2 * offsets_bytes + gamma_count * sizeof(VertexId) +
      sims_count * (sizeof(VertexId) + sizeof(float) +
                    sizeof(gas::MachineId));
  if (k_hops == 3) {
    payload += offsets_bytes + hop2_count * (sizeof(VertexId) +
                                             sizeof(float));
  }
  if (payload > stream_remaining_bytes(in)) {
    throw IoError("truncated predictor model");
  }

  try {
    const auto v1 = static_cast<std::size_t>(num_vertices) + 1;
    m.gamma_offsets_.resize(v1);
    m.gamma_ids_.resize(gamma_count);
    m.sims_offsets_.resize(v1);
    m.sims_ids_.resize(sims_count);
    m.sims_scores_.resize(sims_count);
    m.sims_machines_.resize(sims_count);
    read_vec(in, m.gamma_offsets_);
    read_vec(in, m.gamma_ids_);
    read_vec(in, m.sims_offsets_);
    read_vec(in, m.sims_ids_);
    read_vec(in, m.sims_scores_);
    read_vec(in, m.sims_machines_);
    if (k_hops == 3) {
      m.hop2_offsets_.resize(v1);
      m.hop2_ids_.resize(hop2_count);
      m.hop2_scores_.resize(hop2_count);
      read_vec(in, m.hop2_offsets_);
      read_vec(in, m.hop2_ids_);
      read_vec(in, m.hop2_scores_);
    }
  } catch (const std::bad_alloc&) {
    throw IoError("bad predictor model header (sizes exceed memory)");
  }
  if (!in) throw IoError("truncated predictor model");

  check_offsets(m.gamma_offsets_, gamma_count, "gamma");
  check_offsets(m.sims_offsets_, sims_count, "sims");
  check_ids(m.gamma_ids_, num_vertices, "gamma");
  check_ids(m.sims_ids_, num_vertices, "sims");
  check_sorted_rows(m.gamma_offsets_, m.gamma_ids_, "gamma");
  check_sorted_rows(m.sims_offsets_, m.sims_ids_, "sims");
  for (const gas::MachineId t : m.sims_machines_) {
    if (t >= m.num_machines_) {
      throw IoError("corrupt model: machine tag out of range");
    }
  }
  if (k_hops == 3) {
    check_offsets(m.hop2_offsets_, hop2_count, "hop2");
    check_ids(m.hop2_ids_, num_vertices, "hop2");
    check_sorted_rows(m.hop2_offsets_, m.hop2_ids_, "hop2");
  }
  return m;
}

PredictorModel PredictorModel::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load(in);
}

bool operator==(const PredictorModel& a, const PredictorModel& b) {
  return a.config_ == b.config_ && a.num_machines_ == b.num_machines_ &&
         a.num_vertices_ == b.num_vertices_ &&
         a.gamma_offsets_ == b.gamma_offsets_ &&
         a.gamma_ids_ == b.gamma_ids_ &&
         a.sims_offsets_ == b.sims_offsets_ &&
         a.sims_ids_ == b.sims_ids_ &&
         a.sims_scores_ == b.sims_scores_ &&
         a.sims_machines_ == b.sims_machines_ &&
         a.hop2_offsets_ == b.hop2_offsets_ &&
         a.hop2_ids_ == b.hop2_ids_ && a.hop2_scores_ == b.hop2_scores_;
}

}  // namespace snaple
