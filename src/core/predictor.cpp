#include "core/predictor.hpp"

#include "util/timer.hpp"

namespace snaple {

LinkPredictor::LinkPredictor(SnapleConfig config, gas::ClusterConfig cluster,
                             gas::PartitionStrategy strategy,
                             gas::ExecutionMode exec)
    : config_(std::move(config)),
      cluster_(std::move(cluster)),
      strategy_(strategy),
      exec_(exec) {}

PredictorModel LinkPredictor::fit_impl(
    const CsrGraph& graph, std::shared_ptr<const CsrGraph> owned,
    const gas::Partitioning& partitioning, ThreadPool* pool,
    std::shared_ptr<const gas::ShardTopology> topology) const {
  SnapleFitData fit =
      run_snaple_fit(graph, config_, partitioning, cluster_, pool,
                     gas::ApplyMode::kFused, exec_, std::move(topology));
  return PredictorModel::build(config_, graph, partitioning, std::move(fit),
                               std::move(owned), pool);
}

PredictorModel LinkPredictor::fit(const CsrGraph& graph,
                                  ThreadPool* pool) const {
  const auto partitioning = gas::Partitioning::create(
      graph, cluster_.num_machines, strategy_, config_.seed);
  return fit_impl(graph, nullptr, partitioning, pool, nullptr);
}

PredictorModel LinkPredictor::fit(std::shared_ptr<const CsrGraph> graph,
                                  ThreadPool* pool) const {
  SNAPLE_CHECK_MSG(graph != nullptr, "fit needs a graph");
  const auto partitioning = gas::Partitioning::create(
      *graph, cluster_.num_machines, strategy_, config_.seed);
  const CsrGraph& ref = *graph;
  return fit_impl(ref, std::move(graph), partitioning, pool, nullptr);
}

PredictorModel LinkPredictor::fit_with_partitioning(
    const CsrGraph& graph, const gas::Partitioning& partitioning,
    ThreadPool* pool,
    std::shared_ptr<const gas::ShardTopology> topology) const {
  return fit_impl(graph, nullptr, partitioning, pool, std::move(topology));
}

PredictionRun LinkPredictor::predict(const CsrGraph& graph,
                                     ThreadPool* pool) const {
  const auto partitioning = gas::Partitioning::create(
      graph, cluster_.num_machines, strategy_, config_.seed);
  return predict_with_partitioning(graph, partitioning, pool);
}

PredictionRun LinkPredictor::predict_with_partitioning(
    const CsrGraph& graph, const gas::Partitioning& partitioning,
    ThreadPool* pool,
    std::shared_ptr<const gas::ShardTopology> topology) const {
  WallTimer timer;
  const auto model = std::make_shared<const PredictorModel>(
      fit_impl(graph, nullptr, partitioning, pool, std::move(topology)));
  const QueryEngine server(model);
  WallTimer serve_timer;
  auto scored = server.topk_all(0, pool);
  const double serve_wall = serve_timer.seconds();

  PredictionRun run;
  run.wall_seconds = timer.seconds();
  run.predictions = prediction_lists(scored);
  run.report = model->fit_report();
  gas::StepStats serve_stats;
  serve_stats.name = "3:recommend (serve)";
  serve_stats.wall_s = serve_wall;
  run.report.steps.push_back(serve_stats);
  run.simulated_seconds = run.report.total_sim_s();
  run.network_bytes = run.report.total_net_bytes();
  run.replication_factor = partitioning.replication_factor();
  return run;
}

}  // namespace snaple
