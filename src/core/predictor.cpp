#include "core/predictor.hpp"

#include "util/timer.hpp"

namespace snaple {

LinkPredictor::LinkPredictor(SnapleConfig config, gas::ClusterConfig cluster,
                             gas::PartitionStrategy strategy,
                             gas::ExecutionMode exec)
    : config_(std::move(config)),
      cluster_(std::move(cluster)),
      strategy_(strategy),
      exec_(exec) {}

PredictionRun LinkPredictor::predict(const CsrGraph& graph,
                                     ThreadPool* pool) const {
  const auto partitioning = gas::Partitioning::create(
      graph, cluster_.num_machines, strategy_, config_.seed);
  return predict_with_partitioning(graph, partitioning, pool);
}

PredictionRun LinkPredictor::predict_with_partitioning(
    const CsrGraph& graph, const gas::Partitioning& partitioning,
    ThreadPool* pool,
    std::shared_ptr<const gas::ShardTopology> topology) const {
  WallTimer timer;
  SnapleResult snaple =
      run_snaple(graph, config_, partitioning, cluster_, pool,
                 gas::ApplyMode::kFused, exec_, std::move(topology));
  PredictionRun run;
  run.wall_seconds = timer.seconds();
  run.predictions = std::move(snaple.predictions);
  run.report = std::move(snaple.report);
  run.simulated_seconds = run.report.total_sim_s();
  run.network_bytes = run.report.total_net_bytes();
  run.replication_factor = partitioning.replication_factor();
  return run;
}

}  // namespace snaple
