// Path-combination operators ⊗ — Table 1 of the paper.
//
// A combinator turns the raw similarities of the two hops of a path
// u → v → z into one path-similarity (eq. 8):
//   sim*_v(u,z) = sim(u,v) ⊗ sim(v,z)
// It must be monotonically increasing in both arguments (a property the
// test suite sweeps): if either hop gets more similar, the path may not
// get less similar.
//
//   name   | a ⊗ b
//   linear | α·a + (1-α)·b        (paper uses α = 0.9)
//   eucl   | sqrt(a² + b²)
//   geom   | sqrt(a·b)
//   sum    | a + b                (linear special case)
//   count  | 1                    (degenerate; every path counts 1)
#pragma once

#include <string>

namespace snaple {

enum class CombinatorKind { kLinear, kEuclidean, kGeometric, kSum, kCount };

class Combinator {
 public:
  /// Default: the paper's best-performing linear combinator with α = 0.9.
  constexpr Combinator() = default;

  [[nodiscard]] static Combinator linear(double alpha);
  [[nodiscard]] static Combinator euclidean();
  [[nodiscard]] static Combinator geometric();
  [[nodiscard]] static Combinator sum();
  [[nodiscard]] static Combinator count();

  /// a = sim(u,v), b = sim(v,z); returns sim*_v(u,z).
  [[nodiscard]] double operator()(double a, double b) const noexcept;

  [[nodiscard]] CombinatorKind kind() const noexcept { return kind_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::string name() const;

 private:
  constexpr Combinator(CombinatorKind kind, double alpha)
      : kind_(kind), alpha_(alpha) {}

  CombinatorKind kind_ = CombinatorKind::kLinear;
  double alpha_ = 0.9;
};

}  // namespace snaple
