// High-level public API: fit once, serve queries — or predict in batch.
//
// LinkPredictor bundles the SNAPLE configuration with a simulated cluster
// and a partitioning strategy. The serving flow is three lines:
//
//   snaple::LinkPredictor predictor(cfg);     // k=5, klocal=20, linearSum
//   auto model = std::make_shared<const snaple::PredictorModel>(
//       predictor.fit(graph));                // steps 1–2, build once
//   snaple::QueryEngine server(model);        // server.topk(u) on demand
//
// fit() runs the model-building GAS steps (1–2, plus 2b for K=3) and
// harvests the per-vertex state into an immutable PredictorModel that
// save()s/load()s for offline build + online serving (model.hpp).
// QueryEngine::topk(u, k) answers one user in work proportional to u's
// retained paths — not a whole-graph pass (query_engine.hpp).
//
// predict() remains for whole-graph batch prediction, now as sugar over
// fit + a batch query of every vertex; its predictions are bit-identical
// to the engine-level batch primitive `run_snaple` (a property test pins
// predictions and scores). Benches and experiments that reproduce the
// paper's per-step accounting (simulated time, network traffic of all
// three steps) call `run_snaple` directly — a served query is
// machine-local by design, so predict()'s report covers the fit steps
// plus the measured serve wall time.
//
// For distributed simulation, pass a ClusterConfig (e.g.
// gas::ClusterConfig::type_i(32) for the paper's 256-core testbed); the
// fit steps run on the simulated cluster and the model records each
// retained edge's machine so serving replays the exact batch fold.
#pragma once

#include <memory>
#include <thread>

#include "core/config.hpp"
#include "core/model.hpp"
#include "core/query_engine.hpp"
#include "core/snaple_program.hpp"
#include "gas/cluster.hpp"
#include "gas/partition.hpp"

namespace snaple {

struct PredictionRun {
  /// predictions[u] = up to k predicted neighbors of u, best first.
  std::vector<std::vector<VertexId>> predictions;
  /// Fit-step engine accounting plus a wall-only "3:recommend (serve)"
  /// entry for the batch query pass (queries ship no bytes).
  gas::EngineReport report;
  /// Measured host wall time of fit + batch query (graph loading and
  /// partitioning excluded, matching the paper's measurement protocol).
  double wall_seconds = 0.0;
  /// Simulated distributed execution time of the fit steps.
  double simulated_seconds = 0.0;
  /// Network traffic of the fit steps (serving is replica-local).
  std::size_t network_bytes = 0;
  double replication_factor = 0.0;
};

class LinkPredictor {
 public:
  /// `exec` selects flat (accounted) or truly sharded execution — the
  /// predictions are bit-identical; sharded runs one task per machine
  /// shard with explicit message exchange (docs/ARCHITECTURE.md).
  explicit LinkPredictor(
      SnapleConfig config,
      gas::ClusterConfig cluster = gas::ClusterConfig::single_machine(
          std::thread::hardware_concurrency()),
      gas::PartitionStrategy strategy = gas::PartitionStrategy::kGreedy,
      gas::ExecutionMode exec = gas::ExecutionMode::kFlat);

  [[nodiscard]] const SnapleConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const gas::ClusterConfig& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] gas::ExecutionMode execution_mode() const noexcept {
    return exec_;
  }

  /// Runs steps 1–2 (and 2b for K=3) and builds the query-serving model.
  /// The model does not retain the graph (queries never read it); pass a
  /// shared_ptr via the second overload to move shared ownership in.
  /// Thread-safe for concurrent calls with distinct pools. Throws
  /// gas::ResourceExhausted if the cluster's memory budget is exceeded.
  [[nodiscard]] PredictorModel fit(const CsrGraph& graph,
                                   ThreadPool* pool = nullptr) const;
  [[nodiscard]] PredictorModel fit(std::shared_ptr<const CsrGraph> graph,
                                   ThreadPool* pool = nullptr) const;

  /// As fit(), but reuses a caller-provided partitioning (benches sweep
  /// cluster sizes without re-partitioning needlessly) and, for sharded
  /// execution, optionally a pre-built shard layout for it.
  [[nodiscard]] PredictorModel fit_with_partitioning(
      const CsrGraph& graph, const gas::Partitioning& partitioning,
      ThreadPool* pool = nullptr,
      std::shared_ptr<const gas::ShardTopology> topology = nullptr) const;

  /// Whole-graph batch prediction: fit + one query per vertex. Same
  /// predictions as `run_snaple` on the same partitioning (pinned
  /// bit-identically by a property test); see the header comment for
  /// what the report covers.
  [[nodiscard]] PredictionRun predict(const CsrGraph& graph,
                                      ThreadPool* pool = nullptr) const;

  /// As predict(), with a caller-provided partitioning / shard layout.
  [[nodiscard]] PredictionRun predict_with_partitioning(
      const CsrGraph& graph, const gas::Partitioning& partitioning,
      ThreadPool* pool = nullptr,
      std::shared_ptr<const gas::ShardTopology> topology = nullptr) const;

 private:
  [[nodiscard]] PredictorModel fit_impl(
      const CsrGraph& graph, std::shared_ptr<const CsrGraph> owned,
      const gas::Partitioning& partitioning, ThreadPool* pool,
      std::shared_ptr<const gas::ShardTopology> topology) const;

  SnapleConfig config_;
  gas::ClusterConfig cluster_;
  gas::PartitionStrategy strategy_;
  gas::ExecutionMode exec_;
};

}  // namespace snaple
