// High-level public API: configure once, predict on any graph.
//
// LinkPredictor bundles the SNAPLE configuration with a simulated cluster
// and a partitioning strategy, so the common case is three lines:
//
//   snaple::SnapleConfig cfg;                 // k=5, klocal=20, linearSum
//   snaple::LinkPredictor predictor(cfg);     // single "machine"
//   auto result = predictor.predict(graph);   // result.predictions[u]
//
// For distributed simulation, pass a ClusterConfig (e.g.
// gas::ClusterConfig::type_i(32) for the paper's 256-core testbed) and
// inspect result.report for simulated time and network traffic.
#pragma once

#include <memory>
#include <thread>

#include "core/config.hpp"
#include "core/snaple_program.hpp"
#include "gas/cluster.hpp"
#include "gas/partition.hpp"

namespace snaple {

struct PredictionRun {
  /// predictions[u] = up to k predicted neighbors of u, best first.
  std::vector<std::vector<VertexId>> predictions;
  gas::EngineReport report;
  /// Measured host wall time of the three GAS steps (graph loading and
  /// partitioning excluded, matching the paper's measurement protocol).
  double wall_seconds = 0.0;
  /// Simulated distributed execution time on the configured cluster.
  double simulated_seconds = 0.0;
  std::size_t network_bytes = 0;
  double replication_factor = 0.0;
};

class LinkPredictor {
 public:
  /// `exec` selects flat (accounted) or truly sharded execution — the
  /// predictions are bit-identical; sharded runs one task per machine
  /// shard with explicit message exchange (docs/ARCHITECTURE.md).
  explicit LinkPredictor(
      SnapleConfig config,
      gas::ClusterConfig cluster = gas::ClusterConfig::single_machine(
          std::thread::hardware_concurrency()),
      gas::PartitionStrategy strategy = gas::PartitionStrategy::kGreedy,
      gas::ExecutionMode exec = gas::ExecutionMode::kFlat);

  [[nodiscard]] const SnapleConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const gas::ClusterConfig& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] gas::ExecutionMode execution_mode() const noexcept {
    return exec_;
  }

  /// Runs link prediction over the whole graph. Thread-safe for concurrent
  /// calls with distinct pools. Throws gas::ResourceExhausted if the
  /// cluster's memory budget is exceeded.
  [[nodiscard]] PredictionRun predict(const CsrGraph& graph,
                                      ThreadPool* pool = nullptr) const;

  /// As predict(), but reuses a caller-provided partitioning (benches
  /// sweep cluster sizes without re-partitioning needlessly) and, for
  /// sharded execution, optionally a pre-built shard layout for it.
  [[nodiscard]] PredictionRun predict_with_partitioning(
      const CsrGraph& graph, const gas::Partitioning& partitioning,
      ThreadPool* pool = nullptr,
      std::shared_ptr<const gas::ShardTopology> topology = nullptr) const;

 private:
  SnapleConfig config_;
  gas::ClusterConfig cluster_;
  gas::PartitionStrategy strategy_;
  gas::ExecutionMode exec_;
};

}  // namespace snaple
