// Per-row kernels of Algorithm 2, shared between the whole-graph GAS
// steps (snaple_program.cpp), the query-serving replay of step 3
// (query_engine.cpp) and the incremental row recompute
// (dynamic_model.cpp).
//
// The batch engine computes every row of every step in one pass; the
// serving side recomputes a *single* vertex's row — Γ̂(u), Du.sims,
// Du.hop2 or a step-3 fold — on demand. Both sides must produce
// bit-identical floats (the serving property tests compare with
// EXPECT_EQ, not EXPECT_NEAR), so the row-scoped bodies live here, once:
//
//   * edge_uniform / keep_sampled_edge — step 1's Bernoulli truncation;
//   * select_k_local                   — step 2/2b's klocal selection;
//   * find_sim                         — the retained-path lookup;
//   * fold_path_list / fold_hop2_edge  — the ⊗/⊕pre candidate folds of
//                                        steps 2b and 3, including the
//                                        2b zero-path early exit;
//   * fold_vertex_paths                — the machine-grouped replay of a
//                                        whole vertex's fold, templated
//                                        over any model-row source
//                                        (PredictorModel, DynamicModel).
//
// Why machine grouping everywhere: the engine folds a vertex's edges
// grouped by the machine owning each edge (CSR order within a machine,
// machines merged ascending — gas/engine.hpp). Float ⊕pre is not
// associative, so any out-of-band recomputation has to replay exactly
// that two-level fold to stay bit-identical.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/scoring.hpp"
#include "gas/partition.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"
#include "util/score_map.hpp"
#include "util/simd.hpp"

namespace snaple::rows {

/// Deterministic per-edge uniform in [0,1) for the step-1 Bernoulli
/// truncation — a gather may not share RNG state across edges, so the
/// "random" draw is a hash of (seed, u, v).
[[nodiscard]] inline double edge_uniform(std::uint64_t seed, VertexId u,
                                         VertexId v) {
  SplitMix64 sm(seed ^ ((static_cast<std::uint64_t>(u) << 32) | v));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Step-1 per-edge decision: is v kept in Γ̂(u)? `out_degree` is u's
/// full out-degree (the keep probability is thrΓ/|Γ(u)|, line 3).
[[nodiscard]] inline bool keep_sampled_edge(const SnapleConfig& cfg,
                                            VertexId u, VertexId v,
                                            std::size_t out_degree) {
  if (cfg.thr_gamma == kUnlimited || out_degree <= cfg.thr_gamma) {
    return true;
  }
  const double keep = static_cast<double>(cfg.thr_gamma) /
                      static_cast<double>(out_degree);
  return edge_uniform(cfg.seed, u, v) <= keep;
}

/// Step-2/2b selection: keeps `k_local` entries of `collected` according
/// to the policy, then orders them by vertex id for binary-search lookup.
/// Deterministic for Γmax/Γmin regardless of input order (ties break by
/// id); Γrnd's shuffle depends on the input order, which the callers
/// reproduce machine-grouped exactly as the engine collects it.
inline void select_k_local(std::vector<std::pair<VertexId, float>>& collected,
                           const SnapleConfig& cfg, VertexId u) {
  if (cfg.k_local != kUnlimited && collected.size() > cfg.k_local) {
    switch (cfg.policy) {
      case SelectionPolicy::kMax:
        std::sort(collected.begin(), collected.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second > b.second;
                    return a.first < b.first;
                  });
        break;
      case SelectionPolicy::kMin:
        std::sort(collected.begin(), collected.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second < b.second;
                    return a.first < b.first;
                  });
        break;
      case SelectionPolicy::kRandom: {
        Rng rng(cfg.seed ^ (0xabcd'ef01'2345'6789ULL + u));
        shuffle(collected, rng);
        break;
      }
    }
    collected.resize(cfg.k_local);
  }
  std::sort(collected.begin(), collected.end());
}

/// Binary search in an id-sorted sims list.
[[nodiscard]] inline const float* find_sim(
    const std::vector<std::pair<VertexId, float>>& sims, VertexId v) {
  const auto it = std::lower_bound(
      sims.begin(), sims.end(), v,
      [](const auto& entry, VertexId key) { return entry.first < key; });
  if (it == sims.end() || it->first != v) return nullptr;
  return &it->second;
}

// ---------------------------------------------------------------------
// Retained-list adapters: the engine's vertex data keeps (id, score)
// pairs, the flattened models keep parallel arrays. The fold kernels
// template over this tiny interface instead of forcing one layout.
// ---------------------------------------------------------------------

struct PairSims {
  const std::vector<std::pair<VertexId, float>>* entries;
  [[nodiscard]] std::size_t size() const { return entries->size(); }
  [[nodiscard]] VertexId id(std::size_t i) const {
    return (*entries)[i].first;
  }
  [[nodiscard]] float score(std::size_t i) const {
    return (*entries)[i].second;
  }
};

struct SpanSims {
  std::span<const VertexId> ids;
  std::span<const float> scores;
  [[nodiscard]] std::size_t size() const { return ids.size(); }
  [[nodiscard]] VertexId id(std::size_t i) const { return ids[i]; }
  [[nodiscard]] float score(std::size_t i) const { return scores[i]; }
};

/// True when the 2b zero-path early exit is sound for this configuration
/// (the `2b:hop2-scores` per-edge pruning of ISSUE 5 / ROADMAP "K=3
/// cost"). A zero-valued path can be dropped without changing any
/// surviving candidate exactly when:
///   * hop2_min_score > 0 — the knob is on (0 must stay bit-identical
///     to the unpruned pipeline, so nothing may be skipped);
///   * the aggregator is Sum — σ is a sum of non-negative terms, so
///     folding 0 leaves σ bit-identical, and ⊕post ignores the path
///     count n. Under Mean (σ/n) and Geom (σ^(1/n), with ⊕pre = ×) the
///     zero paths are load-bearing, so the exit stays off;
///   * the policy is not Γrnd — its shuffle keys on the accumulator
///     iteration order, which dropping entries would perturb.
/// Candidates ALL of whose paths are zero end at σ = 0 < threshold and
/// are pruned by the filter anyway, so skipping them changes nothing.
[[nodiscard]] inline bool hop2_zero_skip(const SnapleConfig& cfg,
                                         const ScoreConfig& score) {
  return cfg.hop2_min_score > 0 &&
         score.aggregator.kind() == AggregatorKind::kSum &&
         cfg.policy != SelectionPolicy::kRandom;
}

/// Folds one downstream list of the path u → v → z into `acc`: for every
/// (z, s_vz) with z ≠ u and z ∉ Γ̂(u), accumulate (z, suv ⊗ s_vz, 1) with
/// ⊕pre. This is the shared inner body of the step-2b and step-3 gathers
/// (and their serving replays). Returns the accumulated wire bytes.
/// `skip_zero` enables the 2b zero-path skip (see hop2_zero_skip).
template <typename SimList, typename PreOp>
std::size_t fold_path_list(VertexId u, std::span<const VertexId> gamma_u,
                           float suv, const SimList& list,
                           const Combinator& comb, bool skip_zero,
                           ScoreMap& acc, PreOp&& pre) {
  std::size_t bytes = 0;
  // Candidate ids arrive in ascending order (SimLists keep ids sorted),
  // so the galloping cursor amortizes the per-candidate membership test;
  // it degrades to binary search — never a wrong answer — otherwise.
  simd::SortedMembership member(gamma_u);
  for (std::size_t j = 0; j < list.size(); ++j) {
    const VertexId z = list.id(j);
    if (z == u) continue;
    if (member.contains(z)) {
      continue;  // already a neighbor: not a missing-edge candidate
    }
    const double path_sim = comb(suv, list.score(j));
    if (skip_zero && path_sim == 0.0) continue;  // cannot move a Sum
    acc.accumulate(z, static_cast<float>(path_sim), 1, pre);
    bytes += sizeof(VertexId) + sizeof(float) + sizeof(std::uint32_t);
  }
  return bytes;
}

/// The 2b per-edge gather body: the whole-edge early exit plus the
/// per-path fold. When the zero-skip is active and ⊗ applied to v's best
/// retained similarity is already zero, no path through v can score
/// above zero (⊗ is monotone in both arguments and similarities are
/// non-negative), so the edge is skipped before any candidate lookup.
template <typename SimList, typename PreOp>
std::size_t fold_hop2_edge(VertexId u, std::span<const VertexId> gamma_u,
                           float suv, const SimList& sims_v,
                           const Combinator& comb, bool zero_skip,
                           ScoreMap& acc, PreOp&& pre) {
  if (zero_skip) {
    // Only scan for the bound when a zero path is possible at all —
    // e.g. linear(α) with suv > 0 yields α·suv > 0 for every path.
    if (comb(suv, 0.0) == 0.0) {
      float best = 0.0f;
      for (std::size_t j = 0; j < sims_v.size(); ++j) {
        best = std::max(best, sims_v.score(j));
      }
      if (comb(suv, best) == 0.0) return 0;  // per-edge early exit
    }
  }
  return fold_path_list(u, gamma_u, suv, sims_v, comb, zero_skip, acc,
                        std::forward<PreOp>(pre));
}

// ---------------------------------------------------------------------
// Machine-grouped single-vertex fold replay over model rows.
// ---------------------------------------------------------------------

/// Reused fold state; callers keep one per thread so the hot path is
/// allocation-free in steady state, like the engine's per-worker
/// accumulators.
struct PathFoldScratch {
  ScoreMap partial;
  ScoreMap merged;
};

/// Which fold a replay performs: step 3's recommendation fold (sims plus,
/// for K=3, the hop2 extension) or step 2b's 2-hop pre-fold (sims only,
/// honoring the zero-path early exit).
enum class PathFold { kRecommend, kHop2 };

/// Replays one vertex's fold into scratch.merged, reproducing the batch
/// engine's canonical order bit-exactly: u's retained edges grouped by
/// their machine tag, folded in ascending-id order within a group (CSR
/// order), groups merged in ascending machine order with the same ⊕pre
/// the engine's cross-machine merge uses. The first contributing group
/// folds straight into `merged` — the engine swaps the first partial in
/// wholesale, so this is the same float chain.
///
/// `Model` needs gamma_hat(u) -> span<const VertexId>, sims(u) ->
/// {ids, scores, machines} spans, hop2(u) -> {ids, scores} spans, and
/// config(); PredictorModel and DynamicModel both qualify.
template <typename Model>
void fold_vertex_paths(const Model& model, const ScoreConfig& score,
                       VertexId u, PathFold kind, bool zero_skip,
                       PathFoldScratch& scratch) {
  const Combinator comb = score.combinator;
  const Aggregator agg = score.aggregator;
  const auto pre = [&agg](float a, float b) {
    return static_cast<float>(agg.pre(a, b));
  };
  const auto gamma = model.gamma_hat(u);
  const auto su = model.sims(u);
  const bool extend_hop2 =
      kind == PathFold::kRecommend && model.config().k_hops == 3;
  scratch.merged.clear();

  std::uint64_t machines = 0;
  for (const gas::MachineId m : su.machines) {
    machines |= std::uint64_t{1} << m;
  }
  while (machines != 0) {
    const auto mach =
        static_cast<gas::MachineId>(__builtin_ctzll(machines));
    machines &= machines - 1;
    ScoreMap& acc =
        scratch.merged.empty() ? scratch.merged : scratch.partial;
    for (std::size_t i = 0; i < su.ids.size(); ++i) {
      if (su.machines[i] != mach) continue;
      const float suv = su.scores[i];
      const auto sv = model.sims(su.ids[i]);
      const SpanSims sims_v{sv.ids, sv.scores};
      if (kind == PathFold::kHop2) {
        fold_hop2_edge(u, gamma, suv, sims_v, comb, zero_skip, acc, pre);
      } else {
        fold_path_list(u, gamma, suv, sims_v, comb, /*skip_zero=*/false,
                       acc, pre);
        if (extend_hop2) {
          // 3-hop paths u → v → (v's 2-hop candidate z): extend v's
          // folded 2-hop score by the first-hop similarity.
          const auto hv = model.hop2(su.ids[i]);
          fold_path_list(u, gamma, suv, SpanSims{hv.ids, hv.scores}, comb,
                         /*skip_zero=*/false, acc, pre);
        }
      }
    }
    if (&acc == &scratch.partial && !scratch.partial.empty()) {
      // Cross-group merge — the engine's merge_scores on whole partials.
      scratch.partial.for_each(
          [&](VertexId z, float sigma, std::uint32_t paths) {
            scratch.merged.accumulate(z, sigma, paths, pre);
          });
      scratch.partial.clear();
    }
  }
}

}  // namespace snaple::rows
