#include "core/aggregator.hpp"

#include <cmath>

namespace snaple {

double Aggregator::post(double sigma, std::uint32_t n) const noexcept {
  if (n == 0) return 0.0;
  switch (kind_) {
    case AggregatorKind::kSum:
      return sigma;
    case AggregatorKind::kMean:
      return sigma / static_cast<double>(n);
    case AggregatorKind::kGeom:
      // σ is a product of values in [0,1]; guard the n-th root of 0.
      return sigma <= 0.0 ? 0.0
                          : std::pow(sigma, 1.0 / static_cast<double>(n));
  }
  return 0.0;
}

std::string Aggregator::name() const {
  switch (kind_) {
    case AggregatorKind::kSum:
      return "Sum";
    case AggregatorKind::kMean:
      return "Mean";
    case AggregatorKind::kGeom:
      return "Geom";
  }
  return "?";
}

}  // namespace snaple
