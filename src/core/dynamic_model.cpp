#include "core/dynamic_model.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/row_recompute.hpp"
#include "util/thread_pool.hpp"

namespace snaple {

namespace {

std::shared_ptr<const CsrGraph> require_graph(
    std::shared_ptr<const CsrGraph> graph) {
  SNAPLE_CHECK_MSG(graph != nullptr,
                   "DynamicModel needs the fit graph (a loaded model "
                   "carries none — refit, or keep the graph alongside "
                   "the model)");
  return graph;
}

std::shared_ptr<const PredictorModel> require_model(
    std::shared_ptr<const PredictorModel> model) {
  SNAPLE_CHECK_MSG(model != nullptr, "DynamicModel needs a base model");
  return model;
}

}  // namespace

DynamicModel::DynamicModel(std::shared_ptr<const PredictorModel> base,
                           std::shared_ptr<const CsrGraph> graph,
                           std::optional<std::uint64_t> partition_seed,
                           ThreadPool* pool)
    : base_(require_model(std::move(base))),
      overlay_(require_graph(std::move(graph))),
      partition_seed_(partition_seed.value_or(base_->config().seed)) {
  SNAPLE_CHECK_MSG(overlay_.num_vertices() == base_->num_vertices(),
                   "graph and model disagree on the vertex count — this "
                   "is not the graph the model was fit on");
  SNAPLE_CHECK_MSG(
      !(base_->config().policy == SelectionPolicy::kRandom &&
        base_->config().k_hops == 3),
      "incremental updates do not support the Γrnd policy with K=3: its "
      "hop2 selection shuffles candidates in accumulator-iteration "
      "order, which no out-of-band recompute can reproduce bit-exactly");

  const VertexId n = base_->num_vertices();
  score_ = base_->config().resolve_score();
  hop2_skip_zero_ = rows::hop2_zero_skip(base_->config(), score_);
  gamma_rows_ = RowTable(n);
  sims_rows_ = RowTable(n);
  if (base_->config().k_hops == 3) hop2_rows_ = RowTable(n);
  row_version_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);

  // Verify every base tag against the insertion-stable placement rule
  // and every retained neighbor against the graph. Fits made with
  // kHash/kGreedy on >1 machine fail here by design: their tags key on
  // CSR edge positions, which an insert would shift, breaking the
  // refit-equivalence contract. Single-machine fits always pass.
  const std::uint32_t machines = base_->num_machines();
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  const CsrGraph& g = overlay_.base();
  tp.parallel_for(0, n, [&](std::size_t i, std::size_t) {
    const auto u = static_cast<VertexId>(i);
    const auto su = base_->sims(u);
    for (std::size_t j = 0; j < su.ids.size(); ++j) {
      SNAPLE_CHECK_MSG(g.has_edge(u, su.ids[j]),
                       "retained neighbor " + std::to_string(su.ids[j]) +
                           " of vertex " + std::to_string(u) +
                           " is not an edge of the graph — this is not "
                           "the graph the model was fit on");
      SNAPLE_CHECK_MSG(
          su.machines[j] == gas::edge_local_machine(u, su.ids[j], machines,
                                                    partition_seed_),
          "machine tag of edge (" + std::to_string(u) + ", " +
              std::to_string(su.ids[j]) +
              ") does not follow the insertion-stable placement — fit "
              "with gas::PartitionStrategy::kEdgeLocal (seed " +
              std::to_string(partition_seed_) +
              ") to serve incremental updates");
    }
  });
}

// ---------------------------------------------------------------------
// Writer path.
// ---------------------------------------------------------------------

void DynamicModel::validate_batch(std::span<const Edge> batch) const {
  rows::validate_insert_batch(overlay_, batch);
}

DynamicModel::UpdateStats DynamicModel::add_edge(VertexId u, VertexId v) {
  const Edge e{u, v};
  return add_edges({&e, 1});
}

DynamicModel::UpdateStats DynamicModel::add_edges(
    std::span<const Edge> batch) {
  // All-or-nothing: the whole batch is validated before the first
  // overlay mutation, so a throw leaves the model untouched.
  validate_batch(batch);
  if (batch.empty()) return {};
  return apply_validated(batch);
}

DynamicModel::UpdateStats DynamicModel::remove_edge(VertexId u,
                                                    VertexId v) {
  const Edge e{u, v};
  return remove_edges({&e, 1});
}

DynamicModel::UpdateStats DynamicModel::remove_edges(
    std::span<const Edge> batch) {
  rows::validate_remove_batch(overlay_, batch);
  if (batch.empty()) return {};
  return apply_removes_validated(batch);
}

DynamicModel::UpdateStats DynamicModel::apply_validated(
    std::span<const Edge> batch) {
  for (const Edge& e : batch) overlay_.insert(e.src, e.dst);
  return republish_stale(batch);
}

DynamicModel::UpdateStats DynamicModel::apply_removes_validated(
    std::span<const Edge> batch) {
  for (const Edge& e : batch) overlay_.remove(e.src, e.dst);
  return republish_stale(batch);
}

DynamicModel::UpdateStats DynamicModel::republish_stale(
    std::span<const Edge> batch) {
  // Stale-row sets against the post-batch live graph (row_recompute.hpp
  // derives them, and proves the same sets cover removals): Γ̂ stales
  // only at the sources; sims at the sources and their
  // in-neighborhoods; hop2 one in-hop further.
  const rows::StaleSets stale =
      rows::compute_stale_sets(overlay_, batch, !hop2_rows_.empty());

  // Recompute in dependency order — each phase reads rows the previous
  // phase already published (same thread, plain program order; readers
  // see each row flip atomically).
  for (const VertexId u : stale.gamma) {
    auto slab = std::make_unique<RowSlab>();
    slab->ids = compute_gamma_row(u);
    publish(gamma_rows_, u, std::move(slab));
  }
  for (const VertexId x : stale.sims) {
    publish(sims_rows_, x, compute_sims_row(x));
  }
  if (!hop2_rows_.empty()) {
    rows::PathFoldScratch scratch;
    for (const VertexId x : stale.hop2) {
      publish(hop2_rows_, x, compute_hop2_row(x, scratch));
    }
  }

  version_.fetch_add(batch.size(), std::memory_order_release);
  return UpdateStats{batch.size(), stale.gamma.size(), stale.sims.size(),
                     stale.hop2.size()};
}

// ---------------------------------------------------------------------
// Row recomputes — bit-identical to what a from-scratch fit on the
// live graph computes for the same row (snaple_rows.hpp kernels).
// ---------------------------------------------------------------------

std::vector<VertexId> DynamicModel::compute_gamma_row(VertexId u) const {
  return rows::recompute_gamma_row(base_->config(), overlay_, u);
}

std::unique_ptr<DynamicModel::RowSlab> DynamicModel::compute_sims_row(
    VertexId x) const {
  // This model's gamma_hat() already resolves published-over-base rows,
  // so it IS the current-row source the shared kernel needs.
  return rows::recompute_sims_row(
      base_->config(), score_, overlay_, base_->num_machines(),
      partition_seed_, x, [this](VertexId v) { return gamma_hat(v); });
}

std::unique_ptr<DynamicModel::RowSlab> DynamicModel::compute_hop2_row(
    VertexId x, rows::PathFoldScratch& scratch) const {
  // The fold reads this model's (already republished) sims rows.
  return rows::recompute_hop2_row(*this, score_, hop2_skip_zero_, x,
                                  scratch);
}

void DynamicModel::publish(RowTable& table, VertexId u,
                           std::unique_ptr<RowSlab> slab) {
  const RowSlab* p = slab.get();
  slabs_.push_back(std::move(slab));  // retired slabs stay owned forever
  table[u].store(p, std::memory_order_release);
  row_version_[u].fetch_add(1, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Snapshot + accounting.
// ---------------------------------------------------------------------

PredictorModel DynamicModel::freeze() const {
  const VertexId n = num_vertices();
  const bool three_hop = base_->config().k_hops == 3;
  PredictorModel m;
  m.config_ = base_->config();
  m.num_machines_ = base_->num_machines();
  m.num_vertices_ = n;

  m.gamma_offsets_.reserve(static_cast<std::size_t>(n) + 1);
  m.sims_offsets_.reserve(static_cast<std::size_t>(n) + 1);
  if (three_hop) m.hop2_offsets_.reserve(static_cast<std::size_t>(n) + 1);
  for (VertexId u = 0; u < n; ++u) {
    m.gamma_offsets_.push_back(m.gamma_ids_.size());
    const auto g = gamma_hat(u);
    m.gamma_ids_.insert(m.gamma_ids_.end(), g.begin(), g.end());

    m.sims_offsets_.push_back(m.sims_ids_.size());
    const auto s = sims(u);
    m.sims_ids_.insert(m.sims_ids_.end(), s.ids.begin(), s.ids.end());
    m.sims_scores_.insert(m.sims_scores_.end(), s.scores.begin(),
                          s.scores.end());
    m.sims_machines_.insert(m.sims_machines_.end(), s.machines.begin(),
                            s.machines.end());
    if (three_hop) {
      m.hop2_offsets_.push_back(m.hop2_ids_.size());
      const auto h = hop2(u);
      m.hop2_ids_.insert(m.hop2_ids_.end(), h.ids.begin(), h.ids.end());
      m.hop2_scores_.insert(m.hop2_scores_.end(), h.scores.begin(),
                            h.scores.end());
    }
  }
  m.gamma_offsets_.push_back(m.gamma_ids_.size());
  m.sims_offsets_.push_back(m.sims_ids_.size());
  if (three_hop) m.hop2_offsets_.push_back(m.hop2_ids_.size());
  return m;
}

std::size_t DynamicModel::overlay_bytes() const noexcept {
  std::size_t bytes =
      overlay_.memory_bytes() +
      slabs_.capacity() * sizeof(std::unique_ptr<const RowSlab>);
  for (const auto& s : slabs_) bytes += s->memory_bytes();
  return bytes;
}

}  // namespace snaple
