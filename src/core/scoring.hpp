// The score design space of Table 3: a raw similarity, a combinator ⊗ and
// an aggregator ⊕ compose into a scoring method.
//
//   sim      | ⊗      | ⊕    | name
//   Jaccard  | linear | Sum  | linearSum    (the paper's best recall)
//   Jaccard  | eucl   | Sum  | euclSum
//   Jaccard  | geom   | Sum  | geomSum
//   1/|Γv|   | sum    | Sum  | PPR          (personalized-PageRank-like)
//   —        | count  | Sum  | counter      (# of 2-hop paths)
//   Jaccard  | linear | Mean | linearMean
//   Jaccard  | eucl   | Mean | euclMean
//   Jaccard  | geom   | Mean | geomMean
//   Jaccard  | linear | Geom | linearGeom
//   Jaccard  | eucl   | Geom | euclGeom
//   Jaccard  | geom   | Geom | geomGeom
#pragma once

#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "core/combinator.hpp"
#include "core/similarity.hpp"

namespace snaple {

enum class ScoreKind {
  kLinearSum,
  kEuclSum,
  kGeomSum,
  kPpr,
  kCounter,
  kLinearMean,
  kEuclMean,
  kGeomMean,
  kLinearGeom,
  kEuclGeom,
  kGeomGeom,
};

/// A fully-resolved scoring method. Users can bypass ScoreKind and build
/// custom configurations directly — the framework is the point (§3).
struct ScoreConfig {
  std::string name = "linearSum";
  SimilarityMetric metric = SimilarityMetric::kJaccard;
  Combinator combinator = Combinator::linear(0.9);
  Aggregator aggregator = Aggregator(AggregatorKind::kSum);
};

/// Resolves a Table-3 row. `alpha` parameterizes the linear combinator
/// (the paper settled on 0.9, "found to return the best predictions").
[[nodiscard]] ScoreConfig score_config(ScoreKind kind, double alpha = 0.9);

/// All eleven Table-3 rows, in table order.
[[nodiscard]] std::vector<ScoreKind> all_score_kinds();

/// The rows whose aggregator matches `agg` (Figure 8 groups by aggregator).
[[nodiscard]] std::vector<ScoreKind> score_kinds_with_aggregator(
    AggregatorKind agg);

[[nodiscard]] std::string score_name(ScoreKind kind);

/// Inverse of score_name; throws CheckError on unknown names.
[[nodiscard]] ScoreKind parse_score_kind(const std::string& name);

}  // namespace snaple
