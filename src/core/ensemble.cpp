#include "core/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/top_k.hpp"

namespace snaple {

namespace {

/// Self-supervised split: same protocol as eval::remove_random_edges
/// (one random out-edge per vertex with degree > 3). Re-implemented here
/// because snaple_core must not depend on snaple_eval (which links back
/// against this library).
struct InnerHoldout {
  CsrGraph train;
  std::vector<Edge> hidden;
};

InnerHoldout inner_holdout(const CsrGraph& g, std::size_t per_vertex,
                           std::uint64_t seed) {
  InnerHoldout out;
  GraphBuilder builder(g.num_vertices());
  builder.reserve_edges(g.num_edges());
  Rng rng(seed);
  std::vector<VertexId> nbrs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto row = g.out_neighbors(u);
    if (row.size() <= 3) {
      for (VertexId v : row) builder.add_edge(u, v);
      continue;
    }
    nbrs.assign(row.begin(), row.end());
    shuffle(nbrs, rng);
    const std::size_t removed = std::min(per_vertex, nbrs.size() - 1);
    for (std::size_t i = 0; i < removed; ++i) {
      out.hidden.push_back({u, nbrs[i]});
    }
    for (std::size_t i = removed; i < nbrs.size(); ++i) {
      builder.add_edge(u, nbrs[i]);
    }
  }
  out.train = builder.build();
  return out;
}

SnapleConfig component_config(const EnsembleConfig& cfg, ScoreKind kind) {
  SnapleConfig c;
  c.score = kind;
  c.k = cfg.candidate_pool;
  c.k_local = cfg.k_local;
  c.thr_gamma = cfg.thr_gamma;
  c.seed = cfg.seed;
  return c;
}

std::vector<SnapleResult> run_components(const CsrGraph& g,
                                         const EnsembleConfig& cfg,
                                         const gas::ClusterConfig& cluster,
                                         ThreadPool* pool) {
  const auto partitioning = gas::Partitioning::create(
      g, cluster.num_machines, gas::PartitionStrategy::kGreedy, cfg.seed);
  std::vector<SnapleResult> results;
  results.reserve(cfg.components.size());
  for (const ScoreKind kind : cfg.components) {
    results.push_back(run_snaple(g, component_config(cfg, kind),
                                 partitioning, cluster, pool));
  }
  return results;
}

/// Max ⊕post score per component, used to bring heterogeneous score
/// ranges (counter counts paths, PPR sums tiny masses) onto one scale.
std::vector<double> component_scales(
    const std::vector<SnapleResult>& components) {
  std::vector<double> scales(components.size(), 1.0);
  for (std::size_t c = 0; c < components.size(); ++c) {
    double max_score = 0.0;
    for (const auto& list : components[c].scored) {
      for (const auto& [z, s] : list) {
        max_score = std::max(max_score, static_cast<double>(s));
      }
    }
    if (max_score > 0.0) scales[c] = max_score;
  }
  return scales;
}

/// Per-vertex candidate -> normalized feature vector (one per component).
using FeatureMap =
    std::unordered_map<VertexId, std::vector<double>>;

FeatureMap features_for_vertex(const std::vector<SnapleResult>& components,
                               const std::vector<double>& scales,
                               VertexId u) {
  FeatureMap features;
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (const auto& [z, s] : components[c].scored[u]) {
      auto [it, inserted] =
          features.try_emplace(z, components.size(), 0.0);
      it->second[c] = static_cast<double>(s) / scales[c];
    }
  }
  return features;
}

double dot(const std::vector<double>& w, const std::vector<double>& x) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) total += w[i] * x[i];
  return total;
}

}  // namespace

EnsembleModel train_ensemble(const CsrGraph& graph,
                             const EnsembleConfig& config,
                             const gas::ClusterConfig& cluster,
                             ThreadPool* pool) {
  SNAPLE_CHECK(!config.components.empty());
  SNAPLE_CHECK(config.epochs >= 1);

  const InnerHoldout holdout = inner_holdout(
      graph, config.holdout_per_vertex, config.seed ^ 0x5e1f'5e1fULL);
  const auto components =
      run_components(holdout.train, config, cluster, pool);

  EnsembleModel model;
  model.scales = component_scales(components);
  model.weights.assign(config.components.size(), 0.0);

  // Assemble the training set: every candidate either is a hidden edge
  // (positive) or is not (negative).
  std::unordered_map<VertexId, std::vector<VertexId>> hidden_by_src;
  for (const Edge& e : holdout.hidden) {
    hidden_by_src[e.src].push_back(e.dst);
  }
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (const auto& [u, targets] : hidden_by_src) {
    FeatureMap features = features_for_vertex(components, model.scales, u);
    for (auto& [z, f] : features) {
      const bool positive =
          std::find(targets.begin(), targets.end(), z) != targets.end();
      xs.push_back(std::move(f));
      ys.push_back(positive ? 1.0 : 0.0);
    }
  }
  if (xs.empty()) return model;  // degenerate graph: keep zero weights

  // Full-batch gradient descent on regularized logistic loss. Hidden
  // edges are rare among candidates (~1 in candidate_pool·|components|),
  // so the loss is class-balanced: without it the majority-negative
  // gradient drags every weight negative (features with non-negative
  // values double as bias surrogates) and the blend ranks candidates
  // *backwards*. The feature count is tiny, so a few dozen deterministic
  // epochs converge.
  double n_pos = 0.0;
  for (const double y : ys) n_pos += y;
  const double n = static_cast<double>(xs.size());
  const double n_neg = n - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) return model;  // nothing to separate
  const double pos_weight = n / (2.0 * n_pos);
  const double neg_weight = n / (2.0 * n_neg);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::vector<double> grad(model.weights.size(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double margin = dot(model.weights, xs[i]) + model.bias;
      const double p = 1.0 / (1.0 + std::exp(-margin));
      const double err =
          (p - ys[i]) * (ys[i] > 0.5 ? pos_weight : neg_weight);
      for (std::size_t c = 0; c < grad.size(); ++c) {
        grad[c] += err * xs[i][c];
      }
      grad_bias += err;
    }
    for (std::size_t c = 0; c < grad.size(); ++c) {
      model.weights[c] -= config.learning_rate *
                          (grad[c] / n + config.l2 * model.weights[c]);
    }
    model.bias -= config.learning_rate * grad_bias / n;
  }
  return model;
}

EnsembleResult predict_ensemble(const CsrGraph& graph,
                                const EnsembleConfig& config,
                                const EnsembleModel& model,
                                const gas::ClusterConfig& cluster,
                                ThreadPool* pool) {
  SNAPLE_CHECK(model.weights.size() == config.components.size());
  const auto components = run_components(graph, config, cluster, pool);

  EnsembleResult result;
  result.model = model;
  result.predictions.resize(graph.num_vertices());
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    FeatureMap features = features_for_vertex(components, model.scales, u);
    TopK<VertexId, double> top(config.k);
    for (const auto& [z, f] : features) {
      top.offer(z, dot(model.weights, f));  // bias is rank-invariant
    }
    result.predictions[u] = top.take_items();
  }
  return result;
}

EnsembleResult run_ensemble(const CsrGraph& graph,
                            const EnsembleConfig& config,
                            const gas::ClusterConfig& cluster,
                            ThreadPool* pool) {
  const EnsembleModel model =
      train_ensemble(graph, config, cluster, pool);
  return predict_ensemble(graph, config, model, cluster, pool);
}

}  // namespace snaple
