// QueryEngine — on-demand single-vertex prediction over a PredictorModel.
//
// Serving counterpart of the batch pipeline: where `run_snaple` executes
// step 3 for every vertex in one GAS pass, a QueryEngine executes it for
// just the queried vertex, reading only u's retained paths from the
// model. One query costs O(Σ_{v ∈ Γmax(u)} (|sims(v)| + |hop2(v)|)) —
// roughly klocal² score folds — instead of a whole-graph pass, which is
// what makes million-user request traffic servable (bench_query measures
// the gap; the acceptance bar is ≥100× on the ~1M-edge bench graph).
//
// Results are bit-identical to the batch path: the fold replays the
// engine's canonical machine-grouped order using the model's fit-time
// edge tags (model.hpp explains why), and a property test pins every
// vertex's predictions AND scores against `run_snaple`.
//
// Thread safety: topk() is safe for concurrent callers — scratch state
// (the reused ScoreMaps) is per-thread, the model is immutable. Over a
// DynamicModel the engine reads the versioned rows (lock-free acquire
// loads), so queries keep serving, untorn, while a writer applies
// incremental updates — each query sees every row either pre- or
// post-publish. topk_batch() additionally spreads the queries over a
// ThreadPool.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/scoring.hpp"

namespace snaple {

class DynamicModel;
class ScoreMap;
class ThreadPool;

/// Ranks a folded candidate ScoreMap into the best-first top-k
/// (id, ⊕post score) list — the final stage of every serving topk.
/// Shared by QueryEngine and the sharded serving tier
/// (serve/model_shard.hpp), so both rank with the identical float path.
/// k is clamped to the candidate count; pass the model's configured k
/// for the default serving answer.
[[nodiscard]] std::vector<std::pair<VertexId, float>> rank_candidates(
    const ScoreMap& candidates, const Aggregator& agg, std::size_t k);

class QueryEngine {
 public:
  /// The engine shares ownership of the model: serve threads stay valid
  /// for the engine's lifetime regardless of who built or loaded it.
  explicit QueryEngine(std::shared_ptr<const PredictorModel> model);

  /// Serves over a live DynamicModel instead: reads go through the
  /// model's versioned row pointers, so concurrent add_edge(s) calls on
  /// it are safe and become visible to subsequent queries.
  explicit QueryEngine(std::shared_ptr<const DynamicModel> model);

  /// The static model backing this engine. Valid only for engines built
  /// from a PredictorModel (throws CheckError on a dynamic engine —
  /// there is no frozen artifact to hand out; see dynamic_model()).
  [[nodiscard]] const PredictorModel& model() const;

  /// The live model backing this engine, or null for a static engine.
  [[nodiscard]] const std::shared_ptr<const DynamicModel>& dynamic_model()
      const noexcept {
    return dynamic_;
  }

  /// Vertex count / configuration of whichever model backs the engine.
  [[nodiscard]] VertexId num_vertices() const noexcept;
  [[nodiscard]] const SnapleConfig& config() const noexcept;

  /// Top-k predictions for u with their final ⊕post scores, best first.
  /// k = 0 means the model's configured k. Any k is valid — the candidate
  /// scores are complete before ranking, so k beyond the configured value
  /// simply returns more of the tail. Throws CheckError on u out of
  /// range.
  [[nodiscard]] std::vector<std::pair<VertexId, float>> topk(
      VertexId u, std::size_t k = 0) const;

  /// topk() for a batch of users, spread over `pool` (the default pool
  /// when null). out[i] corresponds to users[i]; duplicate ids are fine.
  [[nodiscard]] std::vector<std::vector<std::pair<VertexId, float>>>
  topk_batch(std::span<const VertexId> users, std::size_t k = 0,
             ThreadPool* pool = nullptr) const;

  /// topk() for every vertex of the model — the batch-predict sugar
  /// (LinkPredictor::predict) and the equivalence property test.
  [[nodiscard]] std::vector<std::vector<std::pair<VertexId, float>>>
  topk_all(std::size_t k = 0, ThreadPool* pool = nullptr) const;

 private:
  // Exactly one of the two is set.
  std::shared_ptr<const PredictorModel> model_;
  std::shared_ptr<const DynamicModel> dynamic_;
  ScoreConfig score_;  // resolved once from the model's config
};

/// Strips the scores off topk_all()/topk_batch() output, yielding the
/// id-only prediction lists the eval metrics and PredictionRun consume.
[[nodiscard]] std::vector<std::vector<VertexId>> prediction_lists(
    const std::vector<std::vector<std::pair<VertexId, float>>>& scored);

}  // namespace snaple
