// PredictorModel — the immutable artifact of SNAPLE's model-building
// steps (1–2, plus 2b for K=3), separated from query serving.
//
// The paper computes predictions for every vertex in one batch pass; a
// production deployment (the ROADMAP's north star) is a query-serving
// workload: build the model offline, answer "who should u follow?" on
// demand. The model owns everything step 3 reads and nothing it does not:
//
//   * Γ̂(u)      — the truncated neighborhood sample (step 1), used as the
//                 already-a-neighbor exclusion filter;
//   * Du.sims   — the klocal retained neighbors with raw similarities
//                 (step 2), each tagged with the machine its edge was
//                 assigned to at fit time (see below);
//   * Du.hop2   — K=3 only: the folded 2-hop candidate scores (step 2b);
//   * the SnapleConfig and a format version stamp.
//
// Per-vertex lists are stored as flattened CSR-style arrays (offsets +
// values), so save/load is a handful of bulk reads/writes — the same
// discipline as graph binary format v2 — and a query reads contiguous
// spans.
//
// Why machine tags? The batch engine folds a vertex's step-3 paths
// grouped by the machine owning each edge (CSR order within a machine,
// machines merged ascending — engine.hpp). Float ⊕pre is not associative,
// so replaying a query bit-identically to the batch run that the property
// tests pin requires regrouping by the same fit-time machine assignment.
// The tags cost one byte per retained neighbor and freeze the exact
// numeric semantics of the run that built the model.
//
// Serialized layout (little-endian, magic "SNAPLEM1"):
//   u32 format version | u32 num_machines | u64 num_vertices
//   config: u64 k | u64 k_local | u64 thr_gamma | u32 score | u32 policy
//           u64 k_hops | u64 seed | f64 alpha | f64 hop2_min_score
//   u64 gamma_count | u64 sims_count | u64 hop2_count
//   gamma_offsets (V+1 × u64) | gamma_ids (u32 …)
//   sims_offsets | sims_ids | sims_scores (f32 …) | sims_machines (u8 …)
//   [K=3 only] hop2_offsets | hop2_ids | hop2_scores
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/snaple_program.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"

namespace snaple {

class DynamicModel;
class ThreadPool;

class PredictorModel {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  PredictorModel() = default;

  /// Assembles a model from the state `run_snaple_fit` harvested.
  /// `graph` must be the graph the fit ran on (retained-edge machine tags
  /// are resolved against its CSR positions); `owned` optionally moves
  /// shared ownership of that graph into the model — queries never touch
  /// the graph, so null is fine and is what a loaded model has.
  [[nodiscard]] static PredictorModel build(
      SnapleConfig config, const CsrGraph& graph,
      const gas::Partitioning& partitioning, SnapleFitData fit,
      std::shared_ptr<const CsrGraph> owned = nullptr,
      ThreadPool* pool = nullptr);

  [[nodiscard]] const SnapleConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  /// Simulated machine count of the fit run (tags are < this).
  [[nodiscard]] std::uint32_t num_machines() const noexcept {
    return num_machines_;
  }
  /// The fit graph, when the model was built with shared ownership;
  /// null after load() or a fit from a plain reference.
  [[nodiscard]] const std::shared_ptr<const CsrGraph>& graph()
      const noexcept {
    return graph_;
  }
  /// Engine accounting of the fit steps. Empty on a loaded model (the
  /// report is runtime metadata, not part of the serialized artifact).
  [[nodiscard]] const gas::EngineReport& fit_report() const noexcept {
    return fit_report_;
  }

  /// Γ̂(u), sorted ascending.
  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices_);
    return {gamma_ids_.data() + gamma_offsets_[u],
            gamma_ids_.data() + gamma_offsets_[u + 1]};
  }

  /// The retained neighbors of u: parallel spans sorted ascending by id.
  struct SimsView {
    std::span<const VertexId> ids;
    std::span<const float> scores;
    std::span<const gas::MachineId> machines;
  };
  [[nodiscard]] SimsView sims(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices_);
    const std::size_t b = sims_offsets_[u];
    const std::size_t e = sims_offsets_[u + 1];
    return {{sims_ids_.data() + b, sims_ids_.data() + e},
            {sims_scores_.data() + b, sims_scores_.data() + e},
            {sims_machines_.data() + b, sims_machines_.data() + e}};
  }

  /// K=3 only: u's folded 2-hop candidates (empty spans for K=2 models).
  struct Hop2View {
    std::span<const VertexId> ids;
    std::span<const float> scores;
  };
  [[nodiscard]] Hop2View hop2(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices_);
    if (hop2_offsets_.empty()) return {};
    const std::size_t b = hop2_offsets_[u];
    const std::size_t e = hop2_offsets_[u + 1];
    return {{hop2_ids_.data() + b, hop2_ids_.data() + e},
            {hop2_scores_.data() + b, hop2_scores_.data() + e}};
  }

  /// Resident bytes of the model arrays (excludes the graph).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// A self-contained copy of the rows of a contiguous vertex range
  /// [begin, end): the same flattened CSR-style arrays as the model,
  /// with offsets rebased so row u lives at index u - begin. This is the
  /// slicing primitive of the sharded serving tier (serve/model_shard.hpp
  /// gives each shard process exactly its range's rows); hop2 arrays are
  /// empty for K=2 models, mirroring the model itself.
  struct RowsSlice {
    VertexId begin = 0;
    VertexId end = 0;
    std::vector<EdgeIndex> gamma_offsets;  // size (end-begin)+1
    std::vector<VertexId> gamma_ids;
    std::vector<EdgeIndex> sims_offsets;
    std::vector<VertexId> sims_ids;
    std::vector<float> sims_scores;
    std::vector<gas::MachineId> sims_machines;
    std::vector<EdgeIndex> hop2_offsets;   // size (end-begin)+1, or empty
    std::vector<VertexId> hop2_ids;
    std::vector<float> hop2_scores;
  };
  [[nodiscard]] RowsSlice slice_rows(VertexId begin, VertexId end) const;

  /// Per-vertex resident bytes of u's rows (ids + scores + tags + the
  /// amortized offset entries) — the weight the serving tier balances
  /// contiguous shard ranges by.
  [[nodiscard]] std::size_t row_bytes(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices_);
    const std::size_t gamma = gamma_offsets_[u + 1] - gamma_offsets_[u];
    const std::size_t sims = sims_offsets_[u + 1] - sims_offsets_[u];
    const std::size_t hop2 =
        hop2_offsets_.empty() ? 0 : hop2_offsets_[u + 1] - hop2_offsets_[u];
    return gamma * sizeof(VertexId) +
           sims * (sizeof(VertexId) + sizeof(float) +
                   sizeof(gas::MachineId)) +
           hop2 * (sizeof(VertexId) + sizeof(float)) +
           (hop2_offsets_.empty() ? 2 : 3) * sizeof(EdgeIndex);
  }

  /// Serializes the model (format above). Throws IoError on write failure.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;

  /// Loads a serialized model, validating the header, array shapes and
  /// every id/tag; throws IoError on bad magic, version mismatch,
  /// truncation or corruption. The loaded model serves queries
  /// immediately (graph() is null, fit_report() empty).
  [[nodiscard]] static PredictorModel load(std::istream& in);
  [[nodiscard]] static PredictorModel load_file(const std::string& path);

  /// Structural equality: config + all arrays (the serialized identity);
  /// the graph pointer and fit report are runtime state and not compared.
  friend bool operator==(const PredictorModel& a, const PredictorModel& b);

 private:
  /// DynamicModel::freeze() assembles a model directly from its current
  /// rows (there is no SnapleFitData or CSR graph to route through
  /// build()).
  friend class DynamicModel;

  SnapleConfig config_;
  std::uint32_t num_machines_ = 1;
  VertexId num_vertices_ = 0;

  std::vector<EdgeIndex> gamma_offsets_;  // size V+1 (0 on empty model)
  std::vector<VertexId> gamma_ids_;
  std::vector<EdgeIndex> sims_offsets_;   // size V+1
  std::vector<VertexId> sims_ids_;
  std::vector<float> sims_scores_;
  std::vector<gas::MachineId> sims_machines_;
  std::vector<EdgeIndex> hop2_offsets_;   // size V+1 for K=3, else empty
  std::vector<VertexId> hop2_ids_;
  std::vector<float> hop2_scores_;

  std::shared_ptr<const CsrGraph> graph_;
  gas::EngineReport fit_report_;
};

}  // namespace snaple
