// DynamicModel — incremental model updates: mutate the served model on
// edge inserts and removals instead of refitting.
//
// A PredictorModel is a frozen snapshot; a follower graph is not. At
// 1B edges a refit of steps 1–2(b) costs seconds to minutes, so a
// serving tier that refits per edge can never stay fresh. The row-level
// dependency structure of Algorithm 2 makes surgical updates possible —
// inserting OR removing the edge (u, v) stales exactly:
//
//   Γ̂(x)    for x = u                    (only u's out-row and degree
//                                         changed; the Bernoulli draw is
//                                         per-edge, rows::edge_uniform);
//   sims(x) for x ∈ {u} ∪ Γ⁻¹(u)         (sim(x, w) reads Γ̂(x), Γ̂(w) and
//                                         |Γ(w)| — only u's changed);
//   hop2(x) for x ∈ S ∪ Γ⁻¹(S),          (the 2b fold of x reads sims(x),
//           S = {u} ∪ Γ⁻¹(u)              Γ̂(x) and sims of x's targets)
//
// — all neighborhood-sized sets, recomputed in microseconds with the
// same row kernels the batch engine runs (core/snaple_rows.hpp) against
// a graph overlay (graph/overlay_graph.hpp). Removals hit the identical
// sets because touching (u, v) only ever changes Γ(u)/|Γ(u)| and
// Γ⁻¹(v) — row_recompute.hpp's header carries the symmetry argument —
// so inserts and removes share one republish tail. bench_update
// measures the gap against the full refit wall.
//
// THE contract (the property test in tests/test_dynamic_model.cpp):
// after any interleaving of add_edge(s) and remove_edge(s), every row
// and every served query — predictions AND float scores — is
// bit-identical to LinkPredictor::fit run from scratch on the live
// (union-minus-tombstones) graph under the same config and the same
// edge placement. Two things make that exact instead of approximate:
//
//   * every recompute replays the engine's canonical machine-grouped
//     fold (CSR order within a machine, machines merged ascending, same
//     float ⊕pre chains — snaple_rows.hpp);
//   * edges are placed by gas::PartitionStrategy::kEdgeLocal, whose
//     machine assignment is a pure hash of the endpoints. The kHash /
//     kGreedy strategies key on CSR edge *positions* or placement
//     history, both of which shift when an edge is inserted — a refit
//     under them would silently re-tag existing edges and the float
//     folds would diverge. The constructor verifies every base-model
//     tag against the rule (single-machine models always pass: every
//     tag is 0 under any strategy).
//
// Concurrency: single writer, any number of readers, no reader locks.
// Each recomputed row is published as an immutable slab behind one
// atomic pointer (release store; readers load-acquire — an RCU-style
// swap). Readers are never torn: a row is either the old slab or the
// new one, never a mix. During a multi-row update a concurrent query
// may observe some rows pre- and some post-insert (row-level, not
// snapshot, isolation); once add_edge(s) returns, every new query
// reflects the insert. Superseded slabs are retired, never freed while
// this object lives — a reader can never chase a dangling pointer, and
// in exchange memory grows with the update count (overlay_bytes()
// reports). To compact a long-lived server, freeze() a snapshot, swap
// serving onto a fresh DynamicModel wrapping it (plus the union
// graph), and discard this one once its readers drain — the RCU grace
// period, moved to an object boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/row_recompute.hpp"
#include "core/snaple_rows.hpp"
#include "graph/overlay_graph.hpp"

namespace snaple {

class DynamicModel {
 public:
  /// What one update touched (sizes of the recomputed row sets).
  struct UpdateStats {
    std::size_t edges = 0;       // operations applied (inserts or removals)
    std::size_t gamma_rows = 0;  // Γ̂ rows republished
    std::size_t sims_rows = 0;   // sims rows republished
    std::size_t hop2_rows = 0;   // hop2 rows republished (K=3 only)
  };

  /// Wraps `base` (fit on `graph`) for incremental updates. The base
  /// model's machine tags must follow gas::edge_local_machine with
  /// `partition_seed` — fit with PartitionStrategy::kEdgeLocal, or any
  /// single-machine fit (verified here; throws CheckError otherwise,
  /// and on a Γrnd policy with K=3, whose hop2 selection shuffles in
  /// accumulator-iteration order that no replay can reproduce).
  /// `partition_seed` defaults to the model config's seed — the seed
  /// LinkPredictor partitions with — so fit-then-wrap works as-is;
  /// pass it explicitly only when the Partitioning was created with a
  /// different seed (e.g. Partitioning::create's own default of 7).
  DynamicModel(std::shared_ptr<const PredictorModel> base,
               std::shared_ptr<const CsrGraph> graph,
               std::optional<std::uint64_t> partition_seed = std::nullopt,
               ThreadPool* pool = nullptr);

  DynamicModel(const DynamicModel&) = delete;
  DynamicModel& operator=(const DynamicModel&) = delete;

  // ---- writer API (one writer at a time; safe against readers) ----

  /// Applies one edge insert and recomputes the stale rows. Throws
  /// CheckError on an out-of-range endpoint, a self-loop, or an edge
  /// already present in the union graph; a throwing call changes
  /// nothing.
  UpdateStats add_edge(VertexId u, VertexId v);

  /// Applies a batch in one pass: all inserts land in the overlay
  /// first, then each stale row is recomputed once — cheaper than
  /// edge-at-a-time when inserts cluster, and bit-identical to it (both
  /// end at the refit-on-union state). The whole batch is validated up
  /// front; a throwing call changes nothing.
  UpdateStats add_edges(std::span<const Edge> batch);

  /// Applies one edge removal and recomputes the stale rows — the same
  /// row families as an insert of the same edge. Throws CheckError on
  /// an out-of-range endpoint, a self-loop, or an edge not present in
  /// the live graph; a throwing call changes nothing.
  UpdateStats remove_edge(VertexId u, VertexId v);

  /// Removes a batch in one pass: all tombstones land in the overlay
  /// first, then each stale row is recomputed once. The whole batch is
  /// validated up front; a throwing call changes nothing.
  UpdateStats remove_edges(std::span<const Edge> batch);

  /// Rebuilds a compact, standalone PredictorModel from the current
  /// rows — bit-identical to a from-scratch fit on the live graph, and
  /// the save/serve artifact for the updated state. Does NOT reclaim
  /// this model's retired slabs (readers may still hold them); see the
  /// header comment for the swap-and-discard compaction pattern. Safe
  /// against concurrent readers; not against a concurrent writer.
  [[nodiscard]] PredictorModel freeze() const;

  // ---- reader API (lock-free; same row shapes as PredictorModel) ----

  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    if (const RowSlab* s =
            gamma_rows_[u].load(std::memory_order_acquire)) {
      return s->ids;
    }
    return base_->gamma_hat(u);
  }

  [[nodiscard]] PredictorModel::SimsView sims(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    if (const RowSlab* s = sims_rows_[u].load(std::memory_order_acquire)) {
      return {s->ids, s->scores, s->machines};
    }
    return base_->sims(u);
  }

  [[nodiscard]] PredictorModel::Hop2View hop2(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    if (hop2_rows_.empty()) return {};  // K=2: no hop2 table at all
    if (const RowSlab* s = hop2_rows_[u].load(std::memory_order_acquire)) {
      return {s->ids, s->scores};
    }
    return base_->hop2(u);
  }

  [[nodiscard]] const SnapleConfig& config() const noexcept {
    return base_->config();
  }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return base_->num_vertices();
  }
  [[nodiscard]] std::uint32_t num_machines() const noexcept {
    return base_->num_machines();
  }
  [[nodiscard]] std::uint64_t partition_seed() const noexcept {
    return partition_seed_;
  }

  /// Total applied operations — inserts plus removals (monotone;
  /// release-published after the last row of an update is visible).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }
  /// Times any of u's rows was republished since construction (0 = the
  /// base model's rows are still current for u).
  [[nodiscard]] std::uint64_t row_version(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return row_version_[u].load(std::memory_order_acquire);
  }

  [[nodiscard]] const PredictorModel& base() const noexcept {
    return *base_;
  }
  /// The live graph (base CSR + delta rows − tombstones). Writer-side
  /// state: do not read concurrently with add_edge(s)/remove_edge(s).
  [[nodiscard]] const OverlayGraph& graph() const noexcept {
    return overlay_;
  }

  /// Bytes held beyond the base model: live + retired row slabs and the
  /// overlay delta rows.
  [[nodiscard]] std::size_t overlay_bytes() const noexcept;

 private:
  /// One immutable published row (core/row_recompute.hpp — shared with
  /// the sharded update plane's per-shard live backend).
  using RowSlab = rows::RowSlab;
  using RowTable = std::vector<std::atomic<const RowSlab*>>;

  void validate_batch(std::span<const Edge> batch) const;
  UpdateStats apply_validated(std::span<const Edge> batch);
  UpdateStats apply_removes_validated(std::span<const Edge> batch);
  /// Shared tail of both writer paths: stale sets against the already
  /// mutated overlay, dependency-ordered republish, version bump.
  UpdateStats republish_stale(std::span<const Edge> batch);

  [[nodiscard]] std::vector<VertexId> compute_gamma_row(VertexId u) const;
  [[nodiscard]] std::unique_ptr<RowSlab> compute_sims_row(VertexId u) const;
  [[nodiscard]] std::unique_ptr<RowSlab> compute_hop2_row(
      VertexId u, rows::PathFoldScratch& scratch) const;

  void publish(RowTable& table, VertexId u, std::unique_ptr<RowSlab> slab);

  std::shared_ptr<const PredictorModel> base_;
  OverlayGraph overlay_;
  std::uint64_t partition_seed_;
  ScoreConfig score_;       // resolved once from the model's config
  bool hop2_skip_zero_;     // rows::hop2_zero_skip, fixed per config

  RowTable gamma_rows_;
  RowTable sims_rows_;
  RowTable hop2_rows_;      // empty vector for K=2 models
  std::unique_ptr<std::atomic<std::uint64_t>[]> row_version_;
  std::atomic<std::uint64_t> version_{0};

  /// Every slab ever published, live or superseded — deferred
  /// reclamation is what lets readers run without locks or epochs.
  std::vector<std::unique_ptr<const RowSlab>> slabs_;
};

}  // namespace snaple
