#include "core/snaple_program.hpp"

#include <algorithm>
#include <utility>

#include "util/rng.hpp"
#include "util/score_map.hpp"
#include "util/top_k.hpp"

namespace snaple {

std::string policy_name(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kMax:
      return "max";
    case SelectionPolicy::kMin:
      return "min";
    case SelectionPolicy::kRandom:
      return "rnd";
  }
  return "?";
}

std::string SnapleConfig::describe() const {
  std::string out = score_name(score);
  out += " k=" + std::to_string(k);
  out += " klocal=";
  out += (k_local == kUnlimited ? "inf" : std::to_string(k_local));
  out += " thr=";
  out += (thr_gamma == kUnlimited ? "inf" : std::to_string(thr_gamma));
  if (policy != SelectionPolicy::kMax) out += " policy=" + policy_name(policy);
  if (k_hops != 2) out += " K=" + std::to_string(k_hops);
  if (hop2_min_score > 0) {
    out += " hop2min=" + std::to_string(hop2_min_score);
  }
  return out;
}

std::size_t snaple_vertex_data_bytes(const SnapleVertexData& d) {
  return sizeof(std::uint32_t) * 4 +               // length prefixes
         d.gamma_hat.size() * sizeof(VertexId) +   // Γ̂ ids
         d.sims.size() * (sizeof(VertexId) + sizeof(float)) +
         d.hop2.size() * (sizeof(VertexId) + sizeof(float)) +
         d.predicted.size() * (sizeof(VertexId) + sizeof(float));
}

namespace {

/// Deterministic per-edge uniform in [0,1) for the step-1 Bernoulli
/// truncation — a gather may not share RNG state across edges, so the
/// "random" draw is a hash of (seed, u, v).
double edge_uniform(std::uint64_t seed, VertexId u, VertexId v) {
  SplitMix64 sm(seed ^ ((static_cast<std::uint64_t>(u) << 32) | v));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

/// Step-2 selection: keeps `k_local` entries of `collected` according to
/// the policy, then orders them by vertex id for binary-search lookup.
void select_k_local(std::vector<std::pair<VertexId, float>>& collected,
                    const SnapleConfig& cfg, VertexId u) {
  if (cfg.k_local != kUnlimited && collected.size() > cfg.k_local) {
    switch (cfg.policy) {
      case SelectionPolicy::kMax:
        std::sort(collected.begin(), collected.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second > b.second;
                    return a.first < b.first;
                  });
        break;
      case SelectionPolicy::kMin:
        std::sort(collected.begin(), collected.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second < b.second;
                    return a.first < b.first;
                  });
        break;
      case SelectionPolicy::kRandom: {
        Rng rng(cfg.seed ^ (0xabcd'ef01'2345'6789ULL + u));
        shuffle(collected, rng);
        break;
      }
    }
    collected.resize(cfg.k_local);
  }
  std::sort(collected.begin(), collected.end());
}

/// Binary search in an id-sorted sims list.
const float* find_sim(const std::vector<std::pair<VertexId, float>>& sims,
                      VertexId v) {
  const auto it = std::lower_bound(
      sims.begin(), sims.end(), v,
      [](const auto& entry, VertexId key) { return entry.first < key; });
  if (it == sims.end() || it->first != v) return nullptr;
  return &it->second;
}

using SnapleEngine = gas::Engine<SnapleVertexData>;

/// Everything the four step definitions need; one per run.
struct StepContext {
  const CsrGraph& graph;
  const SnapleConfig& config;
  const ScoreConfig score;
  const gas::ApplyMode mode;
};

/// Cross-machine partial merge for the ScoreMap steps: fold the other
/// shard's (z, σ, n) triplets with the same ⊕pre the gather uses — the
/// `merge` of Algorithm 2 line 16, now also the wire-level sum.
auto make_merge_scores(const Aggregator agg) {
  return [agg](ScoreMap& into, ScoreMap&& from) {
    from.for_each([&](VertexId z, float sigma, std::uint32_t paths) {
      into.accumulate(z, sigma, paths, [&](float a, float b) {
        return static_cast<float>(agg.pre(a, b));
      });
    });
  };
}

// ---- Step 1: sample Γ̂(u) under the truncation threshold thrΓ. ----
void step_sample(SnapleEngine& engine, const StepContext& ctx) {
  const SnapleConfig& config = ctx.config;
  const CsrGraph& graph = ctx.graph;
  gas::StepOptions opt{.name = "1:sample-neighborhood",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  engine.step<std::vector<VertexId>>(
      opt,
      [&](VertexId u, VertexId v, const SnapleVertexData&,
          const SnapleVertexData&, std::vector<VertexId>& acc)
          -> std::size_t {
        if (config.thr_gamma != kUnlimited) {
          const std::size_t deg = graph.out_degree(u);
          if (deg > config.thr_gamma) {
            const double keep = static_cast<double>(config.thr_gamma) /
                                static_cast<double>(deg);
            if (edge_uniform(config.seed, u, v) > keep) return 0;
          }
        }
        acc.push_back(v);
        return sizeof(VertexId);
      },
      [](VertexId, SnapleVertexData& du, std::vector<VertexId>& acc,
         std::size_t) {
        du.gamma_hat.assign(acc.begin(), acc.end());
        std::sort(du.gamma_hat.begin(), du.gamma_hat.end());
      });
}

// ---- Step 2: raw similarities, keep the klocal best (Γmax). ----
void step_similarities(SnapleEngine& engine, const StepContext& ctx) {
  const SnapleConfig& config = ctx.config;
  gas::StepOptions opt{.name = "2:similarities",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  using SimAcc = std::vector<std::pair<VertexId, float>>;
  engine.step<SimAcc>(
      opt,
      [&](VertexId, VertexId v, const SnapleVertexData& du,
          const SnapleVertexData& dv, SimAcc& acc) -> std::size_t {
        const double s =
            similarity(ctx.score.metric, du.gamma_hat, dv.gamma_hat,
                       ctx.graph.out_degree(v));
        acc.emplace_back(v, static_cast<float>(s));
        return sizeof(VertexId) + sizeof(float);
      },
      [&](VertexId u, SnapleVertexData& du, SimAcc& acc, std::size_t) {
        select_k_local(acc, config, u);
        du.sims.assign(acc.begin(), acc.end());
      });
}

// ---- Step 2b (K=3 only): fold 2-hop scores one hop further. ----
// Each vertex computes its aggregated 2-hop candidate scores (the same
// path-combination/aggregation the final step performs) and keeps the
// klocal best; the final step can then extend them by one more edge —
// the recursive ⊗ fold of the paper's footnote 2. A positive
// config.hop2_min_score drops below-threshold candidates before the
// klocal selection (the K=3 pruning knob; 0 keeps everything).
void step_hop2(SnapleEngine& engine, const StepContext& ctx) {
  const SnapleConfig& config = ctx.config;
  const Combinator comb = ctx.score.combinator;
  const Aggregator agg = ctx.score.aggregator;
  gas::StepOptions opt{.name = "2b:hop2-scores",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  engine.step<ScoreMap>(
      opt,
      [&](VertexId u, VertexId v, const SnapleVertexData& du,
          const SnapleVertexData& dv, ScoreMap& acc) -> std::size_t {
        const float* suv = find_sim(du.sims, v);
        if (suv == nullptr) return 0;
        std::size_t bytes = 0;
        for (const auto& [z, svz] : dv.sims) {
          if (z == u) continue;
          if (std::binary_search(du.gamma_hat.begin(), du.gamma_hat.end(),
                                 z)) {
            continue;
          }
          acc.accumulate(z, static_cast<float>(comb(*suv, svz)), 1,
                         [&](float a, float b) {
                           return static_cast<float>(agg.pre(a, b));
                         });
          bytes += sizeof(VertexId) + sizeof(float) + sizeof(std::uint32_t);
        }
        return bytes;
      },
      make_merge_scores(agg),
      [&](VertexId u, SnapleVertexData& du, ScoreMap& acc, std::size_t) {
        std::vector<std::pair<VertexId, float>> collected;
        acc.for_each([&](VertexId z, float sigma, std::uint32_t n) {
          const auto s = static_cast<float>(agg.post(sigma, n));
          if (config.hop2_min_score > 0 && s < config.hop2_min_score) {
            return;  // pruned: this 2-hop candidate scores too low
          }
          collected.emplace_back(z, s);
        });
        select_k_local(collected, config, u);
        du.hop2.assign(collected.begin(), collected.end());
      });
}

// ---- Step 3: combine (⊗) along paths, aggregate (⊕), rank top-k. ----
void step_recommend(SnapleEngine& engine, const StepContext& ctx) {
  const SnapleConfig& config = ctx.config;
  const Combinator comb = ctx.score.combinator;
  const Aggregator agg = ctx.score.aggregator;
  gas::StepOptions opt{.name = "3:recommend",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  engine.step<ScoreMap>(
      opt,
      [&](VertexId u, VertexId v, const SnapleVertexData& du,
          const SnapleVertexData& dv, ScoreMap& acc) -> std::size_t {
        const float* suv = find_sim(du.sims, v);
        if (suv == nullptr) return 0;  // v ∉ Γmax(u): path not retained
        std::size_t bytes = 0;
        auto fold_candidate = [&](VertexId z, float downstream) {
          if (z == u) return;
          if (std::binary_search(du.gamma_hat.begin(), du.gamma_hat.end(),
                                 z)) {
            return;  // already a neighbor: not a missing-edge candidate
          }
          const double path_sim = comb(*suv, downstream);
          acc.accumulate(z, static_cast<float>(path_sim), 1,
                         [&](float a, float b) {
                           return static_cast<float>(agg.pre(a, b));
                         });
          bytes += sizeof(VertexId) + sizeof(float) + sizeof(std::uint32_t);
        };
        for (const auto& [z, svz] : dv.sims) fold_candidate(z, svz);
        if (config.k_hops == 3) {
          // 3-hop paths u → v → (v's 2-hop candidate z): extend v's
          // folded 2-hop score by the first-hop similarity.
          for (const auto& [z, s2] : dv.hop2) fold_candidate(z, s2);
        }
        return bytes;
      },
      make_merge_scores(agg),
      [&](VertexId, SnapleVertexData& du, ScoreMap& acc, std::size_t) {
        TopK<VertexId, double> top(config.k);
        acc.for_each([&](VertexId z, float sigma, std::uint32_t n) {
          top.offer(z, agg.post(sigma, n));
        });
        du.predicted.clear();
        du.prediction_scores.clear();
        for (const auto& entry : top.take_sorted()) {
          du.predicted.push_back(entry.item);
          du.prediction_scores.push_back(
              static_cast<float>(entry.score));
        }
      });
}

/// Steps 1–2 (and 2b): the model-building half shared by run_snaple and
/// run_snaple_fit.
void run_model_steps(SnapleEngine& engine, const StepContext& ctx) {
  step_sample(engine, ctx);
  step_similarities(engine, ctx);
  if (ctx.config.k_hops == 3) step_hop2(engine, ctx);
}

StepContext make_context(const CsrGraph& graph, const SnapleConfig& config,
                         gas::ApplyMode mode) {
  SNAPLE_CHECK_MSG(config.k_hops == 2 || config.k_hops == 3,
                   "SNAPLE supports K=2 (the paper) and K=3 (footnote 2)");
  return StepContext{graph, config, config.resolve_score(), mode};
}

}  // namespace

SnapleResult run_snaple(const CsrGraph& graph, const SnapleConfig& config,
                        const gas::Partitioning& partitioning,
                        const gas::ClusterConfig& cluster, ThreadPool* pool,
                        gas::ApplyMode mode, gas::ExecutionMode exec,
                        std::shared_ptr<const gas::ShardTopology> topology) {
  const StepContext ctx = make_context(graph, config, mode);
  SnapleEngine engine(graph, partitioning, cluster,
                      &snaple_vertex_data_bytes, pool, exec,
                      std::move(topology));
  run_model_steps(engine, ctx);
  step_recommend(engine, ctx);

  SnapleResult result;
  result.predictions.resize(graph.num_vertices());
  result.scored.resize(graph.num_vertices());
  engine.visit_vertices([&](VertexId u, SnapleVertexData& du) {
    auto& scored = result.scored[u];
    scored.reserve(du.predicted.size());
    for (std::size_t i = 0; i < du.predicted.size(); ++i) {
      scored.emplace_back(du.predicted[i], du.prediction_scores[i]);
    }
    result.predictions[u] = std::move(du.predicted);
  });
  result.report = engine.report();
  return result;
}

SnapleFitData run_snaple_fit(
    const CsrGraph& graph, const SnapleConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool,
    gas::ApplyMode mode, gas::ExecutionMode exec,
    std::shared_ptr<const gas::ShardTopology> topology) {
  const StepContext ctx = make_context(graph, config, mode);
  SnapleEngine engine(graph, partitioning, cluster,
                      &snaple_vertex_data_bytes, pool, exec,
                      std::move(topology));
  run_model_steps(engine, ctx);

  SnapleFitData out;
  out.vertex_data.resize(graph.num_vertices());
  engine.visit_vertices([&](VertexId u, SnapleVertexData& du) {
    out.vertex_data[u] = std::move(du);
  });
  out.report = engine.report();
  return out;
}

}  // namespace snaple
