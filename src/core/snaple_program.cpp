#include "core/snaple_program.hpp"

#include <algorithm>
#include <utility>

#include "core/snaple_rows.hpp"
#include "graph/compressed_csr.hpp"
#include "util/score_map.hpp"
#include "util/top_k.hpp"

namespace snaple {

std::string policy_name(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kMax:
      return "max";
    case SelectionPolicy::kMin:
      return "min";
    case SelectionPolicy::kRandom:
      return "rnd";
  }
  return "?";
}

std::string SnapleConfig::describe() const {
  std::string out = score_name(score);
  out += " k=" + std::to_string(k);
  out += " klocal=";
  out += (k_local == kUnlimited ? "inf" : std::to_string(k_local));
  out += " thr=";
  out += (thr_gamma == kUnlimited ? "inf" : std::to_string(thr_gamma));
  if (policy != SelectionPolicy::kMax) out += " policy=" + policy_name(policy);
  if (k_hops != 2) out += " K=" + std::to_string(k_hops);
  if (hop2_min_score > 0) {
    out += " hop2min=" + std::to_string(hop2_min_score);
  }
  return out;
}

std::size_t snaple_vertex_data_bytes(const SnapleVertexData& d) {
  return sizeof(std::uint32_t) * 4 +               // length prefixes
         d.gamma_hat.size() * sizeof(VertexId) +   // Γ̂ ids
         d.sims.size() * (sizeof(VertexId) + sizeof(float)) +
         d.hop2.size() * (sizeof(VertexId) + sizeof(float)) +
         d.predicted.size() * (sizeof(VertexId) + sizeof(float));
}

namespace {

/// The whole program is templated over the graph representation: flat
/// CsrGraph or CompressedCsrGraph. The step bodies only ever touch
/// out_degree (O(1) on both — degrees live in the offset arrays, never
/// behind a decode), and the engine's gather hands them identical edges
/// in identical order, so the two instantiations are bit-identical in
/// scores and accounting — the tentpole contract, pinned by a test.
template <typename Graph>
using SnapleEngine = gas::Engine<SnapleVertexData, Graph>;

/// Everything the four step definitions need; one per run. The per-row
/// bodies (Bernoulli sampling, klocal selection, the ⊗/⊕pre candidate
/// folds) live in core/snaple_rows.hpp, shared with the serving-side
/// replays — bit-identity between batch and serving depends on it.
template <typename Graph>
struct StepContext {
  const Graph& graph;
  const SnapleConfig& config;
  const ScoreConfig score;
  const gas::ApplyMode mode;
  /// 2b zero-path early exit (rows::hop2_zero_skip): provably exact
  /// under a Sum aggregator with hop2_min_score > 0, off otherwise.
  const bool hop2_skip_zero;
};

/// Cross-machine partial merge for the ScoreMap steps: fold the other
/// shard's (z, σ, n) triplets with the same ⊕pre the gather uses — the
/// `merge` of Algorithm 2 line 16, now also the wire-level sum.
auto make_merge_scores(const Aggregator agg) {
  return [agg](ScoreMap& into, ScoreMap&& from) {
    from.for_each([&](VertexId z, float sigma, std::uint32_t paths) {
      into.accumulate(z, sigma, paths, [&](float a, float b) {
        return static_cast<float>(agg.pre(a, b));
      });
    });
  };
}

// ---- Step 1: sample Γ̂(u) under the truncation threshold thrΓ. ----
template <typename Graph>
void step_sample(SnapleEngine<Graph>& engine, const StepContext<Graph>& ctx) {
  const SnapleConfig& config = ctx.config;
  const Graph& graph = ctx.graph;
  gas::StepOptions opt{.name = "1:sample-neighborhood",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  engine.template step<std::vector<VertexId>>(
      opt,
      [&](VertexId u, VertexId v, const SnapleVertexData&,
          const SnapleVertexData&, std::vector<VertexId>& acc)
          -> std::size_t {
        if (!rows::keep_sampled_edge(config, u, v, graph.out_degree(u))) {
          return 0;
        }
        acc.push_back(v);
        return sizeof(VertexId);
      },
      [](VertexId, SnapleVertexData& du, std::vector<VertexId>& acc,
         std::size_t) {
        du.gamma_hat.assign(acc.begin(), acc.end());
        std::sort(du.gamma_hat.begin(), du.gamma_hat.end());
      });
}

// ---- Step 2: raw similarities, keep the klocal best (Γmax). ----
template <typename Graph>
void step_similarities(SnapleEngine<Graph>& engine,
                       const StepContext<Graph>& ctx) {
  const SnapleConfig& config = ctx.config;
  gas::StepOptions opt{.name = "2:similarities",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  using SimAcc = std::vector<std::pair<VertexId, float>>;
  engine.template step<SimAcc>(
      opt,
      [&](VertexId, VertexId v, const SnapleVertexData& du,
          const SnapleVertexData& dv, SimAcc& acc) -> std::size_t {
        const double s =
            similarity(ctx.score.metric, du.gamma_hat, dv.gamma_hat,
                       ctx.graph.out_degree(v));
        acc.emplace_back(v, static_cast<float>(s));
        return sizeof(VertexId) + sizeof(float);
      },
      [&](VertexId u, SnapleVertexData& du, SimAcc& acc, std::size_t) {
        rows::select_k_local(acc, config, u);
        du.sims.assign(acc.begin(), acc.end());
      });
}

// ---- Step 2b (K=3 only): fold 2-hop scores one hop further. ----
// Each vertex computes its aggregated 2-hop candidate scores (the same
// path-combination/aggregation the final step performs) and keeps the
// klocal best; the final step can then extend them by one more edge —
// the recursive ⊗ fold of the paper's footnote 2. A positive
// config.hop2_min_score drops below-threshold candidates before the
// klocal selection (the K=3 pruning knob; 0 keeps everything), and —
// when provably exact (ctx.hop2_skip_zero) — lets the gather skip
// zero-valued paths, including whole edges, before any candidate work.
template <typename Graph>
void step_hop2(SnapleEngine<Graph>& engine, const StepContext<Graph>& ctx) {
  const SnapleConfig& config = ctx.config;
  const Combinator comb = ctx.score.combinator;
  const Aggregator agg = ctx.score.aggregator;
  const bool skip_zero = ctx.hop2_skip_zero;
  gas::StepOptions opt{.name = "2b:hop2-scores",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  engine.template step<ScoreMap>(
      opt,
      [&](VertexId u, VertexId v, const SnapleVertexData& du,
          const SnapleVertexData& dv, ScoreMap& acc) -> std::size_t {
        const float* suv = rows::find_sim(du.sims, v);
        if (suv == nullptr) return 0;
        return rows::fold_hop2_edge(
            u, std::span<const VertexId>(du.gamma_hat), *suv,
            rows::PairSims{&dv.sims}, comb, skip_zero, acc,
            [&](float a, float b) {
              return static_cast<float>(agg.pre(a, b));
            });
      },
      make_merge_scores(agg),
      [&](VertexId u, SnapleVertexData& du, ScoreMap& acc, std::size_t) {
        std::vector<std::pair<VertexId, float>> collected;
        acc.for_each([&](VertexId z, float sigma, std::uint32_t n) {
          const auto s = static_cast<float>(agg.post(sigma, n));
          if (config.hop2_min_score > 0 && s < config.hop2_min_score) {
            return;  // pruned: this 2-hop candidate scores too low
          }
          collected.emplace_back(z, s);
        });
        rows::select_k_local(collected, config, u);
        du.hop2.assign(collected.begin(), collected.end());
      });
}

// ---- Step 3: combine (⊗) along paths, aggregate (⊕), rank top-k. ----
template <typename Graph>
void step_recommend(SnapleEngine<Graph>& engine,
                    const StepContext<Graph>& ctx) {
  const SnapleConfig& config = ctx.config;
  const Combinator comb = ctx.score.combinator;
  const Aggregator agg = ctx.score.aggregator;
  gas::StepOptions opt{.name = "3:recommend",
                       .dir = gas::EdgeDir::kOut,
                       .mode = ctx.mode};
  engine.template step<ScoreMap>(
      opt,
      [&](VertexId u, VertexId v, const SnapleVertexData& du,
          const SnapleVertexData& dv, ScoreMap& acc) -> std::size_t {
        const float* suv = rows::find_sim(du.sims, v);
        if (suv == nullptr) return 0;  // v ∉ Γmax(u): path not retained
        const std::span<const VertexId> gamma(du.gamma_hat);
        const auto pre = [&](float a, float b) {
          return static_cast<float>(agg.pre(a, b));
        };
        std::size_t bytes =
            rows::fold_path_list(u, gamma, *suv, rows::PairSims{&dv.sims},
                                 comb, /*skip_zero=*/false, acc, pre);
        if (config.k_hops == 3) {
          // 3-hop paths u → v → (v's 2-hop candidate z): extend v's
          // folded 2-hop score by the first-hop similarity.
          bytes += rows::fold_path_list(u, gamma, *suv,
                                        rows::PairSims{&dv.hop2}, comb,
                                        /*skip_zero=*/false, acc, pre);
        }
        return bytes;
      },
      make_merge_scores(agg),
      [&](VertexId, SnapleVertexData& du, ScoreMap& acc, std::size_t) {
        TopK<VertexId, double> top(config.k);
        acc.for_each([&](VertexId z, float sigma, std::uint32_t n) {
          top.offer(z, agg.post(sigma, n));
        });
        du.predicted.clear();
        du.prediction_scores.clear();
        for (const auto& entry : top.take_sorted()) {
          du.predicted.push_back(entry.item);
          du.prediction_scores.push_back(
              static_cast<float>(entry.score));
        }
      });
}

/// Steps 1–2 (and 2b): the model-building half shared by run_snaple and
/// run_snaple_fit.
template <typename Graph>
void run_model_steps(SnapleEngine<Graph>& engine,
                     const StepContext<Graph>& ctx) {
  step_sample(engine, ctx);
  step_similarities(engine, ctx);
  if (ctx.config.k_hops == 3) step_hop2(engine, ctx);
}

template <typename Graph>
StepContext<Graph> make_context(const Graph& graph,
                                const SnapleConfig& config,
                                gas::ApplyMode mode) {
  SNAPLE_CHECK_MSG(config.k_hops == 2 || config.k_hops == 3,
                   "SNAPLE supports K=2 (the paper) and K=3 (footnote 2)");
  ScoreConfig score = config.resolve_score();
  const bool skip = rows::hop2_zero_skip(config, score);
  return StepContext<Graph>{graph, config, std::move(score), mode, skip};
}

template <typename Graph>
SnapleResult run_snaple_impl(
    const Graph& graph, const SnapleConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool,
    gas::ApplyMode mode, gas::ExecutionMode exec,
    std::shared_ptr<const gas::ShardTopology> topology) {
  const StepContext<Graph> ctx = make_context(graph, config, mode);
  SnapleEngine<Graph> engine(graph, partitioning, cluster,
                             &snaple_vertex_data_bytes, pool, exec,
                             std::move(topology));
  run_model_steps(engine, ctx);
  step_recommend(engine, ctx);

  SnapleResult result;
  result.predictions.resize(graph.num_vertices());
  result.scored.resize(graph.num_vertices());
  engine.visit_vertices([&](VertexId u, SnapleVertexData& du) {
    auto& scored = result.scored[u];
    scored.reserve(du.predicted.size());
    for (std::size_t i = 0; i < du.predicted.size(); ++i) {
      scored.emplace_back(du.predicted[i], du.prediction_scores[i]);
    }
    result.predictions[u] = std::move(du.predicted);
  });
  result.report = engine.report();
  return result;
}

}  // namespace

SnapleResult run_snaple(const CsrGraph& graph, const SnapleConfig& config,
                        const gas::Partitioning& partitioning,
                        const gas::ClusterConfig& cluster, ThreadPool* pool,
                        gas::ApplyMode mode, gas::ExecutionMode exec,
                        std::shared_ptr<const gas::ShardTopology> topology) {
  return run_snaple_impl(graph, config, partitioning, cluster, pool, mode,
                         exec, std::move(topology));
}

SnapleResult run_snaple(const CompressedCsrGraph& graph,
                        const SnapleConfig& config,
                        const gas::Partitioning& partitioning,
                        const gas::ClusterConfig& cluster, ThreadPool* pool,
                        gas::ApplyMode mode, gas::ExecutionMode exec,
                        std::shared_ptr<const gas::ShardTopology> topology) {
  return run_snaple_impl(graph, config, partitioning, cluster, pool, mode,
                         exec, std::move(topology));
}

SnapleFitData run_snaple_fit(
    const CsrGraph& graph, const SnapleConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool,
    gas::ApplyMode mode, gas::ExecutionMode exec,
    std::shared_ptr<const gas::ShardTopology> topology) {
  const StepContext<CsrGraph> ctx = make_context(graph, config, mode);
  SnapleEngine<CsrGraph> engine(graph, partitioning, cluster,
                                &snaple_vertex_data_bytes, pool, exec,
                                std::move(topology));
  run_model_steps(engine, ctx);

  SnapleFitData out;
  out.vertex_data.resize(graph.num_vertices());
  engine.visit_vertices([&](VertexId u, SnapleVertexData& du) {
    out.vertex_data[u] = std::move(du);
  });
  out.report = engine.report();
  return out;
}

}  // namespace snaple
