// SNAPLE's link prediction as a three-step GAS program — Algorithm 2.
//
//   Step 1  sample each vertex's neighborhood Γ̂(u), truncated to thrΓ by
//           the paper's Bernoulli trick (line 3): keep v with probability
//           thrΓ/|Γ(u)| — a uniform sample computable edge-locally, which
//           is all a gather may do.
//   Step 2  compute the raw similarity sim(u,v) for every edge from the
//           truncated neighborhoods, then keep the klocal most similar
//           neighbors (Γmax, eq. 11) — or least-similar / random under the
//           Figure-7 control policies.
//   Step 3  for every retained path u → v → z with z ∉ Γ̂(u): combine raw
//           similarities with ⊗ (path-combination, eq. 8), fold the
//           triplets (z, s, n) with ⊕pre, finish with ⊕post
//           (path-aggregation, eq. 9/10), and emit the top-k candidates.
//
// All three steps gather over OUT edges and use no scatter, exactly as the
// paper describes. Every apply only writes fields that no gather of the
// same step reads, so the steps run in the engine's fused mode; the strict
// two-phase mode produces identical predictions (a test asserts this).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple {

class CompressedCsrGraph;

/// Per-vertex program state Du of Algorithm 2.
struct SnapleVertexData {
  /// Γ̂(u): truncated neighborhood sample, sorted ascending (step 1).
  std::vector<VertexId> gamma_hat;
  /// Du.sims: the klocal retained neighbors with their raw similarity,
  /// sorted by vertex id for binary-search lookup (step 2).
  std::vector<std::pair<VertexId, float>> sims;
  /// K=3 only: top-klocal 2-hop candidates with their aggregated scores
  /// (the recursively-folded intermediate of the paper's footnote 2).
  std::vector<std::pair<VertexId, float>> hop2;
  /// Du.predicted: top-k predictions, best first (step 3), with their
  /// final ⊕post scores alongside.
  std::vector<VertexId> predicted;
  std::vector<float> prediction_scores;
};

/// Wire/storage size of a vertex datum (prices mirror sync + memory audit).
[[nodiscard]] std::size_t snaple_vertex_data_bytes(const SnapleVertexData& d);

struct SnapleResult {
  /// predictions[u] = up to k predicted targets for u, best first.
  std::vector<std::vector<VertexId>> predictions;
  /// scored[u] = the same entries with their ⊕post scores — raw material
  /// for rerankers / ensembles (see core/ensemble.hpp).
  std::vector<std::vector<std::pair<VertexId, float>>> scored;
  /// Per-step engine accounting (wall time, simulated time, bytes, memory).
  gas::EngineReport report;
};

/// Runs Algorithm 2 on `graph` over the simulated `cluster` with the given
/// partitioning. Throws gas::ResourceExhausted if a machine's memory
/// budget is exceeded (cluster.machine.memory_bytes > 0). With
/// gas::ExecutionMode::kSharded the three steps run on per-machine graph
/// shards with explicit message exchange; predictions and accounting are
/// bit-identical to flat execution (a property test pins this).
/// `topology` optionally reuses a pre-built shard layout for the given
/// partitioning (built on demand when null).
[[nodiscard]] SnapleResult run_snaple(
    const CsrGraph& graph, const SnapleConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool = nullptr,
    gas::ApplyMode mode = gas::ApplyMode::kFused,
    gas::ExecutionMode exec = gas::ExecutionMode::kFlat,
    std::shared_ptr<const gas::ShardTopology> topology = nullptr);

/// As above over a delta-compressed graph (graph/compressed_csr.hpp) —
/// rows decode into per-thread scratch during the gathers, so the run
/// never inflates the flat adjacency. Predictions, scores AND engine
/// accounting are bit-identical to the flat overload (a property test
/// pins this); only the resident graph footprint differs.
[[nodiscard]] SnapleResult run_snaple(
    const CompressedCsrGraph& graph, const SnapleConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool = nullptr,
    gas::ApplyMode mode = gas::ApplyMode::kFused,
    gas::ExecutionMode exec = gas::ExecutionMode::kFlat,
    std::shared_ptr<const gas::ShardTopology> topology = nullptr);

/// The harvested state of the model-building half of Algorithm 2: steps
/// 1–2 (and 2b for K=3) executed, step 3 NOT run. vertex_data[u] carries
/// Γ̂(u), Du.sims and (K=3) Du.hop2; `predicted` is empty. This is the raw
/// material of core/model.hpp's PredictorModel.
struct SnapleFitData {
  std::vector<SnapleVertexData> vertex_data;
  gas::EngineReport report;
};

/// Runs only steps 1–2 (and 2b for K=3) — everything `run_snaple` does
/// before the per-vertex recommendation step — and harvests the per-vertex
/// program state. Same engine, same accounting, same execution modes; the
/// harvested state is bit-identical to what step 3 of a full batch run
/// would have read (the serving property test pins this transitively).
[[nodiscard]] SnapleFitData run_snaple_fit(
    const CsrGraph& graph, const SnapleConfig& config,
    const gas::Partitioning& partitioning,
    const gas::ClusterConfig& cluster, ThreadPool* pool = nullptr,
    gas::ApplyMode mode = gas::ApplyMode::kFused,
    gas::ExecutionMode exec = gas::ExecutionMode::kFlat,
    std::shared_ptr<const gas::ShardTopology> topology = nullptr);

}  // namespace snaple
