// Single-row recompute entry points over a base+delta union graph —
// the writer-side core shared by core/dynamic_model.cpp (one process
// absorbs every insert) and serve/live_shard.cpp (each serving shard
// absorbs the same insert stream but republishes only its own vertex
// range).
//
// Everything here is a pure function of (union graph, config, seed):
// recomputing the same row twice — or on two different shards — yields
// bit-identical bytes, which is what lets the sharded update plane skip
// any cross-shard coordination beyond delivering the batch itself. The
// float folds replay the batch engine's canonical machine-grouped order
// via core/snaple_rows.hpp, so every recomputed row matches a
// from-scratch fit on the union graph exactly (EXPECT_EQ, not
// EXPECT_NEAR — the repo's standing contract).
//
// The stale-set derivation (see dynamic_model.hpp's header for the
// dependency argument): inserting OR removing (u, v) stales
//
//   Γ̂(x)    for x = u;
//   sims(x) for x ∈ S        = {sources} ∪ Γ⁻¹(sources);
//   hop2(x) for x ∈ S ∪ Γ⁻¹(S)                      (K=3 only)
//
// — all computed against the live graph AFTER the batch landed in the
// overlay. The same sets cover removals because touching (u, v) only
// ever changes Γ(u)/|Γ(u)| and Γ⁻¹(v): Γ̂ rows depend on the owner's
// out-row alone, and sims(x) reads Γ̂ of x's out-neighbors — x loses
// that dependence on u the instant (x, u) leaves the graph, and any
// pre-batch in-neighbor of a source whose edge the batch severed is a
// source of another batch edge itself, so the post-batch Γ⁻¹ walk
// still reaches every stale row (the symmetry argument spelled out in
// docs/SERVING.md). Because the sets depend only on the batch and the
// live graph, every shard computes the same sets from the op stream
// alone (kEdgeLocal machine tags are endpoint-hash-stable, so no
// placement history is needed either) — the property ISSUE 9 calls
// "per-shard stale sets computable".
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/similarity.hpp"
#include "core/snaple_rows.hpp"
#include "graph/overlay_graph.hpp"

namespace snaple::rows {

/// One immutable published row. `scores` is empty for Γ̂ rows;
/// `machines` is populated for sims rows only. Published behind an
/// atomic pointer (RCU-style) by DynamicModel and LiveShard.
struct RowSlab {
  std::vector<VertexId> ids;
  std::vector<float> scores;
  std::vector<gas::MachineId> machines;

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(RowSlab) + ids.capacity() * sizeof(VertexId) +
           scores.capacity() * sizeof(float) +
           machines.capacity() * sizeof(gas::MachineId);
  }
};

/// The stale row sets of one validated insert batch, each sorted
/// ascending and deduplicated. `hop2` stays empty unless requested
/// (K=2 models have no hop2 table).
struct StaleSets {
  std::vector<VertexId> gamma;
  std::vector<VertexId> sims;
  std::vector<VertexId> hop2;
};

/// Validates an insert batch against the union graph: every endpoint in
/// range, no self-loops, no edge already present, no duplicate within
/// the batch. Throws CheckError; a throwing call implies nothing may be
/// applied (all-or-nothing). Deterministic: every shard holding the
/// same union graph accepts or rejects identically, which is what makes
/// the fanned-out batch atomic across shards without a commit protocol.
inline void validate_insert_batch(const OverlayGraph& overlay,
                                  std::span<const Edge> batch) {
  const VertexId n = overlay.num_vertices();
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(batch.size());
  for (const Edge& e : batch) {
    SNAPLE_CHECK_MSG(e.src < n && e.dst < n,
                     "inserted edge (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) +
                         ") is out of range: the model has " +
                         std::to_string(n) + " vertices");
    SNAPLE_CHECK_MSG(e.src != e.dst,
                     "self-loop (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) + ") rejected");
    SNAPLE_CHECK_MSG(!overlay.has_edge(e.src, e.dst),
                     "edge (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) +
                         ") already exists in the union graph");
    SNAPLE_CHECK_MSG(seen.insert(e).second,
                     "edge (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) +
                         ") appears twice in the batch");
  }
}

/// Validates a remove batch against the live graph: every endpoint in
/// range, no self-loops, every edge actually present, no duplicate
/// within the batch. Same deterministic all-or-nothing contract as
/// validate_insert_batch — every shard holding the same live graph
/// accepts or rejects identically.
inline void validate_remove_batch(const OverlayGraph& overlay,
                                  std::span<const Edge> batch) {
  const VertexId n = overlay.num_vertices();
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(batch.size());
  for (const Edge& e : batch) {
    SNAPLE_CHECK_MSG(e.src < n && e.dst < n,
                     "removed edge (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) +
                         ") is out of range: the model has " +
                         std::to_string(n) + " vertices");
    SNAPLE_CHECK_MSG(e.src != e.dst,
                     "self-loop (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) + ") rejected");
    SNAPLE_CHECK_MSG(overlay.has_edge(e.src, e.dst),
                     "edge (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) +
                         ") is not an edge of the live graph");
    SNAPLE_CHECK_MSG(seen.insert(e).second,
                     "edge (" + std::to_string(e.src) + ", " +
                         std::to_string(e.dst) +
                         ") appears twice in the batch");
  }
}

/// Stale sets of `batch` against `overlay`, which must ALREADY contain
/// the batch's effect — inserts landed or removals tombstoned —
/// (in-neighborhoods are taken in the post-batch live graph; see the
/// header comment for why the post-batch walk also covers removals).
[[nodiscard]] inline StaleSets compute_stale_sets(
    const OverlayGraph& overlay, std::span<const Edge> batch,
    bool want_hop2) {
  auto sort_unique = [](std::vector<VertexId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };

  StaleSets sets;
  sets.gamma.reserve(batch.size());
  for (const Edge& e : batch) sets.gamma.push_back(e.src);
  sort_unique(sets.gamma);

  sets.sims = sets.gamma;
  for (const VertexId u : sets.gamma) {
    overlay.for_each_in_neighbor(
        u, [&](VertexId x) { sets.sims.push_back(x); });
  }
  sort_unique(sets.sims);

  if (want_hop2) {
    sets.hop2 = sets.sims;
    for (const VertexId x : sets.sims) {
      overlay.for_each_in_neighbor(
          x, [&](VertexId y) { sets.hop2.push_back(y); });
    }
    sort_unique(sets.hop2);
  }
  return sets;
}

/// Step 1 for one vertex: the per-edge Bernoulli decision over the
/// union out-row. The merged iteration is already ascending, which is
/// the order the engine's apply sorts into.
[[nodiscard]] inline std::vector<VertexId> recompute_gamma_row(
    const SnapleConfig& cfg, const OverlayGraph& overlay, VertexId u) {
  std::vector<VertexId> row;
  const std::size_t deg = overlay.out_degree(u);
  overlay.for_each_out_neighbor(u, [&](VertexId w) {
    if (keep_sampled_edge(cfg, u, w, deg)) row.push_back(w);
  });
  return row;
}

/// Step 2 for one vertex: similarities over the union out-row,
/// collected machine-grouped (ascending machine, ascending target
/// within a machine) exactly as the engine's per-machine partials merge
/// — the order Γrnd's shuffle keys on. `gamma_of(v)` must return the
/// CURRENT Γ̂ row of any vertex (span<const VertexId>) — the caller
/// resolves published/base/on-the-fly rows.
template <typename GammaFn>
[[nodiscard]] std::unique_ptr<RowSlab> recompute_sims_row(
    const SnapleConfig& cfg, const ScoreConfig& score,
    const OverlayGraph& overlay, std::uint32_t machines,
    std::uint64_t partition_seed, VertexId x, GammaFn&& gamma_of) {
  /// An out-edge of x with its insertion-stable machine: the unit the
  /// machine-grouped collection orders by.
  struct SimEntry {
    gas::MachineId machine;
    VertexId target;
    float sim;
  };

  const std::span<const VertexId> gx = gamma_of(x);
  std::vector<SimEntry> entries;
  entries.reserve(overlay.out_degree(x));
  overlay.for_each_out_neighbor(x, [&](VertexId w) {
    const double s = similarity(score.metric, gx, gamma_of(w),
                                overlay.out_degree(w));
    entries.push_back({gas::edge_local_machine(x, w, machines,
                                               partition_seed),
                       w, static_cast<float>(s)});
  });
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SimEntry& a, const SimEntry& b) {
                     return a.machine < b.machine;
                   });

  std::vector<std::pair<VertexId, float>> collected;
  collected.reserve(entries.size());
  for (const SimEntry& e : entries) collected.emplace_back(e.target, e.sim);
  select_k_local(collected, cfg, x);

  auto slab = std::make_unique<RowSlab>();
  slab->ids.reserve(collected.size());
  slab->scores.reserve(collected.size());
  slab->machines.reserve(collected.size());
  for (const auto& [w, s] : collected) {
    slab->ids.push_back(w);
    slab->scores.push_back(s);
    slab->machines.push_back(
        gas::edge_local_machine(x, w, machines, partition_seed));
  }
  return slab;
}

/// Step 2b for one vertex: the machine-grouped path fold over CURRENT
/// sims rows, then the threshold filter and klocal selection of the
/// engine's apply. `Model` is the fold_vertex_paths row source — its
/// sims(v) must already reflect the batch (dependency order is the
/// caller's job); its hop2() is never read by the kHop2 fold.
template <typename Model>
[[nodiscard]] std::unique_ptr<RowSlab> recompute_hop2_row(
    const Model& model, const ScoreConfig& score, bool zero_skip,
    VertexId x, PathFoldScratch& scratch) {
  fold_vertex_paths(model, score, x, PathFold::kHop2, zero_skip, scratch);
  const SnapleConfig& cfg = model.config();
  const Aggregator agg = score.aggregator;
  std::vector<std::pair<VertexId, float>> collected;
  scratch.merged.for_each([&](VertexId z, float sigma, std::uint32_t n) {
    const auto s = static_cast<float>(agg.post(sigma, n));
    if (cfg.hop2_min_score > 0 && s < cfg.hop2_min_score) {
      return;  // pruned: this 2-hop candidate scores too low
    }
    collected.emplace_back(z, s);
  });
  select_k_local(collected, cfg, x);

  auto slab = std::make_unique<RowSlab>();
  slab->ids.reserve(collected.size());
  slab->scores.reserve(collected.size());
  for (const auto& [z, s] : collected) {
    slab->ids.push_back(z);
    slab->scores.push_back(s);
  }
  return slab;
}

}  // namespace snaple::rows
