// SNAPLE run configuration (the knobs of Algorithm 2 and §5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "core/scoring.hpp"

namespace snaple {

/// How step 2 picks the klocal neighbors to keep (Figure 7):
/// Γmax keeps the most similar, Γmin the least similar (a control),
/// Γrnd a uniform sample.
enum class SelectionPolicy { kMax, kMin, kRandom };

[[nodiscard]] std::string policy_name(SelectionPolicy policy);

/// "No limit" value for thr_gamma / k_local (the paper's ∞ rows).
inline constexpr std::size_t kUnlimited =
    std::numeric_limits<std::size_t>::max();

struct SnapleConfig {
  /// Number of predictions returned per vertex (the paper fixes k = 5).
  std::size_t k = 5;

  /// Sampling parameter klocal: only the klocal most similar neighbors
  /// anchor 2-hop paths (eq. 11). The paper's main cost/quality knob.
  std::size_t k_local = 20;

  /// Truncation threshold thrΓ: neighborhood samples are capped at this
  /// size in step 1 (default 200, as in §5.2).
  std::size_t thr_gamma = 200;

  /// Scoring method (Table 3) and the linear combinator's α.
  ScoreKind score = ScoreKind::kLinearSum;
  double alpha = 0.9;

  /// Neighbor-selection policy for step 2 (Γmax in the paper; min/rnd are
  /// the Figure-7 controls).
  SelectionPolicy policy = SelectionPolicy::kMax;

  /// Path length K of eq. (2). The paper evaluates K=2; K=3 implements
  /// its §3.1 footnote ("extended to longer paths by recursively applying
  /// ⊗"): an extra GAS step folds each retained neighbor's 2-hop scores
  /// one hop further, and the final aggregation covers paths of length 2
  /// AND 3. Costs roughly 3× the K=2 run.
  std::size_t k_hops = 2;

  /// K=3 only: candidates whose aggregated 2-hop score falls below this
  /// threshold are dropped in step 2b *before* the klocal selection —
  /// the ROADMAP "K=3 cost" pruning knob. 0 (the default) disables
  /// pruning and is bit-identical to the unpruned pipeline. Under the
  /// default Γmax policy a positive threshold only ever removes
  /// below-threshold 2-hop candidates (tests pin the exact filter);
  /// under the Γmin/Γrnd control policies the selection runs over the
  /// pruned pool, so the retained set is not a subset of the unpruned
  /// one.
  double hop2_min_score = 0.0;

  /// Seed for the Bernoulli truncation of step 1 and the Γrnd policy.
  std::uint64_t seed = 1;

  [[nodiscard]] ScoreConfig resolve_score() const {
    return score_config(score, alpha);
  }

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const SnapleConfig&, const SnapleConfig&) = default;
};

}  // namespace snaple
