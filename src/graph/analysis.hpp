// Structural graph analysis: clustering, components, traversal.
//
// The paper's key premise for the 2-hop candidate restriction is that
// "social graphs, and field graphs in general, tend to present high
// clustering coefficients" (§2.2) — clustering_coefficient() lets tests
// and benches verify our synthetic replicas actually have that property.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace snaple {

/// Average local clustering coefficient, estimated on `samples` random
/// vertices with out-degree >= 2 (exact when samples >= |V|). Treats the
/// graph as directed: C(u) = |edges among Γ(u)| / (|Γ(u)|·(|Γ(u)|-1)).
[[nodiscard]] double clustering_coefficient(const CsrGraph& g,
                                            std::size_t samples,
                                            std::uint64_t seed);

/// Weakly-connected component label per vertex (labels are the smallest
/// vertex id in the component).
[[nodiscard]] std::vector<VertexId> weakly_connected_components(
    const CsrGraph& g);

[[nodiscard]] std::size_t count_components(
    const std::vector<VertexId>& labels);

/// BFS distance from `source` following out-edges; unreachable vertices
/// get SIZE_MAX.
[[nodiscard]] std::vector<std::size_t> bfs_distances(const CsrGraph& g,
                                                     VertexId source);

/// Number of distinct vertices reachable in exactly <= 2 hops, excluding u
/// and Γ(u) — the size of the candidate set Γ²(u)\Γ(u) that BASELINE must
/// score (used to explain its cost in tests/benches).
[[nodiscard]] std::size_t two_hop_candidate_count(const CsrGraph& g,
                                                  VertexId u);

/// Exact triangle count for a symmetric graph (reference for the GAS
/// triangle program): triples {a,b,c} with all six directed edges.
[[nodiscard]] std::uint64_t count_triangles_reference(const CsrGraph& g);

}  // namespace snaple
