#include "graph/csr_graph.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/thread_pool.hpp"

namespace snaple {

namespace {

/// Offset-array shape checks: size V+1, starts at 0, monotone, ends at E.
void check_offsets(const std::vector<EdgeIndex>& offsets,
                   std::size_t num_values, const char* what) {
  SNAPLE_CHECK_MSG(!offsets.empty(), std::string(what) + " offsets empty");
  SNAPLE_CHECK_MSG(offsets.front() == 0,
                   std::string(what) + " offsets must start at 0");
  for (std::size_t u = 0; u + 1 < offsets.size(); ++u) {
    SNAPLE_CHECK_MSG(offsets[u] <= offsets[u + 1],
                     std::string(what) + " offsets must be monotone");
  }
  SNAPLE_CHECK_MSG(offsets.back() == num_values,
                   std::string(what) + " offsets must end at the edge count");
}

/// Parallel per-row check: ids in range, rows strictly ascending (sorted,
/// deduplicated) — the invariants binary-search lookups depend on.
void check_rows(ThreadPool& pool, const std::vector<EdgeIndex>& offsets,
                const std::vector<VertexId>& values, VertexId num_vertices,
                const char* what) {
  std::atomic<bool> bad{false};
  pool.parallel_blocks(
      0, offsets.size() - 1,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          for (EdgeIndex i = offsets[u]; i < offsets[u + 1]; ++i) {
            if (values[i] >= num_vertices ||
                (i > offsets[u] && values[i - 1] >= values[i])) {
              bad.store(true, std::memory_order_relaxed);
              return;
            }
          }
        }
      },
      /*min_block=*/4096);
  SNAPLE_CHECK_MSG(!bad.load(),
                   std::string(what) +
                       " rows must hold in-range, strictly ascending ids");
}

}  // namespace

CsrGraph CsrGraph::from_parts(std::vector<EdgeIndex> out_offsets,
                              std::vector<VertexId> out_targets,
                              std::vector<EdgeIndex> in_offsets,
                              std::vector<VertexId> in_sources,
                              ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  check_offsets(out_offsets, out_targets.size(), "out");
  check_offsets(in_offsets, in_sources.size(), "in");
  SNAPLE_CHECK_MSG(out_offsets.size() == in_offsets.size(),
                   "out/in offset arrays must describe the same vertex set");
  SNAPLE_CHECK_MSG(out_targets.size() == in_sources.size(),
                   "out/in adjacency must hold the same edge count");
  const auto n = static_cast<VertexId>(out_offsets.size() - 1);
  check_rows(tp, out_offsets, out_targets, n, "out");
  check_rows(tp, in_offsets, in_sources, n, "in");
  // Transpose consistency: the multiset of directed edges read off the
  // in-CSR must equal the out-CSR's. Compared via a commutative sum of
  // per-edge hashes — one streaming O(E) pass per side instead of a
  // binary search per edge, so it costs far less than the bulk read it
  // guards — which catches any content mismatch with ~2^-64 failure odds
  // (corruption detection, not a cryptographic commitment).
  {
    std::atomic<std::uint64_t> out_sum{0};
    std::atomic<std::uint64_t> in_sum{0};
    const auto hash_side = [&tp, n](const std::vector<EdgeIndex>& offsets,
                                    const std::vector<VertexId>& values,
                                    bool values_are_sources,
                                    std::atomic<std::uint64_t>& sum) {
      tp.parallel_blocks(
          0, n,
          [&](std::size_t ub, std::size_t ue, std::size_t) {
            std::uint64_t local = 0;
            for (std::size_t u = ub; u < ue; ++u) {
              for (EdgeIndex i = offsets[u]; i < offsets[u + 1]; ++i) {
                const auto w = static_cast<VertexId>(u);
                const Edge e = values_are_sources ? Edge{values[i], w}
                                                  : Edge{w, values[i]};
                local += EdgeHash{}(e);
              }
            }
            sum.fetch_add(local, std::memory_order_relaxed);
          },
          /*min_block=*/2048);
    };
    hash_side(out_offsets, out_targets, /*values_are_sources=*/false,
              out_sum);
    hash_side(in_offsets, in_sources, /*values_are_sources=*/true, in_sum);
    SNAPLE_CHECK_MSG(out_sum.load() == in_sum.load(),
                     "in-adjacency is not the transpose of out-adjacency");
  }
  CsrGraph g;
  g.out_offsets_ = std::move(out_offsets);
  g.out_targets_ = std::move(out_targets);
  g.in_offsets_ = std::move(in_offsets);
  g.in_sources_ = std::move(in_sources);
  return g;
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeIndex CsrGraph::edge_index(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return num_edges();
  return out_offsets_[u] + static_cast<EdgeIndex>(it - nbrs.begin());
}

VertexId CsrGraph::edge_source(EdgeIndex e) const {
  SNAPLE_DCHECK(e < num_edges());
  // First offset strictly greater than e, minus one row.
  const auto it =
      std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<VertexId>(it - out_offsets_.begin() - 1);
}

std::vector<Edge> CsrGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : out_neighbors(u)) out.push_back({u, v});
  }
  return out;
}

}  // namespace snaple
