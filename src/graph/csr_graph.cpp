#include "graph/csr_graph.hpp"

#include <algorithm>

namespace snaple {

bool CsrGraph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeIndex CsrGraph::edge_index(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return num_edges();
  return out_offsets_[u] + static_cast<EdgeIndex>(it - nbrs.begin());
}

VertexId CsrGraph::edge_source(EdgeIndex e) const {
  SNAPLE_DCHECK(e < num_edges());
  // First offset strictly greater than e, minus one row.
  const auto it =
      std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<VertexId>(it - out_offsets_.begin() - 1);
}

std::vector<Edge> CsrGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : out_neighbors(u)) out.push_back({u, v});
  }
  return out;
}

}  // namespace snaple
