#include "graph/overlay_graph.hpp"

#include <algorithm>
#include <string>

namespace snaple {

bool OverlayGraph::contains(const DeltaMap& map, VertexId u, VertexId v) {
  const auto it = map.find(u);
  if (it == map.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), v);
}

void OverlayGraph::sorted_insert(DeltaMap& map, VertexId u, VertexId v) {
  auto& row = map[u];
  row.insert(std::upper_bound(row.begin(), row.end(), v), v);
}

void OverlayGraph::sorted_erase(DeltaMap& map, VertexId u, VertexId v) {
  const auto it = map.find(u);
  SNAPLE_CHECK(it != map.end());
  auto& row = it->second;
  const auto pos = std::lower_bound(row.begin(), row.end(), v);
  SNAPLE_CHECK(pos != row.end() && *pos == v);
  row.erase(pos);
  if (row.empty()) map.erase(it);
}

void OverlayGraph::check_endpoints(VertexId u, VertexId v,
                                   const char* verb) const {
  const VertexId n = base_->num_vertices();
  SNAPLE_CHECK_MSG(u < n && v < n,
                   std::string(verb) + " edge (" + std::to_string(u) + ", " +
                       std::to_string(v) +
                       ") is out of range: the graph has " +
                       std::to_string(n) +
                       " vertices and the overlay cannot grow the "
                       "vertex set");
  SNAPLE_CHECK_MSG(u != v, "self-loop (" + std::to_string(u) + ", " +
                               std::to_string(u) +
                               ") rejected: a vertex is never its own "
                               "link-prediction candidate");
}

bool OverlayGraph::insert(VertexId u, VertexId v) {
  check_endpoints(u, v, "inserted");
  if (has_edge(u, v)) return false;

  if (contains(out_tomb_, u, v)) {
    // Re-adding a tombstoned base edge: clear the tombstone so the
    // base row shows through again (keeps delta ∩ base = ∅).
    sorted_erase(out_tomb_, u, v);
    sorted_erase(in_tomb_, v, u);
    --removed_;
    return true;
  }
  sorted_insert(out_delta_, u, v);
  sorted_insert(in_delta_, v, u);
  ++inserted_;
  return true;
}

bool OverlayGraph::remove(VertexId u, VertexId v) {
  check_endpoints(u, v, "removed");
  if (!has_edge(u, v)) return false;

  if (contains(out_delta_, u, v)) {
    // A live-inserted edge just disappears from the delta.
    sorted_erase(out_delta_, u, v);
    sorted_erase(in_delta_, v, u);
    --inserted_;
    return true;
  }
  // A base edge is masked by a tombstone (tombstones ⊆ base).
  sorted_insert(out_tomb_, u, v);
  sorted_insert(in_tomb_, v, u);
  ++removed_;
  return true;
}

std::size_t OverlayGraph::memory_bytes() const noexcept {
  // Rough: delta/tombstone ids + one bucket record per touched vertex.
  constexpr std::size_t kPerRow =
      sizeof(VertexId) + sizeof(void*) + sizeof(std::vector<VertexId>);
  std::size_t bytes = 0;
  for (const DeltaMap* map : {&out_delta_, &in_delta_, &out_tomb_, &in_tomb_}) {
    bytes += map->size() * kPerRow;
    for (const auto& [u, row] : *map) {
      (void)u;
      bytes += row.capacity() * sizeof(VertexId);
    }
  }
  return bytes;
}

}  // namespace snaple
