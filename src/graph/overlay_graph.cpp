#include "graph/overlay_graph.hpp"

#include <algorithm>

namespace snaple {

bool OverlayGraph::contains(const DeltaMap& map, VertexId u, VertexId v) {
  const auto it = map.find(u);
  if (it == map.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), v);
}

bool OverlayGraph::insert(VertexId u, VertexId v) {
  const VertexId n = base_->num_vertices();
  SNAPLE_CHECK_MSG(u < n && v < n,
                   "inserted edge (" + std::to_string(u) + ", " +
                       std::to_string(v) +
                       ") is out of range: the graph has " +
                       std::to_string(n) +
                       " vertices and the overlay cannot grow the "
                       "vertex set");
  SNAPLE_CHECK_MSG(u != v, "self-loop (" + std::to_string(u) + ", " +
                               std::to_string(u) +
                               ") rejected: a vertex is never its own "
                               "link-prediction candidate");
  if (has_edge(u, v)) return false;

  auto sorted_insert = [](std::vector<VertexId>& row, VertexId id) {
    row.insert(std::upper_bound(row.begin(), row.end(), id), id);
  };
  sorted_insert(out_delta_[u], v);
  sorted_insert(in_delta_[v], u);
  ++inserted_;
  return true;
}

std::size_t OverlayGraph::memory_bytes() const noexcept {
  // Rough: delta ids + one bucket record per touched vertex.
  constexpr std::size_t kPerRow =
      sizeof(VertexId) + sizeof(void*) + sizeof(std::vector<VertexId>);
  std::size_t bytes = (out_delta_.size() + in_delta_.size()) * kPerRow;
  for (const auto& [u, row] : out_delta_) {
    (void)u;
    bytes += row.capacity() * sizeof(VertexId);
  }
  for (const auto& [u, row] : in_delta_) {
    (void)u;
    bytes += row.capacity() * sizeof(VertexId);
  }
  return bytes;
}

}  // namespace snaple
