#include "graph/compressed_csr.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <string>
#include <utility>

#include "util/thread_pool.hpp"

namespace snaple {

namespace {

constexpr std::size_t kBlockSize = CompressedAdjacency::kBlockSize;
constexpr std::uint32_t kRowInit = CompressedAdjacency::kRowInit;

/// Packed size of one row: per block, 1 width byte + the packed fields.
std::uint64_t encoded_row_bytes(std::span<const VertexId> row) {
  std::uint64_t total = 0;
  std::uint32_t prev = kRowInit;
  std::size_t i = 0;
  while (i < row.size()) {
    const std::size_t cnt = std::min(kBlockSize, row.size() - i);
    std::uint32_t all_fields = 0;  // OR has the same bit width as the max
    for (std::size_t j = 0; j < cnt; ++j) {
      all_fields |= row[i + j] - prev - 1;  // u32 wrap: first field = id
      prev = row[i + j];
    }
    const unsigned width = static_cast<unsigned>(std::bit_width(all_fields));
    total += 1 + (cnt * width + 7) / 8;
    i += cnt;
  }
  return total;
}

/// Writes one row at `out` (exactly encoded_row_bytes(row) bytes).
void encode_row(std::span<const VertexId> row, std::uint8_t* out) {
  std::uint32_t prev = kRowInit;
  std::size_t i = 0;
  while (i < row.size()) {
    const std::size_t cnt = std::min(kBlockSize, row.size() - i);
    std::uint32_t all_fields = 0;
    std::uint32_t scan = prev;
    for (std::size_t j = 0; j < cnt; ++j) {
      all_fields |= row[i + j] - scan - 1;
      scan = row[i + j];
    }
    const auto width = static_cast<unsigned>(std::bit_width(all_fields));
    *out++ = static_cast<std::uint8_t>(width);
    std::uint64_t bitbuf = 0;
    unsigned nbits = 0;
    for (std::size_t j = 0; j < cnt; ++j) {
      const std::uint32_t field = row[i + j] - prev - 1;
      prev = row[i + j];
      bitbuf |= static_cast<std::uint64_t>(field) << nbits;
      nbits += width;
      while (nbits >= 8) {
        *out++ = static_cast<std::uint8_t>(bitbuf);
        bitbuf >>= 8;
        nbits -= 8;
      }
    }
    if (nbits > 0) *out++ = static_cast<std::uint8_t>(bitbuf);
    i += cnt;
  }
}

[[noreturn]] void fail(const char* what, const std::string& msg) {
  throw CheckError(std::string(what) + " " + msg);
}

/// Structural checks + the parallel decode walk of one side: offsets
/// shaped like CsrGraph's, every block width ≤ 32, every row consuming
/// exactly its byte span, ids strictly ascending and < n with no u32
/// wraparound. Accumulates the side's commutative edge-hash sum for the
/// transpose comparison (same scheme as CsrGraph::from_parts).
void check_side(ThreadPool& tp, const CompressedAdjacency& adj, VertexId n,
                bool values_are_sources, const char* what,
                std::atomic<std::uint64_t>& hash_sum) {
  if (adj.offsets.empty()) fail(what, "offsets empty");
  if (adj.offsets.front() != 0) fail(what, "offsets must start at 0");
  if (adj.offsets.size() != adj.byte_offsets.size()) {
    fail(what, "offsets and byte_offsets must have the same length");
  }
  if (adj.byte_offsets.front() != 0) {
    fail(what, "byte offsets must start at 0");
  }
  for (std::size_t u = 0; u + 1 < adj.offsets.size(); ++u) {
    if (adj.offsets[u] > adj.offsets[u + 1]) {
      fail(what, "offsets must be monotone");
    }
    if (adj.byte_offsets[u] > adj.byte_offsets[u + 1]) {
      fail(what, "byte offsets must be monotone");
    }
  }
  if (adj.bytes.size() < adj.byte_offsets.back() + simd::kDecodeSlack) {
    fail(what, "payload shorter than the byte offsets require");
  }

  std::atomic<bool> bad{false};
  tp.parallel_blocks(
      0, adj.offsets.size() - 1,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        std::uint64_t local_hash = 0;
        for (std::size_t u = ub; u < ue; ++u) {
          const std::size_t degree = adj.degree(static_cast<VertexId>(u));
          const std::uint8_t* p = adj.bytes.data() + adj.byte_offsets[u];
          const std::uint8_t* row_end =
              adj.bytes.data() + adj.byte_offsets[u + 1];
          // Walk the blocks with a 64-bit accumulator: any field that
          // would wrap u32 or reach an id ≥ n is corruption.
          std::uint64_t acc = 0;
          bool first = true;
          std::size_t done = 0;
          while (done < degree) {
            if (p >= row_end) {
              bad.store(true, std::memory_order_relaxed);
              return;
            }
            const unsigned width = *p++;
            const auto cnt = std::min(kBlockSize, degree - done);
            const std::size_t block_bytes = (cnt * width + 7) / 8;
            if (width > 32 ||
                static_cast<std::size_t>(row_end - p) < block_bytes) {
              bad.store(true, std::memory_order_relaxed);
              return;
            }
            const std::uint64_t mask =
                width >= 32 ? 0xffffffffULL
                            : ((std::uint64_t{1} << width) - 1);
            std::uint64_t bitpos = 0;
            for (std::size_t j = 0; j < cnt; ++j, bitpos += width) {
              std::uint64_t w;
              std::memcpy(&w, p + (bitpos >> 3), sizeof(w));
              const std::uint64_t field = (w >> (bitpos & 7)) & mask;
              const std::uint64_t value = first ? field : acc + 1 + field;
              if (value >= n) {
                bad.store(true, std::memory_order_relaxed);
                return;
              }
              acc = value;
              first = false;
              const auto v = static_cast<VertexId>(value);
              const auto w32 = static_cast<VertexId>(u);
              const Edge e =
                  values_are_sources ? Edge{v, w32} : Edge{w32, v};
              local_hash += EdgeHash{}(e);
            }
            p += block_bytes;
            done += cnt;
          }
          if (p != row_end) {  // trailing bytes the degree cannot explain
            bad.store(true, std::memory_order_relaxed);
            return;
          }
        }
        hash_sum.fetch_add(local_hash, std::memory_order_relaxed);
      },
      /*min_block=*/2048);
  if (bad.load()) {
    fail(what,
         "rows must decode to in-range, strictly ascending ids within "
         "their exact byte span");
  }
}

}  // namespace

CompressedAdjacency CompressedAdjacency::encode_serial(
    std::span<const EdgeIndex> offsets, std::span<const VertexId> values) {
  CompressedAdjacency adj;
  if (offsets.empty()) return adj;
  const std::size_t n = offsets.size() - 1;
  adj.offsets.assign(offsets.begin(), offsets.end());
  adj.byte_offsets.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    adj.byte_offsets[u + 1] =
        adj.byte_offsets[u] +
        encoded_row_bytes(
            values.subspan(offsets[u], offsets[u + 1] - offsets[u]));
  }
  adj.bytes.assign(adj.byte_offsets.back() + simd::kDecodeSlack, 0);
  for (std::size_t u = 0; u < n; ++u) {
    encode_row(values.subspan(offsets[u], offsets[u + 1] - offsets[u]),
               adj.bytes.data() + adj.byte_offsets[u]);
  }
  return adj;
}

CompressedAdjacency CompressedAdjacency::encode(
    std::span<const EdgeIndex> offsets, std::span<const VertexId> values,
    ThreadPool* pool) {
  CompressedAdjacency adj;
  if (offsets.empty()) return adj;
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  const std::size_t n = offsets.size() - 1;
  adj.offsets.assign(offsets.begin(), offsets.end());
  adj.byte_offsets.assign(n + 1, 0);

  // Pass 1: per-row packed sizes, written shifted by one so the prefix
  // sum below turns them into byte offsets in place.
  tp.parallel_blocks(
      0, n,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          adj.byte_offsets[u + 1] = encoded_row_bytes(
              values.subspan(offsets[u], offsets[u + 1] - offsets[u]));
        }
      },
      /*min_block=*/4096);
  for (std::size_t u = 1; u <= n; ++u) {
    adj.byte_offsets[u] += adj.byte_offsets[u - 1];
  }

  // Pass 2: pack every row into its slot (plus the SIMD over-read pad).
  adj.bytes.assign(adj.byte_offsets.back() + simd::kDecodeSlack, 0);
  tp.parallel_blocks(
      0, n,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          encode_row(
              values.subspan(offsets[u], offsets[u + 1] - offsets[u]),
              adj.bytes.data() + adj.byte_offsets[u]);
        }
      },
      /*min_block=*/4096);
  return adj;
}

void CompressedAdjacency::decode_row(VertexId u, VertexId* out) const {
  const std::size_t degree = this->degree(u);
  const std::uint8_t* p = bytes.data() + byte_offsets[u];
  const simd::UnpackFn unpack = simd::unpack_kernel();
  std::uint32_t prev = kRowInit;
  std::size_t done = 0;
  while (done < degree) {
    const auto cnt =
        static_cast<std::uint32_t>(std::min(kBlockSize, degree - done));
    const unsigned width = *p++;
    prev = unpack(p, width, cnt, prev, out + done);
    p += (static_cast<std::size_t>(cnt) * width + 7) / 8;
    done += cnt;
  }
}

CompressedCsrGraph CompressedCsrGraph::from_graph(const CsrGraph& g,
                                                  ThreadPool* pool) {
  CompressedCsrGraph c;
  c.out_ = CompressedAdjacency::encode(g.out_offsets(), g.out_targets(), pool);
  c.in_ = CompressedAdjacency::encode(g.in_offsets(), g.in_sources(), pool);
  return c;
}

CompressedCsrGraph CompressedCsrGraph::from_parts(CompressedAdjacency out,
                                                  CompressedAdjacency in,
                                                  ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  SNAPLE_CHECK_MSG(out.offsets.size() == in.offsets.size(),
                   "out/in offset arrays must describe the same vertex set");
  if (out.offsets.empty()) return {};  // default-constructed graph
  SNAPLE_CHECK_MSG(out.offsets.back() == in.offsets.back(),
                   "out/in adjacency must hold the same edge count");
  const auto n = static_cast<VertexId>(out.offsets.size() - 1);
  std::atomic<std::uint64_t> out_sum{0};
  std::atomic<std::uint64_t> in_sum{0};
  check_side(tp, out, n, /*values_are_sources=*/false, "out", out_sum);
  check_side(tp, in, n, /*values_are_sources=*/true, "in", in_sum);
  SNAPLE_CHECK_MSG(out_sum.load() == in_sum.load(),
                   "in-adjacency is not the transpose of out-adjacency");
  CompressedCsrGraph c;
  c.out_ = std::move(out);
  c.in_ = std::move(in);
  return c;
}

CsrGraph CompressedCsrGraph::decompress(ThreadPool* pool) const {
  if (out_.offsets.empty()) return {};
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  const VertexId n = num_vertices();
  std::vector<EdgeIndex> out_offsets(out_.offsets);
  std::vector<EdgeIndex> in_offsets(in_.offsets);
  std::vector<VertexId> out_targets(out_.offsets.back());
  std::vector<VertexId> in_sources(in_.offsets.back());
  const auto inflate = [&tp, n](const CompressedAdjacency& adj,
                                std::vector<VertexId>& values) {
    tp.parallel_blocks(
        0, n,
        [&](std::size_t ub, std::size_t ue, std::size_t) {
          for (std::size_t u = ub; u < ue; ++u) {
            adj.decode_row(static_cast<VertexId>(u),
                           values.data() + adj.offsets[u]);
          }
        },
        /*min_block=*/2048);
  };
  inflate(out_, out_targets);
  inflate(in_, in_sources);
  // from_parts re-validates, so even a corrupted compressed graph can
  // never inflate into a structurally-invalid flat one.
  return CsrGraph::from_parts(std::move(out_offsets), std::move(out_targets),
                              std::move(in_offsets), std::move(in_sources),
                              &tp);
}

bool CompressedCsrGraph::has_edge(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeIndex CompressedCsrGraph::edge_index(VertexId u, VertexId v) const {
  const auto nbrs = out_neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return num_edges();
  return out_.offsets[u] + static_cast<EdgeIndex>(it - nbrs.begin());
}

}  // namespace snaple
