// Degree statistics and CDFs.
//
// Figure 6a–c of the paper plots the CDF of out-degrees for orkut,
// livejournal and twitter-rv and overlays candidate truncation thresholds
// thrΓ; the fraction of vertices whose neighborhood a given thrΓ leaves
// intact is exactly what this module computes.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/stats.hpp"

namespace snaple {

[[nodiscard]] std::vector<std::size_t> out_degrees(const CsrGraph& g);
[[nodiscard]] std::vector<std::size_t> in_degrees(const CsrGraph& g);

struct DegreeSummary {
  std::size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] DegreeSummary summarize_out_degrees(const CsrGraph& g);

/// Empirical CDF over out-degrees; `cdf.at(thr)` is the fraction of
/// vertices with out-degree <= thr, i.e. untouched by truncation at thrΓ.
[[nodiscard]] EmpiricalCdf out_degree_cdf(const CsrGraph& g);

/// Fraction of vertices with out_degree(u) <= thr. The paper observes
/// recall stabilizes once this fraction reaches ~0.8 (Fig 6d).
[[nodiscard]] double fraction_untruncated(const CsrGraph& g, std::size_t thr);

}  // namespace snaple
