#include "graph/gen/datasets.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "graph/gen/generators.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"

namespace snaple::gen {

const std::vector<DatasetSpec>& dataset_specs() {
  // target_avg_degree tracks the paper's |E|/|V| (halved where the paper
  // symmetrized an undirected dataset, re-inflated by orient() for the
  // directed ones). avg_memberships shapes the community overlap (orkut
  // is famously community-dense). Reciprocity reflects each network's
  // published value (twitter ~0.2, pokec/livejournal ~0.6+). Relative
  // |E| ordering matches Table 4: gowalla ≪ pokec < livejournal < orkut
  // < twitter.
  static const std::vector<DatasetSpec> specs = {
      {"gowalla-s", "social network (undirected)",
       /*base_vertices=*/20'000, /*target_avg_degree=*/9.7,
       /*avg_memberships=*/1.7, /*reciprocity=*/1.0,
       196'591ULL, 950'327ULL},
      {"pokec-s", "social network (directed)",
       /*base_vertices=*/40'000, /*target_avg_degree=*/23.0,
       /*avg_memberships=*/2.2, /*reciprocity=*/0.65,
       1'632'803ULL, 30'622'564ULL},
      {"orkut-s", "social network (undirected)",
       /*base_vertices=*/36'000, /*target_avg_degree=*/72.0,
       /*avg_memberships=*/6.0, /*reciprocity=*/1.0,
       3'072'441ULL, 223'534'301ULL},
      {"livejournal-s", "co-authorship (directed)",
       /*base_vertices=*/60'000, /*target_avg_degree=*/17.0,
       /*avg_memberships=*/2.0, /*reciprocity=*/0.7,
       4'847'571ULL, 68'993'773ULL},
      {"twitter-s", "microblogging (directed)",
       /*base_vertices=*/220'000, /*target_avg_degree=*/35.0,
       /*avg_memberships=*/2.5, /*reciprocity=*/0.2,
       41'652'230ULL, 1'468'365'182ULL},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& spec : dataset_specs()) {
    if (spec.name == name || spec.name == name + "-s") return spec;
  }
  throw CheckError("unknown dataset '" + name +
                   "' (try gowalla, pokec, orkut, livejournal, twitter)");
}

CsrGraph make_dataset(const DatasetSpec& spec, double scale,
                      std::uint64_t seed) {
  SNAPLE_CHECK(scale > 0.0);
  const auto n = static_cast<VertexId>(std::max<double>(
      128.0, static_cast<double>(spec.base_vertices) * scale));
  AffiliationParams params;
  params.target_avg_degree =
      std::min(spec.target_avg_degree, static_cast<double>(n) / 4.0);
  params.avg_memberships = spec.avg_memberships;
  CsrGraph substrate = affiliation_graph(n, params, seed);
  if (spec.reciprocity >= 1.0) return substrate;
  return orient(substrate, spec.reciprocity, seed ^ 0xd1ff'05ed'5eedULL);
}

CsrGraph make_dataset(const std::string& name, double scale,
                      std::uint64_t seed) {
  return make_dataset(dataset_spec(name), scale, seed);
}

CsrGraph load_or_generate(const std::string& name, double scale,
                          std::uint64_t seed, const std::string& cache_dir) {
  const DatasetSpec& spec = dataset_spec(name);
  std::string dir = cache_dir;
  if (dir.empty()) {
    const char* env = std::getenv("SNAPLE_DATA_DIR");
    dir = env != nullptr ? env : "snaple-data";
  }
  char file[256];
  std::snprintf(file, sizeof(file), "%s_s%.4f_seed%llu.bin",
                spec.name.c_str(), scale,
                static_cast<unsigned long long>(seed));
  const std::filesystem::path path = std::filesystem::path(dir) / file;

  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      // Reads either binary version: caches written before format v2
      // existed stay valid (new entries are written as v2 below).
      return load_binary_file(path.string());
    } catch (const IoError&) {
      // Corrupt cache entry: fall through and regenerate.
    }
  }
  CsrGraph g = make_dataset(spec, scale, seed);
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    try {
      save_binary_file(g, path.string());
    } catch (const IoError&) {
      // Cache write failure is non-fatal; the graph is still usable.
    }
  }
  return g;
}

}  // namespace snaple::gen
