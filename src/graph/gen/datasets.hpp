// Scaled synthetic replicas of the paper's evaluation datasets (Table 4).
//
//   dataset      |V|      |E|     domain            directedness
//   gowalla      196,591  0.95M   social network    undirected
//   pokec        1.6M     30.6M   social network    directed
//   orkut        3M       223M    social network    undirected
//   livejournal  4.8M     68.9M   co-authorship     directed
//   twitter-rv   41M      1.4B    microblogging     directed
//
// Replicas keep (a) the relative |E| ordering, (b) the average degree,
// (c) power-law degrees with high clustering (Holme–Kim substrate), and
// (d) the directed/undirected treatment of the original. The default
// scale fits a full experiment sweep on a laptop; `scale` rescales |V|
// (tests use small scales, ambitious users large ones).
//
// If you have the real SNAP datasets on disk, load them instead with
// load_edge_list_text_file() — every harness accepts any CsrGraph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace snaple::gen {

struct DatasetSpec {
  std::string name;
  std::string domain;
  // Replica parameters at scale = 1 (community-affiliation model; see
  // generators.hpp).
  VertexId base_vertices = 0;
  double target_avg_degree = 10.0;  // undirected substrate degree
  double avg_memberships = 3.0;     // communities per vertex
  double reciprocity = 1.0;         // 1.0 = undirected (keep both arcs)
  // Original (paper) sizes, for reporting alongside replica sizes.
  std::uint64_t paper_vertices = 0;
  std::uint64_t paper_edges = 0;
};

/// The five replicas in paper order: gowalla, pokec, orkut, livejournal,
/// twitter. Names carry an "-s" suffix (e.g. "livejournal-s") to make it
/// unmistakable that these are synthetic stand-ins.
[[nodiscard]] const std::vector<DatasetSpec>& dataset_specs();

/// Spec by name, accepting either "livejournal" or "livejournal-s".
[[nodiscard]] const DatasetSpec& dataset_spec(const std::string& name);

/// Deterministically generates the replica at the given scale (vertex
/// count = base_vertices * scale, minimum 128).
[[nodiscard]] CsrGraph make_dataset(const DatasetSpec& spec,
                                    double scale = 1.0,
                                    std::uint64_t seed = 42);

[[nodiscard]] CsrGraph make_dataset(const std::string& name,
                                    double scale = 1.0,
                                    std::uint64_t seed = 42);

/// Generates the replica, caching the result as a binary graph under
/// `cache_dir` (default: $SNAPLE_DATA_DIR or ./snaple-data). Regenerates
/// on any parameter change (parameters are part of the file name).
[[nodiscard]] CsrGraph load_or_generate(const std::string& name,
                                        double scale = 1.0,
                                        std::uint64_t seed = 42,
                                        const std::string& cache_dir = "");

}  // namespace snaple::gen
