// Synthetic graph generators.
//
// The paper evaluates on five public datasets (Table 4) that we cannot
// ship; docs/DATASETS.md documents the substitution. The generators here
// control the two properties that drive removed-edge link-prediction
// recall and GAS data-flow volume:
//   * heavy-tailed (power-law) degree distributions — RMAT and
//     Barabási–Albert preferential attachment;
//   * high clustering (recoverable triangles) — Holme–Kim triad
//     formation and Watts–Strogatz rewiring.
// All generators are deterministic given the seed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/csr_graph.hpp"

namespace snaple::gen {

/// G(n, m): m distinct uniform random directed edges over n vertices.
[[nodiscard]] CsrGraph erdos_renyi(VertexId n, EdgeIndex m,
                                   std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree.
/// Returns a symmetrized (directed both ways) graph.
[[nodiscard]] CsrGraph barabasi_albert(VertexId n, std::size_t m,
                                       std::uint64_t seed);

/// Holme–Kim "power-law cluster" model: preferential attachment plus triad
/// formation with probability `p_triad` per extra link, yielding power-law
/// degrees AND tunable clustering — our main social-graph stand-in.
/// Returns a symmetrized graph.
[[nodiscard]] CsrGraph holme_kim(VertexId n, std::size_t m, double p_triad,
                                 std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability `beta`. Symmetrized.
[[nodiscard]] CsrGraph watts_strogatz(VertexId n, std::size_t k, double beta,
                                      std::uint64_t seed);

/// RMAT (Chakrabarti et al.): 2^scale vertices, `m` edges thrown into
/// recursively weighted quadrants (a,b,c,d must sum to ~1). Directed;
/// duplicates and self-loops are dropped, so the result can have slightly
/// fewer than `m` edges.
struct RmatParams {
  int scale = 16;       // |V| = 2^scale
  EdgeIndex edges = 1 << 20;
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;  // Graph500 defaults
  bool noise = true;    // perturb quadrant weights per level (less collision)
};
[[nodiscard]] CsrGraph rmat(const RmatParams& params, std::uint64_t seed);

/// Community-affiliation model (AGM-style, after Yang & Leskovec): the
/// primary social-graph stand-in. Vertices join communities (heavy-tailed
/// membership weights make hubs), community sizes follow a truncated
/// power law, and each community is an Erdős–Rényi patch whose density is
/// set so one membership contributes ~constant degree. Small communities
/// come out dense, which is what gives real social graphs their high
/// clustering AND what makes removed edges recoverable from common
/// neighbors — the property link-prediction recall depends on.
struct AffiliationParams {
  double avg_memberships = 2.0;    // mean communities per vertex
  double weight_exponent = 2.5;    // Pareto tail of membership propensity
  std::size_t min_community = 0;   // 0 = derived from the degree target
  std::size_t max_community = 0;   // 0 = derived from the degree target
  double community_exponent = 2.6; // community-size power law
  double target_avg_degree = 10.0; // undirected degree target
  double background_fraction = 0.08;  // uniform-random edge share
};
[[nodiscard]] CsrGraph affiliation_graph(VertexId n,
                                         const AffiliationParams& params,
                                         std::uint64_t seed);

/// Turns an undirected-style symmetric graph into a directed one: every
/// symmetric pair {a,b} keeps both directions with probability
/// `reciprocity`, otherwise a uniformly-chosen single direction. This is
/// how directed replicas (pokec / livejournal / twitter) are derived from
/// the clustered substrates.
[[nodiscard]] CsrGraph orient(const CsrGraph& symmetric, double reciprocity,
                              std::uint64_t seed);

}  // namespace snaple::gen
