#include "graph/gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace snaple::gen {

CsrGraph erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed) {
  SNAPLE_CHECK(n >= 2);
  const auto max_edges =
      static_cast<EdgeIndex>(n) * static_cast<EdgeIndex>(n - 1);
  SNAPLE_CHECK_MSG(m <= max_edges, "too many edges requested for G(n,m)");
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.reserve_edges(m);
  std::unordered_set<Edge, EdgeHash> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto src = static_cast<VertexId>(rng.next_below(n));
    const auto dst = static_cast<VertexId>(rng.next_below(n));
    if (src == dst) continue;
    if (seen.insert({src, dst}).second) builder.add_edge(src, dst);
  }
  return builder.build();
}

namespace {

/// Shared scaffold for BA / Holme–Kim: grows an undirected adjacency using
/// the "repeated endpoints" trick — picking a uniform element of the list
/// of all edge endpoints is exactly degree-proportional sampling.
class PreferentialAttachment {
 public:
  PreferentialAttachment(VertexId n, std::size_t m, std::uint64_t seed)
      : n_(n), m_(m), rng_(seed) {
    SNAPLE_CHECK(m >= 1);
    SNAPLE_CHECK_MSG(n > m, "need more vertices than links per vertex");
    endpoints_.reserve(static_cast<std::size_t>(n) * m * 2);
    adjacency_.resize(n);
    // Seed clique over the first m+1 vertices so early picks are defined.
    for (VertexId a = 0; a <= m; ++a) {
      for (VertexId b = a + 1; b <= m; ++b) link(a, b);
    }
  }

  /// Grows vertices m+1 .. n-1; `p_triad` = probability that each extra
  /// link closes a triangle instead of following preferential attachment.
  void grow(double p_triad) {
    for (VertexId u = static_cast<VertexId>(m_) + 1; u < n_; ++u) {
      VertexId last_target = pick_pa_target(u);
      link(u, last_target);
      for (std::size_t j = 1; j < m_; ++j) {
        bool linked = false;
        if (rng_.next_bool(p_triad)) {
          linked = try_triad(u, last_target);
        }
        if (!linked) {
          const VertexId t = pick_pa_target(u);
          link(u, t);
          last_target = t;
        }
      }
    }
  }

  [[nodiscard]] CsrGraph build() {
    GraphBuilder builder(n_);
    builder.reserve_edges(endpoints_.size());
    for (VertexId u = 0; u < n_; ++u) {
      // adjacency_ already holds both directions of every link.
      for (VertexId v : adjacency_[u]) builder.add_edge(u, v);
    }
    return builder.build();
  }

 private:
  void link(VertexId a, VertexId b) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    endpoints_.push_back(a);
    endpoints_.push_back(b);
  }

  [[nodiscard]] bool already_linked(VertexId u, VertexId v) const {
    // Callers only query with u = the vertex currently being grown, whose
    // adjacency row is at most m entries, so a linear scan is cheap.
    const auto& adj = adjacency_[u];
    return std::find(adj.begin(), adj.end(), v) != adj.end();
  }

  VertexId pick_pa_target(VertexId u) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const VertexId t = endpoints_[rng_.next_below(endpoints_.size())];
      if (t != u && !already_linked(u, t)) return t;
    }
    // Dense corner case: fall back to scanning for any free vertex.
    for (VertexId t = 0; t < n_; ++t) {
      if (t != u && !already_linked(u, t)) return t;
    }
    return u == 0 ? 1 : 0;  // unreachable for n > m
  }

  bool try_triad(VertexId u, VertexId anchor) {
    // Connect u to a random neighbor of the vertex it just attached to,
    // closing the triangle u–anchor–t (Holme–Kim triad formation).
    const auto& candidates = adjacency_[anchor];
    if (candidates.empty()) return false;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const VertexId t = candidates[rng_.next_below(candidates.size())];
      if (t != u && !already_linked(u, t)) {
        link(u, t);
        return true;
      }
    }
    return false;
  }

  VertexId n_;
  std::size_t m_;
  Rng rng_;
  std::vector<VertexId> endpoints_;
  std::vector<std::vector<VertexId>> adjacency_;
};

}  // namespace

CsrGraph barabasi_albert(VertexId n, std::size_t m, std::uint64_t seed) {
  PreferentialAttachment pa(n, m, seed);
  pa.grow(/*p_triad=*/0.0);
  return pa.build();
}

CsrGraph holme_kim(VertexId n, std::size_t m, double p_triad,
                   std::uint64_t seed) {
  SNAPLE_CHECK(p_triad >= 0.0 && p_triad <= 1.0);
  PreferentialAttachment pa(n, m, seed);
  pa.grow(p_triad);
  return pa.build();
}

CsrGraph watts_strogatz(VertexId n, std::size_t k, double beta,
                        std::uint64_t seed) {
  SNAPLE_CHECK(k >= 1 && n > 2 * k);
  SNAPLE_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.next_bool(beta)) {
        // Rewire to a uniform non-self target (duplicates removed by the
        // builder, matching the standard WS construction closely enough).
        v = static_cast<VertexId>(rng.next_below(n));
        if (v == u) v = static_cast<VertexId>((v + 1) % n);
      }
      builder.add_undirected_edge(u, v);
    }
  }
  return builder.build();
}

CsrGraph rmat(const RmatParams& params, std::uint64_t seed) {
  SNAPLE_CHECK(params.scale >= 1 && params.scale <= 31);
  const double total = params.a + params.b + params.c + params.d;
  SNAPLE_CHECK_MSG(std::abs(total - 1.0) < 1e-6,
                   "RMAT quadrant weights must sum to 1");
  Rng rng(seed);
  const VertexId n = VertexId{1} << params.scale;
  GraphBuilder builder(n);
  builder.reserve_edges(params.edges);

  for (EdgeIndex i = 0; i < params.edges; ++i) {
    VertexId row = 0;
    VertexId col = 0;
    for (int level = 0; level < params.scale; ++level) {
      double a = params.a, b = params.b, c = params.c;
      if (params.noise) {
        // +/-10% multiplicative noise per level, renormalized; the
        // standard trick to avoid staircase artifacts.
        const double na = a * (0.9 + 0.2 * rng.next_double());
        const double nb = b * (0.9 + 0.2 * rng.next_double());
        const double nc = c * (0.9 + 0.2 * rng.next_double());
        const double nd =
            params.d * (0.9 + 0.2 * rng.next_double());
        const double norm = na + nb + nc + nd;
        a = na / norm;
        b = nb / norm;
        c = nc / norm;
      }
      const double r = rng.next_double();
      const VertexId bit = VertexId{1} << (params.scale - 1 - level);
      if (r < a) {
        // top-left: nothing set
      } else if (r < a + b) {
        col |= bit;
      } else if (r < a + b + c) {
        row |= bit;
      } else {
        row |= bit;
        col |= bit;
      }
    }
    builder.add_edge(row, col);  // self-loops dropped by the builder
  }
  return builder.build();
}

namespace {

/// Draws from a truncated power law P(x) ∝ x^-alpha on [lo, hi] by
/// inverse-transform sampling.
std::size_t power_law_sample(Rng& rng, double alpha, std::size_t lo,
                             std::size_t hi) {
  SNAPLE_DCHECK(lo >= 1 && hi >= lo);
  const double one_minus = 1.0 - alpha;
  const double lo_p = std::pow(static_cast<double>(lo), one_minus);
  const double hi_p = std::pow(static_cast<double>(hi) + 1.0, one_minus);
  const double u = rng.next_double();
  const double x = std::pow(lo_p + u * (hi_p - lo_p), 1.0 / one_minus);
  return std::min<std::size_t>(hi, std::max<std::size_t>(
                                       lo, static_cast<std::size_t>(x)));
}

/// Weighted sampling of vertices by cumulative-weight binary search.
class WeightedSampler {
 public:
  WeightedSampler(VertexId n, double exponent, Rng& rng) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      // Pareto(exponent) membership propensity: heavy tail = future hubs.
      const double u = std::max(1e-12, rng.next_double());
      total += std::pow(u, -1.0 / exponent);
      cumulative_.push_back(total);
    }
  }

  [[nodiscard]] VertexId sample(Rng& rng) const {
    const double x = rng.next_double() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
    return static_cast<VertexId>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

CsrGraph affiliation_graph(VertexId n, const AffiliationParams& params,
                           std::uint64_t seed) {
  SNAPLE_CHECK(n >= 16);
  SNAPLE_CHECK(params.avg_memberships > 0.0);
  SNAPLE_CHECK(params.target_avg_degree > 0.0);
  SNAPLE_CHECK(params.background_fraction >= 0.0 &&
               params.background_fraction < 1.0);
  Rng rng(seed);

  WeightedSampler sampler(n, params.weight_exponent, rng);

  // One membership should contribute ~lambda undirected degree so that
  // E[deg] = lambda * avg_memberships = target (minus background share).
  const double lambda = params.target_avg_degree *
                        (1.0 - params.background_fraction) /
                        params.avg_memberships;

  // Unless overridden, size communities relative to lambda: mostly a bit
  // larger than the degree one membership contributes, so patches come
  // out dense (p ≈ 0.5–0.9). Dense patches are what give social graphs
  // both their clustering and their link-prediction signal: a hidden
  // intra-community edge retains ~s·p² common neighbors.
  std::size_t max_comm = params.max_community;
  if (max_comm == 0) {
    max_comm = std::max<std::size_t>(24, static_cast<std::size_t>(lambda * 6.0));
  }
  max_comm = std::min<std::size_t>(max_comm, n / 2);
  std::size_t min_comm = params.min_community;
  if (min_comm == 0) {
    min_comm = std::max<std::size_t>(5, static_cast<std::size_t>(lambda * 0.8));
  }
  min_comm = std::min(min_comm, max_comm);

  GraphBuilder builder(n);
  const double membership_goal =
      static_cast<double>(n) * params.avg_memberships;
  double memberships = 0.0;

  std::vector<VertexId> members;
  std::vector<bool> in_community(n, false);
  while (memberships < membership_goal) {
    const std::size_t size = power_law_sample(
        rng, params.community_exponent, min_comm, max_comm);
    // Draw `size` distinct members, weighted; cap retries for tiny n.
    members.clear();
    std::size_t attempts = 0;
    while (members.size() < size && attempts < size * 20) {
      ++attempts;
      const VertexId v = sampler.sample(rng);
      if (!in_community[v]) {
        in_community[v] = true;
        members.push_back(v);
      }
    }
    for (VertexId v : members) in_community[v] = false;
    if (members.size() < 2) continue;
    memberships += static_cast<double>(members.size());

    const double p = std::min(
        1.0, lambda / static_cast<double>(members.size() - 1));
    // G(s,p) patch over the member pairs {(i,j) : i < j}, visited as a
    // (row i, column j) cursor advanced by geometric skips — O(edges + s)
    // instead of O(s²) when p is small.
    // Row i covers pairs (i, i+1..s-1); the cursor sits on the last
    // emitted pair, with (i, i) acting as the "before row start" marker.
    const std::size_t s = members.size();
    const double log1mp = std::log1p(-std::min(p, 1.0 - 1e-12));
    std::size_t i = 0;
    std::size_t j = 0;
    bool done = false;
    while (!done) {
      std::size_t skip = 1;
      if (p < 1.0 - 1e-12) {
        const double u = std::max(1e-12, rng.next_double());
        skip = 1 + static_cast<std::size_t>(std::log(u) / log1mp);
      }
      j += skip;
      while (j > s - 1) {
        const std::size_t overflow = j - (s - 1);
        ++i;
        if (i + 1 >= s) {
          done = true;
          break;
        }
        j = i + overflow;
      }
      if (!done) builder.add_undirected_edge(members[i], members[j]);
    }
  }

  // Background edges: long-range random links (weak ties).
  const auto background_edges = static_cast<std::size_t>(
      static_cast<double>(n) * params.target_avg_degree *
      params.background_fraction / 2.0);
  for (std::size_t i = 0; i < background_edges; ++i) {
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (a != b) builder.add_undirected_edge(a, b);
  }

  return builder.build();
}

CsrGraph orient(const CsrGraph& symmetric, double reciprocity,
                std::uint64_t seed) {
  SNAPLE_CHECK(reciprocity >= 0.0 && reciprocity <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(symmetric.num_vertices());
  for (VertexId u = 0; u < symmetric.num_vertices(); ++u) {
    for (VertexId v : symmetric.out_neighbors(u)) {
      if (v <= u) continue;  // visit each symmetric pair once
      if (rng.next_bool(reciprocity)) {
        builder.add_undirected_edge(u, v);
      } else if (rng.next_bool(0.5)) {
        builder.add_edge(u, v);
      } else {
        builder.add_edge(v, u);
      }
    }
  }
  return builder.build();
}

}  // namespace snaple::gen
