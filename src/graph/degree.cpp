#include "graph/degree.hpp"

#include <algorithm>

namespace snaple {

std::vector<std::size_t> out_degrees(const CsrGraph& g) {
  std::vector<std::size_t> d(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) d[u] = g.out_degree(u);
  return d;
}

std::vector<std::size_t> in_degrees(const CsrGraph& g) {
  std::vector<std::size_t> d(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) d[u] = g.in_degree(u);
  return d;
}

DegreeSummary summarize_out_degrees(const CsrGraph& g) {
  DegreeSummary s;
  if (g.num_vertices() == 0) return s;
  std::vector<double> ds;
  ds.reserve(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto d = g.out_degree(u);
    s.max = std::max(s.max, d);
    ds.push_back(static_cast<double>(d));
  }
  s.mean = static_cast<double>(g.num_edges()) /
           static_cast<double>(g.num_vertices());
  s.median = percentile(ds, 0.5);
  s.p90 = percentile(ds, 0.9);
  s.p99 = percentile(ds, 0.99);
  return s;
}

EmpiricalCdf out_degree_cdf(const CsrGraph& g) {
  std::vector<double> ds;
  ds.reserve(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ds.push_back(static_cast<double>(g.out_degree(u)));
  }
  return EmpiricalCdf(std::move(ds));
}

double fraction_untruncated(const CsrGraph& g, std::size_t thr) {
  if (g.num_vertices() == 0) return 1.0;
  std::size_t ok = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (g.out_degree(u) <= thr) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(g.num_vertices());
}

}  // namespace snaple
