// Immutable compressed-sparse-row graph.
//
// The whole library computes on this one representation: a directed graph
// with both out- and in-adjacency materialized, each neighbor list sorted
// by vertex id. Sorted lists give O(deg_u + deg_v) Jaccard intersections
// (the raw-similarity kernel of SNAPLE, eq. 6) and O(log deg) has_edge.
//
// Undirected datasets (gowalla, orkut in the paper, Table 4) are handled
// the way the paper does: "we transform them into directed by duplicating
// edges on both directions" — see GraphBuilder::symmetrize().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace snaple {

class GraphBuilder;

class ThreadPool;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Assembles a graph directly from its four CSR arrays — the seam for
  /// bulk deserialization (binary format v2) and external builders, which
  /// would otherwise round-trip every edge through GraphBuilder.
  /// Validates the invariants the library computes on (offset shapes and
  /// monotonicity always; per-row strictly-ascending targets and id range
  /// with a parallel O(E) pass on `pool`, the default pool when null) and
  /// throws CheckError on violation.
  [[nodiscard]] static CsrGraph from_parts(
      std::vector<EdgeIndex> out_offsets, std::vector<VertexId> out_targets,
      std::vector<EdgeIndex> in_offsets, std::vector<VertexId> in_sources,
      ThreadPool* pool = nullptr);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return out_targets_.size();
  }

  /// Out-neighbors of u (Γ(u) in the paper), sorted ascending.
  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbors of u (Γ⁻¹(u) in the paper), sorted ascending.
  [[nodiscard]] std::span<const VertexId> in_neighbors(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return {in_sources_.data() + in_offsets_[u],
            in_sources_.data() + in_offsets_[u + 1]};
  }

  [[nodiscard]] std::size_t out_degree(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  [[nodiscard]] std::size_t in_degree(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return static_cast<std::size_t>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  /// True if the directed edge (u, v) exists. O(log out_degree(u)).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Position of edge (u,v) in CSR order, or num_edges() if absent. Gives
  /// every edge a stable dense index for per-edge state in the GAS engine.
  [[nodiscard]] EdgeIndex edge_index(VertexId u, VertexId v) const;

  /// The CSR offset of u's first out-edge (edge indices for u are
  /// [out_offset(u), out_offset(u) + out_degree(u))).
  [[nodiscard]] EdgeIndex out_offset(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return out_offsets_[u];
  }

  /// Source vertex of the edge with CSR index e. O(log V).
  [[nodiscard]] VertexId edge_source(EdgeIndex e) const;
  [[nodiscard]] VertexId edge_target(EdgeIndex e) const {
    SNAPLE_DCHECK(e < num_edges());
    return out_targets_[e];
  }

  /// Materializes the edge list in CSR order (mostly for tests and IO).
  [[nodiscard]] std::vector<Edge> edges() const;

  /// The raw CSR arrays, for bulk IO (binary format v2 writes them with
  /// single write() calls) and zero-copy inspection. Offsets have size
  /// V+1 (or 0 on a default-constructed graph), targets/sources size E.
  [[nodiscard]] std::span<const EdgeIndex> out_offsets() const noexcept {
    return out_offsets_;
  }
  [[nodiscard]] std::span<const VertexId> out_targets() const noexcept {
    return out_targets_;
  }
  [[nodiscard]] std::span<const EdgeIndex> in_offsets() const noexcept {
    return in_offsets_;
  }
  [[nodiscard]] std::span<const VertexId> in_sources() const noexcept {
    return in_sources_;
  }

  /// Resident bytes of the adjacency arrays (memory accounting).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return out_offsets_.size() * sizeof(EdgeIndex) +
           in_offsets_.size() * sizeof(EdgeIndex) +
           out_targets_.size() * sizeof(VertexId) +
           in_sources_.size() * sizeof(VertexId);
  }

 private:
  friend class GraphBuilder;

  std::vector<EdgeIndex> out_offsets_;  // size V+1
  std::vector<VertexId> out_targets_;   // size E, sorted per row
  std::vector<EdgeIndex> in_offsets_;   // size V+1
  std::vector<VertexId> in_sources_;    // size E, sorted per row
};

}  // namespace snaple
