#include "graph/analysis.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <unordered_set>

namespace snaple {

double clustering_coefficient(const CsrGraph& g, std::size_t samples,
                              std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;

  std::vector<VertexId> candidates;
  candidates.reserve(n);
  for (VertexId u = 0; u < n; ++u) {
    if (g.out_degree(u) >= 2) candidates.push_back(u);
  }
  if (candidates.empty()) return 0.0;

  Rng rng(seed);
  if (samples < candidates.size()) {
    shuffle(candidates, rng);
    candidates.resize(samples);
  }

  double total = 0.0;
  for (VertexId u : candidates) {
    const auto nbrs = g.out_neighbors(u);
    std::size_t closed = 0;
    for (VertexId v : nbrs) {
      // Count edges v -> w with w also a neighbor of u, by merging the
      // two sorted lists.
      const auto vn = g.out_neighbors(v);
      auto a = nbrs.begin();
      auto b = vn.begin();
      while (a != nbrs.end() && b != vn.end()) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          if (*a != u && *a != v) ++closed;
          ++a;
          ++b;
        }
      }
    }
    const double d = static_cast<double>(nbrs.size());
    total += static_cast<double>(closed) / (d * (d - 1.0));
  }
  return total / static_cast<double>(candidates.size());
}

std::vector<VertexId> weakly_connected_components(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  // Union-find with path halving; union by smaller root id so labels are
  // the minimum vertex id of each component (deterministic).
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), VertexId{0});

  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b) {
      parent[b] = a;
    } else {
      parent[a] = b;
    }
  };

  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.out_neighbors(u)) unite(u, v);
  }
  std::vector<VertexId> labels(n);
  for (VertexId u = 0; u < n; ++u) labels[u] = find(u);
  return labels;
}

std::size_t count_components(const std::vector<VertexId>& labels) {
  std::size_t count = 0;
  for (std::size_t u = 0; u < labels.size(); ++u) {
    if (labels[u] == u) ++count;
  }
  return count;
}

std::vector<std::size_t> bfs_distances(const CsrGraph& g, VertexId source) {
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.num_vertices(), kInf);
  SNAPLE_CHECK(source < g.num_vertices());
  std::deque<VertexId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.out_neighbors(u)) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint64_t count_triangles_reference(const CsrGraph& g) {
  // For each edge (u,v) with u < v, count common neighbors w > v; each
  // triangle is visited exactly once at its ordered (u < v < w) corner.
  std::uint64_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.out_neighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      const auto nv = g.out_neighbors(v);
      auto a = nu.begin();
      auto b = nv.begin();
      while (a != nu.end() && b != nv.end()) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          if (*a > v) ++total;
          ++a;
          ++b;
        }
      }
    }
  }
  return total;
}

std::size_t two_hop_candidate_count(const CsrGraph& g, VertexId u) {
  std::unordered_set<VertexId> seen;
  const auto nbrs = g.out_neighbors(u);
  for (VertexId v : nbrs) {
    for (VertexId z : g.out_neighbors(v)) {
      if (z == u) continue;
      if (std::binary_search(nbrs.begin(), nbrs.end(), z)) continue;
      seen.insert(z);
    }
  }
  return seen.size();
}

}  // namespace snaple
