// Appendable adjacency overlay over an immutable CsrGraph.
//
// The CSR representation the whole library computes on is deliberately
// immutable — every array is bulk-built, bulk-saved and shared. A live
// serving tier, however, keeps receiving edges (core/dynamic_model.hpp),
// and rebuilding a billion-edge CSR per insert is off the table. The
// overlay keeps the base graph untouched and stores inserted edges as
// per-vertex sorted delta rows, keyed only for the vertices that
// actually changed: a union adjacency query merges the base row with
// the (usually tiny or absent) delta row on the fly.
//
// Deletions are the symmetric extension: a removed base edge lands in a
// per-vertex sorted TOMBSTONE row instead of mutating the CSR, and every
// accessor — has_edge, degrees, merged iteration — subtracts it on the
// fly. Removing an edge that only exists in the delta simply erases it
// from the delta, so the three invariants hold at all times:
//
//   delta ∩ base = ∅        (insert() clears a tombstone instead of
//   tombstones ⊆ base        double-recording a re-added base edge)
//   delta ∩ tombstones = ∅
//
// The union-minus-tombstones graph this exposes is what every stale-row
// recompute folds over (core/row_recompute.hpp).
//
// Scope: fixed vertex set (link prediction never predicts for a vertex
// the model has no row for), single writer. Readers of the DynamicModel
// never touch the overlay — it is writer-side state — so no
// synchronization lives here.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace snaple {

class OverlayGraph {
 public:
  /// The base graph is shared, never copied, never mutated.
  explicit OverlayGraph(std::shared_ptr<const CsrGraph> base)
      : base_(std::move(base)) {
    SNAPLE_CHECK_MSG(base_ != nullptr, "overlay needs a base graph");
  }

  [[nodiscard]] const CsrGraph& base() const noexcept { return *base_; }
  [[nodiscard]] const std::shared_ptr<const CsrGraph>& base_ptr()
      const noexcept {
    return base_;
  }

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return base_->num_vertices();
  }
  /// Live edge count: base + inserted − tombstoned.
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return base_->num_edges() + inserted_ - removed_;
  }
  /// Live delta edges (inserts not since removed).
  [[nodiscard]] std::size_t num_inserted() const noexcept {
    return inserted_;
  }
  /// Tombstoned base edges (removals not since re-added).
  [[nodiscard]] std::size_t num_removed() const noexcept {
    return removed_;
  }

  /// Inserts the directed edge (u, v). Throws CheckError on an
  /// out-of-range endpoint or a self-loop; returns false (and inserts
  /// nothing) when the edge already exists in the live graph. Re-adding
  /// a tombstoned base edge clears the tombstone instead of growing the
  /// delta.
  bool insert(VertexId u, VertexId v);

  /// Removes the directed edge (u, v). Throws CheckError on an
  /// out-of-range endpoint or a self-loop; returns false (and removes
  /// nothing) when the edge is not in the live graph. A delta edge is
  /// erased; a base edge is tombstoned.
  bool remove(VertexId u, VertexId v);

  /// True if (u, v) exists in the live (union-minus-tombstones) graph.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    return contains(out_delta_, u, v) ||
           (base_->has_edge(u, v) && !contains(out_tomb_, u, v));
  }

  [[nodiscard]] std::size_t out_degree(VertexId u) const {
    return base_->out_degree(u) + delta_row(out_delta_, u).size() -
           delta_row(out_tomb_, u).size();
  }
  [[nodiscard]] std::size_t in_degree(VertexId u) const {
    return base_->in_degree(u) + delta_row(in_delta_, u).size() -
           delta_row(in_tomb_, u).size();
  }

  /// Inserted out-/in-neighbors of u, sorted ascending (empty span when
  /// u was never touched).
  [[nodiscard]] std::span<const VertexId> extra_out(VertexId u) const {
    return delta_row(out_delta_, u);
  }
  [[nodiscard]] std::span<const VertexId> extra_in(VertexId u) const {
    return delta_row(in_delta_, u);
  }

  /// Tombstoned base out-/in-neighbors of u, sorted ascending.
  [[nodiscard]] std::span<const VertexId> removed_out(VertexId u) const {
    return delta_row(out_tomb_, u);
  }
  [[nodiscard]] std::span<const VertexId> removed_in(VertexId u) const {
    return delta_row(in_tomb_, u);
  }

  /// Visits u's live out-neighborhood in ascending id order — a
  /// two-pointer merge of the base row (skipping tombstones) and the
  /// delta row (both sorted, disjoint by the insert()/remove()
  /// invariants).
  template <typename Fn>
  void for_each_out_neighbor(VertexId u, Fn&& fn) const {
    merge_rows(base_->out_neighbors(u), delta_row(out_tomb_, u),
               delta_row(out_delta_, u), std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_in_neighbor(VertexId u, Fn&& fn) const {
    merge_rows(base_->in_neighbors(u), delta_row(in_tomb_, u),
               delta_row(in_delta_, u), std::forward<Fn>(fn));
  }

  /// Resident bytes of the delta and tombstone rows (the base graph is
  /// accounted by its owner).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  using DeltaMap = std::unordered_map<VertexId, std::vector<VertexId>>;

  [[nodiscard]] static std::span<const VertexId> delta_row(
      const DeltaMap& map, VertexId u) {
    const auto it = map.find(u);
    if (it == map.end()) return {};
    return it->second;
  }

  [[nodiscard]] static bool contains(const DeltaMap& map, VertexId u,
                                     VertexId v);

  /// Inserts v into map[u]'s sorted row.
  static void sorted_insert(DeltaMap& map, VertexId u, VertexId v);
  /// Erases v from map[u]'s sorted row (which must contain it),
  /// dropping the bucket when the row empties.
  static void sorted_erase(DeltaMap& map, VertexId u, VertexId v);

  void check_endpoints(VertexId u, VertexId v, const char* verb) const;

  /// Merge of (base \ skip) with extra, ascending; skip ⊆ base and
  /// extra ∩ base = ∅, all three sorted.
  template <typename Fn>
  static void merge_rows(std::span<const VertexId> base,
                         std::span<const VertexId> skip,
                         std::span<const VertexId> extra, Fn&& fn) {
    std::size_t s = 0;
    auto tombstoned = [&](VertexId id) {
      while (s < skip.size() && skip[s] < id) ++s;
      return s < skip.size() && skip[s] == id;
    };
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < base.size() && j < extra.size()) {
      if (base[i] < extra[j]) {
        if (!tombstoned(base[i])) fn(base[i]);
        ++i;
      } else {
        fn(extra[j++]);
      }
    }
    for (; i < base.size(); ++i) {
      if (!tombstoned(base[i])) fn(base[i]);
    }
    while (j < extra.size()) fn(extra[j++]);
  }

  std::shared_ptr<const CsrGraph> base_;
  DeltaMap out_delta_;
  DeltaMap in_delta_;
  DeltaMap out_tomb_;
  DeltaMap in_tomb_;
  std::size_t inserted_ = 0;
  std::size_t removed_ = 0;
};

}  // namespace snaple
