// Appendable adjacency overlay over an immutable CsrGraph.
//
// The CSR representation the whole library computes on is deliberately
// immutable — every array is bulk-built, bulk-saved and shared. A live
// serving tier, however, keeps receiving edges (core/dynamic_model.hpp),
// and rebuilding a billion-edge CSR per insert is off the table. The
// overlay keeps the base graph untouched and stores inserted edges as
// per-vertex sorted delta rows, keyed only for the vertices that
// actually changed: a union adjacency query merges the base row with
// the (usually tiny or absent) delta row on the fly.
//
// Scope: insert-only, fixed vertex set (link prediction never predicts
// for a vertex the model has no row for), single writer. Readers of the
// DynamicModel never touch the overlay — it is writer-side state — so
// no synchronization lives here.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace snaple {

class OverlayGraph {
 public:
  /// The base graph is shared, never copied, never mutated.
  explicit OverlayGraph(std::shared_ptr<const CsrGraph> base)
      : base_(std::move(base)) {
    SNAPLE_CHECK_MSG(base_ != nullptr, "overlay needs a base graph");
  }

  [[nodiscard]] const CsrGraph& base() const noexcept { return *base_; }
  [[nodiscard]] const std::shared_ptr<const CsrGraph>& base_ptr()
      const noexcept {
    return base_;
  }

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return base_->num_vertices();
  }
  /// Union edge count: base + inserted.
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return base_->num_edges() + inserted_;
  }
  [[nodiscard]] std::size_t num_inserted() const noexcept {
    return inserted_;
  }

  /// Inserts the directed edge (u, v). Throws CheckError on an
  /// out-of-range endpoint or a self-loop; returns false (and inserts
  /// nothing) when the edge already exists in the union graph.
  bool insert(VertexId u, VertexId v);

  /// True if (u, v) exists in the union graph.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    return base_->has_edge(u, v) || contains(out_delta_, u, v);
  }

  [[nodiscard]] std::size_t out_degree(VertexId u) const {
    return base_->out_degree(u) + delta_row(out_delta_, u).size();
  }
  [[nodiscard]] std::size_t in_degree(VertexId u) const {
    return base_->in_degree(u) + delta_row(in_delta_, u).size();
  }

  /// Inserted out-/in-neighbors of u, sorted ascending (empty span when
  /// u was never touched).
  [[nodiscard]] std::span<const VertexId> extra_out(VertexId u) const {
    return delta_row(out_delta_, u);
  }
  [[nodiscard]] std::span<const VertexId> extra_in(VertexId u) const {
    return delta_row(in_delta_, u);
  }

  /// Visits u's union out-neighborhood in ascending id order — a
  /// two-pointer merge of the base row and the delta row (both sorted,
  /// disjoint by the insert() duplicate check).
  template <typename Fn>
  void for_each_out_neighbor(VertexId u, Fn&& fn) const {
    merge_rows(base_->out_neighbors(u), delta_row(out_delta_, u),
               std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_in_neighbor(VertexId u, Fn&& fn) const {
    merge_rows(base_->in_neighbors(u), delta_row(in_delta_, u),
               std::forward<Fn>(fn));
  }

  /// Resident bytes of the delta rows (the base graph is accounted by
  /// its owner).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  using DeltaMap = std::unordered_map<VertexId, std::vector<VertexId>>;

  [[nodiscard]] static std::span<const VertexId> delta_row(
      const DeltaMap& map, VertexId u) {
    const auto it = map.find(u);
    if (it == map.end()) return {};
    return it->second;
  }

  [[nodiscard]] static bool contains(const DeltaMap& map, VertexId u,
                                     VertexId v);

  template <typename Fn>
  static void merge_rows(std::span<const VertexId> a,
                         std::span<const VertexId> b, Fn&& fn) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        fn(a[i++]);
      } else {
        fn(b[j++]);
      }
    }
    while (i < a.size()) fn(a[i++]);
    while (j < b.size()) fn(b[j++]);
  }

  std::shared_ptr<const CsrGraph> base_;
  DeltaMap out_delta_;
  DeltaMap in_delta_;
  std::size_t inserted_ = 0;
};

}  // namespace snaple
