// Mutable edge collector that produces immutable CsrGraphs.
//
// Deduplicates parallel edges, drops self-loops (standard for link
// prediction — a vertex is never its own candidate), and can symmetrize,
// which is how the paper converts the undirected gowalla / orkut datasets:
// "We transform them into directed by duplicating edges on both directions."
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace snaple {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the vertex count; vertices are 0..n-1 even if isolated.
  /// add_edge grows the count automatically if ids exceed it.
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  void reserve_edges(std::size_t n) { edges_.reserve(n); }

  /// Raises the vertex count (never lowers it); ids beyond any edge
  /// endpoint become isolated vertices.
  void declare_vertices(VertexId n) {
    num_vertices_ = std::max(num_vertices_, n);
  }

  /// Adds the directed edge (src, dst). Self-loops are silently dropped.
  void add_edge(VertexId src, VertexId dst);

  /// Adds both (a, b) and (b, a).
  void add_undirected_edge(VertexId a, VertexId b) {
    add_edge(a, b);
    add_edge(b, a);
  }

  void add_edges(const std::vector<Edge>& edges) {
    for (const auto& e : edges) add_edge(e.src, e.dst);
  }

  /// Ensures every collected edge also exists in the reverse direction.
  void symmetrize();

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t pending_edges() const noexcept {
    return edges_.size();
  }

  /// Builds the CSR graph (sorting + deduplicating edges). The builder is
  /// left empty and reusable.
  [[nodiscard]] CsrGraph build();

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace snaple
