// Mutable edge collector that produces immutable CsrGraphs.
//
// Deduplicates parallel edges, drops self-loops (standard for link
// prediction — a vertex is never its own candidate), and can symmetrize,
// which is how the paper converts the undirected gowalla / orkut datasets:
// "We transform them into directed by duplicating edges on both directions."
//
// build() is a parallel counting sort by source (degree histogram →
// prefix-sum offsets → scatter → per-row sort/dedup), not a global
// std::sort: on a pool with W slots every O(E) pass scales with W, which
// is what makes billion-edge ingestion practical. The result is
// deterministic — identical for any worker count, and identical to what
// the old global-sort build produced.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace snaple {

class ThreadPool;

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the vertex count; vertices are 0..n-1 even if isolated.
  /// add_edge grows the count automatically if ids exceed it.
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices) {}

  void reserve_edges(std::size_t n) { edges_.reserve(n); }

  /// Raises the vertex count (never lowers it); ids beyond any edge
  /// endpoint become isolated vertices.
  void declare_vertices(VertexId n) {
    num_vertices_ = std::max(num_vertices_, n);
  }

  /// Adds the directed edge (src, dst). Self-loops are silently dropped.
  void add_edge(VertexId src, VertexId dst);

  /// Adds both (a, b) and (b, a).
  void add_undirected_edge(VertexId a, VertexId b) {
    add_edge(a, b);
    add_edge(b, a);
  }

  void add_edges(const std::vector<Edge>& edges) {
    for (const auto& e : edges) add_edge(e.src, e.dst);
  }

  /// Takes ownership of a whole edge block without copying — the fast
  /// path for parallel loaders, which hand over one block per parse
  /// worker. Self-loops in the block are dropped at build(); the vertex
  /// count grows to cover every non-self-loop endpoint (also at build(),
  /// via a parallel scan).
  void add_edge_block(std::vector<Edge>&& block);

  /// Ensures every collected edge — including ones added after this call,
  /// up to build() — also exists in the reverse direction. Implemented as
  /// a build-time double scatter, so no mirrored edge list is ever
  /// materialized.
  void symmetrize() { mirror_ = true; }

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t pending_edges() const noexcept {
    std::size_t n = edges_.size();
    for (const auto& b : blocks_) n += b.size();
    return n;
  }

  /// Builds the CSR graph (parallel counting sort + per-row dedup on
  /// `pool`, the process-default pool when null). The builder is left
  /// empty and reusable. Output is deterministic regardless of pool size.
  [[nodiscard]] CsrGraph build(ThreadPool* pool = nullptr);

 private:
  VertexId num_vertices_ = 0;
  bool mirror_ = false;
  std::vector<Edge> edges_;
  std::vector<std::vector<Edge>> blocks_;
};

}  // namespace snaple
