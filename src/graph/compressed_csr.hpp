// Delta-compressed CSR: the same graph as CsrGraph in a fraction of the
// memory-bandwidth footprint.
//
// Every adjacency row is strictly ascending, so consecutive ids differ
// by at least 1 and the row is stored as fields f_i with
//
//   value_i = value_{i-1} + 1 + f_i,   value_{-1} = 0xffffffff
//
// (u32 wraparound makes the first field the absolute first id — one
// uniform rule, no per-row header). Fields are packed in blocks of up
// to 128 values: a 1-byte bit width (the widest field in the block)
// followed by ceil(count·width/8) bytes of LSB-first packed fields.
// A width of 0 encodes a consecutive run in the header byte alone.
//
// Layout per side (out / in):
//   offsets       V+1 × EdgeIndex — cumulative degrees, exactly
//                 CsrGraph's offset array (O(1) degree and the global
//                 edge indices the GAS engine charges traffic to);
//   byte_offsets  V+1 × u64 — where each row's blocks start in `bytes`;
//   bytes         the packed blocks, padded with simd::kDecodeSlack
//                 readable zero bytes so the SIMD decoder may over-read.
//
// Row access decodes into a per-thread scratch buffer
// (util/simd.hpp::delta_unpack — AVX2 or scalar, bit-identical), so
// CompressedCsrGraph offers the same span accessors as CsrGraph and
// slots behind the engine's Graph template parameter unchanged. The
// span is valid until the same thread's next call on the same side —
// the same lifetime discipline the engine already obeys for rows.
// RowCursor streams a row block by block for callers that never want
// the whole row materialized (IO validation, the kernel benches).
//
// The contract is bit-identity: decompress(from_graph(G)) == G for
// every row (from_parts re-validates like CsrGraph::from_parts,
// including the transpose hash), and run_snaple on the compressed
// graph equals the flat engine exactly — scores and accounting.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace snaple {

class ThreadPool;

namespace detail {
/// Per-thread decode scratch, one per adjacency side so out- and
/// in-row decodes never clobber each other (the engine's kAll gather
/// and edge_index interleave exactly that way). Inline so callers in
/// hot loops resolve the thread-local address once.
inline std::vector<VertexId>& compressed_row_scratch(int side) {
  thread_local std::vector<VertexId> scratch[2];
  return scratch[side];
}
}  // namespace detail

/// One compressed adjacency side (out-targets or in-sources).
struct CompressedAdjacency {
  /// Values per block: fixed so a block's field count is implied by the
  /// remaining degree and decode needs no per-block count byte.
  static constexpr std::size_t kBlockSize = 128;
  /// The carry a row's first field is decoded against (wraps to 0).
  static constexpr std::uint32_t kRowInit = 0xffffffffu;

  std::vector<EdgeIndex> offsets;            // V+1 (empty when default)
  std::vector<std::uint64_t> byte_offsets;   // V+1
  std::vector<std::uint8_t> bytes;           // payload + kDecodeSlack pad

  /// Compresses one flat CSR side. `offsets` has V+1 entries, `values`
  /// holds the concatenated strictly-ascending rows.
  [[nodiscard]] static CompressedAdjacency encode(
      std::span<const EdgeIndex> offsets, std::span<const VertexId> values,
      ThreadPool* pool = nullptr);

  /// Serial variant for callers already running inside a pool task
  /// (nested parallelism on one pool is rejected) — e.g. per-shard slice
  /// compression, which is one task per machine.
  [[nodiscard]] static CompressedAdjacency encode_serial(
      std::span<const EdgeIndex> offsets, std::span<const VertexId> values);

  /// Packed bytes excluding the decode padding — the footprint metric
  /// compared against the flat side's values.size() × sizeof(VertexId).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return byte_offsets.empty() ? 0 : byte_offsets.back();
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets.size() * sizeof(EdgeIndex) +
           byte_offsets.size() * sizeof(std::uint64_t) +
           bytes.size() * sizeof(std::uint8_t);
  }

  [[nodiscard]] std::size_t degree(VertexId u) const {
    return static_cast<std::size_t>(offsets[u + 1] - offsets[u]);
  }

  /// Decodes row u into `out` (which must hold degree(u) ids).
  void decode_row(VertexId u, VertexId* out) const;
};

/// Streams one compressed row block by block without materializing it.
class RowCursor {
 public:
  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }

  /// Decodes and returns the next ≤128 ids of the row; the span is
  /// valid until the next call (it points into the cursor's buffer).
  [[nodiscard]] std::span<const VertexId> next_block() {
    SNAPLE_DCHECK(remaining_ > 0);
    const auto count = static_cast<std::uint32_t>(
        std::min<std::size_t>(CompressedAdjacency::kBlockSize, remaining_));
    const unsigned width = *p_++;
    prev_ = simd::delta_unpack(p_, width, count, prev_, buf_.data());
    p_ += (static_cast<std::size_t>(count) * width + 7) / 8;
    remaining_ -= count;
    return {buf_.data(), count};
  }

 private:
  friend class CompressedCsrGraph;
  RowCursor(const std::uint8_t* p, std::size_t degree)
      : p_(p), remaining_(degree) {}

  const std::uint8_t* p_;
  std::size_t remaining_;
  std::uint32_t prev_ = CompressedAdjacency::kRowInit;
  std::array<VertexId, CompressedAdjacency::kBlockSize> buf_;
};

class CompressedCsrGraph {
 public:
  CompressedCsrGraph() = default;

  /// Compresses a flat graph (already validated by construction).
  [[nodiscard]] static CompressedCsrGraph from_graph(const CsrGraph& g,
                                                     ThreadPool* pool = nullptr);

  /// Assembles from deserialized parts — the binary-format-v3 seam,
  /// mirroring CsrGraph::from_parts: offset/byte-offset shape checks,
  /// a parallel per-row decode walk (block widths ≤ 32, rows consuming
  /// exactly their byte span, ids strictly ascending and < V without
  /// u32 wraparound) and the out/in transpose-hash comparison. Throws
  /// CheckError on any violation.
  [[nodiscard]] static CompressedCsrGraph from_parts(CompressedAdjacency out,
                                                     CompressedAdjacency in,
                                                     ThreadPool* pool = nullptr);

  /// Inflates back to the flat representation (bit-identical: a
  /// round-trip test pins decompress(from_graph(G)) == G).
  [[nodiscard]] CsrGraph decompress(ThreadPool* pool = nullptr) const;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(
        out_.offsets.empty() ? 0 : out_.offsets.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return out_.offsets.empty() ? 0 : out_.offsets.back();
  }

  /// Out-neighbors of u, decoded into a per-thread scratch buffer. The
  /// span is valid until this thread's next out_neighbors call (the in
  /// side uses a separate scratch, so interleaving sides is safe — the
  /// pattern the engine's kAll gather and edge_index rely on). Inline
  /// so row-scan loops hoist the thread-local scratch address instead
  /// of re-deriving it per row.
  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    std::vector<VertexId>& buf = detail::compressed_row_scratch(0);
    const std::size_t degree = out_.degree(u);
    if (buf.size() < degree) buf.resize(std::max<std::size_t>(degree, 256));
    out_.decode_row(u, buf.data());
    return {buf.data(), degree};
  }
  [[nodiscard]] std::span<const VertexId> in_neighbors(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    std::vector<VertexId>& buf = detail::compressed_row_scratch(1);
    const std::size_t degree = in_.degree(u);
    if (buf.size() < degree) buf.resize(std::max<std::size_t>(degree, 256));
    in_.decode_row(u, buf.data());
    return {buf.data(), degree};
  }

  [[nodiscard]] std::size_t out_degree(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return out_.degree(u);
  }
  [[nodiscard]] std::size_t in_degree(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return in_.degree(u);
  }
  [[nodiscard]] EdgeIndex out_offset(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return out_.offsets[u];
  }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;
  /// Position of (u,v) in CSR order, num_edges() if absent — decodes
  /// u's row (out-side scratch).
  [[nodiscard]] EdgeIndex edge_index(VertexId u, VertexId v) const;

  /// Block-streaming access (no whole-row materialization).
  [[nodiscard]] RowCursor out_row(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return {out_.bytes.data() + out_.byte_offsets[u], out_.degree(u)};
  }
  [[nodiscard]] RowCursor in_row(VertexId u) const {
    SNAPLE_DCHECK(u < num_vertices());
    return {in_.bytes.data() + in_.byte_offsets[u], in_.degree(u)};
  }

  /// Compressed adjacency payload (both sides, padding excluded) — what
  /// replaces the flat out_targets + in_sources footprint.
  [[nodiscard]] std::size_t adjacency_bytes() const noexcept {
    return static_cast<std::size_t>(out_.payload_bytes() +
                                    in_.payload_bytes());
  }

  /// Resident bytes of all structure arrays (offsets included), the
  /// analogue of CsrGraph::memory_bytes().
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return out_.memory_bytes() + in_.memory_bytes();
  }

  /// The raw compressed sides, for bulk IO (binary format v3).
  [[nodiscard]] const CompressedAdjacency& out_adjacency() const noexcept {
    return out_;
  }
  [[nodiscard]] const CompressedAdjacency& in_adjacency() const noexcept {
    return in_;
  }

 private:
  CompressedAdjacency out_;
  CompressedAdjacency in_;
};

}  // namespace snaple
