#include "graph/io.hpp"

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"

namespace snaple {

namespace {
constexpr std::array<char, 8> kMagic = {'S', 'N', 'A', 'P',
                                        'L', 'E', 'G', '1'};
}  // namespace

CsrGraph load_edge_list_text(std::istream& in, bool symmetrize) {
  GraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      // Honor our own saver's header so graphs with trailing isolated
      // vertices round-trip exactly (plain SNAP files lack this and
      // simply infer the vertex count from the largest id seen).
      unsigned long long v = 0;
      if (std::sscanf(line.c_str(), "# snaple edge list: %llu vertices",
                      &v) == 1 &&
          v > 0 && v <= 0xffffffffULL) {
        builder.declare_vertices(static_cast<VertexId>(v));
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(ls >> src >> dst)) {
      throw IoError("malformed edge at line " + std::to_string(line_no) +
                    ": '" + line + "'");
    }
    if (src > 0xffffffffULL || dst > 0xffffffffULL) {
      throw IoError("vertex id exceeds 32 bits at line " +
                    std::to_string(line_no));
    }
    builder.add_edge(static_cast<VertexId>(src), static_cast<VertexId>(dst));
  }
  if (symmetrize) builder.symmetrize();
  return builder.build();
}

CsrGraph load_edge_list_text_file(const std::string& path, bool symmetrize) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_edge_list_text(in, symmetrize);
}

void save_edge_list_text(const CsrGraph& g, std::ostream& out) {
  out << "# snaple edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
}

void save_edge_list_text_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_edge_list_text(g, out);
}

void save_binary(const CsrGraph& g, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId t : g.out_neighbors(u)) {
      const Edge edge{u, t};
      out.write(reinterpret_cast<const char*>(&edge.src), sizeof(VertexId));
      out.write(reinterpret_cast<const char*>(&edge.dst), sizeof(VertexId));
    }
  }
  if (!out) throw IoError("write failure while saving binary graph");
}

void save_binary_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_binary(g, out);
}

CsrGraph load_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw IoError("bad magic in binary graph");
  std::uint64_t v = 0;
  std::uint64_t e = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  in.read(reinterpret_cast<char*>(&e), sizeof(e));
  if (!in || v > 0xffffffffULL) throw IoError("bad binary graph header");
  GraphBuilder builder(static_cast<VertexId>(v));
  builder.reserve_edges(e);
  for (std::uint64_t i = 0; i < e; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    in.read(reinterpret_cast<char*>(&src), sizeof(src));
    in.read(reinterpret_cast<char*>(&dst), sizeof(dst));
    if (!in) throw IoError("truncated binary graph");
    builder.add_edge(src, dst);
  }
  return builder.build();
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_binary(in);
}

}  // namespace snaple
