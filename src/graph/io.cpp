#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define SNAPLE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "graph/builder.hpp"
#include "graph/compressed_csr.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace snaple {

namespace {

constexpr std::array<char, 8> kMagicV1 = {'S', 'N', 'A', 'P',
                                          'L', 'E', 'G', '1'};
constexpr std::array<char, 8> kMagicV2 = {'S', 'N', 'A', 'P',
                                          'L', 'E', 'G', '2'};
constexpr std::array<char, 8> kMagicV3 = {'S', 'N', 'A', 'P',
                                          'L', 'E', 'G', '3'};

// Largest usable vertex id: the vertex COUNT (max id + 1) must itself fit
// VertexId, so id 0xffffffff is rejected — accepting it would wrap the
// count to 0 and index the build arrays out of bounds.
constexpr std::uint64_t kMaxId = 0xfffffffeULL;
constexpr std::uint64_t kMaxVertices = 0xffffffffULL;

// Reject absurd edge counts before resizing vectors from a (possibly
// corrupt or truncated) header.
constexpr std::uint64_t kMaxEdges = std::uint64_t{1} << 40;

// ---------------------------------------------------------------------------
// Text parsing — the hand-rolled scanner shared by the parallel chunks.
// ---------------------------------------------------------------------------

inline const char* skip_ws(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\v' ||
                     *p == '\f')) {
    ++p;
  }
  return p;
}

/// Scans a decimal integer the way istream's num_get does for unsigned
/// types: an optional '+'/'-' sign ('-' negates modulo 2^64, so "-1"
/// becomes 0xffff... and is then caught by the 32-bit id check), failing
/// on no digits or u64 overflow (where num_get sets failbit → malformed).
inline bool scan_u64(const char*& p, const char* end, std::uint64_t& out) {
  bool negative = false;
  if (p < end && (*p == '+' || *p == '-')) {
    negative = *p == '-';
    ++p;
  }
  if (p == end || *p < '0' || *p > '9') return false;
  std::uint64_t v = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    const auto d = static_cast<unsigned>(*p - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      return false;
    }
    v = v * 10 + d;
    ++p;
  }
  out = negative ? std::uint64_t{0} - v : v;
  return true;
}

enum class LineKind { kSkip, kEdge, kMalformed, kIdOverflow };

/// Parses one line (newline excluded). Mirrors the serial reference
/// loader exactly: a line is a comment iff its FIRST byte is '#' or '%',
/// the "# snaple edge list: N vertices" header raises the declared vertex
/// count, ids must fit 32 bits, and anything after the two ids is ignored.
LineKind parse_line(const char* begin, const char* end, Edge& edge,
                    std::uint64_t& declared_vertices) {
  if (begin == end) return LineKind::kSkip;
  if (*begin == '#' || *begin == '%') {
    if (*begin == '#') {
      // Comment lines are rare; copying one to get a NUL-terminated
      // buffer for the header sscanf costs nothing overall.
      const std::string line(begin, end);
      unsigned long long v = 0;
      if (std::sscanf(line.c_str(), "# snaple edge list: %llu vertices",
                      &v) == 1 &&
          v > 0 && v <= kMaxVertices) {
        declared_vertices =
            std::max(declared_vertices, static_cast<std::uint64_t>(v));
      }
    }
    return LineKind::kSkip;
  }
  const char* p = skip_ws(begin, end);
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  if (!scan_u64(p, end, src)) return LineKind::kMalformed;
  p = skip_ws(p, end);
  if (!scan_u64(p, end, dst)) return LineKind::kMalformed;
  if (src > kMaxId || dst > kMaxId) return LineKind::kIdOverflow;
  edge = {static_cast<VertexId>(src), static_cast<VertexId>(dst)};
  return LineKind::kEdge;
}

struct ChunkResult {
  std::vector<Edge> edges;
  std::uint64_t declared_vertices = 0;
  std::size_t lines = 0;             // lines started in this chunk
  LineKind error = LineKind::kSkip;  // kSkip = no error
  std::size_t error_line = 0;        // 1-based within the chunk
  std::string error_text;            // offending line, for the message
};

/// Parses one line-aligned chunk; stops at the first bad line (its global
/// line number is resolved by the caller from the preceding chunks'
/// complete line counts).
void parse_chunk(const char* begin, const char* end, ChunkResult& out) {
  // ~"u v\n" with modest ids is ≥ 6 bytes/edge; reserving at a slightly
  // optimistic ratio avoids most reallocation without overshooting.
  out.edges.reserve(static_cast<std::size_t>(end - begin) / 8 + 4);
  const char* p = begin;
  while (p < end) {
    const auto* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
    const char* line_end = nl != nullptr ? nl : end;
    ++out.lines;
    Edge e{};
    const LineKind kind = parse_line(p, line_end, e, out.declared_vertices);
    if (kind == LineKind::kEdge) {
      out.edges.push_back(e);
    } else if (kind != LineKind::kSkip) {
      out.error = kind;
      out.error_line = out.lines;
      out.error_text.assign(p, line_end);
      return;
    }
    p = nl != nullptr ? nl + 1 : end;
  }
}

[[noreturn]] void throw_line_error(LineKind kind, std::size_t line_no,
                                   const std::string& text) {
  if (kind == LineKind::kIdOverflow) {
    throw IoError("vertex id exceeds 32 bits at line " +
                  std::to_string(line_no));
  }
  throw IoError("malformed edge at line " + std::to_string(line_no) + ": '" +
                text + "'");
}

}  // namespace

CsrGraph load_edge_list_text(std::istream& in, bool symmetrize) {
  GraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      // Honor our own saver's header so graphs with trailing isolated
      // vertices round-trip exactly (plain SNAP files lack this and
      // simply infer the vertex count from the largest id seen).
      unsigned long long v = 0;
      if (std::sscanf(line.c_str(), "# snaple edge list: %llu vertices",
                      &v) == 1 &&
          v > 0 && v <= kMaxVertices) {
        builder.declare_vertices(static_cast<VertexId>(v));
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(ls >> src >> dst)) {
      throw IoError("malformed edge at line " + std::to_string(line_no) +
                    ": '" + line + "'");
    }
    if (src > kMaxId || dst > kMaxId) {
      throw IoError("vertex id exceeds 32 bits at line " +
                    std::to_string(line_no));
    }
    builder.add_edge(static_cast<VertexId>(src), static_cast<VertexId>(dst));
  }
  if (symmetrize) builder.symmetrize();
  return builder.build();
}

CsrGraph load_edge_list_text_buffer(const char* data, std::size_t size,
                                    bool symmetrize, ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  GraphBuilder builder;
  if (size > 0) {
    // Chunk boundaries: nominal even splits advanced to the next line
    // start, so no line is ever torn across workers. A pathological
    // single-line file degenerates to one chunk.
    constexpr std::size_t kMinChunk = std::size_t{1} << 16;
    const std::size_t want = std::clamp<std::size_t>(
        size / kMinChunk, std::size_t{1}, 4 * tp.slot_count());
    std::vector<std::size_t> bounds{0};
    for (std::size_t c = 1; c < want; ++c) {
      const std::size_t nominal = size / want * c;
      if (nominal <= bounds.back()) continue;
      const auto* nl = static_cast<const char*>(
          std::memchr(data + nominal, '\n', size - nominal));
      if (nl == nullptr) break;
      const auto pos = static_cast<std::size_t>(nl - data) + 1;
      if (pos > bounds.back() && pos < size) bounds.push_back(pos);
    }
    bounds.push_back(size);

    const std::size_t chunks = bounds.size() - 1;
    std::vector<ChunkResult> results(chunks);
    tp.parallel_for(
        0, chunks,
        [&](std::size_t c, std::size_t) {
          parse_chunk(data + bounds[c], data + bounds[c + 1], results[c]);
        },
        /*grain=*/1);

    // First bad line in file order wins; all chunks before it completed,
    // so their line counts give the exact global line number.
    std::size_t line_base = 0;
    std::uint64_t declared = 0;
    for (auto& r : results) {
      if (r.error != LineKind::kSkip) {
        throw_line_error(r.error, line_base + r.error_line, r.error_text);
      }
      line_base += r.lines;
      declared = std::max(declared, r.declared_vertices);
    }
    if (declared > 0) builder.declare_vertices(static_cast<VertexId>(declared));
    for (auto& r : results) builder.add_edge_block(std::move(r.edges));
  }
  if (symmetrize) builder.symmetrize();
  return builder.build(&tp);
}

CsrGraph load_edge_list_text_file(const std::string& path, bool symmetrize,
                                  ThreadPool* pool) {
#ifdef SNAPLE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open '" + path + "' for reading");
  struct stat st {};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return load_edge_list_text_buffer(nullptr, 0, symmetrize, pool);
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      struct Unmapper {
        void* p;
        std::size_t n;
        int fd;
        ~Unmapper() {
          ::munmap(p, n);
          ::close(fd);
        }
      } guard{map, size, fd};
      ::madvise(map, size, MADV_SEQUENTIAL);
      return load_edge_list_text_buffer(static_cast<const char*>(map), size,
                                        symmetrize, pool);
    }
  }
  ::close(fd);  // not a regular file or mmap failed: bulk-read below
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = std::move(buf).str();
  return load_edge_list_text_buffer(data.data(), data.size(), symmetrize,
                                    pool);
}

void save_edge_list_text(const CsrGraph& g, std::ostream& out) {
  out << "# snaple edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      out << u << ' ' << v << '\n';
    }
  }
}

void save_edge_list_text_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_edge_list_text(g, out);
}

// ---------------------------------------------------------------------------
// Binary format v2: magic, V, E, then the four CSR arrays verbatim.
// ---------------------------------------------------------------------------

void save_binary(const CsrGraph& g, std::ostream& out) {
  out.write(kMagicV2.data(), kMagicV2.size());
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  const auto write_offsets = [&out](std::span<const EdgeIndex> s) {
    if (s.empty()) {
      // A default-constructed graph has no offset arrays; the format
      // always carries V+1 entries, so emit the single 0.
      const EdgeIndex zero = 0;
      out.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
      return;
    }
    out.write(reinterpret_cast<const char*>(s.data()),
              static_cast<std::streamsize>(s.size() * sizeof(EdgeIndex)));
  };
  const auto write_ids = [&out](std::span<const VertexId> s) {
    if (s.empty()) return;
    out.write(reinterpret_cast<const char*>(s.data()),
              static_cast<std::streamsize>(s.size() * sizeof(VertexId)));
  };
  write_offsets(g.out_offsets());
  write_ids(g.out_targets());
  write_offsets(g.in_offsets());
  write_ids(g.in_sources());
  if (!out) throw IoError("write failure while saving binary graph");
}

void save_binary_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_binary(g, out);
}

void save_binary_v1(const CsrGraph& g, std::ostream& out) {
  out.write(kMagicV1.data(), kMagicV1.size());
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId t : g.out_neighbors(u)) {
      const Edge edge{u, t};
      out.write(reinterpret_cast<const char*>(&edge.src), sizeof(VertexId));
      out.write(reinterpret_cast<const char*>(&edge.dst), sizeof(VertexId));
    }
  }
  if (!out) throw IoError("write failure while saving binary graph");
}

void save_binary_v1_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_binary_v1(g, out);
}

// ---------------------------------------------------------------------------
// Binary format v3: magic, V, E, then per side (out, then in) the three
// compressed-adjacency arrays — offsets, byte offsets, packed payload.
// The payload on disk is byte-for-byte the in-memory encoding (the decode
// slack padding is reconstructed on load, not stored).
// ---------------------------------------------------------------------------

void save_binary_v3(const CompressedCsrGraph& g, std::ostream& out) {
  out.write(kMagicV3.data(), kMagicV3.size());
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  const auto write_side = [&out](const CompressedAdjacency& adj) {
    if (adj.offsets.empty()) {
      // A default-constructed graph has no arrays; the format always
      // carries V+1 entries per array, so emit the single zeros.
      const EdgeIndex zero_off = 0;
      const std::uint64_t zero_byte = 0;
      out.write(reinterpret_cast<const char*>(&zero_off), sizeof(zero_off));
      out.write(reinterpret_cast<const char*>(&zero_byte), sizeof(zero_byte));
      return;
    }
    out.write(reinterpret_cast<const char*>(adj.offsets.data()),
              static_cast<std::streamsize>(adj.offsets.size() *
                                           sizeof(EdgeIndex)));
    out.write(reinterpret_cast<const char*>(adj.byte_offsets.data()),
              static_cast<std::streamsize>(adj.byte_offsets.size() *
                                           sizeof(std::uint64_t)));
    if (adj.payload_bytes() > 0) {
      out.write(reinterpret_cast<const char*>(adj.bytes.data()),
                static_cast<std::streamsize>(adj.payload_bytes()));
    }
  };
  write_side(g.out_adjacency());
  write_side(g.in_adjacency());
  if (!out) throw IoError("write failure while saving binary graph");
}

void save_binary_v3_file(const CompressedCsrGraph& g,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_binary_v3(g, out);
}

std::uint64_t stream_remaining_bytes(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return ~std::uint64_t{0};
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || !in) {
    in.clear();
    in.seekg(here);
    return ~std::uint64_t{0};
  }
  return static_cast<std::uint64_t>(end - here);
}

namespace {

/// v1 payload (after the magic): per-edge reads through GraphBuilder —
/// the compatibility path old cache files take.
CsrGraph load_binary_v1_payload(std::istream& in) {
  std::uint64_t v = 0;
  std::uint64_t e = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  in.read(reinterpret_cast<char*>(&e), sizeof(e));
  if (!in || v > kMaxVertices || e > kMaxEdges ||
      e * (2 * sizeof(VertexId)) > stream_remaining_bytes(in)) {
    throw IoError("bad binary graph header");
  }
  try {
    GraphBuilder builder(static_cast<VertexId>(v));
    builder.reserve_edges(e);
    for (std::uint64_t i = 0; i < e; ++i) {
      VertexId src = 0;
      VertexId dst = 0;
      in.read(reinterpret_cast<char*>(&src), sizeof(src));
      in.read(reinterpret_cast<char*>(&dst), sizeof(dst));
      if (!in) throw IoError("truncated binary graph");
      builder.add_edge(src, dst);
    }
    return builder.build();
  } catch (const CheckError& err) {
    // E.g. an edge record holding the unusable id 0xffffffff.
    throw IoError(std::string("corrupt binary graph: ") + err.what());
  }
}

/// v2 payload: four bulk reads straight into the CSR arrays, then the
/// from_parts parallel validation.
CsrGraph load_binary_v2_payload(std::istream& in) {
  std::uint64_t v = 0;
  std::uint64_t e = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  in.read(reinterpret_cast<char*>(&e), sizeof(e));
  // Payload size implied by the header; checked against the actual bytes
  // left (when seekable) so a corrupt header cannot demand terabyte
  // allocations before the truncation is noticed.
  const std::uint64_t payload = (v + 1) * 2 * sizeof(EdgeIndex) +
                                e * 2 * sizeof(VertexId);
  if (!in || v > kMaxVertices || e > kMaxEdges ||
      payload > stream_remaining_bytes(in)) {
    throw IoError("bad binary graph header");
  }
  try {
    std::vector<EdgeIndex> out_offsets(v + 1);
    std::vector<VertexId> out_targets(e);
    std::vector<EdgeIndex> in_offsets(v + 1);
    std::vector<VertexId> in_sources(e);
    const auto read_vec = [&in](auto& vec) {
      if (vec.empty()) return;
      in.read(reinterpret_cast<char*>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(vec[0])));
    };
    read_vec(out_offsets);
    read_vec(out_targets);
    read_vec(in_offsets);
    read_vec(in_sources);
    if (!in) throw IoError("truncated binary graph");
    return CsrGraph::from_parts(std::move(out_offsets),
                                std::move(out_targets), std::move(in_offsets),
                                std::move(in_sources));
  } catch (const CheckError& err) {
    throw IoError(std::string("corrupt binary graph: ") + err.what());
  } catch (const std::bad_alloc&) {
    throw IoError("bad binary graph header (sizes exceed memory)");
  }
}

/// v3 payload: per side, two bulk offset reads sized by the header, then
/// a payload read sized by the byte-offset array itself — every stage
/// checked against the actual bytes left before allocating — and finally
/// the from_parts parallel decode validation.
CompressedCsrGraph load_binary_v3_payload(std::istream& in) {
  std::uint64_t v = 0;
  std::uint64_t e = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  in.read(reinterpret_cast<char*>(&e), sizeof(e));
  // The offsets alone imply (v+1)·(8+8) bytes per side; checking that
  // floor here keeps a corrupt header from demanding absurd allocations.
  const std::uint64_t offsets_floor = (v + 1) * 2 * (sizeof(EdgeIndex) +
                                                     sizeof(std::uint64_t));
  if (!in || v > kMaxVertices || e > kMaxEdges ||
      offsets_floor > stream_remaining_bytes(in)) {
    throw IoError("bad binary graph header");
  }
  try {
    const auto read_side = [&in, v, e](CompressedAdjacency& adj) {
      adj.offsets.resize(v + 1);
      in.read(reinterpret_cast<char*>(adj.offsets.data()),
              static_cast<std::streamsize>(adj.offsets.size() *
                                           sizeof(EdgeIndex)));
      adj.byte_offsets.resize(v + 1);
      in.read(reinterpret_cast<char*>(adj.byte_offsets.data()),
              static_cast<std::streamsize>(adj.byte_offsets.size() *
                                           sizeof(std::uint64_t)));
      if (!in) throw IoError("truncated binary graph");
      if (adj.offsets.back() != e) {
        throw IoError("corrupt binary graph: edge count mismatch");
      }
      // Payload size comes from the (untrusted) byte-offset array: a row
      // of d ids never packs above 1 + 5·d bytes (a width-32 block costs
      // 4 bytes/field plus one header byte per 128 fields), so anything
      // past that bound — or past the bytes left — is corruption.
      const std::uint64_t payload = adj.byte_offsets.back();
      if (payload > e * 5 + v + 1 || payload > stream_remaining_bytes(in)) {
        throw IoError("bad binary graph header");
      }
      adj.bytes.assign(payload + simd::kDecodeSlack, 0);
      if (payload > 0) {
        in.read(reinterpret_cast<char*>(adj.bytes.data()),
                static_cast<std::streamsize>(payload));
      }
      if (!in) throw IoError("truncated binary graph");
    };
    CompressedAdjacency out_adj;
    CompressedAdjacency in_adj;
    read_side(out_adj);
    read_side(in_adj);
    return CompressedCsrGraph::from_parts(std::move(out_adj),
                                          std::move(in_adj));
  } catch (const CheckError& err) {
    throw IoError(std::string("corrupt binary graph: ") + err.what());
  } catch (const std::bad_alloc&) {
    throw IoError("bad binary graph header (sizes exceed memory)");
  }
}

}  // namespace

CsrGraph load_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in) throw IoError("bad magic in binary graph");
  if (magic == kMagicV1) return load_binary_v1_payload(in);
  if (magic == kMagicV2) return load_binary_v2_payload(in);
  if (magic == kMagicV3) return load_binary_v3_payload(in).decompress();
  throw IoError("bad magic in binary graph");
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_binary(in);
}

CompressedCsrGraph load_binary_compressed(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in) throw IoError("bad magic in binary graph");
  if (magic == kMagicV3) return load_binary_v3_payload(in);
  if (magic == kMagicV1) {
    return CompressedCsrGraph::from_graph(load_binary_v1_payload(in));
  }
  if (magic == kMagicV2) {
    return CompressedCsrGraph::from_graph(load_binary_v2_payload(in));
  }
  throw IoError("bad magic in binary graph");
}

CompressedCsrGraph load_binary_compressed_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_binary_compressed(in);
}

}  // namespace snaple
