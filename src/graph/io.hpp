// Edge-list IO.
//
// Two formats:
//  * text: one "src dst" pair per line, '#' comments — the format the
//    paper's SNAP datasets ship in, so users can feed the real gowalla /
//    pokec / livejournal / orkut / twitter-rv files if they have them.
//    The stream overload is the simple serial reference; the file/buffer
//    loaders mmap (or bulk-read) the input, split it into line-aligned
//    chunks and parse them across the thread pool with a hand-rolled
//    digit scanner — same semantics, built for the 1.4B-edge twitter-rv.
//  * binary: v2 serializes the four CSR arrays with bulk writes and loads
//    them back with bulk reads (no per-edge work, no re-sort); v1 (a tiny
//    header + raw edge array) remains readable for old cache files; v3
//    stores the delta-compressed rows (graph/compressed_csr.hpp) so a
//    compressed graph loads without ever inflating the flat adjacency.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace snaple {

class CompressedCsrGraph;
class ThreadPool;

/// Thrown on malformed input or unreadable files.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses a text edge list from a stream, serially — the reference
/// implementation the parallel loader is tested against. If `symmetrize`
/// is set, every edge is also added in reverse (the paper's treatment of
/// undirected datasets).
[[nodiscard]] CsrGraph load_edge_list_text(std::istream& in,
                                           bool symmetrize = false);

/// Parses an in-memory text edge list across `pool` (default pool when
/// null): the buffer is split into per-worker chunks aligned to line
/// boundaries and scanned without istringstream. Semantics match the
/// stream loader — '#'/'%' comments, the "# snaple edge list: N vertices"
/// header, 32-bit id validation, malformed-line errors with 1-based line
/// numbers — and the resulting CsrGraph is identical.
[[nodiscard]] CsrGraph load_edge_list_text_buffer(const char* data,
                                                  std::size_t size,
                                                  bool symmetrize = false,
                                                  ThreadPool* pool = nullptr);

/// mmaps `path` (falling back to one bulk read where mmap is unavailable
/// or fails) and parses it with the parallel buffer loader.
[[nodiscard]] CsrGraph load_edge_list_text_file(const std::string& path,
                                                bool symmetrize = false,
                                                ThreadPool* pool = nullptr);

void save_edge_list_text(const CsrGraph& g, std::ostream& out);
void save_edge_list_text_file(const CsrGraph& g, const std::string& path);

/// Loads any binary format, dispatching on the magic ("SNAPLEG1" |
/// "SNAPLEG2" | "SNAPLEG3"). v3 inputs are decompressed into a flat
/// CsrGraph; use load_binary_compressed to keep them compressed.
[[nodiscard]] CsrGraph load_binary(std::istream& in);
[[nodiscard]] CsrGraph load_binary_file(const std::string& path);

/// Saves format v2: header + the four CSR arrays as bulk little-endian
/// writes. Loading v2 is pure bulk reads plus an O(E) parallel validation
/// — no per-edge parsing, no rebuild.
void save_binary(const CsrGraph& g, std::ostream& out);
void save_binary_file(const CsrGraph& g, const std::string& path);

/// Saves legacy format v1 (header + raw edge array). Kept for
/// compatibility tooling and as the bench_ingest baseline; prefer v2.
void save_binary_v1(const CsrGraph& g, std::ostream& out);
void save_binary_v1_file(const CsrGraph& g, const std::string& path);

/// Saves format v3: header + both sides' compressed adjacencies (offsets,
/// byte offsets, packed payload) as bulk writes. The payload on disk is
/// exactly the in-memory encoding, so loading is bulk reads plus the
/// from_parts parallel validation — rows never inflate.
void save_binary_v3(const CompressedCsrGraph& g, std::ostream& out);
void save_binary_v3_file(const CompressedCsrGraph& g,
                         const std::string& path);

/// Loads a binary graph into compressed form. v3 inputs load natively
/// (no inflation at any point); v1/v2 inputs are loaded flat and then
/// compressed — a convenience for converting old cache files.
[[nodiscard]] CompressedCsrGraph load_binary_compressed(std::istream& in);
[[nodiscard]] CompressedCsrGraph load_binary_compressed_file(
    const std::string& path);

/// Where the stream is seekable, returns the bytes left after the current
/// position (and restores the position); SIZE_MAX when unseekable. Binary
/// loaders (graph v1/v2, core/model.hpp) check header-implied payload
/// sizes against this so a corrupt header cannot demand absurd
/// allocations before the truncation is noticed.
[[nodiscard]] std::uint64_t stream_remaining_bytes(std::istream& in);

}  // namespace snaple
