// Edge-list IO.
//
// Two formats:
//  * text: one "src dst" pair per line, '#' comments — the format the
//    paper's SNAP datasets ship in, so users can feed the real gowalla /
//    pokec / livejournal / orkut / twitter-rv files if they have them;
//  * binary: a tiny header + raw little-endian edge array, for fast
//    round-trips of generated replicas.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace snaple {

/// Thrown on malformed input or unreadable files.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Parses a text edge list. If `symmetrize` is set, every edge is also
/// added in reverse (the paper's treatment of undirected datasets).
[[nodiscard]] CsrGraph load_edge_list_text(std::istream& in,
                                           bool symmetrize = false);
[[nodiscard]] CsrGraph load_edge_list_text_file(const std::string& path,
                                                bool symmetrize = false);

void save_edge_list_text(const CsrGraph& g, std::ostream& out);
void save_edge_list_text_file(const CsrGraph& g, const std::string& path);

[[nodiscard]] CsrGraph load_binary(std::istream& in);
[[nodiscard]] CsrGraph load_binary_file(const std::string& path);

void save_binary(const CsrGraph& g, std::ostream& out);
void save_binary_file(const CsrGraph& g, const std::string& path);

}  // namespace snaple
