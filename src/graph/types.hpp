// Fundamental graph value types shared across the library.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

namespace snaple {

/// Vertex identifier. 32 bits holds 4.29e9 vertices — ample for the scaled
/// replicas and matching the memory discipline of engines like GraphLab
/// which pack ids tightly (twitter-rv has 41M vertices).
using VertexId = std::uint32_t;

/// Edge index into CSR storage; 64 bits because |E| exceeds 2^32 at the
/// paper's top end (1.4B edges).
using EdgeIndex = std::uint64_t;

/// A directed edge (source, target).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

struct EdgeHash {
  std::size_t operator()(const Edge& e) const noexcept {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace snaple
