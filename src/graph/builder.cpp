#include "graph/builder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <utility>

#include "util/thread_pool.hpp"

namespace snaple {

namespace {

// Block size for bandwidth-bound passes over edge arrays: big enough to
// amortize the per-block std::function call, small enough to balance.
constexpr std::size_t kEdgeBlock = 1 << 15;

}  // namespace

void GraphBuilder::add_edge(VertexId src, VertexId dst) {
  if (src == dst) return;
  // Id 0xffffffff is unusable: the vertex count (max id + 1) must itself
  // fit VertexId, and silently wrapping it to 0 would corrupt the build.
  SNAPLE_CHECK_MSG(std::max(src, dst) < 0xffffffffu,
                   "vertex id 0xffffffff exceeds the 32-bit id space");
  num_vertices_ = std::max({num_vertices_, static_cast<VertexId>(src + 1),
                            static_cast<VertexId>(dst + 1)});
  edges_.push_back({src, dst});
}

void GraphBuilder::add_edge_block(std::vector<Edge>&& block) {
  if (block.empty()) return;
  blocks_.push_back(std::move(block));
}

CsrGraph GraphBuilder::build(ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();

  // Every collected edge range, as spans so the passes below are uniform.
  std::vector<std::span<const Edge>> shards;
  shards.reserve(blocks_.size() + 1);
  if (!edges_.empty()) shards.emplace_back(edges_);
  for (const auto& b : blocks_) shards.emplace_back(b);

  // Vertex count: the add_edge/declare_vertices watermark, raised by a
  // parallel max-scan over the bulk blocks (self-loops never contribute,
  // matching add_edge, which drops them before looking at the ids). The
  // scan runs in 64 bits so id 0xffffffff is caught, not wrapped to 0.
  std::atomic<std::uint64_t> max_n{num_vertices_};
  for (const auto& b : blocks_) {
    tp.parallel_blocks(
        0, b.size(),
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          std::uint64_t local = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const Edge& e = b[i];
            if (e.src == e.dst) continue;
            local = std::max({local, std::uint64_t{e.src} + 1,
                              std::uint64_t{e.dst} + 1});
          }
          std::uint64_t seen = max_n.load(std::memory_order_relaxed);
          while (local > seen &&
                 !max_n.compare_exchange_weak(seen, local,
                                              std::memory_order_relaxed)) {
          }
        },
        kEdgeBlock);
  }
  const std::uint64_t v64 = max_n.load(std::memory_order_relaxed);
  SNAPLE_CHECK_MSG(v64 <= 0xffffffffULL,
                   "vertex id 0xffffffff exceeds the 32-bit id space");
  const auto v_count = static_cast<VertexId>(v64);

  // 1. Parallel out-degree histogram. u32 per row: a single source would
  // need > 2^32 raw edges to overflow, beyond the 32-bit id universe.
  std::vector<std::atomic<std::uint32_t>> counts(v_count);
  for (const auto& shard : shards) {
    tp.parallel_blocks(
        0, shard.size(),
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t i = lo; i < hi; ++i) {
            const Edge& e = shard[i];
            if (e.src == e.dst) continue;
            counts[e.src].fetch_add(1, std::memory_order_relaxed);
            if (mirror_) counts[e.dst].fetch_add(1, std::memory_order_relaxed);
          }
        },
        kEdgeBlock);
  }

  // 2. Prefix-sum offsets; reset the counters for reuse as scatter cursors.
  std::vector<EdgeIndex> raw_offsets(static_cast<std::size_t>(v_count) + 1, 0);
  for (VertexId u = 0; u < v_count; ++u) {
    raw_offsets[u + 1] =
        raw_offsets[u] + counts[u].load(std::memory_order_relaxed);
    counts[u].store(0, std::memory_order_relaxed);
  }
  const EdgeIndex raw_edges = raw_offsets[v_count];

  // 3. Parallel scatter of targets into per-source segments (order within
  // a segment is nondeterministic; the per-row sort below fixes that).
  std::vector<VertexId> raw_targets(raw_edges);
  for (const auto& shard : shards) {
    tp.parallel_blocks(
        0, shard.size(),
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          for (std::size_t i = lo; i < hi; ++i) {
            const Edge& e = shard[i];
            if (e.src == e.dst) continue;
            raw_targets[raw_offsets[e.src] +
                        counts[e.src].fetch_add(
                            1, std::memory_order_relaxed)] = e.dst;
            if (mirror_) {
              raw_targets[raw_offsets[e.dst] +
                          counts[e.dst].fetch_add(
                              1, std::memory_order_relaxed)] = e.src;
            }
          }
        },
        kEdgeBlock);
  }

  // The raw edge list is no longer needed — free it before the sort phase
  // so peak memory stays bounded.
  std::vector<Edge>().swap(edges_);
  std::vector<std::vector<Edge>>().swap(blocks_);

  // 4. Per-row sort + dedup count (stored back into the counters; each
  // row is owned by exactly one block iteration, so plain stores suffice).
  tp.parallel_blocks(
      0, v_count,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          const auto row_begin = raw_targets.begin() +
                                 static_cast<std::ptrdiff_t>(raw_offsets[u]);
          const auto row_end = raw_targets.begin() +
                               static_cast<std::ptrdiff_t>(raw_offsets[u + 1]);
          std::sort(row_begin, row_end);
          const auto unique_end = std::unique(row_begin, row_end);
          counts[u].store(
              static_cast<std::uint32_t>(unique_end - row_begin),
              std::memory_order_relaxed);
        }
      },
      /*min_block=*/1024);

  // 5. Compact into the final out-CSR.
  CsrGraph g;
  g.out_offsets_.assign(static_cast<std::size_t>(v_count) + 1, 0);
  for (VertexId u = 0; u < v_count; ++u) {
    g.out_offsets_[u + 1] =
        g.out_offsets_[u] + counts[u].load(std::memory_order_relaxed);
  }
  const EdgeIndex e_count = g.out_offsets_[v_count];
  g.out_targets_.resize(e_count);
  tp.parallel_blocks(
      0, v_count,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          const std::uint32_t deg = counts[u].load(std::memory_order_relaxed);
          std::copy_n(raw_targets.begin() +
                          static_cast<std::ptrdiff_t>(raw_offsets[u]),
                      deg,
                      g.out_targets_.begin() +
                          static_cast<std::ptrdiff_t>(g.out_offsets_[u]));
          counts[u].store(0, std::memory_order_relaxed);  // reuse for in-CSR
        }
      },
      /*min_block=*/1024);
  std::vector<VertexId>().swap(raw_targets);
  std::vector<EdgeIndex>().swap(raw_offsets);

  // 6. In-adjacency by the same counting sort over targets. Sources per
  // target are unique (the out-CSR is deduplicated), so no dedup pass.
  tp.parallel_blocks(
      0, v_count,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          for (EdgeIndex i = g.out_offsets_[u]; i < g.out_offsets_[u + 1];
               ++i) {
            counts[g.out_targets_[i]].fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      /*min_block=*/1024);
  g.in_offsets_.assign(static_cast<std::size_t>(v_count) + 1, 0);
  for (VertexId u = 0; u < v_count; ++u) {
    g.in_offsets_[u + 1] =
        g.in_offsets_[u] + counts[u].load(std::memory_order_relaxed);
    counts[u].store(0, std::memory_order_relaxed);
  }
  g.in_sources_.resize(e_count);
  tp.parallel_blocks(
      0, v_count,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          for (EdgeIndex i = g.out_offsets_[u]; i < g.out_offsets_[u + 1];
               ++i) {
            const VertexId v = g.out_targets_[i];
            g.in_sources_[g.in_offsets_[v] +
                          counts[v].fetch_add(1, std::memory_order_relaxed)] =
                static_cast<VertexId>(u);
          }
        }
      },
      /*min_block=*/1024);
  tp.parallel_blocks(
      0, v_count,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          std::sort(g.in_sources_.begin() +
                        static_cast<std::ptrdiff_t>(g.in_offsets_[u]),
                    g.in_sources_.begin() +
                        static_cast<std::ptrdiff_t>(g.in_offsets_[u + 1]));
        }
      },
      /*min_block=*/1024);

  num_vertices_ = 0;
  mirror_ = false;
  return g;
}

}  // namespace snaple
