#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

namespace snaple {

void GraphBuilder::add_edge(VertexId src, VertexId dst) {
  if (src == dst) return;
  num_vertices_ = std::max({num_vertices_, static_cast<VertexId>(src + 1),
                            static_cast<VertexId>(dst + 1)});
  edges_.push_back({src, dst});
}

void GraphBuilder::symmetrize() {
  const std::size_t n = edges_.size();
  edges_.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    edges_.push_back({edges_[i].dst, edges_[i].src});
  }
}

CsrGraph GraphBuilder::build() {
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  CsrGraph g;
  const VertexId v_count = num_vertices_;
  const EdgeIndex e_count = edges.size();

  g.out_offsets_.assign(v_count + 1, 0);
  g.out_targets_.resize(e_count);
  for (const auto& e : edges) ++g.out_offsets_[e.src + 1];
  for (VertexId u = 0; u < v_count; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  for (EdgeIndex i = 0; i < e_count; ++i) {
    g.out_targets_[i] = edges[i].dst;  // edges are sorted by (src, dst)
  }

  // In-adjacency by counting sort over targets; rows come out sorted by
  // source because we scan edges in (src, dst) order.
  g.in_offsets_.assign(v_count + 1, 0);
  g.in_sources_.resize(e_count);
  for (const auto& e : edges) ++g.in_offsets_[e.dst + 1];
  for (VertexId u = 0; u < v_count; ++u) {
    g.in_offsets_[u + 1] += g.in_offsets_[u];
  }
  std::vector<EdgeIndex> cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (const auto& e : edges) {
    g.in_sources_[cursor[e.dst]++] = e.src;
  }

  num_vertices_ = 0;
  return g;
}

}  // namespace snaple
