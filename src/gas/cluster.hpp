// Simulated cluster description.
//
// The paper's testbed (§5.1) has two machine types:
//   type-I : 2× Xeon L5420, 8 cores, 32 GB RAM, 1-Gigabit Ethernet
//   type-II: 2× Xeon E5-2660v2, 20 cores, 128 GB RAM, 10-Gigabit Ethernet
// deployed as up to 32 type-I nodes (256 cores) or 8 type-II nodes
// (160 cores). We reproduce the experiments on simulated clusters: the
// engine runs on host threads but attributes work, bytes and memory to
// the machines described here, and converts them into simulated
// distributed time (see network_model.hpp and docs/ARCHITECTURE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace snaple::gas {

struct MachineSpec {
  std::string name;
  std::size_t cores = 1;
  /// Sustained per-link network bandwidth in bytes/second.
  double bandwidth_bytes_per_s = 125e6;  // 1 GbE
  /// Per-machine memory budget in bytes; 0 disables memory enforcement.
  /// Experiments set this relative to their (scaled) dataset, since our
  /// replicas are smaller than the paper's graphs (docs/DATASETS.md).
  std::size_t memory_bytes = 0;
  /// Relative per-core throughput (1.0 = type-I core). Lets type-II cores
  /// differ without pretending to cycle-accuracy.
  double core_speed = 1.0;
};

struct ClusterConfig {
  MachineSpec machine;
  std::size_t num_machines = 1;
  /// Fixed synchronization cost charged per GAS superstep (barrier +
  /// message round-trips).
  double superstep_latency_s = 2e-3;

  [[nodiscard]] std::size_t total_cores() const noexcept {
    return machine.cores * num_machines;
  }

  /// The paper's type-I nodes: 8 cores, 32 GB, 1 GbE.
  [[nodiscard]] static ClusterConfig type_i(std::size_t machines,
                                            std::size_t memory_bytes = 0);

  /// The paper's type-II nodes: 20 cores, 128 GB, 10 GbE, faster cores.
  [[nodiscard]] static ClusterConfig type_ii(std::size_t machines,
                                             std::size_t memory_bytes = 0);

  /// A degenerate single-machine "cluster" (no network), used for the
  /// single-machine comparison of Table 6.
  [[nodiscard]] static ClusterConfig single_machine(std::size_t cores);

  [[nodiscard]] std::string describe() const;
};

}  // namespace snaple::gas
