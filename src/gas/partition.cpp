#include "gas/partition.hpp"

#include <algorithm>
#include <limits>

#include "graph/compressed_csr.hpp"
#include "util/rng.hpp"

namespace snaple::gas {

namespace {

MachineId least_loaded(const std::vector<EdgeIndex>& load,
                       std::uint64_t candidates) {
  MachineId best = 0;
  EdgeIndex best_load = std::numeric_limits<EdgeIndex>::max();
  std::uint64_t rest = candidates;
  while (rest != 0) {
    const int m = __builtin_ctzll(rest);
    rest &= rest - 1;
    if (load[m] < best_load) {
      best_load = load[m];
      best = static_cast<MachineId>(m);
    }
  }
  return best;
}

}  // namespace

std::vector<VertexRange> split_weighted_ranges(
    std::span<const std::uint64_t> prefix_weight, std::size_t parts) {
  SNAPLE_CHECK_MSG(!prefix_weight.empty() && prefix_weight.front() == 0,
                   "prefix weights must start at 0 (size n+1)");
  SNAPLE_CHECK_MSG(parts >= 1, "need at least one range");
  const auto n = static_cast<VertexId>(prefix_weight.size() - 1);
  SNAPLE_CHECK_MSG(std::is_sorted(prefix_weight.begin(), prefix_weight.end()),
                   "prefix weights must be monotone");
  const std::uint64_t total = prefix_weight.back();

  std::vector<VertexRange> ranges(parts);
  VertexId cursor = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    ranges[i].begin = cursor;
    if (i + 1 == parts) {
      cursor = n;
    } else {
      // Ideal boundary i+1 sits at weight total·(i+1)/parts; take the
      // vertex boundary whose prefix weight is closest (ties cut low,
      // via lower_bound), clamped so ranges stay sorted.
      const std::uint64_t target = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(total) * (i + 1)) / parts);
      auto it = std::lower_bound(prefix_weight.begin(), prefix_weight.end(),
                                 target);
      if (it != prefix_weight.begin() &&
          (it == prefix_weight.end() ||
           *it - target > target - *(it - 1))) {
        --it;
      }
      auto at = static_cast<VertexId>(it - prefix_weight.begin());
      cursor = std::clamp(at, cursor, n);
    }
    ranges[i].end = cursor;
  }
  return ranges;
}

std::size_t range_owner(std::span<const VertexRange> ranges, VertexId u) {
  SNAPLE_CHECK_MSG(!ranges.empty() && u < ranges.back().end,
                   "vertex outside every range");
  // First range whose end exceeds u; empty ranges have end <= u and are
  // skipped naturally.
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), u,
      [](VertexId key, const VertexRange& r) { return key < r.end; });
  return static_cast<std::size_t>(it - ranges.begin());
}

MachineId edge_local_machine(VertexId u, VertexId v, std::size_t machines,
                             std::uint64_t seed) noexcept {
  // Keyed by the endpoint pair alone (plus a constant that decorrelates
  // it from the step-1 truncation hash, which keys the same way on the
  // run seed). Modulo bias at machines <= 64 is negligible, and the
  // rule's value is determinism, not perfect uniformity.
  SplitMix64 sm(seed ^ 0xed6e'10ca'1b1a'5edbULL ^
                ((static_cast<std::uint64_t>(u) << 32) | v));
  return static_cast<MachineId>(sm.next() % machines);
}

namespace {

/// Shared epilogue: derive replica sets, loads and masters from a
/// complete per-edge assignment. Graph is CsrGraph or CompressedCsrGraph
/// (identical rows and edge indices, so the result cannot differ).
template <typename Graph>
void finalize_from_edges(const Graph& g, std::uint64_t seed,
                         std::vector<MachineId>& edge_machine,
                         std::vector<ReplicaSet>& replicas,
                         std::vector<std::uint64_t>& out_owner_mask,
                         std::vector<std::uint64_t>& in_owner_mask,
                         std::vector<EdgeIndex>& edge_load,
                         std::vector<MachineId>& master,
                         std::size_t machines) {
  EdgeIndex e = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      const MachineId m = edge_machine[e];
      SNAPLE_CHECK_MSG(m < machines, "edge assigned to unknown machine");
      ++edge_load[m];
      replicas[u].add(m);
      replicas[v].add(m);
      out_owner_mask[u] |= std::uint64_t{1} << m;
      in_owner_mask[v] |= std::uint64_t{1} << m;
      ++e;
    }
  }

  // Masters: the replica machine holding the most of u's edges,
  // tie-broken by lowest machine id. Isolated vertices get hash placement.
  std::vector<EdgeIndex> tally(machines);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (replicas[u].empty()) {
      const auto m =
          static_cast<MachineId>(SplitMix64(seed ^ u).next() % machines);
      replicas[u].add(m);
      master[u] = m;
      continue;
    }
    std::fill(tally.begin(), tally.end(), 0);
    const EdgeIndex begin = g.out_offset(u);
    const EdgeIndex end = begin + g.out_degree(u);
    for (EdgeIndex i = begin; i < end; ++i) ++tally[edge_machine[i]];
    for (VertexId v : g.in_neighbors(u)) {
      ++tally[edge_machine[g.edge_index(v, u)]];
    }
    MachineId best = 255;
    EdgeIndex best_count = 0;
    replicas[u].for_each([&](MachineId m) {
      if (best == 255 || tally[m] > best_count) {
        best_count = tally[m];
        best = m;
      }
    });
    master[u] = best;
  }
}

}  // namespace

template <typename Graph>
Partitioning Partitioning::from_edges_impl(
    const Graph& g, std::size_t machines,
    std::vector<MachineId> edge_machine) {
  SNAPLE_CHECK_MSG(machines >= 1 && machines <= 64,
                   "vertex-cut replica sets are 64-bit masks");
  SNAPLE_CHECK_MSG(edge_machine.size() == g.num_edges(),
                   "need one machine per CSR edge");
  // Validate the whole assignment up front with a pinpointing error:
  // an out-of-range id must never reach the replica/load bookkeeping
  // (ReplicaSet masks are 64-bit and edge_load_ has `machines` slots).
  for (EdgeIndex e = 0; e < edge_machine.size(); ++e) {
    SNAPLE_CHECK_MSG(edge_machine[e] < machines,
                     "edge_machine[" + std::to_string(e) + "] = " +
                         std::to_string(edge_machine[e]) +
                         " but the partitioning has only " +
                         std::to_string(machines) + " machines");
  }
  Partitioning p;
  p.machines_ = machines;
  p.edge_machine_ = std::move(edge_machine);
  p.master_.assign(g.num_vertices(), 0);
  p.replicas_.assign(g.num_vertices(), ReplicaSet{});
  p.out_owner_mask_.assign(g.num_vertices(), 0);
  p.in_owner_mask_.assign(g.num_vertices(), 0);
  p.edge_load_.assign(machines, 0);
  finalize_from_edges(g, /*seed=*/7, p.edge_machine_, p.replicas_,
                      p.out_owner_mask_, p.in_owner_mask_, p.edge_load_,
                      p.master_, machines);
  return p;
}

template <typename Graph>
Partitioning Partitioning::create_impl(const Graph& g, std::size_t machines,
                                       PartitionStrategy strategy,
                                       std::uint64_t seed) {
  SNAPLE_CHECK_MSG(machines >= 1 && machines <= 64,
                   "vertex-cut replica sets are 64-bit masks");
  Partitioning p;
  p.machines_ = machines;
  p.edge_machine_.resize(g.num_edges());
  p.master_.assign(g.num_vertices(), 0);
  p.replicas_.assign(g.num_vertices(), ReplicaSet{});
  p.out_owner_mask_.assign(g.num_vertices(), 0);
  p.in_owner_mask_.assign(g.num_vertices(), 0);
  p.edge_load_.assign(machines, 0);

  Rng rng(seed);
  const std::uint64_t all_mask =
      machines == 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << machines) - 1);

  EdgeIndex e = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      MachineId m;
      if (strategy == PartitionStrategy::kEdgeLocal) {
        m = edge_local_machine(u, v, machines, seed);
      } else if (strategy == PartitionStrategy::kHash || machines == 1) {
        m = static_cast<MachineId>(rng.next_below(machines));
      } else {
        // Oblivious greedy (PowerGraph): intersection of the endpoints'
        // replica sets first, then their union, then global least-loaded.
        const std::uint64_t au = p.replicas_[u].bits();
        const std::uint64_t av = p.replicas_[v].bits();
        std::uint64_t candidates = au & av;
        if (candidates == 0) candidates = au | av;
        if (candidates == 0) candidates = all_mask;
        m = least_loaded(p.edge_load_, candidates);
        // Balance guard: pure locality preference can snowball the whole
        // graph onto one machine (each new vertex inherits its anchor's
        // placement). If the locality pick is clearly overloaded, spill
        // to the global least-loaded machine, as PowerGraph's balanced
        // greedy does.
        const EdgeIndex average = e / machines + 1;
        if (p.edge_load_[m] > 2 * average + 8) {
          m = least_loaded(p.edge_load_, all_mask);
        }
      }
      p.edge_machine_[e] = m;
      ++p.edge_load_[m];
      p.replicas_[u].add(m);
      p.replicas_[v].add(m);
      ++e;
    }
  }

  // The incremental replica/load bookkeeping above only served the
  // greedy placement decisions; rebuild them with the shared epilogue,
  // which also derives the masters.
  p.replicas_.assign(g.num_vertices(), ReplicaSet{});
  p.edge_load_.assign(machines, 0);
  finalize_from_edges(g, seed, p.edge_machine_, p.replicas_,
                      p.out_owner_mask_, p.in_owner_mask_, p.edge_load_,
                      p.master_, machines);
  return p;
}

Partitioning Partitioning::from_edge_assignment(
    const CsrGraph& g, std::size_t machines,
    std::vector<MachineId> edge_machine) {
  return from_edges_impl(g, machines, std::move(edge_machine));
}

Partitioning Partitioning::from_edge_assignment(
    const CompressedCsrGraph& g, std::size_t machines,
    std::vector<MachineId> edge_machine) {
  return from_edges_impl(g, machines, std::move(edge_machine));
}

Partitioning Partitioning::create(const CsrGraph& g, std::size_t machines,
                                  PartitionStrategy strategy,
                                  std::uint64_t seed) {
  return create_impl(g, machines, strategy, seed);
}

Partitioning Partitioning::create(const CompressedCsrGraph& g,
                                  std::size_t machines,
                                  PartitionStrategy strategy,
                                  std::uint64_t seed) {
  return create_impl(g, machines, strategy, seed);
}

double Partitioning::replication_factor() const {
  if (replicas_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& r : replicas_) total += r.count();
  return static_cast<double>(total) / static_cast<double>(replicas_.size());
}

}  // namespace snaple::gas
