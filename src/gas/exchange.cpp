#include "gas/exchange.hpp"

#include <sstream>

namespace snaple::gas {

std::string ExchangeBreakdown::describe() const {
  std::ostringstream os;
  os << "gather+build " << gather_build_s << "s, merge+apply "
     << merge_apply_s << "s, sync drain " << sync_drain_s << "s";
  return os.str();
}

}  // namespace snaple::gas
