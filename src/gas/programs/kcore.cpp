#include "gas/programs/kcore.hpp"

#include <atomic>

namespace snaple::gas {

namespace {

struct CoreData {
  bool active = true;
};

struct ActiveAcc {
  std::size_t active_neighbors = 0;
  void clear() noexcept { active_neighbors = 0; }
  void merge(ActiveAcc&& other) noexcept {
    active_neighbors += other.active_neighbors;
  }
};

}  // namespace

KCoreResult k_core(const CsrGraph& graph, std::size_t k,
                   const Partitioning& partitioning,
                   const ClusterConfig& cluster, ThreadPool* pool,
                   ExecutionMode exec) {
  Engine<CoreData> engine(
      graph, partitioning, cluster,
      [](const CoreData&) { return sizeof(std::uint8_t); }, pool, exec);

  KCoreResult result;
  for (;;) {
    std::atomic<std::size_t> peeled{0};
    StepOptions opt{.name = "kcore-" + std::to_string(result.iterations),
                    .dir = EdgeDir::kOut,
                    .mode = ApplyMode::kTwoPhase};
    engine.step<ActiveAcc>(
        opt,
        [](VertexId, VertexId, const CoreData&, const CoreData& dv,
           ActiveAcc& acc) -> std::size_t {
          if (!dv.active) return 0;
          ++acc.active_neighbors;
          return sizeof(std::uint8_t);
        },
        [&](VertexId, CoreData& du, ActiveAcc& acc, std::size_t) {
          if (du.active && acc.active_neighbors < k) {
            du.active = false;
            peeled.fetch_add(1, std::memory_order_relaxed);
          }
        });
    ++result.iterations;
    if (peeled.load(std::memory_order_relaxed) == 0) break;
  }

  result.in_core.reserve(graph.num_vertices());
  for (const auto& d : engine.data()) {
    result.in_core.push_back(d.active);
    result.core_size += d.active;
  }
  result.report = engine.report();
  return result;
}

}  // namespace snaple::gas
