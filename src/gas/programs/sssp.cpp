#include "gas/programs/sssp.hpp"

#include <atomic>

namespace snaple::gas {

namespace {

struct DistData {
  std::uint32_t dist = kInfiniteDistance;
};

struct MinDistAcc {
  std::uint32_t best = kInfiniteDistance;
  void clear() noexcept { best = kInfiniteDistance; }
  void merge(MinDistAcc&& other) noexcept {
    best = std::min(best, other.best);
  }
};

}  // namespace

SsspResult shortest_paths(const CsrGraph& graph, VertexId source,
                          const Partitioning& partitioning,
                          const ClusterConfig& cluster, ThreadPool* pool,
                          ExecutionMode exec) {
  SNAPLE_CHECK(source < graph.num_vertices());
  Engine<DistData> engine(
      graph, partitioning, cluster,
      [](const DistData&) { return sizeof(std::uint32_t); }, pool, exec);
  engine.data()[source].dist = 0;

  SsspResult result;
  for (;;) {
    std::atomic<std::size_t> relaxed{0};
    StepOptions opt{.name = "sssp-" + std::to_string(result.iterations),
                    .dir = EdgeDir::kIn,
                    .mode = ApplyMode::kTwoPhase};
    engine.step<MinDistAcc>(
        opt,
        [](VertexId, VertexId, const DistData&, const DistData& dv,
           MinDistAcc& acc) -> std::size_t {
          if (dv.dist == kInfiniteDistance) return 0;  // nothing to offer
          acc.best = std::min(acc.best, dv.dist + 1);
          return sizeof(std::uint32_t);
        },
        [&](VertexId, DistData& du, MinDistAcc& acc, std::size_t) {
          if (acc.best < du.dist) {
            du.dist = acc.best;
            relaxed.fetch_add(1, std::memory_order_relaxed);
          }
        });
    ++result.iterations;
    if (relaxed.load(std::memory_order_relaxed) == 0) break;
  }

  result.distances.reserve(graph.num_vertices());
  for (const auto& d : engine.data()) result.distances.push_back(d.dist);
  result.report = engine.report();
  return result;
}

}  // namespace snaple::gas
