#include "gas/programs/triangles.hpp"

#include <algorithm>

namespace snaple::gas {

namespace {

/// Merge-count of common elements (local copy: snaple_gas must not
/// depend on snaple_core, where the similarity kernels live).
std::size_t intersection_size(const std::vector<VertexId>& a,
                              const std::vector<VertexId>& b) noexcept {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

struct TriData {
  std::vector<VertexId> gamma;  // sorted out-neighbors
  std::uint64_t count = 0;
};

std::size_t tri_bytes(const TriData& d) {
  return sizeof(std::uint32_t) + d.gamma.size() * sizeof(VertexId) +
         sizeof(std::uint64_t);
}

struct CountAcc {
  std::uint64_t total = 0;
  void clear() noexcept { total = 0; }
  void merge(CountAcc&& other) noexcept { total += other.total; }
};

}  // namespace

TriangleResult count_triangles(const CsrGraph& graph,
                               const Partitioning& partitioning,
                               const ClusterConfig& cluster,
                               ThreadPool* pool, ExecutionMode exec) {
  // Spot-check symmetry on a deterministic sample of vertices.
  for (VertexId u = 0; u < graph.num_vertices();
       u += std::max<VertexId>(1, graph.num_vertices() / 64)) {
    for (VertexId v : graph.out_neighbors(u)) {
      SNAPLE_CHECK_MSG(graph.has_edge(v, u),
                       "count_triangles requires a symmetric graph");
    }
  }

  Engine<TriData> engine(graph, partitioning, cluster, &tri_bytes, pool,
                         exec);

  {
    StepOptions opt{.name = "tri-collect",
                    .dir = EdgeDir::kOut,
                    .mode = ApplyMode::kFused};
    engine.step<std::vector<VertexId>>(
        opt,
        [](VertexId, VertexId v, const TriData&, const TriData&,
           std::vector<VertexId>& acc) {
          acc.push_back(v);
          return sizeof(VertexId);
        },
        [](VertexId, TriData& du, std::vector<VertexId>& acc,
           std::size_t) {
          du.gamma.assign(acc.begin(), acc.end());
          std::sort(du.gamma.begin(), du.gamma.end());
        });
  }
  {
    StepOptions opt{.name = "tri-count",
                    .dir = EdgeDir::kOut,
                    .mode = ApplyMode::kFused};
    engine.step<CountAcc>(
        opt,
        [](VertexId, VertexId, const TriData& du, const TriData& dv,
           CountAcc& acc) {
          acc.total += intersection_size(du.gamma, dv.gamma);
          return sizeof(std::uint64_t);
        },
        [](VertexId, TriData& du, CountAcc& acc, std::size_t) {
          du.count = acc.total;
        });
  }

  TriangleResult result;
  result.triangles_per_vertex.reserve(graph.num_vertices());
  std::uint64_t grand_total = 0;
  for (const auto& d : engine.data()) {
    // Each triangle through u is seen once via each of its two other
    // members; the raw count is 2 per triangle.
    result.triangles_per_vertex.push_back(d.count / 2);
    grand_total += d.count;
  }
  result.total_triangles = grand_total / 6;
  result.report = engine.report();
  return result;
}

}  // namespace snaple::gas
