// k-core decomposition by iterative peeling on the GAS engine.
//
// A vertex is in the k-core if it has >= k neighbors that are themselves
// in the k-core. Each superstep every active vertex counts its active
// neighbors and deactivates if below k; repeats until a fixpoint.
// On symmetric graphs this matches the textbook definition (tests check
// cliques, chains and an independent reference).
#pragma once

#include <vector>

#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::gas {

struct KCoreResult {
  /// in_core[u] = true iff u survives peeling at the requested k.
  std::vector<bool> in_core;
  std::size_t core_size = 0;
  std::size_t iterations = 0;
  EngineReport report;
};

[[nodiscard]] KCoreResult k_core(const CsrGraph& graph, std::size_t k,
                                 const Partitioning& partitioning,
                                 const ClusterConfig& cluster,
                                 ThreadPool* pool = nullptr,
                                 ExecutionMode exec = ExecutionMode::kFlat);

}  // namespace snaple::gas
