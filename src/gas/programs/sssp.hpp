// Single-source shortest paths (unweighted hops) on the GAS engine.
//
// Bellman-Ford-shaped: every superstep each vertex gathers
// min(dist(predecessor) + 1) over in-edges and relaxes. Unreachable
// vertices keep kInfiniteDistance. Matches the BFS reference in
// graph/analysis (a test asserts it).
#pragma once

#include <cstdint>
#include <vector>

#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::gas {

inline constexpr std::uint32_t kInfiniteDistance = 0xffffffffu;

struct SsspResult {
  std::vector<std::uint32_t> distances;  // hops from source
  std::size_t iterations = 0;
  EngineReport report;
};

[[nodiscard]] SsspResult shortest_paths(const CsrGraph& graph,
                                        VertexId source,
                                        const Partitioning& partitioning,
                                        const ClusterConfig& cluster,
                                        ThreadPool* pool = nullptr,
                                        ExecutionMode exec =
                                            ExecutionMode::kFlat);

}  // namespace snaple::gas
