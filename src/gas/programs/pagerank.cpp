#include "gas/programs/pagerank.hpp"

#include <atomic>
#include <cmath>

namespace snaple::gas {

namespace {

struct RankData {
  double rank = 0.0;
};

struct RankAcc {
  double total = 0.0;
  void clear() noexcept { total = 0.0; }
  void merge(RankAcc&& other) noexcept { total += other.total; }
};

}  // namespace

PageRankResult pagerank(const CsrGraph& graph,
                        const Partitioning& partitioning,
                        const ClusterConfig& cluster,
                        const PageRankOptions& options, ThreadPool* pool,
                        ExecutionMode exec) {
  SNAPLE_CHECK(options.damping > 0.0 && options.damping < 1.0);
  const auto n = static_cast<double>(graph.num_vertices());
  Engine<RankData> engine(
      graph, partitioning, cluster,
      [](const RankData&) { return sizeof(double); }, pool, exec);
  for (auto& d : engine.data()) d.rank = 1.0 / n;

  PageRankResult result;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Per-worker L1 deltas folded into one atomic after each apply; the
    // relaxed add is safe — doubles are only read after the superstep.
    std::atomic<double> l1_delta{0.0};
    StepOptions opt{.name = "pagerank-" + std::to_string(it),
                    .dir = EdgeDir::kIn,
                    .mode = ApplyMode::kTwoPhase};
    engine.step<RankAcc>(
        opt,
        [&](VertexId, VertexId v, const RankData&, const RankData& dv,
            RankAcc& acc) {
          acc.total += dv.rank /
                       static_cast<double>(graph.out_degree(v));
          return sizeof(double);
        },
        [&](VertexId, RankData& du, RankAcc& acc, std::size_t) {
          const double next =
              (1.0 - options.damping) / n + options.damping * acc.total;
          const double delta = std::abs(next - du.rank);
          du.rank = next;
          // fetch_add for doubles needs C++20 atomic<double>::fetch_add;
          // emulate with a CAS loop to stay portable.
          double cur = l1_delta.load(std::memory_order_relaxed);
          while (!l1_delta.compare_exchange_weak(
              cur, cur + delta, std::memory_order_relaxed)) {
          }
        });
    result.iterations = it + 1;
    if (l1_delta.load(std::memory_order_relaxed) < options.tolerance) break;
  }

  result.ranks.reserve(graph.num_vertices());
  for (const auto& d : engine.data()) result.ranks.push_back(d.rank);
  result.report = engine.report();
  return result;
}

}  // namespace snaple::gas
