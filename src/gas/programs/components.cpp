#include "gas/programs/components.hpp"

#include <atomic>

namespace snaple::gas {

namespace {

struct LabelData {
  VertexId label = 0;
};

struct MinAcc {
  VertexId min_label = 0xffffffffu;
  void clear() noexcept { min_label = 0xffffffffu; }
  void merge(MinAcc&& other) noexcept {
    min_label = std::min(min_label, other.min_label);
  }
};

}  // namespace

ComponentsResult connected_components(const CsrGraph& graph,
                                      const Partitioning& partitioning,
                                      const ClusterConfig& cluster,
                                      ThreadPool* pool, ExecutionMode exec) {
  Engine<LabelData> engine(
      graph, partitioning, cluster,
      [](const LabelData&) { return sizeof(VertexId); }, pool, exec);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    engine.data()[u].label = u;
  }

  ComponentsResult result;
  // Labels shrink monotonically, so the loop terminates; the diameter
  // bounds the superstep count.
  for (;;) {
    std::atomic<std::size_t> changed{0};
    StepOptions opt{.name = "cc-" + std::to_string(result.iterations),
                    .dir = EdgeDir::kAll,
                    .mode = ApplyMode::kTwoPhase};
    engine.step<MinAcc>(
        opt,
        [](VertexId, VertexId, const LabelData&, const LabelData& dv,
           MinAcc& acc) {
          acc.min_label = std::min(acc.min_label, dv.label);
          return sizeof(VertexId);
        },
        [&](VertexId, LabelData& du, MinAcc& acc, std::size_t contribs) {
          if (contribs > 0 && acc.min_label < du.label) {
            du.label = acc.min_label;
            changed.fetch_add(1, std::memory_order_relaxed);
          }
        });
    ++result.iterations;
    if (changed.load(std::memory_order_relaxed) == 0) break;
  }

  result.labels.reserve(graph.num_vertices());
  for (const auto& d : engine.data()) result.labels.push_back(d.label);
  result.report = engine.report();
  return result;
}

}  // namespace snaple::gas
