// Weakly-connected components by label propagation on the GAS engine.
//
// Every vertex starts labeled with its own id; each superstep gathers the
// minimum label over ALL adjacent edges and adopts it if smaller.
// Converges in O(diameter) supersteps; the result matches the union-find
// reference in graph/analysis (a test asserts it).
#pragma once

#include <vector>

#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::gas {

struct ComponentsResult {
  /// labels[u] = smallest vertex id in u's weakly-connected component.
  std::vector<VertexId> labels;
  std::size_t iterations = 0;
  EngineReport report;
};

[[nodiscard]] ComponentsResult connected_components(
    const CsrGraph& graph, const Partitioning& partitioning,
    const ClusterConfig& cluster, ThreadPool* pool = nullptr,
    ExecutionMode exec = ExecutionMode::kFlat);

}  // namespace snaple::gas
