// Triangle counting on the GAS engine (for symmetric graphs).
//
// Two supersteps: collect sorted neighbor lists, then per edge (u,v)
// count |Γ(u) ∩ Γ(v)| — every common neighbor closes a triangle. For a
// symmetric (undirected-style) graph each triangle {a,b,c} contributes 2
// to each member's count, so per-vertex triangles are count/2 and the
// global total is Σcount/6. This is also the engine-level demonstration
// of the neighborhood-shipping cost the paper's BASELINE suffers: the
// step-1 gather type is a whole adjacency list.
#pragma once

#include <cstdint>
#include <vector>

#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::gas {

struct TriangleResult {
  /// triangles_per_vertex[u] = number of triangles containing u.
  std::vector<std::uint64_t> triangles_per_vertex;
  std::uint64_t total_triangles = 0;
  EngineReport report;
};

/// Requires a symmetric graph (every edge present in both directions);
/// throws CheckError otherwise (verified on a sample).
[[nodiscard]] TriangleResult count_triangles(
    const CsrGraph& graph, const Partitioning& partitioning,
    const ClusterConfig& cluster, ThreadPool* pool = nullptr,
    ExecutionMode exec = ExecutionMode::kFlat);

}  // namespace snaple::gas
