// PageRank as a GAS vertex program.
//
// The canonical GAS example (PowerGraph §3): each vertex gathers
// rank/out-degree over its in-edges and applies the damped update. Runs
// in strict two-phase mode — apply writes the rank that the next
// superstep's gathers read. Included both as engine validation (tests
// compare against a dense reference) and because a GAS substrate without
// PageRank would not be credible.
#pragma once

#include <cstddef>
#include <vector>

#include "gas/cluster.hpp"
#include "gas/engine.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/thread_pool.hpp"

namespace snaple::gas {

struct PageRankOptions {
  double damping = 0.85;
  std::size_t max_iterations = 100;
  /// Stop when the L1 change of the rank vector falls below this.
  double tolerance = 1e-9;
};

struct PageRankResult {
  std::vector<double> ranks;       // sums to ~1
  std::size_t iterations = 0;      // supersteps actually run
  EngineReport report;
};

[[nodiscard]] PageRankResult pagerank(const CsrGraph& graph,
                                      const Partitioning& partitioning,
                                      const ClusterConfig& cluster,
                                      const PageRankOptions& options = {},
                                      ThreadPool* pool = nullptr,
                                      ExecutionMode exec =
                                          ExecutionMode::kFlat);

}  // namespace snaple::gas
