#include "gas/shard.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace snaple::gas {

VertexId Shard::local_id(VertexId global) const {
  const auto it =
      std::lower_bound(vertices_.begin(), vertices_.end(), global);
  SNAPLE_CHECK_MSG(it != vertices_.end() && *it == global,
                   "vertex is not replicated on this shard");
  return static_cast<VertexId>(it - vertices_.begin());
}

void Shard::compress_local() {
  // Serial encode: this runs inside the per-machine build task, and a
  // nested parallel_for on the same pool is rejected.
  out_comp_ = CompressedAdjacency::encode_serial(out_offsets_, out_targets_);
  in_comp_ = CompressedAdjacency::encode_serial(in_offsets_, in_sources_);
  out_offsets_ = {};
  out_targets_ = {};
  in_offsets_ = {};
  in_sources_ = {};
  compressed_ = true;
}

std::span<const VertexId> Shard::decode_row(const CompressedAdjacency& adj,
                                            int side, VertexId local) const {
  // Shard rows get their own per-thread scratch (distinct from
  // CompressedCsrGraph's) so a sharded step over a compressed graph can
  // interleave graph-row and shard-row decodes freely. One buffer per
  // side: the engine's kAll gather walks out- then in-rows of the same
  // vertex and both spans must stay valid across the switch.
  thread_local std::vector<VertexId> scratch[2];
  std::vector<VertexId>& buf = scratch[side];
  const std::size_t degree = adj.degree(local);
  if (buf.size() < degree) buf.resize(std::max<std::size_t>(degree, 256));
  adj.decode_row(local, buf.data());
  return {buf.data(), degree};
}

template <typename Graph>
ShardTopology ShardTopology::build_impl(const Graph& g, const Partitioning& p,
                                        ThreadPool* pool,
                                        bool compress_slices) {
  ThreadPool& tp = pool != nullptr ? *pool : default_pool();
  const std::size_t machines = p.num_machines();
  ShardTopology topo;
  topo.shards_.resize(machines);

  // One independent task per machine: each scans the global CSR and keeps
  // what the partitioning assigned to it. Work is O(E + V) per machine —
  // a build-time cost paid once per (graph, partitioning) pair.
  tp.parallel_for(0, machines, [&](std::size_t mi, std::size_t) {
    const auto m = static_cast<MachineId>(mi);
    Shard& s = topo.shards_[mi];
    s.machine_ = m;

    // Local vertex set: every vertex replicated here, ascending, so the
    // local id order mirrors global id order.
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (p.replicas(u).contains(m)) s.vertices_.push_back(u);
    }
    const std::size_t n_local = s.vertices_.size();
    s.is_master_.assign(n_local, 0);
    s.sync_fanout_.assign(machines, 0);
    for (VertexId l = 0; l < n_local; ++l) {
      const VertexId u = s.vertices_[l];
      if (p.master(u) == m) {
        s.is_master_[l] = 1;
        s.masters_.push_back(l);
        p.replicas(u).for_each([&](MachineId r) {
          if (r != m) ++s.sync_fanout_[r];
        });
      }
    }

    // Local out-CSR in one pass: for each local source, append the
    // subsequence of its global out-edges owned by this machine, targets
    // remapped to local ids. Exact final size is the partitioning's edge
    // load, so the append never reallocates.
    s.out_offsets_.assign(n_local + 1, 0);
    s.out_targets_.reserve(p.edges_per_machine()[m]);
    for (VertexId l = 0; l < n_local; ++l) {
      const VertexId u = s.vertices_[l];
      const EdgeIndex base = g.out_offset(u);
      const auto nbrs = g.out_neighbors(u);
      // Neighbor rows are sorted, so resume each global→local lookup
      // where the previous one ended instead of bisecting the whole
      // vertex list per edge.
      auto hint = s.vertices_.begin();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (p.edge_machine(base + i) == m) {
          hint = std::lower_bound(hint, s.vertices_.end(), nbrs[i]);
          s.out_targets_.push_back(
              static_cast<VertexId>(hint - s.vertices_.begin()));
        }
      }
      s.out_offsets_[l + 1] = s.out_targets_.size();
    }

    // Local in-CSR by scattering the out slice: walking local sources in
    // ascending order appends each target's in-sources in ascending
    // global source order — the same order CsrGraph::in_neighbors yields
    // after filtering to this machine's edges.
    s.in_offsets_.assign(n_local + 1, 0);
    for (const VertexId t : s.out_targets_) ++s.in_offsets_[t + 1];
    for (std::size_t l = 1; l <= n_local; ++l) {
      s.in_offsets_[l] += s.in_offsets_[l - 1];
    }
    s.in_sources_.resize(s.out_targets_.size());
    std::vector<EdgeIndex> cursor(s.in_offsets_.begin(),
                                  s.in_offsets_.end() - 1);
    for (VertexId l = 0; l < n_local; ++l) {
      for (const VertexId t : s.out_neighbors(l)) {
        s.in_sources_[cursor[t]++] = l;
      }
    }

    // Local rows are ascending (local id order mirrors global order), so
    // they delta-compress exactly like global rows do.
    if (compress_slices) s.compress_local();
  });

  return topo;
}

ShardTopology ShardTopology::build(const CsrGraph& g, const Partitioning& p,
                                   ThreadPool* pool, bool compress_slices) {
  return build_impl(g, p, pool, compress_slices);
}

ShardTopology ShardTopology::build(const CompressedCsrGraph& g,
                                   const Partitioning& p, ThreadPool* pool,
                                   bool compress_slices) {
  return build_impl(g, p, pool, compress_slices);
}

}  // namespace snaple::gas
