// Wire-size estimation for gather results and vertex data.
//
// The engine charges network traffic for every gather partial shipped from
// a mirror to a master and for every vertex-data sync from master to
// mirrors. Sizes model a compact binary encoding (what GraphLab's
// serializers produce), not C++ object layout: a vector<uint32_t> costs
// 4 bytes per element plus a length word.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace snaple::gas {

template <typename T>
  requires std::is_arithmetic_v<T> || std::is_enum_v<T>
[[nodiscard]] constexpr std::size_t byte_size(const T&) noexcept {
  return sizeof(T);
}

template <typename A, typename B>
[[nodiscard]] constexpr std::size_t byte_size(const std::pair<A, B>& p) noexcept {
  return byte_size(p.first) + byte_size(p.second);
}

template <typename T>
[[nodiscard]] std::size_t byte_size(const std::vector<T>& v) noexcept {
  std::size_t total = sizeof(std::uint32_t);  // length prefix
  if constexpr (std::is_arithmetic_v<T> || std::is_enum_v<T>) {
    total += v.size() * sizeof(T);
  } else {
    for (const auto& x : v) total += byte_size(x);
  }
  return total;
}

}  // namespace snaple::gas
