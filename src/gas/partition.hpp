// PowerGraph-style vertex-cut partitioning.
//
// GraphLab 2.x assigns *edges* to machines; a vertex is replicated on every
// machine holding at least one of its edges, with one replica designated
// master. Vertex-cuts dominate edge-cuts on power-law graphs because a hub
// vertex's edges can be spread over many machines without cutting all of
// them (Gonzalez et al., OSDI'12 — reference [11] of the paper).
//
// Two strategies:
//  * Hash  — uniform random edge placement (GraphLab's default "random");
//  * Greedy — the oblivious greedy heuristic: prefer machines that already
//    host both endpoints, then either endpoint, breaking ties by load.
// The engine charges network traffic proportional to replica count, so
// replication_factor() is the quantity to compare (micro bench ablation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/check.hpp"

namespace snaple {
class CompressedCsrGraph;
}

namespace snaple::gas {

using MachineId = std::uint8_t;

/// A contiguous, half-open vertex range [begin, end) — the unit of
/// *range* partitioning. Where the vertex-cut Partitioning below spreads
/// edges over machines, range partitioning assigns whole vertices to
/// consecutive slices: the layout the sharded serving tier uses, because
/// a model's flattened per-vertex arrays slice cleanly along it and the
/// owner of a vertex is one comparison away (serve/model_shard.hpp).
struct VertexRange {
  VertexId begin = 0;
  VertexId end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(VertexId u) const noexcept {
    return u >= begin && u < end;
  }
  friend bool operator==(const VertexRange&, const VertexRange&) = default;
};

/// Splits [0, n) into exactly `parts` consecutive VertexRanges whose
/// *weights* are as balanced as a contiguous split allows.
/// `prefix_weight` has n+1 monotone entries with prefix_weight[0] == 0;
/// vertex u weighs prefix_weight[u+1] - prefix_weight[u] (pass byte
/// sizes, row lengths, degrees — whatever the shards should balance).
/// Boundary i lands on the prefix value closest to total·i/parts, so the
/// result is deterministic, covers [0, n) exactly and never overlaps;
/// ranges may be empty when parts > n or the weight mass is skewed.
[[nodiscard]] std::vector<VertexRange> split_weighted_ranges(
    std::span<const std::uint64_t> prefix_weight, std::size_t parts);

/// Owner lookup over the ranges split_weighted_ranges produced (they are
/// sorted and contiguous): index of the range containing u.
[[nodiscard]] std::size_t range_owner(std::span<const VertexRange> ranges,
                                      VertexId u);

/// Set of machines (≤ 64) hosting a replica, as a bitmask.
class ReplicaSet {
 public:
  constexpr ReplicaSet() = default;

  void add(MachineId m) noexcept {
    SNAPLE_DCHECK(m < 64);  // shift past the mask is UB, not a no-op
    bits_ |= (std::uint64_t{1} << m);
  }
  [[nodiscard]] bool contains(MachineId m) const noexcept {
    return (bits_ >> m) & 1u;
  }
  [[nodiscard]] int count() const noexcept {
    return __builtin_popcountll(bits_);
  }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }

  /// Calls fn(machine) for every member, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t rest = bits_;
    while (rest != 0) {
      const int m = __builtin_ctzll(rest);
      fn(static_cast<MachineId>(m));
      rest &= rest - 1;
    }
  }

 private:
  std::uint64_t bits_ = 0;
};

enum class PartitionStrategy {
  /// Uniform random edge placement drawn from a sequential RNG over the
  /// CSR edge order (GraphLab's default "random"). Cheap and balanced,
  /// but a machine assignment depends on the edge's *position*, so the
  /// same edge can land elsewhere after the graph changes.
  kHash,
  /// The oblivious greedy heuristic: prefer machines already hosting
  /// both endpoints, then either, breaking ties by load.
  kGreedy,
  /// Insertion-stable placement: the machine of edge (u, v) is a pure
  /// hash of the endpoints and the seed — never of the edge's CSR
  /// position or of any placement history. Statistically equivalent to
  /// kHash (uniform, no locality), and the only strategy under which a
  /// graph mutation leaves every existing edge's machine unchanged.
  /// Required by core/dynamic_model.hpp's incremental updates.
  kEdgeLocal,
};

/// The kEdgeLocal placement rule, exposed so incremental model updates
/// can tag edges that did not exist when the Partitioning was built.
[[nodiscard]] MachineId edge_local_machine(VertexId u, VertexId v,
                                           std::size_t machines,
                                           std::uint64_t seed) noexcept;

class Partitioning {
 public:
  /// Partitions g's edges over `machines` (1..64) machines.
  [[nodiscard]] static Partitioning create(const CsrGraph& g,
                                           std::size_t machines,
                                           PartitionStrategy strategy,
                                           std::uint64_t seed = 7);

  /// As above over a compressed graph — rows decode per-thread, edges
  /// keep their CSR indices, so the resulting partitioning is identical
  /// to one built from the flat graph.
  [[nodiscard]] static Partitioning create(const CompressedCsrGraph& g,
                                           std::size_t machines,
                                           PartitionStrategy strategy,
                                           std::uint64_t seed = 7);

  /// Builds a partitioning from an explicit per-edge machine assignment
  /// (CSR edge order). The seam for custom/external partitioners, and for
  /// tests that need exact placements to hand-verify the engine's
  /// network/memory accounting.
  [[nodiscard]] static Partitioning from_edge_assignment(
      const CsrGraph& g, std::size_t machines,
      std::vector<MachineId> edge_machine);

  [[nodiscard]] static Partitioning from_edge_assignment(
      const CompressedCsrGraph& g, std::size_t machines,
      std::vector<MachineId> edge_machine);

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return machines_;
  }

  /// Machine that owns edge with CSR index e.
  [[nodiscard]] MachineId edge_machine(EdgeIndex e) const {
    SNAPLE_DCHECK(e < edge_machine_.size());
    return edge_machine_[e];
  }

  /// Master machine of vertex u (always a member of replicas(u)).
  [[nodiscard]] MachineId master(VertexId u) const {
    SNAPLE_DCHECK(u < master_.size());
    return master_[u];
  }

  [[nodiscard]] const ReplicaSet& replicas(VertexId u) const {
    SNAPLE_DCHECK(u < replicas_.size());
    return replicas_[u];
  }

  /// Bitmask of machines owning at least one out-edge (u, *). With the
  /// in-edge variant this tells a shard whether a vertex's gather can be
  /// finalized locally or must wait for remote partial sums — the fast
  /// path of the sharded engine.
  [[nodiscard]] std::uint64_t out_edge_owners(VertexId u) const {
    SNAPLE_DCHECK(u < out_owner_mask_.size());
    return out_owner_mask_[u];
  }
  /// Bitmask of machines owning at least one in-edge (*, u).
  [[nodiscard]] std::uint64_t in_edge_owners(VertexId u) const {
    SNAPLE_DCHECK(u < in_owner_mask_.size());
    return in_owner_mask_[u];
  }

  /// Average number of replicas per vertex — THE vertex-cut quality metric.
  [[nodiscard]] double replication_factor() const;

  /// Number of edges assigned to each machine (load balance metric).
  [[nodiscard]] const std::vector<EdgeIndex>& edges_per_machine()
      const noexcept {
    return edge_load_;
  }

 private:
  template <typename Graph>
  [[nodiscard]] static Partitioning create_impl(const Graph& g,
                                                std::size_t machines,
                                                PartitionStrategy strategy,
                                                std::uint64_t seed);
  template <typename Graph>
  [[nodiscard]] static Partitioning from_edges_impl(
      const Graph& g, std::size_t machines,
      std::vector<MachineId> edge_machine);

  std::size_t machines_ = 1;
  std::vector<MachineId> edge_machine_;  // size E
  std::vector<MachineId> master_;        // size V
  std::vector<ReplicaSet> replicas_;     // size V
  std::vector<std::uint64_t> out_owner_mask_;  // size V
  std::vector<std::uint64_t> in_owner_mask_;   // size V
  std::vector<EdgeIndex> edge_load_;     // size machines
};

}  // namespace snaple::gas
