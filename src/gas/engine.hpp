// Synchronous Gather-Apply-Scatter engine over a simulated cluster.
//
// Programming model (following the paper's §2.3 / PowerGraph):
//   * every vertex u has mutable data Du (template parameter VD);
//   * a superstep gathers over u's adjacent edges, folding contributions
//     into an accumulator with a commutative-associative sum, then applies
//     the accumulated value to Du.
// We fuse the user's gather() and sum() into one callback that folds
// directly into the accumulator — semantically identical (the fold of the
// mapped values) and it avoids a temporary per edge:
//
//   GatherSumFn: (VertexId u, VertexId v, const VD& du, const VD& dv,
//                 Acc& acc) -> std::size_t
//     Folds the contribution of edge (u,v) into acc; returns the *wire
//     size in bytes* of that contribution (0 = no contribution). The fold
//     must be commutative and associative across a vertex's edges.
//   ApplyFn: (VertexId u, VD& du, Acc& acc, std::size_t contributions)
//
// The scatter phase is omitted: the paper's Algorithm 2 "do[es] not use
// any scatter phase" (§4), and neither does the BASELINE; per-edge state
// is unused by every program in this repository.
//
// Distribution is simulated, with real accounting: edges live on machines
// according to a vertex-cut Partitioning; a contribution computed on a
// machine other than u's master is network traffic (mirror -> master
// partial sums), and each apply re-synchronizes Du to all mirrors
// (master -> mirror). Per-machine work, bytes, accumulator memory and
// replicated vertex-data memory are tallied; a configured memory budget
// turns the tally into a ResourceExhausted throw — the mechanism behind
// the paper's "BASELINE fails by exhausting the available memory" (§5.3).
//
// Synchronous semantics: within a superstep every gather observes the
// vertex data from *before* the step. The default two_phase mode enforces
// this by materializing all accumulators before any apply runs (this is
// also what makes the sync engine memory-hungry, faithfully). Programs
// whose apply only writes fields no gather of the same step reads can opt
// into fused mode (gather+apply per vertex in one pass) — all programs in
// this repository qualify and say so explicitly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "gas/byte_size.hpp"
#include "gas/cluster.hpp"
#include "gas/network_model.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snaple::gas {

enum class EdgeDir { kOut, kIn, kAll };

enum class ApplyMode {
  /// Materialize every accumulator, then apply — strict sync semantics.
  kTwoPhase,
  /// Apply immediately after each vertex's gather. Only valid when apply
  /// does not mutate state that other vertices' gathers read this step.
  kFused,
};

struct StepOptions {
  std::string name = "step";
  EdgeDir dir = EdgeDir::kOut;
  ApplyMode mode = ApplyMode::kTwoPhase;
};

struct StepStats {
  std::string name;
  double wall_s = 0.0;             // measured on the host
  SimTimeBreakdown sim;            // simulated cluster time
  std::size_t net_bytes = 0;       // total bytes crossing machines
  std::size_t messages = 0;        // partial-sum + sync messages
  std::size_t gather_calls = 0;    // edges visited
  std::size_t contributions = 0;   // edges that contributed
  std::size_t accumulator_bytes_peak = 0;  // max machine accumulator memory
  std::size_t vertex_data_bytes_peak = 0;  // max machine replicated VD
};

struct EngineReport {
  std::vector<StepStats> steps;

  [[nodiscard]] double total_wall_s() const {
    double t = 0.0;
    for (const auto& s : steps) t += s.wall_s;
    return t;
  }
  [[nodiscard]] double total_sim_s() const {
    double t = 0.0;
    for (const auto& s : steps) t += s.sim.total();
    return t;
  }
  [[nodiscard]] std::size_t total_net_bytes() const {
    std::size_t b = 0;
    for (const auto& s : steps) b += s.net_bytes;
    return b;
  }
};

template <typename VD>
class Engine {
 public:
  /// `vd_size` reports the wire/storage size of a vertex datum; it prices
  /// both mirror synchronization and the per-machine memory audit.
  Engine(const CsrGraph& graph, const Partitioning& partitioning,
         ClusterConfig cluster,
         std::function<std::size_t(const VD&)> vd_size,
         ThreadPool* pool = nullptr)
      : graph_(graph),
        part_(partitioning),
        cluster_(std::move(cluster)),
        vd_size_(std::move(vd_size)),
        pool_(pool != nullptr ? pool : &default_pool()),
        data_(graph.num_vertices()) {
    SNAPLE_CHECK(part_.num_machines() == cluster_.num_machines);
    SNAPLE_CHECK(vd_size_ != nullptr);
  }

  [[nodiscard]] const CsrGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Partitioning& partitioning() const noexcept {
    return part_;
  }
  [[nodiscard]] const ClusterConfig& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] std::vector<VD>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<VD>& data() const noexcept { return data_; }
  [[nodiscard]] const EngineReport& report() const noexcept { return report_; }

  /// Runs one synchronous GAS superstep. Acc must be default-constructible
  /// and have clear(); one instance per worker is reused across vertices.
  /// Returns the step's stats (also appended to report()).
  template <typename Acc, typename GatherSumFn, typename ApplyFn>
  StepStats step(const StepOptions& opt, GatherSumFn&& gather_sum,
                 ApplyFn&& apply) {
    const VertexId n = graph_.num_vertices();
    const std::size_t machines = part_.num_machines();
    const std::size_t slots = pool_->slot_count();

    struct WorkerState {
      Acc acc{};
      // Sized from the partitioning, not a fixed cap: the only machine
      // limit left is ReplicaSet's 64-bit mask, asserted where
      // Partitioning is constructed.
      std::vector<std::size_t> partial_bytes;
      std::vector<MachineId> touched;
      std::vector<MachineLoad> loads;
      std::vector<std::size_t> acc_bytes;  // accumulator memory per machine
      std::size_t net_bytes = 0;
      std::size_t messages = 0;
      std::size_t gather_calls = 0;
      std::size_t contributions = 0;
    };
    std::vector<WorkerState> workers(slots);
    for (auto& w : workers) {
      w.partial_bytes.assign(machines, 0);
      w.loads.resize(machines);
      w.acc_bytes.assign(machines, 0);
      w.touched.reserve(machines);
    }

    // The sync engine keeps every master's accumulator alive through the
    // gather/exchange phase, so accumulator memory is charged for the
    // whole step. This cluster-wide running total triggers an early abort
    // as soon as the budget is certainly exceeded somewhere (by
    // pigeonhole: total > machines × budget ⇒ some machine is over); the
    // precise per-machine audit below still runs for steps that finish.
    std::atomic<std::size_t> live_acc_bytes{0};
    const std::size_t cluster_budget =
        cluster_.machine.memory_bytes > 0
            ? cluster_.machine.memory_bytes * machines
            : 0;

    // Gathers the edges of u into ws.acc; returns contribution count.
    auto gather_vertex = [&](VertexId u, WorkerState& ws) -> std::size_t {
      const VD& du = data_[u];
      const MachineId master = part_.master(u);
      std::size_t contribs = 0;
      std::size_t total_bytes = 0;

      auto fold_edge = [&](VertexId v, EdgeIndex e) {
        ++ws.gather_calls;
        const std::size_t bytes =
            gather_sum(u, v, du, data_[v], ws.acc);
        if (bytes == 0) return;
        ++contribs;
        total_bytes += bytes;
        const MachineId m = part_.edge_machine(e);
        ws.loads[m].work_units += 1.0 + static_cast<double>(bytes) / 16.0;
        if (ws.partial_bytes[m] == 0) ws.touched.push_back(m);
        ws.partial_bytes[m] += bytes;
      };

      if (opt.dir == EdgeDir::kOut || opt.dir == EdgeDir::kAll) {
        const EdgeIndex base = graph_.out_offset(u);
        const auto nbrs = graph_.out_neighbors(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          fold_edge(nbrs[i], base + i);
        }
      }
      if (opt.dir == EdgeDir::kIn || opt.dir == EdgeDir::kAll) {
        for (VertexId v : graph_.in_neighbors(u)) {
          fold_edge(v, graph_.edge_index(v, u));
        }
      }

      // Ship partial sums from mirror machines to the master.
      for (const MachineId m : ws.touched) {
        if (m != master) {
          const std::size_t b = ws.partial_bytes[m] + kMessageHeaderBytes;
          ws.net_bytes += b;
          ws.messages += 1;
          ws.loads[m].bytes_out += b;
          ws.loads[master].bytes_in += b;
        }
        ws.partial_bytes[m] = 0;
      }
      ws.touched.clear();

      // Audit accumulator memory on the master machine (empty
      // accumulators are free — no contribution, no state to keep).
      if (total_bytes > 0) {
        ws.acc_bytes[master] += total_bytes + kAccumulatorHeaderBytes;
      }
      ws.contributions += contribs;
      if (cluster_budget > 0 && total_bytes > 0) {
        const std::size_t now = live_acc_bytes.fetch_add(
                                    total_bytes, std::memory_order_relaxed) +
                                total_bytes;
        if (now > cluster_budget) {
          throw ResourceExhausted(
              "gather accumulators reached " + std::to_string(now) +
              " bytes in step '" + opt.name + "', exceeding the cluster's " +
              std::to_string(cluster_budget) + "-byte budget");
        }
      }
      return contribs;
    };

    // Applies du and accounts the master->mirror synchronization.
    auto apply_vertex = [&](VertexId u, WorkerState& ws, Acc& acc,
                            std::size_t contribs) {
      VD& du = data_[u];
      apply(u, du, acc, contribs);
      const MachineId master = part_.master(u);
      const int mirrors = part_.replicas(u).count() - 1;
      ws.loads[master].work_units +=
          1.0 + static_cast<double>(contribs) * 0.25;
      if (mirrors > 0) {
        const std::size_t sz = vd_size_(du) + kMessageHeaderBytes;
        const std::size_t total = sz * static_cast<std::size_t>(mirrors);
        ws.net_bytes += total;
        ws.messages += static_cast<std::size_t>(mirrors);
        ws.loads[master].bytes_out += total;
        part_.replicas(u).for_each([&](MachineId m) {
          if (m != master) ws.loads[m].bytes_in += sz;
        });
      }
    };

    WallTimer timer;
    if (opt.mode == ApplyMode::kFused) {
      pool_->parallel_for(0, n, [&](std::size_t i, std::size_t slot) {
        auto& ws = workers[slot];
        ws.acc.clear();
        const auto u = static_cast<VertexId>(i);
        const std::size_t contribs = gather_vertex(u, ws);
        apply_vertex(u, ws, ws.acc, contribs);
      });
    } else {
      // Strict sync semantics: all accumulators exist before any apply.
      std::vector<Acc> accs(n);
      std::vector<std::uint32_t> contrib_counts(n);
      pool_->parallel_for(0, n, [&](std::size_t i, std::size_t slot) {
        auto& ws = workers[slot];
        const auto u = static_cast<VertexId>(i);
        std::swap(ws.acc, accs[u]);  // gather into the stored slot
        ws.acc.clear();
        contrib_counts[u] =
            static_cast<std::uint32_t>(gather_vertex(u, ws));
        std::swap(ws.acc, accs[u]);
      });
      pool_->parallel_for(0, n, [&](std::size_t i, std::size_t slot) {
        auto& ws = workers[slot];
        const auto u = static_cast<VertexId>(i);
        apply_vertex(u, ws, accs[u], contrib_counts[u]);
      });
    }
    const double wall = timer.seconds();

    // Merge worker tallies.
    StepStats stats;
    stats.name = opt.name;
    stats.wall_s = wall;
    std::vector<MachineLoad> loads(machines);
    std::vector<std::size_t> acc_bytes(machines, 0);
    for (const auto& w : workers) {
      stats.net_bytes += w.net_bytes;
      stats.messages += w.messages;
      stats.gather_calls += w.gather_calls;
      stats.contributions += w.contributions;
      for (std::size_t m = 0; m < machines; ++m) {
        loads[m].work_units += w.loads[m].work_units;
        loads[m].bytes_in += w.loads[m].bytes_in;
        loads[m].bytes_out += w.loads[m].bytes_out;
        acc_bytes[m] += w.acc_bytes[m];
      }
    }

    const double cpu_seconds = wall * static_cast<double>(slots);
    stats.sim = simulate_step_time(cluster_, loads, cpu_seconds);

    // Memory audit: replicated vertex data + live accumulators + the
    // machine's share of the graph structure.
    std::vector<std::size_t> vd_bytes(machines, 0);
    audit_vertex_data(vd_bytes);
    for (std::size_t m = 0; m < machines; ++m) {
      stats.accumulator_bytes_peak =
          std::max(stats.accumulator_bytes_peak, acc_bytes[m]);
      stats.vertex_data_bytes_peak =
          std::max(stats.vertex_data_bytes_peak, vd_bytes[m]);
      if (cluster_.machine.memory_bytes > 0) {
        const std::size_t structure =
            part_.edges_per_machine()[m] * 2 * sizeof(VertexId);
        const std::size_t total = acc_bytes[m] + vd_bytes[m] + structure;
        if (total > cluster_.machine.memory_bytes) {
          report_.steps.push_back(stats);
          throw ResourceExhausted(
              "machine " + std::to_string(m) + " needs " +
              std::to_string(total) + " bytes in step '" + opt.name +
              "' (budget " +
              std::to_string(cluster_.machine.memory_bytes) + ")");
        }
      }
    }

    report_.steps.push_back(stats);
    return stats;
  }

 private:
  static constexpr std::size_t kMessageHeaderBytes = 16;
  static constexpr std::size_t kAccumulatorHeaderBytes = 16;

  void audit_vertex_data(std::vector<std::size_t>& vd_bytes) const {
    // Per-worker tallies merged at the end; replicas(u).count() copies of
    // Du exist cluster-wide (master + mirrors).
    const std::size_t machines = part_.num_machines();
    const std::size_t slots = pool_->slot_count();
    std::vector<std::vector<std::size_t>> per_worker(
        slots, std::vector<std::size_t>(machines, 0));
    pool_->parallel_for(
        0, graph_.num_vertices(), [&](std::size_t i, std::size_t slot) {
          const auto u = static_cast<VertexId>(i);
          const std::size_t sz = vd_size_(data_[u]);
          part_.replicas(u).for_each(
              [&](MachineId m) { per_worker[slot][m] += sz; });
        });
    for (const auto& w : per_worker) {
      for (std::size_t m = 0; m < machines; ++m) vd_bytes[m] += w[m];
    }
  }

  const CsrGraph& graph_;
  const Partitioning& part_;
  ClusterConfig cluster_;
  std::function<std::size_t(const VD&)> vd_size_;
  ThreadPool* pool_;
  std::vector<VD> data_;
  EngineReport report_;
};

}  // namespace snaple::gas
