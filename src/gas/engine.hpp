// Synchronous Gather-Apply-Scatter engine over a simulated cluster.
//
// Programming model (following the paper's §2.3 / PowerGraph):
//   * every vertex u has mutable data Du (template parameter VD);
//   * a superstep gathers over u's adjacent edges, folding contributions
//     into an accumulator with a commutative-associative sum, then applies
//     the accumulated value to Du.
// We fuse the user's gather() and sum() into one callback that folds
// directly into the accumulator — semantically identical (the fold of the
// mapped values) and it avoids a temporary per edge:
//
//   GatherSumFn: (VertexId u, VertexId v, const VD& du, const VD& dv,
//                 Acc& acc) -> std::size_t
//     Folds the contribution of edge (u,v) into acc; returns the *wire
//     size in bytes* of that contribution (0 = no contribution; the
//     accumulator must be left untouched in that case). The fold must be
//     commutative and associative across a vertex's edges.
//   MergeFn: (Acc& into, Acc&& from) -> void
//     Combines two partial accumulators of the same vertex — PowerGraph's
//     sum() — used when a vertex's edges live on several machines. The
//     default merge calls Acc::merge(Acc&&) if present, or appends when
//     Acc is a container (std::vector).
//   ApplyFn: (VertexId u, VD& du, Acc& acc, std::size_t contributions)
//
// The scatter phase is omitted: the paper's Algorithm 2 "do[es] not use
// any scatter phase" (§4), and neither does the BASELINE; per-edge state
// is unused by every program in this repository.
//
// Two execution modes (docs/ARCHITECTURE.md §Sharded execution):
//
//   kFlat — one global CSR and one global VD array; distribution is
//     accounted: each contribution is charged to the machine owning its
//     edge, partial sums crossing to the master and master->mirror syncs
//     are tallied as network traffic, and the per-machine memory audit is
//     computed from the partitioning.
//
//   kSharded — each machine truly owns its slice: a per-machine Shard
//     (local CSR + global→local remap, shard.hpp) and a replica-local VD
//     array. A superstep runs one task per shard on the ThreadPool in
//     three barrier-separated phases: (A) gather over shard-local edges
//     into shard-local accumulators, building mirror→master partial-sum
//     MessageBuffers; (B) masters drain the buffers, merge partials in
//     ascending machine order, apply, and build master→mirror vertex-data
//     sync buffers; (C) mirrors drain the syncs into their replica
//     arrays. net_bytes/messages are *measured* from the buffers that
//     were actually built (exchange.hpp), not tallied.
//
// Both modes fold a vertex's edges grouped by owning machine (CSR order
// within a machine, machines merged ascending), so their results are
// bit-identical — a property test pins this for every program in the
// repository — and both produce identical accounting. Per-machine work,
// bytes, accumulator memory and replicated vertex-data memory feed a
// configured memory budget that turns into a ResourceExhausted throw —
// the mechanism behind the paper's "BASELINE fails by exhausting the
// available memory" (§5.3).
//
// Synchronous semantics: within a superstep every gather observes the
// vertex data from *before* the step. The default two_phase mode enforces
// this in kFlat by materializing all accumulators before any apply runs
// (this is also what makes the sync engine memory-hungry, faithfully).
// Programs whose apply only writes fields no gather of the same step
// reads can opt into fused mode (gather+apply per vertex in one pass) —
// all programs in this repository qualify and say so explicitly. In
// kSharded the phase barriers make every step strictly synchronous, so
// the two apply modes coincide there.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gas/byte_size.hpp"
#include "gas/cluster.hpp"
#include "gas/exchange.hpp"
#include "gas/network_model.hpp"
#include "gas/partition.hpp"
#include "gas/shard.hpp"
#include "graph/csr_graph.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snaple::gas {

enum class EdgeDir { kOut, kIn, kAll };

enum class ApplyMode {
  /// Materialize every accumulator, then apply — strict sync semantics.
  kTwoPhase,
  /// Apply immediately after each vertex's gather. Only valid when apply
  /// does not mutate state that other vertices' gathers read this step.
  kFused,
};

enum class ExecutionMode {
  /// One address space; distribution accounted through the partitioning.
  kFlat,
  /// Per-machine shards with replica-local data and explicit exchange.
  kSharded,
};

struct StepOptions {
  std::string name = "step";
  EdgeDir dir = EdgeDir::kOut;
  ApplyMode mode = ApplyMode::kTwoPhase;
  /// parallel_for grain for the flat gather/apply passes. 0 auto-derives
  /// from the graph's mean degree (edges / vertices) so a chunk carries
  /// ~4K gathered edges regardless of how skewed the degree histogram is.
  std::size_t grain = 0;
};

struct StepStats {
  std::string name;
  double wall_s = 0.0;             // measured on the host
  SimTimeBreakdown sim;            // simulated cluster time
  std::size_t net_bytes = 0;       // total bytes crossing machines
  std::size_t messages = 0;        // partial-sum + sync messages
  std::size_t gather_calls = 0;    // edges visited
  std::size_t contributions = 0;   // edges that contributed
  std::size_t accumulator_bytes_peak = 0;  // max machine accumulator memory
  std::size_t vertex_data_bytes_peak = 0;  // max machine replicated VD
  /// Sharded mode only: where the superstep's wall time went.
  ExchangeBreakdown exchange;
};

struct EngineReport {
  std::vector<StepStats> steps;

  [[nodiscard]] double total_wall_s() const {
    double t = 0.0;
    for (const auto& s : steps) t += s.wall_s;
    return t;
  }
  [[nodiscard]] double total_sim_s() const {
    double t = 0.0;
    for (const auto& s : steps) t += s.sim.total();
    return t;
  }
  [[nodiscard]] std::size_t total_net_bytes() const {
    std::size_t b = 0;
    for (const auto& s : steps) b += s.net_bytes;
    return b;
  }
};

namespace detail {

template <typename>
inline constexpr bool kAlwaysFalse = false;

/// Default partial-accumulator merge: Acc::merge(Acc&&) when available,
/// container append for vector-like accumulators. Programs whose merge
/// needs runtime state (e.g. a configurable ⊕pre) pass an explicit merge
/// callable to step() instead.
struct DefaultAccMerge {
  template <typename Acc>
  void operator()(Acc& into, Acc&& from) const {
    if constexpr (requires { into.merge(std::move(from)); }) {
      into.merge(std::move(from));
    } else if constexpr (requires {
                           into.insert(into.end(),
                                       std::make_move_iterator(from.begin()),
                                       std::make_move_iterator(from.end()));
                         }) {
      into.insert(into.end(), std::make_move_iterator(from.begin()),
                  std::make_move_iterator(from.end()));
    } else {
      static_assert(kAlwaysFalse<Acc>,
                    "Acc needs a merge(Acc&&) member (or be a container); "
                    "alternatively pass a merge callable to Engine::step");
    }
  }
};

/// Exports a gathered partial accumulator into a message payload while
/// keeping the caller's scratch warm (its capacity survives for the next
/// vertex). Preference order: an export_compact() member (right-sized
/// extract-and-reset in one sweep, e.g. ScoreMap), a plain copy for flat
/// containers of trivially-copyable elements (right-sized by the library),
/// then move (scratch pays regrowth, but deep copies would cost more).
template <typename Acc>
[[nodiscard]] Acc export_partial(Acc& scratch) {
  if constexpr (requires { scratch.export_compact(); }) {
    return scratch.export_compact();
  } else if constexpr (requires {
                         scratch.data();
                         requires std::is_trivially_copyable_v<
                             typename Acc::value_type>;
                       }) {
    return Acc(scratch);
  } else {
    Acc out = std::move(scratch);
    scratch.clear();  // restore the moved-from scratch to a usable state
    return out;
  }
}

}  // namespace detail

/// `Graph` is any CSR-shaped adjacency the engine can gather over:
/// CsrGraph (the default) or CompressedCsrGraph, whose row accessors
/// decode into per-thread scratch. The engine only ever consumes
/// num_vertices/num_edges, out_neighbors/out_offset, in_neighbors and
/// edge_index(v, u) — all exact and identically ordered across the two
/// representations, which is what makes compressed execution
/// bit-identical to flat (scores and accounting alike).
template <typename VD, typename Graph = CsrGraph>
class Engine {
 public:
  /// `vd_size` reports the wire/storage size of a vertex datum; it prices
  /// both mirror synchronization and the per-machine memory audit.
  /// `topology` optionally injects a pre-built shard layout for sharded
  /// execution (it must have been built from the same graph and
  /// partitioning) — shard construction is placement preprocessing, so
  /// callers running several jobs on one partitioning build it once,
  /// exactly like reusing a Partitioning across predictions. When null,
  /// the first sharded step builds it.
  Engine(const Graph& graph, const Partitioning& partitioning,
         ClusterConfig cluster,
         std::function<std::size_t(const VD&)> vd_size,
         ThreadPool* pool = nullptr,
         ExecutionMode exec = ExecutionMode::kFlat,
         std::shared_ptr<const ShardTopology> topology = nullptr)
      : graph_(graph),
        part_(partitioning),
        cluster_(std::move(cluster)),
        vd_size_(std::move(vd_size)),
        pool_(pool != nullptr ? pool : &default_pool()),
        exec_(exec),
        data_(graph.num_vertices()),
        topo_(std::move(topology)) {
    SNAPLE_CHECK(part_.num_machines() == cluster_.num_machines);
    SNAPLE_CHECK(vd_size_ != nullptr);
    SNAPLE_CHECK_MSG(topo_ == nullptr ||
                         topo_->num_machines() == part_.num_machines(),
                     "injected topology was built for another partitioning");
  }

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Partitioning& partitioning() const noexcept {
    return part_;
  }
  [[nodiscard]] const ClusterConfig& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] ExecutionMode execution_mode() const noexcept {
    return exec_;
  }
  [[nodiscard]] const EngineReport& report() const noexcept { return report_; }

  /// The canonical host-side view of all vertex data. In flat mode this
  /// is the single array the engine computes on. In sharded mode the
  /// truth lives in the per-shard replica arrays; this accessor lazily
  /// collects the masters' values back (and the mutable overload marks
  /// the shards stale so the next step re-scatters) — a host-side
  /// convenience for initialization and result extraction, not machine
  /// memory (the audit counts only the replica arrays).
  [[nodiscard]] std::vector<VD>& data() {
    sync_host_from_shards();
    shards_fresh_ = false;
    host_written_ = true;
    return data_;
  }
  [[nodiscard]] const std::vector<VD>& data() const {
    const_cast<Engine*>(this)->sync_host_from_shards();
    return data_;
  }

  /// Shard layout (built on first use; usable in either mode for
  /// inspection). Sharded steps build it implicitly.
  [[nodiscard]] const ShardTopology& topology() {
    ensure_topology();
    return *topo_;
  }

  /// Visits every vertex's authoritative datum in place — the master
  /// replica in sharded mode, the host array in flat mode — without the
  /// full host-array collection data() performs. fn(u, VD&) runs once
  /// per vertex, in unspecified order. Intended for end-of-run result
  /// extraction (fn may move fields out); in sharded mode, running
  /// further steps after mutating data through the visitor is
  /// unsupported — mirrors would not see the mutation until the next
  /// sync. Use data() for read-modify-continue workflows.
  template <typename Fn>
  void visit_vertices(Fn&& fn) {
    if (exec_ == ExecutionMode::kFlat || replica_.empty()) {
      for (VertexId u = 0; u < graph_.num_vertices(); ++u) {
        fn(u, data_[u]);
      }
      return;
    }
    for (std::size_t m = 0; m < replica_.size(); ++m) {
      const Shard& sh = topo_->shard(m);
      for (const VertexId l : sh.masters()) {
        fn(sh.global_id(l), replica_[m][l]);
      }
    }
    host_fresh_ = false;  // fn may have mutated the authoritative copies
  }

  /// Runs one synchronous GAS superstep with the default accumulator
  /// merge (Acc::merge or container append). Acc must be
  /// default-constructible, movable, and clear() must restore a usable
  /// empty state (also after being moved from); one instance per worker
  /// is reused across vertices. Returns the step's stats (also appended
  /// to report()).
  template <typename Acc, typename GatherSumFn, typename ApplyFn>
  StepStats step(const StepOptions& opt, GatherSumFn&& gather_sum,
                 ApplyFn&& apply) {
    return step<Acc>(opt, std::forward<GatherSumFn>(gather_sum),
                     detail::DefaultAccMerge{},
                     std::forward<ApplyFn>(apply));
  }

  /// As above with an explicit partial-accumulator merge (PowerGraph's
  /// sum()): merge(Acc& into, Acc&& from) combines two partials of the
  /// same vertex. Partials are always merged in ascending machine-id
  /// order, identically in both execution modes.
  template <typename Acc, typename GatherSumFn, typename MergeFn,
            typename ApplyFn>
  StepStats step(const StepOptions& opt, GatherSumFn&& gather_sum,
                 MergeFn&& merge, ApplyFn&& apply) {
    if (exec_ == ExecutionMode::kSharded) {
      return step_sharded<Acc>(opt, gather_sum, merge, apply);
    }
    return step_flat<Acc>(opt, gather_sum, merge, apply);
  }

 private:
  static constexpr std::size_t kAccumulatorHeaderBytes = 16;

  // ------------------------------------------------------------------
  // Flat execution: global arrays, accounted distribution.
  // ------------------------------------------------------------------
  template <typename Acc, typename GatherSumFn, typename MergeFn,
            typename ApplyFn>
  StepStats step_flat(const StepOptions& opt, GatherSumFn& gather_sum,
                      MergeFn& merge, ApplyFn& apply) {
    const VertexId n = graph_.num_vertices();
    const std::size_t machines = part_.num_machines();
    const std::size_t slots = pool_->slot_count();
    const std::size_t grain = resolve_grain(opt);

    struct WorkerState {
      Acc acc{};
      // One partial accumulator per machine, reused across vertices
      // (cleared after each merge). Sized from the partitioning, not a
      // fixed cap: the only machine limit left is ReplicaSet's 64-bit
      // mask, asserted where Partitioning is constructed.
      std::vector<Acc> partials;
      std::vector<std::size_t> partial_bytes;
      std::vector<MachineId> touched;
      std::vector<MachineLoad> loads;
      std::vector<std::size_t> acc_bytes;  // accumulator memory per machine
      std::size_t net_bytes = 0;
      std::size_t messages = 0;
      std::size_t gather_calls = 0;
      std::size_t contributions = 0;
    };
    std::vector<WorkerState> workers(slots);
    for (auto& w : workers) {
      w.partials.resize(machines);
      w.partial_bytes.assign(machines, 0);
      w.loads.resize(machines);
      w.acc_bytes.assign(machines, 0);
      w.touched.reserve(machines);
    }

    // The sync engine keeps every master's accumulator alive through the
    // gather/exchange phase, so accumulator memory is charged for the
    // whole step. This cluster-wide running total triggers an early abort
    // as soon as the budget is certainly exceeded somewhere (by
    // pigeonhole: total > machines × budget ⇒ some machine is over); the
    // precise per-machine audit below still runs for steps that finish.
    std::atomic<std::size_t> live_acc_bytes{0};
    const std::size_t cluster_budget =
        cluster_.machine.memory_bytes > 0
            ? cluster_.machine.memory_bytes * machines
            : 0;

    // Gathers the edges of u into per-machine partials, merges them into
    // ws.acc (ascending machine id), and accounts traffic and memory.
    // Returns the contribution count.
    auto gather_vertex = [&](VertexId u, WorkerState& ws) -> std::size_t {
      const VD& du = data_[u];
      const MachineId master = part_.master(u);
      std::size_t contribs = 0;
      std::size_t total_bytes = 0;

      auto fold_edge = [&](VertexId v, EdgeIndex e) {
        ++ws.gather_calls;
        const MachineId m = part_.edge_machine(e);
        const std::size_t bytes =
            gather_sum(u, v, du, data_[v], ws.partials[m]);
        if (bytes == 0) return;
        ++contribs;
        total_bytes += bytes;
        ws.loads[m].work_units += 1.0 + static_cast<double>(bytes) / 16.0;
        if (ws.partial_bytes[m] == 0) ws.touched.push_back(m);
        ws.partial_bytes[m] += bytes;
      };

      if (opt.dir == EdgeDir::kOut || opt.dir == EdgeDir::kAll) {
        const EdgeIndex base = graph_.out_offset(u);
        const auto nbrs = graph_.out_neighbors(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          fold_edge(nbrs[i], base + i);
        }
      }
      if (opt.dir == EdgeDir::kIn || opt.dir == EdgeDir::kAll) {
        for (VertexId v : graph_.in_neighbors(u)) {
          fold_edge(v, graph_.edge_index(v, u));
        }
      }

      // Ship partial sums from mirror machines to the master, and merge
      // all partials in ascending machine order — the canonical fold the
      // sharded exchange reproduces with real buffers.
      std::sort(ws.touched.begin(), ws.touched.end());
      ws.acc.clear();
      bool first = true;
      for (const MachineId m : ws.touched) {
        if (m != master) {
          const std::size_t b = ws.partial_bytes[m] + kMessageHeaderBytes;
          ws.net_bytes += b;
          ws.messages += 1;
          ws.loads[m].bytes_out += b;
          ws.loads[master].bytes_in += b;
        }
        if (first) {
          std::swap(ws.acc, ws.partials[m]);
          first = false;
        } else {
          merge(ws.acc, std::move(ws.partials[m]));
        }
        ws.partials[m].clear();
        ws.partial_bytes[m] = 0;
      }
      ws.touched.clear();

      // Audit accumulator memory on the master machine (empty
      // accumulators are free — no contribution, no state to keep).
      if (total_bytes > 0) {
        ws.acc_bytes[master] += total_bytes + kAccumulatorHeaderBytes;
      }
      ws.contributions += contribs;
      if (cluster_budget > 0 && total_bytes > 0) {
        const std::size_t now = live_acc_bytes.fetch_add(
                                    total_bytes, std::memory_order_relaxed) +
                                total_bytes;
        if (now > cluster_budget) {
          throw ResourceExhausted(
              "gather accumulators reached " + std::to_string(now) +
              " bytes in step '" + opt.name + "', exceeding the cluster's " +
              std::to_string(cluster_budget) + "-byte budget");
        }
      }
      return contribs;
    };

    // Applies du and accounts the master->mirror synchronization.
    auto apply_vertex = [&](VertexId u, WorkerState& ws, Acc& acc,
                            std::size_t contribs) {
      VD& du = data_[u];
      apply(u, du, acc, contribs);
      const MachineId master = part_.master(u);
      const int mirrors = part_.replicas(u).count() - 1;
      ws.loads[master].work_units +=
          1.0 + static_cast<double>(contribs) * 0.25;
      if (mirrors > 0) {
        const std::size_t sz = vd_size_(du) + kMessageHeaderBytes;
        const std::size_t total = sz * static_cast<std::size_t>(mirrors);
        ws.net_bytes += total;
        ws.messages += static_cast<std::size_t>(mirrors);
        ws.loads[master].bytes_out += total;
        part_.replicas(u).for_each([&](MachineId m) {
          if (m != master) ws.loads[m].bytes_in += sz;
        });
      }
    };

    WallTimer timer;
    if (opt.mode == ApplyMode::kFused) {
      pool_->parallel_for(
          0, n,
          [&](std::size_t i, std::size_t slot) {
            auto& ws = workers[slot];
            const auto u = static_cast<VertexId>(i);
            const std::size_t contribs = gather_vertex(u, ws);
            apply_vertex(u, ws, ws.acc, contribs);
          },
          grain);
    } else {
      // Strict sync semantics: all accumulators exist before any apply.
      std::vector<Acc> accs(n);
      std::vector<std::uint32_t> contrib_counts(n);
      pool_->parallel_for(
          0, n,
          [&](std::size_t i, std::size_t slot) {
            auto& ws = workers[slot];
            const auto u = static_cast<VertexId>(i);
            contrib_counts[u] =
                static_cast<std::uint32_t>(gather_vertex(u, ws));
            std::swap(ws.acc, accs[u]);  // park the merged accumulator
          },
          grain);
      pool_->parallel_for(
          0, n,
          [&](std::size_t i, std::size_t slot) {
            auto& ws = workers[slot];
            const auto u = static_cast<VertexId>(i);
            apply_vertex(u, ws, accs[u], contrib_counts[u]);
          },
          grain);
    }
    const double wall = timer.seconds();

    // Merge worker tallies.
    StepStats stats;
    stats.name = opt.name;
    stats.wall_s = wall;
    std::vector<MachineLoad> loads(machines);
    std::vector<std::size_t> acc_bytes(machines, 0);
    for (const auto& w : workers) {
      stats.net_bytes += w.net_bytes;
      stats.messages += w.messages;
      stats.gather_calls += w.gather_calls;
      stats.contributions += w.contributions;
      for (std::size_t m = 0; m < machines; ++m) {
        loads[m].work_units += w.loads[m].work_units;
        loads[m].bytes_in += w.loads[m].bytes_in;
        loads[m].bytes_out += w.loads[m].bytes_out;
        acc_bytes[m] += w.acc_bytes[m];
      }
    }

    std::vector<std::size_t> vd_bytes(machines, 0);
    audit_vertex_data_flat(vd_bytes);
    finalize_stats(stats, opt, loads, acc_bytes, vd_bytes,
                   wall * static_cast<double>(slots));
    return stats;
  }

  // ------------------------------------------------------------------
  // Sharded execution: one task per shard, explicit message exchange.
  // ------------------------------------------------------------------
  template <typename Acc, typename GatherSumFn, typename MergeFn,
            typename ApplyFn>
  StepStats step_sharded(const StepOptions& opt, GatherSumFn& gather_sum,
                         MergeFn& merge, ApplyFn& apply) {
    ensure_shards_fresh();
    const std::size_t machines = part_.num_machines();
    const ShardTopology& topo = *topo_;

    struct ShardScratch {
      // Partial accumulators for *deferred* masters (those that may
      // receive remote partial sums), indexed by deferred rank and held
      // across the exchange barrier — the sync engine's memory appetite,
      // now physically per machine. Masters whose edges (for this step's
      // direction) all live locally take the fast path instead: in fused
      // mode they are merged and applied inline during phase A with a
      // reusable scratch accumulator, exactly like the flat engine.
      std::vector<Acc> own_partial;
      std::vector<std::uint32_t> own_bytes;
      std::vector<std::uint32_t> own_contribs;
      std::vector<MachineLoad> loads;
      std::size_t acc_bytes = 0;
      std::size_t vd_bytes = 0;  // masters' post-apply vertex data
      std::size_t gather_calls = 0;
      std::size_t contributions = 0;
    };
    std::vector<ShardScratch> scratch(machines);
    ExchangeGrid<Acc> partial_grid(machines);
    // Sync payloads are pointers into the sending master's replica array
    // (stable for the whole step): the wire size is still the vertex
    // datum's modeled encoding, but the in-process hand-off is zero-copy
    // until the drain, where the copy-assignment reuses whatever heap
    // capacity the mirror's previous value already owned — the
    // shared-memory-transport equivalent of writing into a pinned
    // receive buffer.
    ExchangeGrid<const VD*> sync_grid(machines);

    std::atomic<std::size_t> live_acc_bytes{0};
    const std::size_t cluster_budget =
        cluster_.machine.memory_bytes > 0
            ? cluster_.machine.memory_bytes * machines
            : 0;
    const bool fused = opt.mode == ApplyMode::kFused;

    // Machines that can contribute partials for vertex u this step.
    auto contributor_mask = [&](VertexId u) {
      std::uint64_t owners = 0;
      if (opt.dir == EdgeDir::kOut || opt.dir == EdgeDir::kAll) {
        owners |= part_.out_edge_owners(u);
      }
      if (opt.dir == EdgeDir::kIn || opt.dir == EdgeDir::kAll) {
        owners |= part_.in_edge_owners(u);
      }
      return owners;
    };

    // Accounts and applies one finished master vertex (shared between the
    // phase-A fast path and the phase-B deferred path; both run in shard
    // d's task, so the outboxes stay single-writer).
    auto finish_master = [&](std::size_t di, std::vector<VD>& repl,
                             ShardScratch& sc, VertexId l, VertexId u,
                             Acc& merged, std::size_t total_bytes,
                             std::size_t contribs) {
      if (total_bytes > 0) {
        sc.acc_bytes += total_bytes + kAccumulatorHeaderBytes;
        if (cluster_budget > 0) {
          const std::size_t now =
              live_acc_bytes.fetch_add(total_bytes,
                                       std::memory_order_relaxed) +
              total_bytes;
          if (now > cluster_budget) {
            throw ResourceExhausted(
                "gather accumulators reached " + std::to_string(now) +
                " bytes in step '" + opt.name +
                "', exceeding the cluster's " +
                std::to_string(cluster_budget) + "-byte budget");
          }
        }
      }
      apply(u, repl[l], merged, contribs);
      sc.loads[di].work_units += 1.0 + static_cast<double>(contribs) * 0.25;
      // Post-apply vertex-data size: this master's share of the audit
      // (mirrors are audited from the sync payload sizes they receive).
      const std::size_t sz = vd_size_(repl[l]);
      sc.vd_bytes += sz;
      // Re-synchronize Du to every mirror through real sync buffers.
      if (part_.replicas(u).count() > 1) {
        part_.replicas(u).for_each([&](MachineId r) {
          if (r != static_cast<MachineId>(di)) {
            sync_grid.outbox(di, r).push(
                u, static_cast<std::uint32_t>(sz), 0, &repl[l]);
          }
        });
      }
    };

    // Folds vertex l's shard-local edges into `acc`, tallying per-edge
    // gather accounting on the owning shard.
    auto gather_local = [&](const Shard& sh, const std::vector<VD>& repl,
                            ShardScratch& sc, std::size_t mi, VertexId l,
                            VertexId u, Acc& acc, std::uint32_t& contribs,
                            std::size_t& bytes) {
      const VD& du = repl[l];
      auto fold_local = [&](VertexId lv) {
        ++sc.gather_calls;
        const std::size_t b =
            gather_sum(u, sh.global_id(lv), du, repl[lv], acc);
        if (b == 0) return;
        ++contribs;
        bytes += b;
        sc.loads[mi].work_units += 1.0 + static_cast<double>(b) / 16.0;
      };
      if (opt.dir == EdgeDir::kOut || opt.dir == EdgeDir::kAll) {
        for (const VertexId lv : sh.out_neighbors(l)) fold_local(lv);
      }
      if (opt.dir == EdgeDir::kIn || opt.dir == EdgeDir::kAll) {
        for (const VertexId lv : sh.in_neighbors(l)) fold_local(lv);
      }
    };

    WallTimer timer;

    // ---- Phase A: shard-local gather + partial-sum buffer build. ----
    // Mirrors always gather here (their partials must cross the barrier).
    // Masters gather here only in two-phase mode, into per-vertex
    // accumulators held until phase B — materializing every accumulator
    // is exactly what two-phase semantics (and its memory appetite)
    // mean. In fused mode masters gather lazily in phase B with reusable
    // scratch instead: the fused contract (apply writes nothing gathers
    // read) makes interleaved same-shard applies safe, and it keeps the
    // per-vertex allocation profile identical to the flat engine's.
    WallTimer phase_timer;
    pool_->parallel_for(0, machines, [&](std::size_t mi, std::size_t) {
      const Shard& sh = topo.shard(mi);
      std::vector<VD>& repl = replica_[mi];
      ShardScratch& sc = scratch[mi];
      sc.loads.resize(machines);
      if (!fused) {
        sc.own_partial.resize(sh.num_masters());
        sc.own_bytes.assign(sh.num_masters(), 0);
        sc.own_contribs.assign(sh.num_masters(), 0);
      }

      Acc mirror_acc{};  // reused across mirror vertices
      std::size_t rank = 0;
      const auto n_local = static_cast<VertexId>(sh.num_local());
      for (VertexId l = 0; l < n_local; ++l) {
        const bool owned = sh.owns(l);
        if (owned && fused) continue;  // gathered in phase B
        Acc* acc;
        if (owned) {
          acc = &sc.own_partial[rank];
        } else {
          mirror_acc.clear();
          acc = &mirror_acc;
        }
        const VertexId u = sh.global_id(l);
        std::uint32_t contribs = 0;
        std::size_t bytes = 0;
        gather_local(sh, repl, sc, mi, l, u, *acc, contribs, bytes);
        sc.contributions += contribs;
        if (owned) {
          sc.own_bytes[rank] = static_cast<std::uint32_t>(bytes);
          sc.own_contribs[rank] = contribs;
          ++rank;
        } else if (bytes > 0) {
          // Mirror with contributions: ship the partial to the master.
          partial_grid.outbox(mi, part_.master(u))
              .push(u, static_cast<std::uint32_t>(bytes), contribs,
                    detail::export_partial(mirror_acc));
        }
      }
    });
    const double gather_build_s = phase_timer.seconds();

    // Measured partial-sum traffic: the size of the buffers just built.
    StepStats stats;
    stats.name = opt.name;
    std::vector<MachineLoad> loads(machines);
    for (std::size_t s = 0; s < machines; ++s) {
      for (std::size_t d = 0; d < machines; ++d) {
        if (s == d) continue;
        const std::size_t wire = partial_grid.outbox(s, d).wire_bytes();
        if (wire > 0) charge_transfer(loads, s, d, wire);
      }
    }
    stats.net_bytes += partial_grid.wire_bytes();
    stats.messages += partial_grid.message_count();

    // ---- Phase B: masters merge partials (ascending machine order),
    // apply, and build the vertex-data sync buffers. ----
    phase_timer.restart();
    pool_->parallel_for(0, machines, [&](std::size_t di, std::size_t) {
      const Shard& sh = topo.shard(di);
      std::vector<VD>& repl = replica_[di];
      ShardScratch& sc = scratch[di];

      // The sync fan-out is known from the topology — reserve the
      // outboxes so pushes never reallocate mid-phase.
      for (std::size_t r = 0; r < machines; ++r) {
        if (r != di && sh.sync_fanout()[r] > 0) {
          sync_grid.outbox(di, r).reserve(sh.sync_fanout()[r]);
        }
      }

      // Every inbox is ordered by ascending global vertex id (shards walk
      // local vertices in ascending global order), so a cursor per source
      // machine turns the merge into one synchronized sweep.
      std::vector<std::size_t> cursor(machines, 0);
      Acc merged{};
      Acc local_partial{};  // fused mode: reusable master gather scratch
      std::size_t rank = 0;
      for (const VertexId l : sh.masters()) {
        const VertexId u = sh.global_id(l);
        std::uint32_t own_contribs = 0;
        std::size_t own_bytes = 0;
        Acc* own = nullptr;
        if (fused) {
          local_partial.clear();
          gather_local(sh, repl, sc, di, l, u, local_partial, own_contribs,
                       own_bytes);
          sc.contributions += own_contribs;
          own = &local_partial;
        } else {
          own_bytes = sc.own_bytes[rank];
          own_contribs = sc.own_contribs[rank];
          own = &sc.own_partial[rank];
          ++rank;
        }

        // Merge the contributing machines' partials ascending by id —
        // only machines owning edges of u (for this direction) can have
        // contributed, so walk that bitmask instead of all machines.
        merged.clear();
        std::size_t total_bytes = 0;
        std::size_t contribs = 0;
        bool first = true;
        std::uint64_t rest = contributor_mask(u);
        while (rest != 0) {
          const auto s =
              static_cast<std::size_t>(__builtin_ctzll(rest));
          rest &= rest - 1;
          if (s == di) {
            if (own_bytes > 0) {
              total_bytes += own_bytes;
              contribs += own_contribs;
              if (first) {
                std::swap(merged, *own);
                first = false;
              } else {
                merge(merged, std::move(*own));
              }
            }
            continue;
          }
          auto& box = partial_grid.inbox(di, s);
          if (cursor[s] < box.size() && box[cursor[s]].vertex == u) {
            auto& msg = box[cursor[s]++];
            total_bytes += msg.payload_bytes;
            contribs += msg.contributions;
            if (first) {
              merged = std::move(msg.payload);
              first = false;
            } else {
              merge(merged, std::move(msg.payload));
            }
          }
        }
        finish_master(di, repl, sc, l, u, merged, total_bytes, contribs);
      }
    });
    const double merge_apply_s = phase_timer.seconds();

    for (std::size_t s = 0; s < machines; ++s) {
      for (std::size_t d = 0; d < machines; ++d) {
        if (s == d) continue;
        const std::size_t wire = sync_grid.outbox(s, d).wire_bytes();
        if (wire > 0) charge_transfer(loads, s, d, wire);
      }
    }
    stats.net_bytes += sync_grid.wire_bytes();
    stats.messages += sync_grid.message_count();

    // ---- Phase C: mirrors drain the sync buffers into their replicas. ----
    phase_timer.restart();
    pool_->parallel_for(0, machines, [&](std::size_t ri, std::size_t) {
      const Shard& sh = topo.shard(ri);
      std::vector<VD>& repl = replica_[ri];
      const auto& ids = sh.vertices();
      for (std::size_t s = 0; s < machines; ++s) {
        if (s == ri) continue;
        // Messages arrive ascending by vertex id, so resume each lookup
        // where the previous one ended instead of bisecting from scratch.
        auto hint = ids.begin();
        for (auto& msg : sync_grid.inbox(ri, s)) {
          hint = std::lower_bound(hint, ids.end(), msg.vertex);
          SNAPLE_DCHECK(hint != ids.end() && *hint == msg.vertex);
          repl[static_cast<std::size_t>(hint - ids.begin())] =
              *msg.payload;
        }
      }
    });
    const double sync_drain_s = phase_timer.seconds();
    const double wall = timer.seconds();

    host_fresh_ = false;  // masters changed; data() re-collects on demand

    stats.wall_s = wall;
    stats.exchange.gather_build_s = gather_build_s;
    stats.exchange.merge_apply_s = merge_apply_s;
    stats.exchange.sync_drain_s = sync_drain_s;
    std::vector<std::size_t> acc_bytes(machines, 0);
    for (std::size_t m = 0; m < machines; ++m) {
      stats.gather_calls += scratch[m].gather_calls;
      stats.contributions += scratch[m].contributions;
      acc_bytes[m] = scratch[m].acc_bytes;
      for (std::size_t o = 0; o < machines; ++o) {
        loads[o].work_units += scratch[m].loads[o].work_units;
        loads[o].bytes_in += scratch[m].loads[o].bytes_in;
        loads[o].bytes_out += scratch[m].loads[o].bytes_out;
      }
    }

    // Replicated-VD memory, measured without an extra pass: masters were
    // sized at apply time, and every mirror's post-step datum is exactly
    // the sync payload it just received — whose modeled size is already
    // recorded in the buffers.
    std::vector<std::size_t> vd_bytes(machines, 0);
    for (std::size_t r = 0; r < machines; ++r) {
      vd_bytes[r] = scratch[r].vd_bytes;
      for (std::size_t s = 0; s < machines; ++s) {
        if (s == r) continue;
        const auto& box = sync_grid.inbox(r, s);
        vd_bytes[r] += box.wire_bytes() - box.size() * kMessageHeaderBytes;
      }
    }

    const std::size_t active = std::min(machines, pool_->slot_count());
    finalize_stats(stats, opt, loads, acc_bytes, vd_bytes,
                   wall * static_cast<double>(active));
    return stats;
  }

  // Shared epilogue: simulated time, memory audit, report bookkeeping.
  void finalize_stats(StepStats& stats, const StepOptions& opt,
                      const std::vector<MachineLoad>& loads,
                      const std::vector<std::size_t>& acc_bytes,
                      const std::vector<std::size_t>& vd_bytes,
                      double cpu_seconds) {
    const std::size_t machines = part_.num_machines();
    stats.sim = simulate_step_time(cluster_, loads, cpu_seconds);

    // Memory audit: replicated vertex data + live accumulators + the
    // machine's share of the graph structure.
    for (std::size_t m = 0; m < machines; ++m) {
      stats.accumulator_bytes_peak =
          std::max(stats.accumulator_bytes_peak, acc_bytes[m]);
      stats.vertex_data_bytes_peak =
          std::max(stats.vertex_data_bytes_peak, vd_bytes[m]);
      if (cluster_.machine.memory_bytes > 0) {
        const std::size_t structure =
            part_.edges_per_machine()[m] * 2 * sizeof(VertexId);
        const std::size_t total = acc_bytes[m] + vd_bytes[m] + structure;
        if (total > cluster_.machine.memory_bytes) {
          report_.steps.push_back(stats);
          throw ResourceExhausted(
              "machine " + std::to_string(m) + " needs " +
              std::to_string(total) + " bytes in step '" + opt.name +
              "' (budget " +
              std::to_string(cluster_.machine.memory_bytes) + ")");
        }
      }
    }
    report_.steps.push_back(stats);
  }

  [[nodiscard]] std::size_t resolve_grain(const StepOptions& opt) const {
    if (opt.grain != 0) return opt.grain;
    // Auto grain: size chunks by expected gathered edges, not vertex
    // count, so power-law rows still balance — ~4K edges per chunk,
    // derived from the partitioned edge total over the vertex count.
    const auto n = static_cast<double>(
        std::max<VertexId>(graph_.num_vertices(), 1));
    const double avg_deg = static_cast<double>(graph_.num_edges()) / n;
    const double g = 4096.0 / std::max(avg_deg, 0.25);
    return static_cast<std::size_t>(
        std::clamp(g, 16.0, 16384.0));
  }

  void audit_vertex_data_flat(std::vector<std::size_t>& vd_bytes) const {
    // Per-worker tallies merged at the end; replicas(u).count() copies of
    // Du exist cluster-wide (master + mirrors).
    const std::size_t machines = part_.num_machines();
    const std::size_t slots = pool_->slot_count();
    std::vector<std::vector<std::size_t>> per_worker(
        slots, std::vector<std::size_t>(machines, 0));
    pool_->parallel_for(
        0, graph_.num_vertices(), [&](std::size_t i, std::size_t slot) {
          const auto u = static_cast<VertexId>(i);
          const std::size_t sz = vd_size_(data_[u]);
          part_.replicas(u).for_each(
              [&](MachineId m) { per_worker[slot][m] += sz; });
        });
    for (const auto& w : per_worker) {
      for (std::size_t m = 0; m < machines; ++m) vd_bytes[m] += w[m];
    }
  }

  void ensure_topology() {
    if (topo_ == nullptr) {
      topo_ = std::make_shared<const ShardTopology>(
          ShardTopology::build(graph_, part_, pool_));
    }
  }

  /// Builds shards + replica arrays on first sharded step and re-scatters
  /// the host array whenever it was mutated through data().
  void ensure_shards_fresh() {
    ensure_topology();
    if (replica_.empty()) {
      replica_.resize(part_.num_machines());
      for (std::size_t m = 0; m < replica_.size(); ++m) {
        replica_[m].resize(topo_->shard(m).num_local());
      }
    }
    if (shards_fresh_) return;
    // The scatter only matters once the host array has actually been
    // written: fresh replicas and a fresh host array are both
    // default-constructed, so programs that never touch data() before
    // stepping (e.g. run_snaple) skip the copy entirely.
    if (host_written_) {
      pool_->parallel_for(
          0, replica_.size(), [&](std::size_t mi, std::size_t) {
            const Shard& sh = topo_->shard(mi);
            for (VertexId l = 0; l < sh.num_local(); ++l) {
              replica_[mi][l] = data_[sh.global_id(l)];
            }
          });
    }
    shards_fresh_ = true;
  }

  /// Collects masters' values back into the host array (sharded mode).
  void sync_host_from_shards() {
    if (host_fresh_) return;
    pool_->parallel_for(
        0, replica_.size(), [&](std::size_t mi, std::size_t) {
          const Shard& sh = topo_->shard(mi);
          for (const VertexId l : sh.masters()) {
            data_[sh.global_id(l)] = replica_[mi][l];
          }
        });
    host_fresh_ = true;
  }

  const Graph& graph_;
  const Partitioning& part_;
  ClusterConfig cluster_;
  std::function<std::size_t(const VD&)> vd_size_;
  ThreadPool* pool_;
  ExecutionMode exec_;
  std::vector<VD> data_;
  std::shared_ptr<const ShardTopology> topo_;
  std::vector<std::vector<VD>> replica_;  // per machine, per local id
  bool shards_fresh_ = false;  // replica arrays mirror data_
  bool host_fresh_ = true;     // data_ mirrors the master replicas
  bool host_written_ = false;  // data_ was ever handed out mutably
  EngineReport report_;
};

}  // namespace snaple::gas
