// Per-machine graph shards for true sharded execution.
//
// The flat engine keeps one global CSR and one global vertex-data array
// and merely *accounts* distribution through the Partitioning. A Shard
// turns that accounting into ownership: machine m holds
//
//   * the slice of the CSR containing exactly the edges the Partitioning
//     assigned to m, with endpoints remapped to dense *local* vertex ids;
//   * the list of global ids it replicates (every vertex with at least
//     one local edge, plus isolated vertices whose master hashed here) —
//     the local id of a vertex is its index in that sorted list;
//   * which local replicas it masters (apply runs here) and which are
//     mirrors (kept fresh by master->mirror syncs, exchange.hpp).
//
// The engine pairs each Shard with a replica-local vertex-data array of
// the same length, so a shard task reads and writes only memory its
// machine would own — gathers never reach across a shard boundary; only
// MessageBuffers do. Local neighbor lists preserve the global CSR order
// of the surviving edges, which makes the sharded fold order identical
// to the flat engine's per-machine fold (engine.hpp) and the two modes
// bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gas/partition.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/csr_graph.hpp"
#include "util/check.hpp"

namespace snaple {
class ThreadPool;
}

namespace snaple::gas {

class Shard {
 public:
  [[nodiscard]] MachineId machine() const noexcept { return machine_; }

  /// Number of local replicas (masters + mirrors) on this machine.
  [[nodiscard]] std::size_t num_local() const noexcept {
    return vertices_.size();
  }
  [[nodiscard]] std::size_t num_masters() const noexcept {
    return masters_.size();
  }
  [[nodiscard]] std::size_t num_mirrors() const noexcept {
    return vertices_.size() - masters_.size();
  }
  [[nodiscard]] EdgeIndex num_local_edges() const noexcept {
    if (compressed_) {
      return out_comp_.offsets.empty() ? 0 : out_comp_.offsets.back();
    }
    return out_targets_.size();
  }

  /// True when the local adjacency is held delta-compressed (the
  /// peak-memory mode for wide sharded fits); row accessors then decode
  /// into per-thread scratch with the same ids in the same order.
  [[nodiscard]] bool compressed() const noexcept { return compressed_; }

  /// Global ids of the local replicas, ascending; local id = index.
  [[nodiscard]] const std::vector<VertexId>& vertices() const noexcept {
    return vertices_;
  }
  [[nodiscard]] VertexId global_id(VertexId local) const {
    SNAPLE_DCHECK(local < vertices_.size());
    return vertices_[local];
  }

  /// Local id of a global vertex replicated here (binary search over the
  /// sorted id list: O(log n_local), no per-shard V-sized table). The
  /// vertex must be replicated on this machine.
  [[nodiscard]] VertexId local_id(VertexId global) const;

  /// True if this machine masters the replica with the given local id.
  [[nodiscard]] bool owns(VertexId local) const {
    SNAPLE_DCHECK(local < is_master_.size());
    return is_master_[local] != 0;
  }

  /// Local ids of the vertices mastered here, ascending.
  [[nodiscard]] const std::vector<VertexId>& masters() const noexcept {
    return masters_;
  }

  /// Number of vertex-data sync messages this shard sends to machine r
  /// per full superstep (one per mastered vertex replicated on r) — the
  /// exchange-buffer reservation hint.
  [[nodiscard]] const std::vector<EdgeIndex>& sync_fanout() const noexcept {
    return sync_fanout_;
  }

  /// Local out-neighbors of `local` over this shard's edges, in global
  /// CSR order; entries are local ids.
  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId local) const {
    SNAPLE_DCHECK(local < num_local());
    if (compressed_) return decode_row(out_comp_, /*side=*/0, local);
    return {out_targets_.data() + out_offsets_[local],
            out_targets_.data() + out_offsets_[local + 1]};
  }

  /// Local in-neighbors of `local` over this shard's edges, ascending by
  /// global source id (matching CsrGraph::in_neighbors restricted to this
  /// machine's edges); entries are local ids.
  [[nodiscard]] std::span<const VertexId> in_neighbors(VertexId local) const {
    SNAPLE_DCHECK(local < num_local());
    if (compressed_) return decode_row(in_comp_, /*side=*/1, local);
    return {in_sources_.data() + in_offsets_[local],
            in_sources_.data() + in_offsets_[local + 1]};
  }

  /// Measured resident bytes of the shard's structure arrays (the real
  /// counterpart of the flat audit's 2×sizeof(VertexId)-per-edge model).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    const std::size_t adjacency =
        compressed_
            ? out_comp_.memory_bytes() + in_comp_.memory_bytes()
            : (out_offsets_.size() + in_offsets_.size()) * sizeof(EdgeIndex) +
                  (out_targets_.size() + in_sources_.size()) *
                      sizeof(VertexId);
    return vertices_.size() * sizeof(VertexId) +
           is_master_.size() * sizeof(std::uint8_t) +
           masters_.size() * sizeof(VertexId) + adjacency;
  }

 private:
  friend class ShardTopology;

  /// Post-pass: packs the flat local CSR into delta-compressed form and
  /// releases the flat arrays. Runs inside the per-machine build task
  /// (after the in-CSR scatter, which still reads the flat out slice).
  void compress_local();

  /// Decodes one compressed local row into per-thread scratch (one
  /// buffer per side, so interleaved out/in walks stay valid).
  [[nodiscard]] std::span<const VertexId> decode_row(
      const CompressedAdjacency& adj, int side, VertexId local) const;

  MachineId machine_ = 0;
  std::vector<VertexId> vertices_;       // global ids, ascending
  std::vector<std::uint8_t> is_master_;  // per local id
  std::vector<VertexId> masters_;        // local ids, ascending
  std::vector<EdgeIndex> sync_fanout_;   // size machines
  std::vector<EdgeIndex> out_offsets_;   // size n_local + 1
  std::vector<VertexId> out_targets_;    // local ids, global CSR order
  std::vector<EdgeIndex> in_offsets_;    // size n_local + 1
  std::vector<VertexId> in_sources_;     // local ids, ascending source
  bool compressed_ = false;
  CompressedAdjacency out_comp_;  // populated iff compressed_
  CompressedAdjacency in_comp_;
};

/// All shards of one (graph, partitioning) pair. Building is a pure
/// function of its inputs and deterministic for any pool size.
class ShardTopology {
 public:
  /// Splits `g` into one shard per machine of `p`. Edge e lands on shard
  /// p.edge_machine(e); vertex u is replicated on every machine in
  /// p.replicas(u). Runs one build task per machine on `pool` (default
  /// pool when null). With `compress_slices` each machine packs its
  /// local CSR into delta-compressed form as a build post-pass, cutting
  /// the topology's resident footprint; row decode is bit-identical, so
  /// every engine result is unchanged.
  [[nodiscard]] static ShardTopology build(const CsrGraph& g,
                                           const Partitioning& p,
                                           ThreadPool* pool = nullptr,
                                           bool compress_slices = false);

  /// As above from a compressed graph (rows decode per-thread during the
  /// build scan). Slices default to compressed here: a caller that chose
  /// the compressed representation is economizing memory, and inflating
  /// it at the shard layer would undo exactly that.
  [[nodiscard]] static ShardTopology build(const CompressedCsrGraph& g,
                                           const Partitioning& p,
                                           ThreadPool* pool = nullptr,
                                           bool compress_slices = true);

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Shard& shard(std::size_t m) const {
    SNAPLE_DCHECK(m < shards_.size());
    return shards_[m];
  }
  [[nodiscard]] const std::vector<Shard>& shards() const noexcept {
    return shards_;
  }

 private:
  template <typename Graph>
  [[nodiscard]] static ShardTopology build_impl(const Graph& g,
                                                const Partitioning& p,
                                                ThreadPool* pool,
                                                bool compress_slices);

  std::vector<Shard> shards_;
};

}  // namespace snaple::gas
