#include "gas/network_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace snaple::gas {

SimTimeBreakdown simulate_step_time(const ClusterConfig& cluster,
                                    const std::vector<MachineLoad>& loads,
                                    double cpu_seconds) {
  SNAPLE_CHECK(loads.size() == cluster.num_machines);
  SimTimeBreakdown out;
  out.latency_s = cluster.superstep_latency_s;

  double work_total = 0.0;
  for (const auto& l : loads) work_total += l.work_units;

  const double core_capacity = static_cast<double>(cluster.machine.cores) *
                               cluster.machine.core_speed;
  for (const auto& l : loads) {
    double compute = 0.0;
    if (work_total > 0.0) {
      compute = cpu_seconds * (l.work_units / work_total) / core_capacity;
    }
    double net = 0.0;
    if (cluster.num_machines > 1 &&
        cluster.machine.bandwidth_bytes_per_s > 0.0) {
      net = static_cast<double>(l.bytes_in + l.bytes_out) /
            cluster.machine.bandwidth_bytes_per_s;
    }
    out.compute_s = std::max(out.compute_s, compute);
    out.network_s = std::max(out.network_s, net);
  }
  return out;
}

}  // namespace snaple::gas
