// Converts accounted work and traffic into simulated distributed time.
//
// The engine runs supersteps on host threads, measuring real CPU effort,
// while attributing per-machine work units and network bytes. This model
// turns those into the BSP superstep bound:
//
//   T_step = max_m [ compute_m + net_m ] + superstep_latency
//   compute_m = cpu_seconds * (work_m / work_total) / (cores * core_speed)
//   net_m     = (bytes_in_m + bytes_out_m) / bandwidth
//
// where cpu_seconds is the measured host CPU time of the step (wall time ×
// active workers). This is deliberately first-order: it captures exactly
// the effects the paper measures — linear scaling in graph size, speedup
// with machines/cores, and the communication penalty of chatty programs —
// without pretending to cycle accuracy (docs/ARCHITECTURE.md).
#pragma once

#include <cstddef>
#include <vector>

#include "gas/cluster.hpp"

namespace snaple::gas {

struct MachineLoad {
  double work_units = 0.0;     // weighted gather/apply effort
  std::size_t bytes_in = 0;    // partial sums arriving at masters
  std::size_t bytes_out = 0;   // vertex-data sync leaving masters
};

struct SimTimeBreakdown {
  double compute_s = 0.0;  // max over machines
  double network_s = 0.0;  // max over machines
  double latency_s = 0.0;
  [[nodiscard]] double total() const noexcept {
    return compute_s + network_s + latency_s;
  }
};

/// Computes the simulated superstep time. `cpu_seconds` is measured host
/// CPU effort for this step; `loads` has one entry per machine.
[[nodiscard]] SimTimeBreakdown simulate_step_time(
    const ClusterConfig& cluster, const std::vector<MachineLoad>& loads,
    double cpu_seconds);

/// Charges one src -> dst transfer of `bytes` to the per-machine loads —
/// the seam through which the sharded engine prices each exchange buffer
/// from its measured wire size.
inline void charge_transfer(std::vector<MachineLoad>& loads,
                            std::size_t src, std::size_t dst,
                            std::size_t bytes) {
  loads[src].bytes_out += bytes;
  loads[dst].bytes_in += bytes;
}

}  // namespace snaple::gas
