// Explicit inter-shard message exchange.
//
// In sharded execution every simulated machine owns a Shard (shard.hpp)
// and communicates with the others only through the buffers defined here:
//
//   * mirror -> master: per-vertex gather partial sums, shipped after the
//     local gather phase so the master can finish the fold;
//   * master -> mirror: vertex-data syncs, shipped after apply so every
//     replica observes the new Du before the next superstep.
//
// A MessageBuffer is a typed, ordered stream of records; an ExchangeGrid
// is the machines x machines matrix of them (one outbox per ordered
// (src, dst) pair). The engine *measures* network traffic by summing the
// wire size of the off-diagonal buffers it actually built — net_bytes is
// no longer a tally maintained alongside the computation, it is the size
// of real data structures that crossed a shard boundary.
//
// What is real vs simulated (docs/ARCHITECTURE.md §Sharded execution):
// buffers, routing, per-record headers and drain order are real; the
// payload *encoding* is modeled — payloads travel as in-memory C++
// objects (the shards share one address space) and each record carries
// the wire size its compact binary encoding would have, as reported by
// the program's gather_sum / vd_size callbacks. Swapping the in-memory
// payload for genuine serialization is a local change inside push/drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace snaple::gas {

/// Fixed per-message framing cost: vertex id, payload length, contribution
/// count and padding — the 16 bytes the engine has always charged per
/// message, now laid down as an actual header struct.
inline constexpr std::size_t kMessageHeaderBytes = 16;

/// One record in a message stream. `payload_bytes` is the modeled wire
/// size of `payload` (compact binary encoding); `contributions` carries
/// the gather contribution count for partial sums (0 for vertex syncs).
template <typename Payload>
struct Message {
  VertexId vertex = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t contributions = 0;
  Payload payload{};
};

/// An ordered stream of messages from one shard to another. Records are
/// appended in ascending vertex order by construction (shards walk their
/// local vertices in ascending global id), which the drain side exploits
/// for deterministic merge order.
template <typename Payload>
class MessageBuffer {
 public:
  void push(VertexId vertex, std::uint32_t payload_bytes,
            std::uint32_t contributions, Payload&& payload) {
    msgs_.push_back(Message<Payload>{vertex, payload_bytes, contributions,
                                     std::move(payload)});
    payload_bytes_total_ += payload_bytes;
  }

  [[nodiscard]] std::size_t size() const noexcept { return msgs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return msgs_.empty(); }

  /// Measured wire size of the whole buffer: header + payload per record.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return msgs_.size() * kMessageHeaderBytes + payload_bytes_total_;
  }

  [[nodiscard]] auto begin() noexcept { return msgs_.begin(); }
  [[nodiscard]] auto end() noexcept { return msgs_.end(); }
  [[nodiscard]] auto begin() const noexcept { return msgs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return msgs_.end(); }
  [[nodiscard]] Message<Payload>& operator[](std::size_t i) {
    return msgs_[i];
  }

  void clear() noexcept {
    msgs_.clear();
    payload_bytes_total_ = 0;
  }

  /// Pre-sizes the record vector (the engine knows each shard's sync
  /// fan-out from the topology, so growth reallocations are avoidable).
  void reserve(std::size_t records) { msgs_.reserve(records); }

 private:
  std::vector<Message<Payload>> msgs_;
  std::size_t payload_bytes_total_ = 0;
};

/// The machines × machines matrix of message buffers for one exchange
/// round. outbox(s, d) is written only by shard s's task and drained only
/// by shard d's task, so the grid needs no locking: phases are separated
/// by the engine's barriers.
template <typename Payload>
class ExchangeGrid {
 public:
  explicit ExchangeGrid(std::size_t machines)
      : machines_(machines), buffers_(machines * machines) {
    SNAPLE_CHECK(machines >= 1);
  }

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return machines_;
  }

  [[nodiscard]] MessageBuffer<Payload>& outbox(std::size_t src,
                                               std::size_t dst) {
    SNAPLE_DCHECK(src < machines_ && dst < machines_);
    return buffers_[src * machines_ + dst];
  }
  [[nodiscard]] const MessageBuffer<Payload>& inbox(std::size_t dst,
                                                    std::size_t src) const {
    SNAPLE_DCHECK(src < machines_ && dst < machines_);
    return buffers_[src * machines_ + dst];
  }
  [[nodiscard]] MessageBuffer<Payload>& inbox(std::size_t dst,
                                              std::size_t src) {
    SNAPLE_DCHECK(src < machines_ && dst < machines_);
    return buffers_[src * machines_ + dst];
  }

  /// Measured bytes that crossed a machine boundary (diagonal buffers are
  /// local hand-offs and free, matching the flat engine's accounting —
  /// shards never create them, but the sum is defensive anyway).
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t s = 0; s < machines_; ++s) {
      for (std::size_t d = 0; d < machines_; ++d) {
        if (s != d) total += buffers_[s * machines_ + d].wire_bytes();
      }
    }
    return total;
  }

  /// Number of cross-machine messages in the grid.
  [[nodiscard]] std::size_t message_count() const noexcept {
    std::size_t total = 0;
    for (std::size_t s = 0; s < machines_; ++s) {
      for (std::size_t d = 0; d < machines_; ++d) {
        if (s != d) total += buffers_[s * machines_ + d].size();
      }
    }
    return total;
  }

 private:
  std::size_t machines_;
  std::vector<MessageBuffer<Payload>> buffers_;
};

/// Wall-clock accounting for the three phases of a sharded superstep;
/// embedded in StepStats so bench_shard_exchange can report where
/// exchange time goes. All zero for flat execution.
struct ExchangeBreakdown {
  /// Phase A: local gather + partial-sum buffer build (mirror side).
  double gather_build_s = 0.0;
  /// Phase B: drain partial buffers, merge, apply, build sync buffers.
  double merge_apply_s = 0.0;
  /// Phase C: drain vertex-data syncs into mirror replicas.
  double sync_drain_s = 0.0;

  [[nodiscard]] double total() const noexcept {
    return gather_build_s + merge_apply_s + sync_drain_s;
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace snaple::gas
