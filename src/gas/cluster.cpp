#include "gas/cluster.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace snaple::gas {

ClusterConfig ClusterConfig::type_i(std::size_t machines,
                                    std::size_t memory_bytes) {
  SNAPLE_CHECK(machines >= 1);
  ClusterConfig cfg;
  cfg.machine = MachineSpec{
      .name = "type-I",
      .cores = 8,
      .bandwidth_bytes_per_s = 125e6,  // 1 GbE
      .memory_bytes = memory_bytes,
      .core_speed = 1.0,
  };
  cfg.num_machines = machines;
  return cfg;
}

ClusterConfig ClusterConfig::type_ii(std::size_t machines,
                                     std::size_t memory_bytes) {
  SNAPLE_CHECK(machines >= 1);
  ClusterConfig cfg;
  cfg.machine = MachineSpec{
      .name = "type-II",
      .cores = 20,
      .bandwidth_bytes_per_s = 1.25e9,  // 10 GbE
      .memory_bytes = memory_bytes,
      // E5-2660v2 cores are a good deal faster than L5420 cores despite
      // the lower clock; 1.4 keeps type-II ahead per-core as in the paper.
      .core_speed = 1.4,
  };
  cfg.num_machines = machines;
  return cfg;
}

ClusterConfig ClusterConfig::single_machine(std::size_t cores) {
  SNAPLE_CHECK(cores >= 1);
  ClusterConfig cfg;
  cfg.machine = MachineSpec{
      .name = "single",
      .cores = cores,
      .bandwidth_bytes_per_s = 0.0,  // unused: nothing crosses machines
      .memory_bytes = 0,
      .core_speed = 1.4,
  };
  cfg.num_machines = 1;
  cfg.superstep_latency_s = 0.0;
  return cfg;
}

std::string ClusterConfig::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%zu x %s (%zu cores total)", num_machines,
                machine.name.c_str(), total_cores());
  return buf;
}

}  // namespace snaple::gas
