// ModelShard — one serving shard's resident slice of a PredictorModel.
//
// The sharded serving tier partitions the model by contiguous vertex
// range (gas::VertexRange): shard i holds the flattened rows of its
// range and nothing else, exactly what a separate shard process would
// load from disk. Ranges are planned by row *bytes*
// (plan_shard_ranges), so a skewed model still spreads evenly.
//
// What a topk(u) query reads (core/snaple_rows.hpp fold): Γ̂(u) and
// sims(u) — owned by u's shard by construction — plus sims(v) (and, for
// K=3, hop2(v)) for every retained neighbor v ∈ Du.sims. Those
// neighbors can live anywhere, so a shard has two choices, both exposed
// here and both proven bit-identical to the single-process QueryEngine:
//
//   * co-locate (colocate=true): at build time, copy the sims/hop2 rows
//     of every out-of-range retained neighbor into a read-only replica
//     table. Queries are then always shard-local; the cost is
//     replica_bytes() of duplicated rows (the serving analogue of the
//     vertex-cut replication factor).
//   * remote fetch (colocate=false): missing_rows(u) names the
//     non-resident rows; the serving layer resolves each one — from its
//     hot-row cache (serve/row_cache.hpp) or a batched peer fetch
//     (router.hpp counts both) — and passes them as a RowOverlay to
//     topk().
//
// Bit-identity holds because the fold depends only on row *contents*,
// never on where a row is resident: the shard replays the same
// machine-grouped fold (rows::fold_vertex_paths) over the same bytes
// and ranks with the same rank_candidates as QueryEngine::topk.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/scoring.hpp"
#include "gas/partition.hpp"
#include "serve/row_cache.hpp"

namespace snaple::serve {

/// Non-resident rows resolved for one (or a batch of) queries, id-sorted
/// — the overlay ModelShard::topk consults for non-resident neighbors.
/// Rows are borrowed pointers: the serving layer pins each backing
/// HotRow (a cache hit's shared_ptr or a freshly fetched row) for the
/// duration of the fold, so an overlay is assembled without copying row
/// payloads. Machine tags are deliberately absent: the fold reads tags
/// only from the *queried* vertex's own sims row, which its shard always
/// owns, so shipping or caching tags for neighbor rows would be dead
/// bytes.
struct RowOverlay {
  std::vector<VertexId> ids;         // sorted ascending
  std::vector<const HotRow*> rows;   // parallel to ids, never null
};

class ModelShard {
 public:
  /// Slices `model` to `range`'s rows. colocate=true additionally copies
  /// the rows of every out-of-range retained neighbor (see file header).
  [[nodiscard]] static ModelShard build(const PredictorModel& model,
                                        gas::VertexRange range,
                                        bool colocate);

  [[nodiscard]] const gas::VertexRange& range() const noexcept {
    return range_;
  }
  [[nodiscard]] const SnapleConfig& config() const noexcept {
    return config_;
  }
  /// Vertex count of the FULL model (candidate ids span all of it).
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }

  [[nodiscard]] bool owns(VertexId u) const noexcept {
    return range_.contains(u);
  }
  /// Owned or replicated: sims(v)/hop2(v) may be read without a fetch.
  [[nodiscard]] bool has_row(VertexId v) const noexcept;

  /// Γ̂(u); u must be owned (queries land on the owner; remote shards
  /// never need another vertex's gamma row).
  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const;

  /// Retained-neighbor row of v — owned or replicated (has_row(v)).
  /// The machine span is empty for replicated rows; the fold reads tags
  /// only off the owned, queried vertex. Throws CheckError otherwise.
  [[nodiscard]] PredictorModel::SimsView sims(VertexId v) const;
  [[nodiscard]] PredictorModel::Hop2View hop2(VertexId v) const;

  /// Retained neighbors of owned u whose rows are NOT resident, sorted
  /// ascending — what the router must fetch before topk(u). Always
  /// empty for a colocated shard.
  [[nodiscard]] std::vector<VertexId> missing_rows(VertexId u) const;

  /// Top-k for owned u — bit-identical to QueryEngine::topk on the full
  /// model. k = 0 means the model's configured k. `overlay` supplies
  /// non-resident neighbor rows (required iff missing_rows(u) is
  /// non-empty; a missing row throws CheckError, never misscores).
  [[nodiscard]] std::vector<std::pair<VertexId, float>> topk(
      VertexId u, std::size_t k = 0,
      const RowOverlay* overlay = nullptr) const;

  /// Number of replicated out-of-range rows (0 unless colocated).
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replica_ids_.size();
  }
  /// Resident bytes of the replica table alone — the co-location cost.
  [[nodiscard]] std::size_t replica_bytes() const noexcept;

 private:
  gas::VertexRange range_;
  SnapleConfig config_;
  VertexId num_vertices_ = 0;
  ScoreConfig score_;

  PredictorModel::RowsSlice rows_;

  // Replica table (colocate mode): id-sorted out-of-range rows.
  std::vector<VertexId> replica_ids_;
  std::vector<EdgeIndex> replica_sims_offsets_;  // size replicas+1
  std::vector<VertexId> replica_sims_ids_;
  std::vector<float> replica_sims_scores_;
  std::vector<EdgeIndex> replica_hop2_offsets_;  // size replicas+1
  std::vector<VertexId> replica_hop2_ids_;
  std::vector<float> replica_hop2_scores_;
};

/// Byte-balanced contiguous ranges for `parts` shards: vertex u weighs
/// model.row_bytes(u). Every query-relevant array slices along the
/// result; parts may exceed the vertex count (trailing ranges empty).
[[nodiscard]] std::vector<gas::VertexRange> plan_shard_ranges(
    const PredictorModel& model, std::size_t parts);

}  // namespace snaple::serve
