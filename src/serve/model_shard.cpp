#include "serve/model_shard.hpp"

#include <algorithm>
#include <string>

#include "core/query_engine.hpp"
#include "core/snaple_rows.hpp"
#include "util/check.hpp"
#include "util/score_map.hpp"

namespace snaple::serve {

namespace {

/// Index of v in the id-sorted table, or npos.
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::size_t sorted_find(const std::vector<VertexId>& ids, VertexId v) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  if (it == ids.end() || *it != v) return kNpos;
  return static_cast<std::size_t>(it - ids.begin());
}

/// Model-row source over a shard plus an optional row overlay — the
/// `Model` interface rows::fold_vertex_paths templates over. Resolution
/// order: owned slice, replica table, overlay (cached or fetched rows);
/// a row resident nowhere is a routing bug and throws (never misscores).
struct ShardRowSource {
  const ModelShard* shard;
  const RowOverlay* overlay;

  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const {
    return shard->gamma_hat(u);
  }

  [[nodiscard]] PredictorModel::SimsView sims(VertexId v) const {
    if (shard->has_row(v)) return shard->sims(v);
    const HotRow& row = overlay_row(v);
    return {{row.sims_ids.data(), row.sims_ids.size()},
            {row.sims_scores.data(), row.sims_scores.size()},
            {}};
  }

  [[nodiscard]] PredictorModel::Hop2View hop2(VertexId v) const {
    if (shard->has_row(v)) return shard->hop2(v);
    const HotRow& row = overlay_row(v);
    return {{row.hop2_ids.data(), row.hop2_ids.size()},
            {row.hop2_scores.data(), row.hop2_scores.size()}};
  }

  [[nodiscard]] const SnapleConfig& config() const {
    return shard->config();
  }

 private:
  [[nodiscard]] const HotRow& overlay_row(VertexId v) const {
    const std::size_t i =
        overlay != nullptr ? sorted_find(overlay->ids, v) : kNpos;
    SNAPLE_CHECK_MSG(i != kNpos,
                     "row for vertex " + std::to_string(v) +
                         " is not resident on this shard and was not "
                         "cached or fetched — route a fetch first");
    return *overlay->rows[i];
  }
};

rows::PathFoldScratch& local_scratch() {
  static thread_local rows::PathFoldScratch scratch;
  return scratch;
}

}  // namespace

ModelShard ModelShard::build(const PredictorModel& model,
                             gas::VertexRange range, bool colocate) {
  SNAPLE_CHECK_MSG(range.end <= model.num_vertices() &&
                       range.begin <= range.end,
                   "shard range outside the model");
  ModelShard shard;
  shard.range_ = range;
  shard.config_ = model.config();
  shard.num_vertices_ = model.num_vertices();
  shard.score_ = model.config().resolve_score();
  shard.rows_ = model.slice_rows(range.begin, range.end);

  if (colocate) {
    // Every out-of-range retained neighbor of an owned vertex, once.
    std::vector<VertexId>& ids = shard.replica_ids_;
    for (VertexId u = range.begin; u < range.end; ++u) {
      for (const VertexId v : model.sims(u).ids) {
        if (!range.contains(v)) ids.push_back(v);
      }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

    shard.replica_sims_offsets_.reserve(ids.size() + 1);
    shard.replica_sims_offsets_.push_back(0);
    shard.replica_hop2_offsets_.reserve(ids.size() + 1);
    shard.replica_hop2_offsets_.push_back(0);
    for (const VertexId v : ids) {
      const auto sv = model.sims(v);
      shard.replica_sims_ids_.insert(shard.replica_sims_ids_.end(),
                                     sv.ids.begin(), sv.ids.end());
      shard.replica_sims_scores_.insert(shard.replica_sims_scores_.end(),
                                        sv.scores.begin(), sv.scores.end());
      shard.replica_sims_offsets_.push_back(shard.replica_sims_ids_.size());
      const auto hv = model.hop2(v);
      shard.replica_hop2_ids_.insert(shard.replica_hop2_ids_.end(),
                                     hv.ids.begin(), hv.ids.end());
      shard.replica_hop2_scores_.insert(shard.replica_hop2_scores_.end(),
                                        hv.scores.begin(), hv.scores.end());
      shard.replica_hop2_offsets_.push_back(shard.replica_hop2_ids_.size());
    }
  } else {
    shard.replica_sims_offsets_.push_back(0);
    shard.replica_hop2_offsets_.push_back(0);
  }
  return shard;
}

bool ModelShard::has_row(VertexId v) const noexcept {
  return owns(v) || sorted_find(replica_ids_, v) != kNpos;
}

std::span<const VertexId> ModelShard::gamma_hat(VertexId u) const {
  SNAPLE_CHECK_MSG(owns(u), "gamma row of vertex " + std::to_string(u) +
                                " is not owned by this shard");
  const std::size_t i = u - range_.begin;
  return {rows_.gamma_ids.data() + rows_.gamma_offsets[i],
          rows_.gamma_ids.data() + rows_.gamma_offsets[i + 1]};
}

PredictorModel::SimsView ModelShard::sims(VertexId v) const {
  if (owns(v)) {
    const std::size_t i = v - range_.begin;
    const std::size_t b = rows_.sims_offsets[i];
    const std::size_t e = rows_.sims_offsets[i + 1];
    return {{rows_.sims_ids.data() + b, rows_.sims_ids.data() + e},
            {rows_.sims_scores.data() + b, rows_.sims_scores.data() + e},
            {rows_.sims_machines.data() + b,
             rows_.sims_machines.data() + e}};
  }
  const std::size_t i = sorted_find(replica_ids_, v);
  SNAPLE_CHECK_MSG(i != kNpos, "sims row of vertex " + std::to_string(v) +
                                   " is not resident on this shard");
  const std::size_t b = replica_sims_offsets_[i];
  const std::size_t e = replica_sims_offsets_[i + 1];
  return {{replica_sims_ids_.data() + b, replica_sims_ids_.data() + e},
          {replica_sims_scores_.data() + b,
           replica_sims_scores_.data() + e},
          {}};
}

PredictorModel::Hop2View ModelShard::hop2(VertexId v) const {
  if (owns(v)) {
    if (rows_.hop2_offsets.empty()) return {};
    const std::size_t i = v - range_.begin;
    const std::size_t b = rows_.hop2_offsets[i];
    const std::size_t e = rows_.hop2_offsets[i + 1];
    return {{rows_.hop2_ids.data() + b, rows_.hop2_ids.data() + e},
            {rows_.hop2_scores.data() + b, rows_.hop2_scores.data() + e}};
  }
  const std::size_t i = sorted_find(replica_ids_, v);
  SNAPLE_CHECK_MSG(i != kNpos, "hop2 row of vertex " + std::to_string(v) +
                                   " is not resident on this shard");
  const std::size_t b = replica_hop2_offsets_[i];
  const std::size_t e = replica_hop2_offsets_[i + 1];
  return {{replica_hop2_ids_.data() + b, replica_hop2_ids_.data() + e},
          {replica_hop2_scores_.data() + b,
           replica_hop2_scores_.data() + e}};
}

std::vector<VertexId> ModelShard::missing_rows(VertexId u) const {
  std::vector<VertexId> missing;
  for (const VertexId v : sims(u).ids) {
    if (!has_row(v)) missing.push_back(v);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()),
                missing.end());
  return missing;
}

std::vector<std::pair<VertexId, float>> ModelShard::topk(
    VertexId u, std::size_t k, const RowOverlay* overlay) const {
  SNAPLE_CHECK_MSG(owns(u), "query vertex " + std::to_string(u) +
                                " routed to the wrong shard");
  const ShardRowSource source{this, overlay};
  rows::PathFoldScratch& scratch = local_scratch();
  rows::fold_vertex_paths(source, score_, u, rows::PathFold::kRecommend,
                          /*zero_skip=*/false, scratch);
  return rank_candidates(scratch.merged, score_.aggregator,
                         k == 0 ? config_.k : k);
}

std::size_t ModelShard::replica_bytes() const noexcept {
  return replica_ids_.size() * sizeof(VertexId) +
         replica_sims_ids_.size() *
             (sizeof(VertexId) + sizeof(float)) +
         replica_hop2_ids_.size() *
             (sizeof(VertexId) + sizeof(float)) +
         (replica_sims_offsets_.size() + replica_hop2_offsets_.size()) *
             sizeof(EdgeIndex);
}

std::vector<gas::VertexRange> plan_shard_ranges(const PredictorModel& model,
                                                std::size_t parts) {
  const VertexId n = model.num_vertices();
  std::vector<std::uint64_t> prefix(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    prefix[u + 1] = prefix[u] + model.row_bytes(u);
  }
  return gas::split_weighted_ranges(prefix, parts);
}

}  // namespace snaple::serve
