// Query routing over shard servers — the serving tier's network layer.
//
// Topology: N ShardServers (one ModelShard each, a thread per inbound
// connection) and one QueryRouter holding a small connection pool to
// every shard. In remote-fetch mode each shard additionally holds a
// client link to every other shard, so a query's non-resident neighbor
// rows are fetched shard→shard (one batched request per owning shard —
// the "explicit remote fetch, counted" of the cost model), never routed
// back through the frontend. A per-shard hot-row cache
// (serve/row_cache.hpp) short-circuits repeat fetches of the same rows:
// the fetch path consults it first and inserts what it fetched, keyed
// by (vertex, row_version) so nothing stale ever serves.
//
// Wire protocol (host byte order — shard links never cross machines of
// different architecture in this simulated tier; scores travel as raw
// f32 bytes, which is what keeps the sharded answers bit-identical):
//
//   request  := u8 op, payload
//     op 1 (topk):       u32 u | u64 k
//     op 2 (fetch_rows): u32 count | count × u32 id   (ids ascending,
//                        every id owned by the receiving shard)
//     op 3 (topk_batch): u64 k | u32 count | count × u32 u  (every u
//                        owned by the receiving shard; ONE wire message
//                        answers the whole sub-batch, and the server
//                        resolves the union of the batch's missing rows
//                        with at most one peer fetch per owning shard)
//     op 4 (update):     u32 count | count × (u32 src | u32 dst) —
//                        update-plane only (serve/update_router.hpp);
//                        static shards answer with an error
//     op 5 (barrier):    no payload — update-plane only
//     op 6 (remove):     u32 count | count × (u32 src | u32 dst) —
//                        update-plane only; tombstones the batch
//                        instead of inserting it
//   response := u8 status (0 = ok, 1 = error)
//     error payload: u32 len | len bytes of message — the router/fetcher
//       rethrows it as CheckError, so a misrouted or out-of-range query
//       surfaces to the caller exactly like QueryEngine's own check.
//       An op-3 batch fails or succeeds as a whole (the router vets
//       ranges before submitting, so a batch error means a misroute).
//     topk ok:   u32 count | count × u32 id | count × f32 score
//     batch ok:  per query, in request order, the topk ok payload
//     fetch ok:  per requested id, in request order:
//               u64 version (the OWNER's current version of the row —
//                 the fetching shard caches under this key, so skewed
//                 local version views can never pin a stale row)
//             | u32 sims_len | sims_len × u32 id | sims_len × f32 score
//             | u32 hop2_len | hop2_len × u32 id | hop2_len × f32 score
//     update ok: u64 version | u64 gamma_rows | u64 sims_rows
//              | u64 hop2_rows   (this shard's owned republish counts)
//     barrier ok: u64 version
//
// Pipelining: the router no longer runs lockstep request/response round
// trips. Each pooled connection pairs a submission side (requests are
// enqueued and written under a send mutex — wire order IS queue order)
// with a dedicated drain thread that reads responses in order and
// completes the matching futures. Concurrent callers on one connection
// therefore overlap their round trips instead of serializing on them,
// and topk_async lets a single caller keep many requests in flight.
//
// Shutdown: closing a link's client end makes the serving thread's next
// recv throw TransportError, which IS the clean exit (transport.hpp).
// Router-side, the same close wakes the drain threads, which fail any
// in-flight futures with TransportError and exit. ServingCluster tears
// down router connections first, peer links after, so no thread is ever
// mid-fetch on a dead peer during normal teardown.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "gas/partition.hpp"
#include "serve/live_shard.hpp"
#include "serve/model_shard.hpp"
#include "serve/row_cache.hpp"
#include "serve/transport.hpp"
#include "serve/update_router.hpp"

namespace snaple::serve {

/// Per-shard serving counters, readable while the cluster serves.
struct ShardStats {
  std::uint64_t queries = 0;        // topk answers produced (incl. errors)
  std::uint64_t batch_requests = 0;  // op-3 messages handled
  std::uint64_t errors = 0;         // error responses sent
  std::uint64_t remote_fetch_requests = 0;  // batched peer fetches issued
  std::uint64_t remote_rows = 0;    // rows pulled over peer links
  std::uint64_t cache_hits = 0;     // fetch-path rows served from cache
  std::uint64_t cache_misses = 0;   // fetch-path cache lookups that missed
  std::uint64_t frontend_bytes_in = 0;   // router→shard request bytes
  std::uint64_t frontend_bytes_out = 0;  // shard→router response bytes
  std::uint64_t peer_bytes_out = 0;  // this shard's outgoing fetch bytes
  std::uint64_t peer_bytes_in = 0;   // fetched row bytes received
  std::uint64_t replica_count = 0;   // co-located rows (0 in fetch mode)
  std::uint64_t replica_bytes = 0;
  // Update plane (all zero on a static shard):
  std::uint64_t update_batches = 0;  // op-4 messages applied
  std::uint64_t update_edges = 0;    // edges inserted by them
  std::uint64_t remove_batches = 0;  // op-6 messages applied
  std::uint64_t remove_edges = 0;    // edges tombstoned by them
  std::uint64_t gamma_republished = 0;  // owned rows recomputed
  std::uint64_t sims_republished = 0;
  std::uint64_t hop2_republished = 0;
  std::uint64_t overlay_bytes = 0;   // live-shard bytes beyond the base
};

/// One shard process stand-in: serves the wire protocol over any number
/// of inbound links, each on its own thread, answering topk for owned
/// vertices (resolving missing neighbor rows from its cache or peers
/// first) and fetch_rows for peers. serve()/connect_peer() are
/// setup-time only; the serving threads themselves are concurrency-safe
/// afterwards.
///
/// Backends: a STATIC shard (ModelShard — immutable rows, ops 1/2/3) or
/// a LIVE shard (LiveShard — versioned RCU rows, additionally ops 4/5,
/// the update plane). The wire protocol and every query-path invariant
/// are identical either way; live fetch responses simply carry real
/// (bumping) versions where static ones carry the frozen table's.
class ShardServer {
 public:
  /// Static backend. `ranges` is the full cluster layout (for owner
  /// lookup on fetches). `cache` (may be null) backs the remote-fetch
  /// fast path; lookups are keyed with `row_versions` (null = every row
  /// at version 0).
  ShardServer(ModelShard shard, std::vector<gas::VertexRange> ranges,
              std::shared_ptr<RowCache> cache = nullptr,
              std::shared_ptr<const std::vector<std::uint64_t>>
                  row_versions = nullptr);
  /// Live backend: rows and versions come from `live`, which op-4
  /// batches mutate in place — no freeze, no re-shard.
  ShardServer(std::shared_ptr<LiveShard> live,
              std::vector<gas::VertexRange> ranges,
              std::shared_ptr<RowCache> cache = nullptr);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Starts a serving thread reading requests off `channel` until EOF.
  /// frontend=false marks a peer-facing link (fetch traffic); its bytes
  /// are excluded from the frontend counters, because the requesting
  /// shard already counts them on its side of the same link.
  void serve(std::unique_ptr<ByteChannel> channel, bool frontend = true);

  /// Registers the client end of a link to peer shard `shard_index`
  /// (required before serving any vertex with missing rows).
  void connect_peer(std::size_t shard_index,
                    std::unique_ptr<ByteChannel> channel);

  /// The static backend (CheckError on a live server) / the live
  /// backend (null on a static server).
  [[nodiscard]] const ModelShard& shard() const;
  [[nodiscard]] const std::shared_ptr<LiveShard>& live() const noexcept {
    return live_;
  }

  /// Closes every link and joins the serving threads. Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ShardStats stats() const;

 private:
  struct Connection {
    std::unique_ptr<ByteChannel> channel;
    std::thread thread;
    bool frontend = true;
  };
  struct PeerLink {
    std::unique_ptr<ByteChannel> channel;
    std::mutex mu;  // one fetch in flight per link at a time
  };
  /// The non-resident rows of one (batch of) queries, overlay-shaped
  /// for ModelShard::topk. `pins` keeps every backing HotRow alive for
  /// the fold (cache hits stay valid even if evicted concurrently).
  struct ResolvedRows {
    RowOverlay overlay;
    std::vector<std::shared_ptr<const HotRow>> pins;
    /// Live backend only: the users' sims rows as read when their
    /// missing sets were computed, index-aligned with the users span
    /// passed to collect_rows — the fold must run over exactly these
    /// (a writer may republish a root row mid-query). Empty on static
    /// shards, whose rows cannot move.
    std::vector<PredictorModel::SimsView> roots;
  };

  /// One fetched row with the version its OWNER reported — the cache
  /// key that keeps skewed local views from pinning stale rows.
  struct FetchedRow {
    std::uint64_t version = 0;
    std::shared_ptr<const HotRow> row;
  };

  void serve_loop(ByteChannel& ch);
  void handle_topk(ByteChannel& ch);
  void handle_topk_batch(ByteChannel& ch);
  void handle_fetch(ByteChannel& ch);
  void handle_update(ByteChannel& ch);
  void handle_remove(ByteChannel& ch);
  void handle_barrier(ByteChannel& ch);
  /// Shared body of handle_update/handle_remove: read the edge list,
  /// apply it to the live backend under update_mu_, reply with the
  /// version + owned republish counts.
  void handle_edge_batch(ByteChannel& ch, bool remove);

  // Backend dispatch (static ModelShard vs live LiveShard).
  [[nodiscard]] bool owns(VertexId u) const;
  [[nodiscard]] const gas::VertexRange& range() const;
  [[nodiscard]] VertexId num_vertices() const;
  [[nodiscard]] std::vector<VertexId> missing_rows(
      VertexId u, PredictorModel::SimsView* root = nullptr) const;
  [[nodiscard]] std::vector<std::pair<VertexId, float>> topk(
      VertexId u, std::size_t k, const RowOverlay* overlay,
      const PredictorModel::SimsView* root = nullptr) const;

  /// Resolves the union of the users' missing rows: cache first (keyed
  /// by row version), then one batched peer fetch per owning shard for
  /// the remainder; fetched rows are inserted into the cache on the way
  /// through, under the version the owner reported.
  [[nodiscard]] ResolvedRows collect_rows(std::span<const VertexId> users);
  /// One batched fetch per owning shard of `missing` (sorted); returns
  /// rows parallel to `missing`. Peer transport failures surface as
  /// CheckError (the query fails, the frontend link survives).
  [[nodiscard]] std::vector<FetchedRow> fetch_remote(
      const std::vector<VertexId>& missing);
  /// This shard's current view of v's version: the live table (bumping)
  /// or the static table (frozen; null = all zero).
  [[nodiscard]] std::uint64_t row_version(VertexId v) const {
    if (live_ != nullptr) return live_->row_version(v);
    return row_versions_ == nullptr ? 0 : (*row_versions_)[v];
  }

  std::optional<ModelShard> shard_;   // exactly one backend is set
  std::shared_ptr<LiveShard> live_;
  std::vector<gas::VertexRange> ranges_;
  std::shared_ptr<RowCache> cache_;  // null = no fetch-path cache
  std::shared_ptr<const std::vector<std::uint64_t>> row_versions_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<PeerLink>> peers_;  // index = shard, null self
  std::mutex update_mu_;  // serializes op-4/op-5 application
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> batch_requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> remote_fetch_requests_{0};
  std::atomic<std::uint64_t> remote_rows_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> update_batches_{0};
  std::atomic<std::uint64_t> update_edges_{0};
  std::atomic<std::uint64_t> remove_batches_{0};
  std::atomic<std::uint64_t> remove_edges_{0};
  std::atomic<std::uint64_t> gamma_republished_{0};
  std::atomic<std::uint64_t> sims_republished_{0};
  std::atomic<std::uint64_t> hop2_republished_{0};
  std::atomic<bool> down_{false};
};

/// Router-side submission counters.
struct RouterStats {
  std::uint64_t requests = 0;        // wire messages submitted
  std::uint64_t batch_requests = 0;  // op-3 messages among them
  std::uint64_t batched_queries = 0; // queries carried by those batches
  std::uint64_t max_inflight = 0;    // deepest per-connection pipeline seen
};

/// The client side: owns a connection pool per shard, routes topk(u) to
/// u's owner by range lookup and speaks the wire protocol. All
/// submission calls are safe for concurrent callers — each pick a
/// pooled connection round-robin, enqueue under that connection's send
/// mutex and are completed by its drain thread, so requests pipeline
/// instead of serializing on lockstep round trips.
class QueryRouter {
 public:
  using Scored = std::vector<std::pair<VertexId, float>>;

  /// `recv_timeout` > 0 arms a response deadline on every connection: a
  /// shard that stays silent that long WITH requests in flight is
  /// declared dead (its futures fail with TransportError) instead of
  /// wedging the drain thread forever. Idle timeouts are just retried —
  /// silence with nothing in flight is the normal state.
  QueryRouter(std::vector<gas::VertexRange> ranges,
              std::vector<std::vector<std::unique_ptr<ByteChannel>>>
                  connections_per_shard,
              std::chrono::milliseconds recv_timeout =
                  std::chrono::milliseconds{0});
  ~QueryRouter();

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return ranges_.back().end;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return ranges_.size();
  }
  [[nodiscard]] std::size_t shard_of(VertexId u) const {
    return gas::range_owner(ranges_, u);
  }

  /// Top-k of u served by u's shard — bit-identical to
  /// QueryEngine::topk(u, k) on the unsharded model. k = 0 means the
  /// model's configured k. Shard-side failures (misroute, bad vertex)
  /// arrive as CheckError; a dead link as TransportError.
  [[nodiscard]] Scored topk(VertexId u, std::size_t k = 0);

  /// Pipelined submission: enqueues the request and returns immediately;
  /// the connection's drain thread completes the future (value, or the
  /// same CheckError/TransportError topk would throw). Submitting before
  /// waiting is how one caller overlaps many round trips.
  [[nodiscard]] std::future<Scored> topk_async(VertexId u,
                                               std::size_t k = 0);

  /// topk for a batch of users: ONE wire message per owning shard
  /// (op 3), submitted to every shard before any response is awaited.
  /// out[i] corresponds to users[i]; duplicates are fine. Bit-identical
  /// to per-query topk. Validates every id up front (CheckError, nothing
  /// submitted on a bad id).
  [[nodiscard]] std::vector<Scored> topk_batch(
      std::span<const VertexId> users, std::size_t k = 0);

  /// Closes every pooled connection (signals the shards' serving
  /// threads to exit), fails in-flight futures with TransportError and
  /// joins the drain threads. Idempotent; the destructor calls it.
  void close();

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept;
  [[nodiscard]] std::uint64_t bytes_received() const noexcept;

 private:
  /// One submitted-but-unanswered request: how many topk payloads its
  /// response carries, and the promise the drain thread completes.
  struct Pending {
    std::size_t count = 1;
    std::variant<std::promise<Scored>, std::promise<std::vector<Scored>>>
        result;
  };
  struct Connection {
    std::unique_ptr<ByteChannel> channel;
    std::mutex send_mu;   // serializes enqueue+write (wire order = queue order)
    std::mutex queue_mu;  // guards inflight + dead
    std::deque<Pending> inflight;
    bool dead = false;  // drain thread exited; submissions must throw
    std::thread drain;
  };

  /// Enqueues `pending` on a round-robin connection of `shard` and
  /// writes `req`; on a write failure the connection is declared dead
  /// and every queued future fails.
  void submit(std::size_t shard, const std::vector<std::uint8_t>& req,
              Pending pending);
  void drain_loop(Connection& conn);
  static void fail(Pending& pending, const std::exception_ptr& err);

  std::vector<gas::VertexRange> ranges_;
  std::vector<std::vector<std::unique_ptr<Connection>>> pools_;
  std::unique_ptr<std::atomic<std::size_t>[]> round_robin_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batch_requests_{0};
  std::atomic<std::uint64_t> batched_queries_{0};
  std::atomic<std::uint64_t> max_inflight_{0};
  std::atomic<bool> closed_{false};
};

/// Cluster assembly options.
struct ServeOptions {
  std::size_t num_shards = 2;
  TransportKind transport = TransportKind::kInProcess;
  /// true: co-locate out-of-range neighbor rows at build time (queries
  /// always shard-local). false: fetch them from the owning shard per
  /// query, over shard↔shard links.
  bool colocate = true;
  /// Router connections pooled per shard (each gets a serving thread).
  std::size_t connections_per_shard = 1;
  /// Hot-row cache budget PER SHARD for the remote-fetch path, in bytes
  /// (0 = no cache; irrelevant in colocate mode, which never fetches).
  /// Each shard gets its own RowCache, dropped with the cluster — a
  /// re-shard starts cold.
  std::size_t cache_bytes = 0;
  /// Install ONE existing cache on every shard instead, and keep it
  /// across cluster generations (the warm-restart pattern: rows
  /// untouched by an update keep hitting, republished rows miss on
  /// their bumped version key). Takes precedence over cache_bytes.
  std::shared_ptr<RowCache> shared_cache;
  /// Per-vertex row versions of the served model (null = all rows at
  /// version 0 — right for any freshly fit or loaded model). For a
  /// model produced by DynamicModel::freeze(), pass its row_version
  /// counters so cache keys distinguish republished rows.
  std::shared_ptr<const std::vector<std::uint64_t>> row_versions;
  /// TCP transport only: the port the cluster's one listener binds on
  /// 127.0.0.1 (0 = kernel-chosen ephemeral). Every cluster link —
  /// router pool, peer mesh, update links — is accepted through it,
  /// exactly the accept loop a real shard deployment would run.
  std::uint16_t tcp_port = 0;
  /// Router-side response deadline in ms (0 = none): see QueryRouter.
  std::uint32_t recv_timeout_ms = 0;
};

/// Everything wired: plans byte-balanced ranges, builds the shards,
/// starts the servers, connects peer links (fetch mode) and a router
/// pool. The process-boundary discipline is real — after construction,
/// every query crosses the chosen byte transport; only fork(2) is
/// simulated away. (The hot-row cache is per shard, matching what a
/// shard process could hold in local memory — shards never read each
/// other's caches.)
class ServingCluster {
 public:
  /// Static cluster: immutable rows, query plane only.
  ServingCluster(const PredictorModel& model, const ServeOptions& options);
  /// LIVE cluster: each shard backs its range with a LiveShard over
  /// (model, graph) — the graph the model was fit on, with
  /// PartitionStrategy::kEdgeLocal — and an UpdateRouter fans insert
  /// batches to every shard over dedicated links. Requires
  /// colocate=false (replicated rows cannot be kept fresh; fetched rows
  /// can, via versions). Queries keep flowing during updates; after
  /// update_router().barrier(), every answer is bit-identical to a
  /// refit on the union graph.
  ServingCluster(std::shared_ptr<const PredictorModel> model,
                 std::shared_ptr<const CsrGraph> graph,
                 const ServeOptions& options);
  ~ServingCluster();

  ServingCluster(const ServingCluster&) = delete;
  ServingCluster& operator=(const ServingCluster&) = delete;

  [[nodiscard]] QueryRouter& router() noexcept { return *router_; }
  /// The write plane (CheckError on a static cluster).
  [[nodiscard]] UpdateRouter& update_router();
  [[nodiscard]] bool live() const noexcept {
    return update_router_ != nullptr;
  }
  [[nodiscard]] const std::vector<gas::VertexRange>& ranges()
      const noexcept {
    return ranges_;
  }
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }
  /// Per-shard counters, index-aligned with ranges().
  [[nodiscard]] std::vector<ShardStats> stats() const;
  /// Aggregate hot-row cache counters (distinct caches summed once;
  /// all-zero when the cluster runs cacheless).
  [[nodiscard]] RowCacheStats cache_stats() const;

 private:
  /// Shared tail of both ctors: peer mesh (fetch mode), router pool,
  /// update links (live mode). Servers must already be constructed.
  void assemble();
  /// One connected link of options_.transport — through the cluster's
  /// single TCP listener when the transport is kTcp.
  [[nodiscard]] ChannelPair make_link();
  void build_caches();

  ServeOptions options_;
  std::vector<gas::VertexRange> ranges_;
  std::unique_ptr<TcpListener> listener_;  // kTcp only
  std::vector<std::shared_ptr<RowCache>> caches_;  // distinct caches only
  std::vector<std::unique_ptr<ShardServer>> servers_;
  std::unique_ptr<QueryRouter> router_;
  std::unique_ptr<UpdateRouter> update_router_;  // live clusters only
};

}  // namespace snaple::serve
