// Query routing over shard servers — the serving tier's network layer.
//
// Topology: N ShardServers (one ModelShard each, a thread per inbound
// connection) and one QueryRouter holding a small connection pool to
// every shard. In remote-fetch mode each shard additionally holds a
// client link to every other shard, so a query's non-resident neighbor
// rows are fetched shard→shard (one batched request per owning shard —
// the "explicit remote fetch, counted" of the cost model), never routed
// back through the frontend.
//
// Wire protocol (host byte order — shard links never cross machines of
// different architecture in this simulated tier; scores travel as raw
// f32 bytes, which is what keeps the sharded answers bit-identical):
//
//   request  := u8 op, payload
//     op 1 (topk):       u32 u | u64 k
//     op 2 (fetch_rows): u32 count | count × u32 id   (ids ascending,
//                        every id owned by the receiving shard)
//   response := u8 status (0 = ok, 1 = error)
//     error payload: u32 len | len bytes of message — the router/fetcher
//       rethrows it as CheckError, so a misrouted or out-of-range query
//       surfaces to the caller exactly like QueryEngine's own check.
//     topk ok:  u32 count | count × u32 id | count × f32 score
//     fetch ok: per requested id, in request order:
//               u32 sims_len | sims_len × u32 id | sims_len × f32 score
//             | u32 hop2_len | hop2_len × u32 id | hop2_len × f32 score
//
// Shutdown: closing a link's client end makes the serving thread's next
// recv throw TransportError, which IS the clean exit (transport.hpp).
// ServingCluster tears down router connections first, peer links after,
// so no thread is ever mid-fetch on a dead peer during normal teardown.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "gas/partition.hpp"
#include "serve/model_shard.hpp"
#include "serve/transport.hpp"

namespace snaple::serve {

/// Per-shard serving counters, readable while the cluster serves.
struct ShardStats {
  std::uint64_t queries = 0;        // topk requests answered (incl. errors)
  std::uint64_t errors = 0;         // error responses sent
  std::uint64_t remote_fetch_requests = 0;  // batched peer fetches issued
  std::uint64_t remote_rows = 0;    // rows pulled over peer links
  std::uint64_t frontend_bytes_in = 0;   // router→shard request bytes
  std::uint64_t frontend_bytes_out = 0;  // shard→router response bytes
  std::uint64_t peer_bytes_out = 0;  // this shard's outgoing fetch bytes
  std::uint64_t peer_bytes_in = 0;   // fetched row bytes received
  std::uint64_t replica_count = 0;   // co-located rows (0 in fetch mode)
  std::uint64_t replica_bytes = 0;
};

/// One shard process stand-in: serves the wire protocol over any number
/// of inbound links, each on its own thread, answering topk for owned
/// vertices (fetching missing neighbor rows from peers first) and
/// fetch_rows for peers. serve()/connect_peer() are setup-time only;
/// the serving threads themselves are concurrency-safe afterwards.
class ShardServer {
 public:
  /// `ranges` is the full cluster layout (for owner lookup on fetches).
  ShardServer(ModelShard shard, std::vector<gas::VertexRange> ranges);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Starts a serving thread reading requests off `channel` until EOF.
  /// frontend=false marks a peer-facing link (fetch traffic); its bytes
  /// are excluded from the frontend counters, because the requesting
  /// shard already counts them on its side of the same link.
  void serve(std::unique_ptr<ByteChannel> channel, bool frontend = true);

  /// Registers the client end of a link to peer shard `shard_index`
  /// (required before serving any vertex with missing rows).
  void connect_peer(std::size_t shard_index,
                    std::unique_ptr<ByteChannel> channel);

  [[nodiscard]] const ModelShard& shard() const noexcept { return shard_; }

  /// Closes every link and joins the serving threads. Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ShardStats stats() const;

 private:
  struct Connection {
    std::unique_ptr<ByteChannel> channel;
    std::thread thread;
    bool frontend = true;
  };
  struct PeerLink {
    std::unique_ptr<ByteChannel> channel;
    std::mutex mu;  // one fetch in flight per link at a time
  };

  void serve_loop(ByteChannel& ch);
  void handle_topk(ByteChannel& ch);
  void handle_fetch(ByteChannel& ch);
  /// One batched fetch per owning shard of `missing` (sorted). Peer
  /// transport failures surface as CheckError (the query fails, the
  /// frontend link survives).
  [[nodiscard]] FetchedRows fetch_remote(
      const std::vector<VertexId>& missing);

  ModelShard shard_;
  std::vector<gas::VertexRange> ranges_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<PeerLink>> peers_;  // index = shard, null self
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> remote_fetch_requests_{0};
  std::atomic<std::uint64_t> remote_rows_{0};
  std::atomic<bool> down_{false};
};

/// The client side: owns a connection pool per shard, routes topk(u) to
/// u's owner by range lookup and speaks the wire protocol. topk() is
/// safe for concurrent callers — each call picks a pooled connection
/// round-robin and serializes on that connection's mutex.
class QueryRouter {
 public:
  QueryRouter(std::vector<gas::VertexRange> ranges,
              std::vector<std::vector<std::unique_ptr<ByteChannel>>>
                  connections_per_shard);
  ~QueryRouter();

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return ranges_.back().end;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return ranges_.size();
  }
  [[nodiscard]] std::size_t shard_of(VertexId u) const {
    return gas::range_owner(ranges_, u);
  }

  /// Top-k of u served by u's shard — bit-identical to
  /// QueryEngine::topk(u, k) on the unsharded model. k = 0 means the
  /// model's configured k. Shard-side failures (misroute, bad vertex)
  /// arrive as CheckError; a dead link as TransportError.
  [[nodiscard]] std::vector<std::pair<VertexId, float>> topk(
      VertexId u, std::size_t k = 0);

  /// Closes every pooled connection (signals the shards' serving
  /// threads to exit). Idempotent; the destructor calls it.
  void close();

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept;
  [[nodiscard]] std::uint64_t bytes_received() const noexcept;

 private:
  struct Connection {
    std::unique_ptr<ByteChannel> channel;
    std::mutex mu;
  };

  std::vector<gas::VertexRange> ranges_;
  std::vector<std::vector<std::unique_ptr<Connection>>> pools_;
  std::unique_ptr<std::atomic<std::size_t>[]> round_robin_;
};

/// Cluster assembly options.
struct ServeOptions {
  std::size_t num_shards = 2;
  TransportKind transport = TransportKind::kInProcess;
  /// true: co-locate out-of-range neighbor rows at build time (queries
  /// always shard-local). false: fetch them from the owning shard per
  /// query, over shard↔shard links.
  bool colocate = true;
  /// Router connections pooled per shard (each gets a serving thread).
  std::size_t connections_per_shard = 1;
};

/// Everything wired: plans byte-balanced ranges, builds the shards,
/// starts the servers, connects peer links (fetch mode) and a router
/// pool. The process-boundary discipline is real — after construction,
/// every query crosses the chosen byte transport; only fork(2) is
/// simulated away.
class ServingCluster {
 public:
  ServingCluster(const PredictorModel& model, const ServeOptions& options);
  ~ServingCluster();

  ServingCluster(const ServingCluster&) = delete;
  ServingCluster& operator=(const ServingCluster&) = delete;

  [[nodiscard]] QueryRouter& router() noexcept { return *router_; }
  [[nodiscard]] const std::vector<gas::VertexRange>& ranges()
      const noexcept {
    return ranges_;
  }
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }
  /// Per-shard counters, index-aligned with ranges().
  [[nodiscard]] std::vector<ShardStats> stats() const;

 private:
  ServeOptions options_;
  std::vector<gas::VertexRange> ranges_;
  std::vector<std::unique_ptr<ShardServer>> servers_;
  std::unique_ptr<QueryRouter> router_;
};

}  // namespace snaple::serve
