#include "serve/router.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "serve/wire.hpp"
#include "util/check.hpp"

namespace snaple::serve {

using namespace wire;  // NOLINT — internal framing helpers

// -------------------------------------------------------------------
// ShardServer
// -------------------------------------------------------------------

ShardServer::ShardServer(
    ModelShard shard, std::vector<gas::VertexRange> ranges,
    std::shared_ptr<RowCache> cache,
    std::shared_ptr<const std::vector<std::uint64_t>> row_versions)
    : shard_(std::move(shard)),
      ranges_(std::move(ranges)),
      cache_(std::move(cache)),
      row_versions_(std::move(row_versions)) {
  peers_.resize(ranges_.size());
  if (row_versions_ != nullptr) {
    SNAPLE_CHECK_MSG(row_versions_->size() == shard_->num_vertices(),
                     "row-version table must have one entry per vertex");
  }
}

ShardServer::ShardServer(std::shared_ptr<LiveShard> live,
                         std::vector<gas::VertexRange> ranges,
                         std::shared_ptr<RowCache> cache)
    : live_(std::move(live)),
      ranges_(std::move(ranges)),
      cache_(std::move(cache)) {
  SNAPLE_CHECK_MSG(live_ != nullptr,
                   "live ShardServer needs a LiveShard backend");
  peers_.resize(ranges_.size());
}

const ModelShard& ShardServer::shard() const {
  SNAPLE_CHECK_MSG(shard_.has_value(),
                   "this server runs a live backend — use live()");
  return *shard_;
}

bool ShardServer::owns(VertexId u) const {
  return live_ != nullptr ? live_->owns(u) : shard_->owns(u);
}

const gas::VertexRange& ShardServer::range() const {
  return live_ != nullptr ? live_->range() : shard_->range();
}

VertexId ShardServer::num_vertices() const {
  return live_ != nullptr ? live_->num_vertices() : shard_->num_vertices();
}

std::vector<VertexId> ShardServer::missing_rows(
    VertexId u, PredictorModel::SimsView* root) const {
  return live_ != nullptr ? live_->missing_rows(u, root)
                          : shard_->missing_rows(u);
}

std::vector<std::pair<VertexId, float>> ShardServer::topk(
    VertexId u, std::size_t k, const RowOverlay* overlay,
    const PredictorModel::SimsView* root) const {
  return live_ != nullptr ? live_->topk(u, k, overlay, root)
                          : shard_->topk(u, k, overlay);
}

ShardServer::~ShardServer() { shutdown(); }

void ShardServer::serve(std::unique_ptr<ByteChannel> channel,
                        bool frontend) {
  auto conn = std::make_unique<Connection>();
  conn->channel = std::move(channel);
  conn->frontend = frontend;
  ByteChannel& ch = *conn->channel;
  conn->thread = std::thread([this, &ch] { serve_loop(ch); });
  connections_.push_back(std::move(conn));
}

void ShardServer::connect_peer(std::size_t shard_index,
                               std::unique_ptr<ByteChannel> channel) {
  SNAPLE_CHECK_MSG(shard_index < peers_.size(), "peer index out of range");
  auto link = std::make_unique<PeerLink>();
  link->channel = std::move(channel);
  peers_[shard_index] = std::move(link);
}

void ShardServer::shutdown() {
  if (down_.exchange(true)) return;
  for (auto& conn : connections_) conn->channel->close();
  for (auto& peer : peers_) {
    if (peer != nullptr) peer->channel->close();
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

ShardStats ShardServer::stats() const {
  ShardStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.remote_fetch_requests =
      remote_fetch_requests_.load(std::memory_order_relaxed);
  s.remote_rows = remote_rows_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  for (const auto& conn : connections_) {
    if (!conn->frontend) continue;  // counted by the requesting shard
    s.frontend_bytes_in += conn->channel->bytes_received();
    s.frontend_bytes_out += conn->channel->bytes_sent();
  }
  for (const auto& peer : peers_) {
    if (peer == nullptr) continue;
    s.peer_bytes_out += peer->channel->bytes_sent();
    s.peer_bytes_in += peer->channel->bytes_received();
  }
  if (shard_.has_value()) {
    s.replica_count = shard_->replica_count();
    s.replica_bytes = shard_->replica_bytes();
  }
  s.update_batches = update_batches_.load(std::memory_order_relaxed);
  s.update_edges = update_edges_.load(std::memory_order_relaxed);
  s.remove_batches = remove_batches_.load(std::memory_order_relaxed);
  s.remove_edges = remove_edges_.load(std::memory_order_relaxed);
  s.gamma_republished = gamma_republished_.load(std::memory_order_relaxed);
  s.sims_republished = sims_republished_.load(std::memory_order_relaxed);
  s.hop2_republished = hop2_republished_.load(std::memory_order_relaxed);
  if (live_ != nullptr) s.overlay_bytes = live_->overlay_bytes();
  return s;
}

void ShardServer::serve_loop(ByteChannel& ch) {
  try {
    for (;;) {
      const auto op = get<std::uint8_t>(ch);
      if (op == kOpTopk) {
        handle_topk(ch);
      } else if (op == kOpFetch) {
        handle_fetch(ch);
      } else if (op == kOpBatch) {
        handle_topk_batch(ch);
      } else if (op == kOpUpdate) {
        handle_update(ch);
      } else if (op == kOpRemove) {
        handle_remove(ch);
      } else if (op == kOpBarrier) {
        handle_barrier(ch);
      } else {
        // Unknown opcode = the stream is desynced; an error response
        // then EOF is all that can be said safely.
        std::vector<std::uint8_t> buf;
        put_error(buf, "unknown opcode " + std::to_string(op));
        send_buffer(ch, buf);
        break;
      }
    }
  } catch (const TransportError&) {
    // Link closed (router/cluster shutdown, or peer death): clean exit.
  }
  ch.close();
}

void ShardServer::handle_topk(ByteChannel& ch) {
  const auto u = get<std::uint32_t>(ch);
  const auto k = get<std::uint64_t>(ch);
  queries_.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::uint8_t> buf;
  try {
    SNAPLE_CHECK_MSG(owns(u), "query vertex " + std::to_string(u) +
                                  " routed to the wrong shard [" +
                                  std::to_string(range().begin) + ", " +
                                  std::to_string(range().end) + ")");
    const VertexId user = u;
    const ResolvedRows rows = collect_rows({&user, 1});
    const auto result =
        topk(u, static_cast<std::size_t>(k), &rows.overlay,
             rows.roots.empty() ? nullptr : rows.roots.data());
    put<std::uint8_t>(buf, kStatusOk);
    put_scored(buf, result);
  } catch (const TransportError&) {
    throw;  // the frontend link itself died — no response possible
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

void ShardServer::handle_topk_batch(ByteChannel& ch) {
  const auto k = get<std::uint64_t>(ch);
  const auto count = get<std::uint32_t>(ch);
  std::vector<VertexId> users;
  get_array(ch, users, count);
  batch_requests_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(count, std::memory_order_relaxed);

  std::vector<std::uint8_t> buf;
  try {
    for (const VertexId u : users) {
      SNAPLE_CHECK_MSG(owns(u), "batched query vertex " +
                                    std::to_string(u) +
                                    " routed to the wrong shard [" +
                                    std::to_string(range().begin) + ", " +
                                    std::to_string(range().end) + ")");
    }
    // The union of the batch's missing rows, resolved ONCE: at most one
    // peer fetch per owning shard for the whole batch — the server-side
    // half of the batching win (the wire-message half is the router's).
    const ResolvedRows rows = collect_rows(users);
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < users.size(); ++i) {
      put_scored(payload,
                 topk(users[i], static_cast<std::size_t>(k), &rows.overlay,
                      rows.roots.empty() ? nullptr : &rows.roots[i]));
    }
    put<std::uint8_t>(buf, kStatusOk);
    buf.insert(buf.end(), payload.begin(), payload.end());
  } catch (const TransportError&) {
    throw;  // the frontend link itself died — no response possible
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

void ShardServer::handle_fetch(ByteChannel& ch) {
  const auto count = get<std::uint32_t>(ch);
  std::vector<VertexId> ids;
  get_array(ch, ids, count);

  std::vector<std::uint8_t> buf;
  try {
    std::vector<std::uint8_t> payload;
    for (const VertexId v : ids) {
      SNAPLE_CHECK_MSG(owns(v), "fetch for vertex " + std::to_string(v) +
                                    " sent to a non-owning shard");
      if (live_ != nullptr) {
        // Version-consistent snapshot: content and version read under
        // the live shard's retry loop, so the bytes shipped are never
        // older than the version they ship under.
        const LiveShard::VersionedRow snap = live_->snapshot_row(v);
        put<std::uint64_t>(payload, snap.version);
        const HotRow& row = *snap.row;
        put<std::uint32_t>(payload,
                           static_cast<std::uint32_t>(row.sims_ids.size()));
        put_span<VertexId>(payload, row.sims_ids);
        put_span<float>(payload, row.sims_scores);
        put<std::uint32_t>(payload,
                           static_cast<std::uint32_t>(row.hop2_ids.size()));
        put_span<VertexId>(payload, row.hop2_ids);
        put_span<float>(payload, row.hop2_scores);
        continue;
      }
      put<std::uint64_t>(payload, row_version(v));
      const auto sv = shard_->sims(v);
      put<std::uint32_t>(payload,
                         static_cast<std::uint32_t>(sv.ids.size()));
      put_span(payload, sv.ids);
      put_span(payload, sv.scores);
      const auto hv = shard_->hop2(v);
      put<std::uint32_t>(payload,
                         static_cast<std::uint32_t>(hv.ids.size()));
      put_span(payload, hv.ids);
      put_span(payload, hv.scores);
    }
    put<std::uint8_t>(buf, kStatusOk);
    buf.insert(buf.end(), payload.begin(), payload.end());
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

void ShardServer::handle_update(ByteChannel& ch) {
  handle_edge_batch(ch, /*remove=*/false);
}

void ShardServer::handle_remove(ByteChannel& ch) {
  handle_edge_batch(ch, /*remove=*/true);
}

void ShardServer::handle_edge_batch(ByteChannel& ch, bool remove) {
  const auto count = get<std::uint32_t>(ch);
  std::vector<Edge> batch(count);
  if (count != 0) {
    // Edge is {u32 src, u32 dst} — the wire layout, read in place.
    static_assert(sizeof(Edge) == 2 * sizeof(VertexId));
    ch.recv(batch.data(), count * sizeof(Edge));
  }

  std::vector<std::uint8_t> buf;
  try {
    SNAPLE_CHECK_MSG(live_ != nullptr,
                     remove ? "remove sent to a static shard — build the "
                              "cluster in live mode to apply removals"
                            : "update sent to a static shard — build the "
                              "cluster in live mode to apply inserts");
    LiveShard::ApplyStats applied;
    {
      // One link carries the plane's writes in normal operation; the
      // lock makes multi-link configurations safe rather than racy.
      std::lock_guard<std::mutex> lock(update_mu_);
      applied = remove ? live_->apply_removes(batch) : live_->apply(batch);
    }
    auto& batches = remove ? remove_batches_ : update_batches_;
    auto& edges = remove ? remove_edges_ : update_edges_;
    batches.fetch_add(1, std::memory_order_relaxed);
    edges.fetch_add(applied.edges, std::memory_order_relaxed);
    gamma_republished_.fetch_add(applied.gamma_rows,
                                 std::memory_order_relaxed);
    sims_republished_.fetch_add(applied.sims_rows,
                                std::memory_order_relaxed);
    hop2_republished_.fetch_add(applied.hop2_rows,
                                std::memory_order_relaxed);
    put<std::uint8_t>(buf, kStatusOk);
    put<std::uint64_t>(buf, applied.version);
    put<std::uint64_t>(buf, applied.gamma_rows);
    put<std::uint64_t>(buf, applied.sims_rows);
    put<std::uint64_t>(buf, applied.hop2_rows);
  } catch (const TransportError&) {
    throw;  // the update link itself died — no response possible
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

void ShardServer::handle_barrier(ByteChannel& ch) {
  std::vector<std::uint8_t> buf;
  try {
    SNAPLE_CHECK_MSG(live_ != nullptr,
                     "barrier sent to a static shard");
    // Serialize behind any in-flight apply: the version returned is a
    // quiescent point, not a mid-batch read.
    std::uint64_t version = 0;
    {
      std::lock_guard<std::mutex> lock(update_mu_);
      version = live_->version();
    }
    put<std::uint8_t>(buf, kStatusOk);
    put<std::uint64_t>(buf, version);
  } catch (const TransportError&) {
    throw;
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

ShardServer::ResolvedRows ShardServer::collect_rows(
    std::span<const VertexId> users) {
  ResolvedRows out;
  std::vector<VertexId>& missing = out.overlay.ids;
  // Live backend: pin each user's sims row as its missing set is
  // derived, so the fold later iterates exactly the neighbor set the
  // overlay covers even if a writer republishes the row in between.
  if (live_ != nullptr) out.roots.resize(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    const std::vector<VertexId> rows = missing_rows(
        users[i], live_ != nullptr ? &out.roots[i] : nullptr);
    missing.insert(missing.end(), rows.begin(), rows.end());
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()),
                missing.end());
  if (missing.empty()) return out;

  out.overlay.rows.assign(missing.size(), nullptr);
  out.pins.reserve(missing.size());
  std::vector<VertexId> need;      // cache misses, stays sorted
  std::vector<std::size_t> slot;   // their overlay positions
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const VertexId v = missing[i];
    if (cache_ != nullptr) {
      if (auto row = cache_->get(v, row_version(v))) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        out.overlay.rows[i] = row.get();
        out.pins.push_back(std::move(row));
        continue;
      }
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    need.push_back(v);
    slot.push_back(i);
  }
  if (!need.empty()) {
    const auto fetched = fetch_remote(need);
    for (std::size_t j = 0; j < need.size(); ++j) {
      out.overlay.rows[slot[j]] = fetched[j].row.get();
      if (cache_ != nullptr) {
        // Cache under the version the OWNER reported, not this shard's
        // own view: on a live cluster the views may be skewed mid-burst
        // and the owner's is the one future version checks converge to.
        cache_->put(need[j], fetched[j].version, fetched[j].row);
      }
      out.pins.push_back(fetched[j].row);
    }
  }
  return out;
}

std::vector<ShardServer::FetchedRow> ShardServer::fetch_remote(
    const std::vector<VertexId>& missing) {
  std::vector<FetchedRow> out;
  out.reserve(missing.size());

  // `missing` is sorted and ranges are contiguous ascending, so each
  // owner's ids form one consecutive run — one batched request per run,
  // rows appended in order, parallel to `missing`.
  std::size_t i = 0;
  while (i < missing.size()) {
    const std::size_t owner = gas::range_owner(ranges_, missing[i]);
    std::size_t j = i;
    while (j < missing.size() && ranges_[owner].contains(missing[j])) {
      ++j;
    }
    const std::span<const VertexId> run(missing.data() + i, j - i);

    PeerLink* peer = peers_[owner].get();
    SNAPLE_CHECK_MSG(peer != nullptr,
                     "no peer link to shard " + std::to_string(owner) +
                         " — build the cluster in remote-fetch mode");
    try {
      std::lock_guard<std::mutex> lock(peer->mu);
      ByteChannel& ch = *peer->channel;
      std::vector<std::uint8_t> req;
      put<std::uint8_t>(req, kOpFetch);
      put<std::uint32_t>(req, static_cast<std::uint32_t>(run.size()));
      put_span(req, run);
      send_buffer(ch, req);

      expect_ok(ch);
      for (std::size_t r = 0; r < run.size(); ++r) {
        FetchedRow fetched;
        fetched.version = get<std::uint64_t>(ch);
        auto row = std::make_shared<HotRow>();
        const auto sims_len = get<std::uint32_t>(ch);
        get_array(ch, row->sims_ids, sims_len);
        get_array(ch, row->sims_scores, sims_len);
        const auto hop2_len = get<std::uint32_t>(ch);
        get_array(ch, row->hop2_ids, hop2_len);
        get_array(ch, row->hop2_scores, hop2_len);
        fetched.row = std::move(row);
        out.push_back(std::move(fetched));
      }
    } catch (const TransportError& e) {
      // A dead peer fails this query, not the frontend link.
      throw CheckError(std::string("peer fetch from shard ") +
                       std::to_string(owner) + " failed: " + e.what());
    }
    remote_fetch_requests_.fetch_add(1, std::memory_order_relaxed);
    remote_rows_.fetch_add(run.size(), std::memory_order_relaxed);
    i = j;
  }
  return out;
}

// -------------------------------------------------------------------
// QueryRouter
// -------------------------------------------------------------------

QueryRouter::QueryRouter(
    std::vector<gas::VertexRange> ranges,
    std::vector<std::vector<std::unique_ptr<ByteChannel>>>
        connections_per_shard,
    std::chrono::milliseconds recv_timeout)
    : ranges_(std::move(ranges)) {
  SNAPLE_CHECK_MSG(!ranges_.empty(), "router needs at least one range");
  SNAPLE_CHECK_MSG(connections_per_shard.size() == ranges_.size(),
                   "one connection pool per shard");
  pools_.resize(connections_per_shard.size());
  for (std::size_t s = 0; s < connections_per_shard.size(); ++s) {
    SNAPLE_CHECK_MSG(!connections_per_shard[s].empty(),
                     "shard " + std::to_string(s) + " has no connections");
    for (auto& channel : connections_per_shard[s]) {
      auto conn = std::make_unique<Connection>();
      conn->channel = std::move(channel);
      if (recv_timeout.count() > 0) {
        // Armed on the drain (receiving) side only: a shard silent past
        // the deadline WITH requests in flight is dead, not slow.
        conn->channel->set_recv_timeout(recv_timeout);
      }
      pools_[s].push_back(std::move(conn));
    }
  }
  round_robin_ =
      std::make_unique<std::atomic<std::size_t>[]>(pools_.size());
  for (std::size_t s = 0; s < pools_.size(); ++s) round_robin_[s] = 0;
  // Drain threads last — nothing above may throw once they run.
  for (auto& pool : pools_) {
    for (auto& conn : pool) {
      Connection* c = conn.get();
      c->drain = std::thread([this, c] { drain_loop(*c); });
    }
  }
}

QueryRouter::~QueryRouter() { close(); }

void QueryRouter::close() {
  if (closed_.exchange(true)) return;
  for (auto& pool : pools_) {
    for (auto& conn : pool) conn->channel->close();
  }
  for (auto& pool : pools_) {
    for (auto& conn : pool) {
      if (conn->drain.joinable()) conn->drain.join();
    }
  }
}

void QueryRouter::fail(Pending& pending, const std::exception_ptr& err) {
  if (auto* single = std::get_if<std::promise<Scored>>(&pending.result)) {
    single->set_exception(err);
  } else {
    std::get<std::promise<std::vector<Scored>>>(pending.result)
        .set_exception(err);
  }
}

void QueryRouter::submit(std::size_t shard,
                         const std::vector<std::uint8_t>& req,
                         Pending pending) {
  auto& pool = pools_[shard];
  const std::size_t pick =
      round_robin_[shard].fetch_add(1, std::memory_order_relaxed) %
      pool.size();
  Connection& conn = *pool[pick];

  // Enqueue, then write, both under the send mutex: wire order IS queue
  // order, which is all the drain thread needs to pair responses (the
  // server answers each connection's requests sequentially, in order).
  std::lock_guard<std::mutex> send_lock(conn.send_mu);
  {
    std::lock_guard<std::mutex> queue_lock(conn.queue_mu);
    if (conn.dead) {
      throw TransportError("connection to shard " + std::to_string(shard) +
                           " is closed");
    }
    conn.inflight.push_back(std::move(pending));
    const auto depth =
        static_cast<std::uint64_t>(conn.inflight.size());
    auto seen = max_inflight_.load(std::memory_order_relaxed);
    while (depth > seen && !max_inflight_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
  try {
    send_buffer(*conn.channel, req);
  } catch (const TransportError& e) {
    // The write failed (channel closed, or torn mid-message — either way
    // this connection's stream is unusable): fail every queued future,
    // ours included, and refuse further submissions.
    const auto err = std::make_exception_ptr(TransportError(e.what()));
    std::lock_guard<std::mutex> queue_lock(conn.queue_mu);
    conn.dead = true;
    for (auto& p : conn.inflight) fail(p, err);
    conn.inflight.clear();
    throw;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

void QueryRouter::drain_loop(Connection& conn) {
  ByteChannel& ch = *conn.channel;
  for (;;) {
    Pending pending;
    bool popped = false;
    // Whether this wait STARTED with a request outstanding: only then
    // does a full elapsed deadline indict the shard. A request that
    // arrived mid-wait gets a fresh window on the retry.
    bool waiting = false;
    {
      std::lock_guard<std::mutex> lock(conn.queue_mu);
      waiting = !conn.inflight.empty();
    }
    try {
      const auto status = get<std::uint8_t>(ch);
      {
        std::lock_guard<std::mutex> lock(conn.queue_mu);
        if (conn.inflight.empty()) {
          throw TransportError(
              "response with no request in flight — stream desynced");
        }
        pending = std::move(conn.inflight.front());
        conn.inflight.pop_front();
        popped = true;
      }
      if (status != kStatusOk) {
        // Error responses fail ONE request; the stream stays in sync
        // and the connection keeps serving.
        const auto len = get<std::uint32_t>(ch);
        std::string message(len, '\0');
        if (len != 0) ch.recv(message.data(), len);
        fail(pending, std::make_exception_ptr(CheckError(message)));
        continue;
      }
      std::vector<Scored> answers;
      answers.reserve(pending.count);
      for (std::size_t q = 0; q < pending.count; ++q) {
        const auto count = get<std::uint32_t>(ch);
        std::vector<VertexId> ids;
        std::vector<float> scores;
        get_array(ch, ids, count);
        get_array(ch, scores, count);
        Scored scored;
        scored.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          scored.emplace_back(ids[i], scores[i]);
        }
        answers.push_back(std::move(scored));
      }
      if (auto* single =
              std::get_if<std::promise<Scored>>(&pending.result)) {
        single->set_value(std::move(answers.front()));
      } else {
        std::get<std::promise<std::vector<Scored>>>(pending.result)
            .set_value(std::move(answers));
      }
    } catch (const TransportTimeout& e) {
      // The recv deadline elapsed. Silence while idle is the normal
      // state — keep waiting. Silence with requests in flight (or mid-
      // response, after the status byte was consumed) means the shard
      // is alive-but-dead to us: declare the connection dead so callers
      // get TransportError instead of waiting forever.
      if (!popped && !waiting) continue;
      const auto err = std::make_exception_ptr(TransportError(
          std::string("shard unresponsive: ") + e.what()));
      if (popped) fail(pending, err);
      {
        std::lock_guard<std::mutex> lock(conn.queue_mu);
        conn.dead = true;
        for (auto& p : conn.inflight) fail(p, err);
        conn.inflight.clear();
      }
      conn.channel->close();
      return;
    } catch (const TransportError& e) {
      // Link closed (shutdown, or the shard died): fail what's queued
      // and exit — this IS the drain thread's clean exit path.
      const auto err = std::make_exception_ptr(TransportError(e.what()));
      if (popped) fail(pending, err);
      std::lock_guard<std::mutex> lock(conn.queue_mu);
      conn.dead = true;
      for (auto& p : conn.inflight) fail(p, err);
      conn.inflight.clear();
      return;
    }
  }
}

QueryRouter::Scored QueryRouter::topk(VertexId u, std::size_t k) {
  return topk_async(u, k).get();
}

std::future<QueryRouter::Scored> QueryRouter::topk_async(VertexId u,
                                                         std::size_t k) {
  SNAPLE_CHECK_MSG(u < num_vertices(), "query vertex out of model range");
  Pending pending;
  pending.count = 1;
  auto future = std::get<std::promise<Scored>>(pending.result).get_future();

  std::vector<std::uint8_t> req;
  put<std::uint8_t>(req, kOpTopk);
  put<std::uint32_t>(req, u);
  put<std::uint64_t>(req, static_cast<std::uint64_t>(k));
  submit(shard_of(u), req, std::move(pending));
  return future;
}

std::vector<QueryRouter::Scored> QueryRouter::topk_batch(
    std::span<const VertexId> users, std::size_t k) {
  for (const VertexId u : users) {
    SNAPLE_CHECK_MSG(u < num_vertices(),
                     "query vertex out of model range");
  }
  std::vector<Scored> out(users.size());
  if (users.empty()) return out;

  // Group positions by owning shard, preserving submission order within
  // each group (answers come back in request order).
  std::vector<std::vector<std::size_t>> positions(ranges_.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    positions[shard_of(users[i])].push_back(i);
  }

  // ONE wire message per owning shard, all submitted before any
  // response is awaited — the round trips overlap across shards.
  std::vector<std::future<std::vector<Scored>>> futures(ranges_.size());
  for (std::size_t s = 0; s < positions.size(); ++s) {
    if (positions[s].empty()) continue;
    Pending pending;
    pending.count = positions[s].size();
    auto& promise =
        pending.result.emplace<std::promise<std::vector<Scored>>>();
    futures[s] = promise.get_future();

    std::vector<std::uint8_t> req;
    put<std::uint8_t>(req, kOpBatch);
    put<std::uint64_t>(req, static_cast<std::uint64_t>(k));
    put<std::uint32_t>(req, static_cast<std::uint32_t>(positions[s].size()));
    for (const std::size_t i : positions[s]) {
      put<std::uint32_t>(req, users[i]);
    }
    submit(s, req, std::move(pending));
    batch_requests_.fetch_add(1, std::memory_order_relaxed);
    batched_queries_.fetch_add(positions[s].size(),
                               std::memory_order_relaxed);
  }

  for (std::size_t s = 0; s < positions.size(); ++s) {
    if (positions[s].empty()) continue;
    std::vector<Scored> answers = futures[s].get();
    for (std::size_t j = 0; j < positions[s].size(); ++j) {
      out[positions[s][j]] = std::move(answers[j]);
    }
  }
  return out;
}

RouterStats QueryRouter::stats() const {
  RouterStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.max_inflight = max_inflight_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t QueryRouter::bytes_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pool : pools_) {
    for (const auto& conn : pool) total += conn->channel->bytes_sent();
  }
  return total;
}

std::uint64_t QueryRouter::bytes_received() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pool : pools_) {
    for (const auto& conn : pool) {
      total += conn->channel->bytes_received();
    }
  }
  return total;
}

// -------------------------------------------------------------------
// ServingCluster
// -------------------------------------------------------------------

namespace {

void check_cluster_options(const ServeOptions& options, VertexId n) {
  SNAPLE_CHECK_MSG(options.num_shards >= 1, "need at least one shard");
  SNAPLE_CHECK_MSG(options.connections_per_shard >= 1,
                   "need at least one router connection per shard");
  SNAPLE_CHECK_MSG(n > 0, "cannot shard an empty model");
}

}  // namespace

ServingCluster::ServingCluster(const PredictorModel& model,
                               const ServeOptions& options)
    : options_(options) {
  check_cluster_options(options, model.num_vertices());
  if (options.row_versions != nullptr) {
    SNAPLE_CHECK_MSG(options.row_versions->size() == model.num_vertices(),
                     "row-version table must have one entry per vertex");
  }
  ranges_ = plan_shard_ranges(model, options.num_shards);
  build_caches();

  servers_.reserve(ranges_.size());
  for (std::size_t s = 0; s < ranges_.size(); ++s) {
    std::shared_ptr<RowCache> cache;
    if (!caches_.empty()) {
      cache = options.shared_cache != nullptr ? caches_.front() : caches_[s];
    }
    servers_.push_back(std::make_unique<ShardServer>(
        ModelShard::build(model, ranges_[s], options.colocate), ranges_,
        std::move(cache), options.row_versions));
  }
  assemble();
}

ServingCluster::ServingCluster(std::shared_ptr<const PredictorModel> model,
                               std::shared_ptr<const CsrGraph> graph,
                               const ServeOptions& options)
    : options_(options) {
  SNAPLE_CHECK_MSG(model != nullptr, "live cluster needs a model");
  check_cluster_options(options, model->num_vertices());
  SNAPLE_CHECK_MSG(
      !options.colocate,
      "live serving requires remote-fetch mode (colocate=false): "
      "replicated rows cannot be kept fresh across inserts, but "
      "version-keyed fetched rows can");
  SNAPLE_CHECK_MSG(options.row_versions == nullptr,
                   "live clusters maintain their own row versions");
  ranges_ = plan_shard_ranges(*model, options.num_shards);
  build_caches();

  // Every shard holds the full base model + union graph (shared, as a
  // process would mmap them) and OWNS one range of live rows; LiveShard
  // verifies the kEdgeLocal tags of its share.
  servers_.reserve(ranges_.size());
  for (std::size_t s = 0; s < ranges_.size(); ++s) {
    std::shared_ptr<RowCache> cache;
    if (!caches_.empty()) {
      cache = options.shared_cache != nullptr ? caches_.front() : caches_[s];
    }
    servers_.push_back(std::make_unique<ShardServer>(
        std::make_shared<LiveShard>(model, graph, ranges_[s]), ranges_,
        std::move(cache)));
  }
  assemble();
}

void ServingCluster::build_caches() {
  // Caches exist only on the fetch path: colocated shards never fetch.
  const bool caching =
      !options_.colocate &&
      (options_.shared_cache != nullptr || options_.cache_bytes > 0);
  if (!caching) return;
  if (options_.shared_cache != nullptr) {
    caches_.push_back(options_.shared_cache);
  } else {
    for (std::size_t s = 0; s < ranges_.size(); ++s) {
      caches_.push_back(std::make_shared<RowCache>(options_.cache_bytes));
    }
  }
}

ChannelPair ServingCluster::make_link() {
  if (options_.transport != TransportKind::kTcp) {
    return make_channel_pair(options_.transport);
  }
  // Connect-then-accept on one thread is safe: the kernel completes the
  // handshake in the listener's backlog, and pairing links one at a
  // time keeps each accepted fd matched to its connect.
  auto client = tcp_connect("127.0.0.1", listener_->port());
  auto server = listener_->accept();
  return {std::move(server), std::move(client)};
}

void ServingCluster::assemble() {
  if (options_.transport == TransportKind::kTcp) {
    // ONE listener for the whole cluster — router pool, peer mesh and
    // update links all accept through it, like a real deployment's
    // accept loop (per-shard ports would work identically).
    listener_ = std::make_unique<TcpListener>(options_.tcp_port);
  }

  if (!options_.colocate) {
    // Full mesh of shard↔shard fetch links (client at i, served at j).
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      for (std::size_t j = 0; j < servers_.size(); ++j) {
        if (i == j) continue;
        ChannelPair link = make_link();
        servers_[j]->serve(std::move(link.server), /*frontend=*/false);
        servers_[i]->connect_peer(j, std::move(link.client));
      }
    }
  }

  std::vector<std::vector<std::unique_ptr<ByteChannel>>> pools(
      servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    for (std::size_t c = 0; c < options_.connections_per_shard; ++c) {
      ChannelPair link = make_link();
      servers_[s]->serve(std::move(link.server));
      pools[s].push_back(std::move(link.client));
    }
  }
  router_ = std::make_unique<QueryRouter>(
      ranges_, std::move(pools),
      std::chrono::milliseconds(options_.recv_timeout_ms));

  if (!servers_.empty() && servers_.front()->live() != nullptr) {
    // The write plane: one dedicated link per shard. frontend=false —
    // the UpdateRouter counts these bytes on its side.
    std::vector<std::unique_ptr<ByteChannel>> links;
    links.reserve(servers_.size());
    for (auto& server : servers_) {
      ChannelPair link = make_link();
      server->serve(std::move(link.server), /*frontend=*/false);
      links.push_back(std::move(link.client));
    }
    update_router_ = std::make_unique<UpdateRouter>(std::move(links));
  }
}

UpdateRouter& ServingCluster::update_router() {
  SNAPLE_CHECK_MSG(update_router_ != nullptr,
                   "this cluster is static — construct it with "
                   "(model, graph) to get an update plane");
  return *update_router_;
}

ServingCluster::~ServingCluster() {
  // Write plane first (no new inserts), then the router: frontend
  // serving threads drain and exit before the peer links those threads
  // may fetch over are closed.
  if (update_router_ != nullptr) update_router_->close();
  router_->close();
  for (auto& server : servers_) server->shutdown();
  if (listener_ != nullptr) listener_->close();
}

std::vector<ShardStats> ServingCluster::stats() const {
  std::vector<ShardStats> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) out.push_back(server->stats());
  return out;
}

RowCacheStats ServingCluster::cache_stats() const {
  RowCacheStats total;
  for (const auto& cache : caches_) {
    const RowCacheStats s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.stale_drops += s.stale_drops;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
    total.capacity_bytes += s.capacity_bytes;
  }
  return total;
}

}  // namespace snaple::serve
