#include "serve/router.hpp"

#include <cstring>
#include <string>

#include "util/check.hpp"

namespace snaple::serve {

namespace {

constexpr std::uint8_t kOpTopk = 1;
constexpr std::uint8_t kOpFetch = 2;
constexpr std::uint8_t kStatusOk = 0;
constexpr std::uint8_t kStatusError = 1;

// -------- little request/response buffer helpers --------------------
// Requests and responses are assembled in one buffer and shipped with a
// single send(): one syscall per message on the socket transport, and
// the byte counters then count whole messages.

template <typename T>
void put(std::vector<std::uint8_t>& buf, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
void put_span(std::vector<std::uint8_t>& buf, std::span<const T> values) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  buf.insert(buf.end(), p, p + values.size_bytes());
}

template <typename T>
T get(ByteChannel& ch) {
  T value;
  ch.recv(&value, sizeof(T));
  return value;
}

template <typename T>
void get_array(ByteChannel& ch, std::vector<T>& out, std::size_t count) {
  const std::size_t old = out.size();
  out.resize(old + count);
  if (count != 0) ch.recv(out.data() + old, count * sizeof(T));
}

void send_buffer(ByteChannel& ch, const std::vector<std::uint8_t>& buf) {
  ch.send(buf.data(), buf.size());
}

void put_error(std::vector<std::uint8_t>& buf, const std::string& message) {
  put<std::uint8_t>(buf, kStatusError);
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(message.size()));
  buf.insert(buf.end(), message.begin(), message.end());
}

/// Reads a status byte; on error, reads the message and rethrows it as
/// CheckError on this side of the wire.
void expect_ok(ByteChannel& ch) {
  if (get<std::uint8_t>(ch) == kStatusOk) return;
  const auto len = get<std::uint32_t>(ch);
  std::string message(len, '\0');
  if (len != 0) ch.recv(message.data(), len);
  throw CheckError(message);
}

}  // namespace

// -------------------------------------------------------------------
// ShardServer
// -------------------------------------------------------------------

ShardServer::ShardServer(ModelShard shard,
                         std::vector<gas::VertexRange> ranges)
    : shard_(std::move(shard)), ranges_(std::move(ranges)) {
  peers_.resize(ranges_.size());
}

ShardServer::~ShardServer() { shutdown(); }

void ShardServer::serve(std::unique_ptr<ByteChannel> channel,
                        bool frontend) {
  auto conn = std::make_unique<Connection>();
  conn->channel = std::move(channel);
  conn->frontend = frontend;
  ByteChannel& ch = *conn->channel;
  conn->thread = std::thread([this, &ch] { serve_loop(ch); });
  connections_.push_back(std::move(conn));
}

void ShardServer::connect_peer(std::size_t shard_index,
                               std::unique_ptr<ByteChannel> channel) {
  SNAPLE_CHECK_MSG(shard_index < peers_.size(), "peer index out of range");
  auto link = std::make_unique<PeerLink>();
  link->channel = std::move(channel);
  peers_[shard_index] = std::move(link);
}

void ShardServer::shutdown() {
  if (down_.exchange(true)) return;
  for (auto& conn : connections_) conn->channel->close();
  for (auto& peer : peers_) {
    if (peer != nullptr) peer->channel->close();
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

ShardStats ShardServer::stats() const {
  ShardStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.remote_fetch_requests =
      remote_fetch_requests_.load(std::memory_order_relaxed);
  s.remote_rows = remote_rows_.load(std::memory_order_relaxed);
  for (const auto& conn : connections_) {
    if (!conn->frontend) continue;  // counted by the requesting shard
    s.frontend_bytes_in += conn->channel->bytes_received();
    s.frontend_bytes_out += conn->channel->bytes_sent();
  }
  for (const auto& peer : peers_) {
    if (peer == nullptr) continue;
    s.peer_bytes_out += peer->channel->bytes_sent();
    s.peer_bytes_in += peer->channel->bytes_received();
  }
  s.replica_count = shard_.replica_count();
  s.replica_bytes = shard_.replica_bytes();
  return s;
}

void ShardServer::serve_loop(ByteChannel& ch) {
  try {
    for (;;) {
      const auto op = get<std::uint8_t>(ch);
      if (op == kOpTopk) {
        handle_topk(ch);
      } else if (op == kOpFetch) {
        handle_fetch(ch);
      } else {
        // Unknown opcode = the stream is desynced; an error response
        // then EOF is all that can be said safely.
        std::vector<std::uint8_t> buf;
        put_error(buf, "unknown opcode " + std::to_string(op));
        send_buffer(ch, buf);
        break;
      }
    }
  } catch (const TransportError&) {
    // Link closed (router/cluster shutdown, or peer death): clean exit.
  }
  ch.close();
}

void ShardServer::handle_topk(ByteChannel& ch) {
  const auto u = get<std::uint32_t>(ch);
  const auto k = get<std::uint64_t>(ch);
  queries_.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::uint8_t> buf;
  try {
    SNAPLE_CHECK_MSG(shard_.owns(u),
                     "query vertex " + std::to_string(u) +
                         " routed to the wrong shard [" +
                         std::to_string(shard_.range().begin) + ", " +
                         std::to_string(shard_.range().end) + ")");
    FetchedRows fetched;
    const FetchedRows* overlay = nullptr;
    const std::vector<VertexId> missing = shard_.missing_rows(u);
    if (!missing.empty()) {
      fetched = fetch_remote(missing);
      overlay = &fetched;
    }
    const auto result =
        shard_.topk(u, static_cast<std::size_t>(k), overlay);
    put<std::uint8_t>(buf, kStatusOk);
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(result.size()));
    for (const auto& [id, score] : result) put<std::uint32_t>(buf, id);
    for (const auto& [id, score] : result) put<float>(buf, score);
  } catch (const TransportError&) {
    throw;  // the frontend link itself died — no response possible
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

void ShardServer::handle_fetch(ByteChannel& ch) {
  const auto count = get<std::uint32_t>(ch);
  std::vector<VertexId> ids;
  get_array(ch, ids, count);

  std::vector<std::uint8_t> buf;
  try {
    std::vector<std::uint8_t> payload;
    for (const VertexId v : ids) {
      SNAPLE_CHECK_MSG(shard_.owns(v),
                       "fetch for vertex " + std::to_string(v) +
                           " sent to a non-owning shard");
      const auto sv = shard_.sims(v);
      put<std::uint32_t>(payload,
                         static_cast<std::uint32_t>(sv.ids.size()));
      put_span(payload, sv.ids);
      put_span(payload, sv.scores);
      const auto hv = shard_.hop2(v);
      put<std::uint32_t>(payload,
                         static_cast<std::uint32_t>(hv.ids.size()));
      put_span(payload, hv.ids);
      put_span(payload, hv.scores);
    }
    put<std::uint8_t>(buf, kStatusOk);
    buf.insert(buf.end(), payload.begin(), payload.end());
  } catch (const std::exception& e) {
    buf.clear();
    put_error(buf, e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  send_buffer(ch, buf);
}

FetchedRows ShardServer::fetch_remote(
    const std::vector<VertexId>& missing) {
  FetchedRows fetched;
  fetched.sims_offsets.push_back(0);
  fetched.hop2_offsets.push_back(0);

  // `missing` is sorted and ranges are contiguous ascending, so each
  // owner's ids form one consecutive run — one batched request per run,
  // appended in order, keeps fetched.ids sorted with no merge step.
  std::size_t i = 0;
  while (i < missing.size()) {
    const std::size_t owner = gas::range_owner(ranges_, missing[i]);
    std::size_t j = i;
    while (j < missing.size() && ranges_[owner].contains(missing[j])) {
      ++j;
    }
    const std::span<const VertexId> run(missing.data() + i, j - i);

    PeerLink* peer = peers_[owner].get();
    SNAPLE_CHECK_MSG(peer != nullptr,
                     "no peer link to shard " + std::to_string(owner) +
                         " — build the cluster in remote-fetch mode");
    try {
      std::lock_guard<std::mutex> lock(peer->mu);
      ByteChannel& ch = *peer->channel;
      std::vector<std::uint8_t> req;
      put<std::uint8_t>(req, kOpFetch);
      put<std::uint32_t>(req, static_cast<std::uint32_t>(run.size()));
      put_span(req, run);
      send_buffer(ch, req);

      expect_ok(ch);
      for (const VertexId v : run) {
        fetched.ids.push_back(v);
        const auto sims_len = get<std::uint32_t>(ch);
        get_array(ch, fetched.sims_ids, sims_len);
        get_array(ch, fetched.sims_scores, sims_len);
        fetched.sims_offsets.push_back(fetched.sims_ids.size());
        const auto hop2_len = get<std::uint32_t>(ch);
        get_array(ch, fetched.hop2_ids, hop2_len);
        get_array(ch, fetched.hop2_scores, hop2_len);
        fetched.hop2_offsets.push_back(fetched.hop2_ids.size());
      }
    } catch (const TransportError& e) {
      // A dead peer fails this query, not the frontend link.
      throw CheckError(std::string("peer fetch from shard ") +
                       std::to_string(owner) + " failed: " + e.what());
    }
    remote_fetch_requests_.fetch_add(1, std::memory_order_relaxed);
    remote_rows_.fetch_add(run.size(), std::memory_order_relaxed);
    i = j;
  }
  return fetched;
}

// -------------------------------------------------------------------
// QueryRouter
// -------------------------------------------------------------------

QueryRouter::QueryRouter(
    std::vector<gas::VertexRange> ranges,
    std::vector<std::vector<std::unique_ptr<ByteChannel>>>
        connections_per_shard)
    : ranges_(std::move(ranges)) {
  SNAPLE_CHECK_MSG(!ranges_.empty(), "router needs at least one range");
  SNAPLE_CHECK_MSG(connections_per_shard.size() == ranges_.size(),
                   "one connection pool per shard");
  pools_.resize(connections_per_shard.size());
  for (std::size_t s = 0; s < connections_per_shard.size(); ++s) {
    SNAPLE_CHECK_MSG(!connections_per_shard[s].empty(),
                     "shard " + std::to_string(s) + " has no connections");
    for (auto& channel : connections_per_shard[s]) {
      auto conn = std::make_unique<Connection>();
      conn->channel = std::move(channel);
      pools_[s].push_back(std::move(conn));
    }
  }
  round_robin_ =
      std::make_unique<std::atomic<std::size_t>[]>(pools_.size());
  for (std::size_t s = 0; s < pools_.size(); ++s) round_robin_[s] = 0;
}

QueryRouter::~QueryRouter() { close(); }

void QueryRouter::close() {
  for (auto& pool : pools_) {
    for (auto& conn : pool) conn->channel->close();
  }
}

std::vector<std::pair<VertexId, float>> QueryRouter::topk(VertexId u,
                                                          std::size_t k) {
  SNAPLE_CHECK_MSG(u < num_vertices(), "query vertex out of model range");
  const std::size_t shard = shard_of(u);
  auto& pool = pools_[shard];
  const std::size_t pick =
      round_robin_[shard].fetch_add(1, std::memory_order_relaxed) %
      pool.size();
  Connection& conn = *pool[pick];

  std::lock_guard<std::mutex> lock(conn.mu);
  ByteChannel& ch = *conn.channel;
  std::vector<std::uint8_t> req;
  put<std::uint8_t>(req, kOpTopk);
  put<std::uint32_t>(req, u);
  put<std::uint64_t>(req, static_cast<std::uint64_t>(k));
  send_buffer(ch, req);

  expect_ok(ch);
  const auto count = get<std::uint32_t>(ch);
  std::vector<VertexId> ids;
  std::vector<float> scores;
  get_array(ch, ids, count);
  get_array(ch, scores, count);
  std::vector<std::pair<VertexId, float>> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.emplace_back(ids[i], scores[i]);
  }
  return out;
}

std::uint64_t QueryRouter::bytes_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pool : pools_) {
    for (const auto& conn : pool) total += conn->channel->bytes_sent();
  }
  return total;
}

std::uint64_t QueryRouter::bytes_received() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pool : pools_) {
    for (const auto& conn : pool) {
      total += conn->channel->bytes_received();
    }
  }
  return total;
}

// -------------------------------------------------------------------
// ServingCluster
// -------------------------------------------------------------------

ServingCluster::ServingCluster(const PredictorModel& model,
                               const ServeOptions& options)
    : options_(options) {
  SNAPLE_CHECK_MSG(options.num_shards >= 1, "need at least one shard");
  SNAPLE_CHECK_MSG(options.connections_per_shard >= 1,
                   "need at least one router connection per shard");
  SNAPLE_CHECK_MSG(model.num_vertices() > 0,
                   "cannot shard an empty model");
  ranges_ = plan_shard_ranges(model, options.num_shards);

  servers_.reserve(ranges_.size());
  for (const auto& range : ranges_) {
    servers_.push_back(std::make_unique<ShardServer>(
        ModelShard::build(model, range, options.colocate), ranges_));
  }

  if (!options.colocate) {
    // Full mesh of shard↔shard fetch links (client at i, served at j).
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      for (std::size_t j = 0; j < servers_.size(); ++j) {
        if (i == j) continue;
        ChannelPair link = make_channel_pair(options.transport);
        servers_[j]->serve(std::move(link.server), /*frontend=*/false);
        servers_[i]->connect_peer(j, std::move(link.client));
      }
    }
  }

  std::vector<std::vector<std::unique_ptr<ByteChannel>>> pools(
      servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    for (std::size_t c = 0; c < options.connections_per_shard; ++c) {
      ChannelPair link = make_channel_pair(options.transport);
      servers_[s]->serve(std::move(link.server));
      pools[s].push_back(std::move(link.client));
    }
  }
  router_ = std::make_unique<QueryRouter>(ranges_, std::move(pools));
}

ServingCluster::~ServingCluster() {
  // Router first: frontend serving threads drain and exit before the
  // peer links those threads may fetch over are closed.
  router_->close();
  for (auto& server : servers_) server->shutdown();
}

std::vector<ShardStats> ServingCluster::stats() const {
  std::vector<ShardStats> out;
  out.reserve(servers_.size());
  for (const auto& server : servers_) out.push_back(server->stats());
  return out;
}

}  // namespace snaple::serve
