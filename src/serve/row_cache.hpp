// RowCache — the serving tier's versioned hot-row cache.
//
// Zipfian query traffic re-reads the same hub rows over and over: in
// remote-fetch mode every one of those reads was a shard→shard round
// trip (PR 6 measured ~2.2 fetches and ~1 KB of wire per query). The
// cache sits on the fetch path (router.hpp, ShardServer::collect_rows):
// before a shard asks a peer for a non-resident row it consults its
// cache, and every fetched row is inserted on the way through — repeat
// reads of hot rows are then served from local memory, no wire at all.
//
// Invalidation is free by construction, never broadcast:
//
//   * every entry is keyed by (vertex, row_version) — the same
//     per-vertex counter DynamicModel::row_version exposes (0 for every
//     row of a freshly fit model). A lookup presents the version the
//     caller believes is current; an entry recorded under an older
//     version simply misses (and is dropped on the spot — versions are
//     monotone, so a version mismatch proves the entry stale).
//   * a ServingCluster built with ServeOptions::cache_bytes creates a
//     fresh cache per shard, so a re-shard drops every entry wholesale.
//     ServeOptions::shared_cache instead carries ONE cache object
//     across cluster generations (the warm-restart / sidecar pattern:
//     rows untouched by the update keep hitting, republished rows miss
//     on their bumped version) — which is exactly what the version key
//     exists for.
//
// Bit-identity is untouched: a hit returns the identical row bytes a
// fetch would have carried, and the fold depends only on row contents.
//
// Structure: a bounded, SHARDED LRU — `segments` independent LRU lists,
// each under its own mutex, entries assigned by vertex hash. A shard
// server runs one serving thread per inbound connection, so fetch-path
// lookups are concurrent; segment sharding keeps them from serializing
// on one lock. Each segment holds at most capacity/segments bytes
// (payload + bookkeeping); inserting past the bound evicts from that
// segment's cold end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"

namespace snaple::serve {

/// One non-resident vertex's cached serving rows — exactly the payload
/// a fetch response carries (sims + hop2 ids/scores; machine tags are
/// never shipped or cached: the fold reads tags only from the queried
/// vertex's own always-local row). Shared-ptr ownership lets a query
/// keep using a row that a concurrent insert evicts mid-fold.
struct HotRow {
  std::vector<VertexId> sims_ids;
  std::vector<float> sims_scores;
  std::vector<VertexId> hop2_ids;
  std::vector<float> hop2_scores;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return sizeof(HotRow) +
           (sims_ids.size() + hop2_ids.size()) *
               (sizeof(VertexId) + sizeof(float));
  }
};

/// Aggregate counters, readable while the cache serves.
struct RowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;        // includes stale-version drops
  std::uint64_t stale_drops = 0;   // misses that evicted an old version
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;     // capacity evictions (LRU cold end)
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
};

class RowCache {
 public:
  /// `capacity_bytes` bounds the whole cache (split evenly across
  /// `segments`; at least one segment, each at least one entry's worth —
  /// an over-sized row just evicts itself and never resides).
  explicit RowCache(std::size_t capacity_bytes, std::size_t segments = 16);

  RowCache(const RowCache&) = delete;
  RowCache& operator=(const RowCache&) = delete;

  /// The row of `v` iff cached under exactly `version`; null on a miss.
  /// A resident entry with an older version is dropped (stale by
  /// monotonicity) and reported as a miss.
  [[nodiscard]] std::shared_ptr<const HotRow> get(VertexId v,
                                                  std::uint64_t version);

  /// Inserts (replacing any entry for `v`, whatever its version) and
  /// evicts the segment's cold end past the byte bound.
  void put(VertexId v, std::uint64_t version,
           std::shared_ptr<const HotRow> row);

  [[nodiscard]] RowCacheStats stats() const;

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }

 private:
  struct Entry {
    VertexId vertex = 0;
    std::uint64_t version = 0;
    std::shared_ptr<const HotRow> row;
    std::size_t bytes = 0;
  };
  /// One LRU shard: list front = hottest. Counters live under the same
  /// mutex — they are only ever touched by a thread already holding it.
  struct Segment {
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<VertexId, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale_drops = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Segment& segment_of(VertexId v) noexcept {
    // Fibonacci hash: consecutive vertex ids (a shard's hot range)
    // spread across segments instead of clustering in one.
    const std::uint64_t h =
        static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL;
    return segments_[(h >> 32) % segments_.size()];
  }

  std::size_t capacity_;
  std::size_t per_segment_;
  std::vector<Segment> segments_;
};

}  // namespace snaple::serve
