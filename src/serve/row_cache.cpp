#include "serve/row_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace snaple::serve {

RowCache::RowCache(std::size_t capacity_bytes, std::size_t segments)
    : capacity_(capacity_bytes) {
  SNAPLE_CHECK_MSG(capacity_bytes > 0, "row cache needs a byte budget");
  SNAPLE_CHECK_MSG(segments > 0, "row cache needs at least one segment");
  // No more segments than could each hold one small row: a tiny budget
  // collapses to fewer, larger segments rather than 16 useless ones.
  const std::size_t usable =
      std::max<std::size_t>(1, capacity_bytes / sizeof(HotRow));
  segments_ = std::vector<Segment>(std::min(segments, usable));
  per_segment_ = capacity_ / segments_.size();
}

std::shared_ptr<const HotRow> RowCache::get(VertexId v,
                                            std::uint64_t version) {
  Segment& seg = segment_of(v);
  std::lock_guard<std::mutex> lock(seg.mu);
  const auto it = seg.index.find(v);
  if (it == seg.index.end()) {
    ++seg.misses;
    return nullptr;
  }
  if (it->second->version != version) {
    // Row versions are monotone, so a mismatch proves the entry stale —
    // drop it now instead of letting it age out of the cold end.
    seg.bytes -= it->second->bytes;
    seg.lru.erase(it->second);
    seg.index.erase(it);
    ++seg.misses;
    ++seg.stale_drops;
    return nullptr;
  }
  seg.lru.splice(seg.lru.begin(), seg.lru, it->second);  // re-warm
  ++seg.hits;
  return it->second->row;
}

void RowCache::put(VertexId v, std::uint64_t version,
                   std::shared_ptr<const HotRow> row) {
  SNAPLE_CHECK_MSG(row != nullptr, "cannot cache a null row");
  const std::size_t row_bytes = sizeof(Entry) + row->bytes();
  Segment& seg = segment_of(v);
  std::lock_guard<std::mutex> lock(seg.mu);
  const auto it = seg.index.find(v);
  if (it != seg.index.end()) {
    seg.bytes -= it->second->bytes;
    seg.lru.erase(it->second);
    seg.index.erase(it);
  }
  seg.lru.push_front(
      Entry{v, version, std::move(row), row_bytes});
  seg.index.emplace(v, seg.lru.begin());
  seg.bytes += row_bytes;
  ++seg.insertions;
  while (seg.bytes > per_segment_ && !seg.lru.empty()) {
    // Evict the cold end — which is the just-inserted row itself when a
    // single row exceeds the segment budget (bounded beats resident).
    const Entry& cold = seg.lru.back();
    seg.bytes -= cold.bytes;
    seg.index.erase(cold.vertex);
    seg.lru.pop_back();
    ++seg.evictions;
  }
}

RowCacheStats RowCache::stats() const {
  RowCacheStats s;
  s.capacity_bytes = capacity_;
  for (const Segment& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg.mu);
    s.hits += seg.hits;
    s.misses += seg.misses;
    s.stale_drops += seg.stale_drops;
    s.insertions += seg.insertions;
    s.evictions += seg.evictions;
    s.entries += seg.lru.size();
    s.bytes += seg.bytes;
  }
  return s;
}

}  // namespace snaple::serve
