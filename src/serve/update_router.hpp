// Update routing over shard servers — the serving tier's write plane.
//
// Where QueryRouter fans queries out to the owning shard, UpdateRouter
// fans every edge insert or remove batch out to EVERY shard: each
// ShardServer in live mode holds its own live-graph overlay
// (serve/live_shard.hpp) and must observe every operation to keep its
// copy — and its share of the recompute work — current. One dedicated
// link per shard, all requests written before any response is read, so
// the S shards validate, mutate and recompute their stale owned rows
// concurrently; the slowest shard bounds the batch latency, not the
// sum.
//
// Wire ops (serve/wire.hpp; framing as in router.hpp):
//
//   op 4 (update):  u32 count | count × (u32 src | u32 dst)
//     ok payload:   u64 version | u64 gamma_rows | u64 sims_rows
//                 | u64 hop2_rows   (the shard's OWNED republish counts)
//   op 6 (remove):  identical payload and reply — the batch is
//                   tombstoned instead of inserted
//   op 5 (barrier): no payload
//     ok payload:   u64 version
//
// Consistency: validation and stale-set derivation are deterministic
// functions of (batch, live graph), and every shard holds the same
// live graph — so a batch is accepted by all shards or rejected by all
// (the router CHECKs this cross-shard agreement, and that every shard
// reports the same version: a divergence is a bug, not a runtime
// condition). A rejected batch surfaces as CheckError with the shard's
// validation message and changes nothing anywhere.
//
// apply() returning means every shard finished its recompute — it IS a
// per-batch barrier; barrier() exists to re-assert agreement without
// writing (and for callers that pipeline apply with queries and want an
// explicit quiescence point). Queries keep flowing while a batch is in
// flight: shards publish row-by-row (RCU), so readers never block.
//
// Failure: any transport error on any link marks the whole router dead
// (TransportError on this and every later call) — a half-applied fan-
// out is not a state this plane can serve from, so fail-stop is the
// contract, mirroring QueryRouter's dead connections.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "serve/transport.hpp"

namespace snaple::serve {

/// Write-plane counters (cumulative; row counts are summed over the
/// shards' owned republishes, i.e. GLOBAL stale-row counts, since shard
/// ranges partition the vertex space).
struct UpdateStats {
  std::uint64_t batches = 0;  // insert batches
  std::uint64_t edges = 0;    // inserts applied
  std::uint64_t remove_batches = 0;
  std::uint64_t removals = 0;
  std::uint64_t gamma_rows = 0;
  std::uint64_t sims_rows = 0;
  std::uint64_t hop2_rows = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t version = 0;  // cluster version after the last call
};

class UpdateRouter {
 public:
  /// What one apply()/remove() staled/advanced, cluster-wide.
  struct ApplyResult {
    std::uint64_t version = 0;  // total applied operations, every shard
    std::uint64_t gamma_rows = 0;
    std::uint64_t sims_rows = 0;
    std::uint64_t hop2_rows = 0;
  };

  /// One dedicated update link per shard, index-aligned with the
  /// cluster's ranges.
  explicit UpdateRouter(std::vector<std::unique_ptr<ByteChannel>> links);
  ~UpdateRouter();

  UpdateRouter(const UpdateRouter&) = delete;
  UpdateRouter& operator=(const UpdateRouter&) = delete;

  /// Applies one insert batch on every shard (all-or-nothing, see the
  /// header comment). Validation failures throw CheckError and change
  /// nothing; link failures throw TransportError and kill the router.
  /// Callers may submit from multiple threads; batches serialize here
  /// (the shards' overlays need one writer and ONE cross-shard order).
  ApplyResult apply(std::span<const Edge> batch);

  /// Removes one batch on every shard — same all-or-nothing contract,
  /// same fail-stop on link failure (wire op 6).
  ApplyResult remove(std::span<const Edge> batch);

  /// Confirms every shard reached the same version and returns it.
  [[nodiscard]] std::uint64_t barrier();

  /// Closes every update link (the shards' update serving threads see
  /// EOF and exit). Idempotent; the destructor calls it.
  void close();

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return links_.size();
  }
  [[nodiscard]] UpdateStats stats() const;

 private:
  /// Sends `req` on every link, then reads one response per link into
  /// `payload` u64s (`per_link` of them each). Returns the first error
  /// message, empty if all ok — after draining EVERY link, so the
  /// streams stay in sync whatever the outcome.
  [[nodiscard]] std::string exchange(const std::vector<std::uint8_t>& req,
                                     std::size_t per_link,
                                     std::vector<std::uint64_t>& payload);

  std::vector<std::unique_ptr<ByteChannel>> links_;
  mutable std::mutex mu_;  // serializes apply/barrier — one batch in flight
  bool dead_ = false;      // a link failed; the plane is down (under mu_)
  /// Shared tail of apply()/remove(): build the op + edge-list request,
  /// exchange, check cross-shard agreement, sum the row counts. Caller
  /// holds mu_.
  ApplyResult exchange_edges(std::uint8_t op, std::span<const Edge> batch);

  std::uint64_t batches_ = 0;  // remaining counters also under mu_
  std::uint64_t edges_ = 0;
  std::uint64_t remove_batches_ = 0;
  std::uint64_t removals_ = 0;
  std::uint64_t gamma_rows_ = 0;
  std::uint64_t sims_rows_ = 0;
  std::uint64_t hop2_rows_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace snaple::serve
