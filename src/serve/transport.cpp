#include "serve/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace snaple::serve {

const char* to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kInProcess:
      return "mem";
    case TransportKind::kUnixSocket:
      return "uds";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// In-process transport: two byte queues under one mutex.
// ---------------------------------------------------------------------

/// Shared state of one in-process link. One mutex for both directions
/// keeps close() trivially race-free; the queues are only contended by
/// the two ends, and the serving tier already serializes each end.
struct InProcessLink {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::uint8_t> to_server;  // client writes, server reads
  std::deque<std::uint8_t> to_client;  // server writes, client reads
  bool server_closed = false;
  bool client_closed = false;
};

class InProcessChannel final : public ByteChannel {
 public:
  InProcessChannel(std::shared_ptr<InProcessLink> link, bool is_server)
      : link_(std::move(link)), is_server_(is_server) {}

  ~InProcessChannel() override { close(); }

  void send(const void* data, std::size_t len) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    {
      std::lock_guard<std::mutex> lock(link_->mu);
      if (my_closed() || peer_closed()) {
        throw TransportError("send on closed in-process channel");
      }
      auto& queue = is_server_ ? link_->to_client : link_->to_server;
      queue.insert(queue.end(), bytes, bytes + len);
    }
    link_->cv.notify_all();
    bytes_sent_.fetch_add(len, std::memory_order_relaxed);
  }

  void recv(void* data, std::size_t len) override {
    auto* bytes = static_cast<std::uint8_t*>(data);
    std::unique_lock<std::mutex> lock(link_->mu);
    auto& queue = is_server_ ? link_->to_server : link_->to_client;
    std::size_t got = 0;
    while (got < len) {
      // Drain whatever is queued first: bytes sent before the peer
      // closed must still be readable, mirroring socket EOF semantics.
      while (got < len && !queue.empty()) {
        bytes[got++] = queue.front();
        queue.pop_front();
      }
      if (got == len) break;
      if (my_closed() || peer_closed()) {
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportError("in-process channel closed mid-message");
      }
      link_->cv.wait(lock);
    }
    bytes_received_.fetch_add(got, std::memory_order_relaxed);
  }

  void close() override {
    {
      std::lock_guard<std::mutex> lock(link_->mu);
      (is_server_ ? link_->server_closed : link_->client_closed) = true;
    }
    link_->cv.notify_all();
  }

 private:
  [[nodiscard]] bool my_closed() const {
    return is_server_ ? link_->server_closed : link_->client_closed;
  }
  [[nodiscard]] bool peer_closed() const {
    return is_server_ ? link_->client_closed : link_->server_closed;
  }

  std::shared_ptr<InProcessLink> link_;
  bool is_server_;
};

// ---------------------------------------------------------------------
// Unix-domain socket transport.
// ---------------------------------------------------------------------

class UnixSocketChannel final : public ByteChannel {
 public:
  explicit UnixSocketChannel(int fd) : fd_(fd) {}

  ~UnixSocketChannel() override {
    close();
    // The fd itself is released only here, after any thread blocked in
    // recv() has been woken by the shutdown(2) in close() — closing the
    // fd under a concurrent read would let the kernel reuse the number.
    ::close(fd_);
  }

  void send(const void* data, std::size_t len) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < len) {
      // MSG_NOSIGNAL: a closed peer must surface as TransportError, not
      // a process-killing SIGPIPE.
      const ssize_t n =
          ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
        throw TransportError(std::string("socket send failed: ") +
                             std::strerror(errno));
      }
      sent += static_cast<std::size_t>(n);
    }
    bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
  }

  void recv(void* data, std::size_t len) override {
    auto* bytes = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::recv(fd_, bytes + got, len - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportError(std::string("socket recv failed: ") +
                             std::strerror(errno));
      }
      if (n == 0) {
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportError("socket closed by peer");
      }
      got += static_cast<std::size_t>(n);
    }
    bytes_received_.fetch_add(got, std::memory_order_relaxed);
  }

  void close() override {
    // shutdown, not close: wakes a peer OR a local thread blocked in
    // recv on this very fd, while keeping the fd number reserved until
    // the destructor runs.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  int fd_;
};

}  // namespace

ChannelPair make_channel_pair(TransportKind kind) {
  if (kind == TransportKind::kInProcess) {
    auto link = std::make_shared<InProcessLink>();
    return {std::make_unique<InProcessChannel>(link, /*is_server=*/true),
            std::make_unique<InProcessChannel>(link, /*is_server=*/false)};
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw TransportError(std::string("socketpair failed: ") +
                         std::strerror(errno));
  }
  return {std::make_unique<UnixSocketChannel>(fds[0]),
          std::make_unique<UnixSocketChannel>(fds[1])};
}

}  // namespace snaple::serve
