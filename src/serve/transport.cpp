#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace snaple::serve {

const char* to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kInProcess:
      return "mem";
    case TransportKind::kUnixSocket:
      return "uds";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// In-process transport: two byte queues under one mutex.
// ---------------------------------------------------------------------

/// Shared state of one in-process link. One mutex for both directions
/// keeps close() trivially race-free; the queues are only contended by
/// the two ends, and the serving tier already serializes each end.
struct InProcessLink {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::uint8_t> to_server;  // client writes, server reads
  std::deque<std::uint8_t> to_client;  // server writes, client reads
  bool server_closed = false;
  bool client_closed = false;
};

class InProcessChannel final : public ByteChannel {
 public:
  InProcessChannel(std::shared_ptr<InProcessLink> link, bool is_server)
      : link_(std::move(link)), is_server_(is_server) {}

  ~InProcessChannel() override { close(); }

  void send(const void* data, std::size_t len) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    {
      std::lock_guard<std::mutex> lock(link_->mu);
      if (my_closed() || peer_closed()) {
        throw TransportError("send on closed in-process channel");
      }
      auto& queue = is_server_ ? link_->to_client : link_->to_server;
      queue.insert(queue.end(), bytes, bytes + len);
    }
    link_->cv.notify_all();
    bytes_sent_.fetch_add(len, std::memory_order_relaxed);
  }

  void recv(void* data, std::size_t len) override {
    auto* bytes = static_cast<std::uint8_t*>(data);
    std::unique_lock<std::mutex> lock(link_->mu);
    auto& queue = is_server_ ? link_->to_server : link_->to_client;
    std::size_t got = 0;
    while (got < len) {
      // Drain whatever is queued first: bytes sent before the peer
      // closed must still be readable, mirroring socket EOF semantics.
      while (got < len && !queue.empty()) {
        bytes[got++] = queue.front();
        queue.pop_front();
      }
      if (got == len) break;
      if (my_closed() || peer_closed()) {
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportError("in-process channel closed mid-message");
      }
      if (timeout_.count() == 0) {
        link_->cv.wait(lock);
      } else if (link_->cv.wait_for(lock, timeout_) ==
                     std::cv_status::timeout &&
                 queue.empty() && !my_closed() && !peer_closed()) {
        // The deadline clock restarts whenever bytes arrive: only a
        // wait that expired with nothing new to read is a timeout.
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportTimeout("in-process recv timed out");
      }
    }
    bytes_received_.fetch_add(got, std::memory_order_relaxed);
  }

  void set_recv_timeout(std::chrono::milliseconds timeout) override {
    std::lock_guard<std::mutex> lock(link_->mu);
    timeout_ = timeout;
  }

  void close() override {
    {
      std::lock_guard<std::mutex> lock(link_->mu);
      (is_server_ ? link_->server_closed : link_->client_closed) = true;
    }
    link_->cv.notify_all();
  }

 private:
  [[nodiscard]] bool my_closed() const {
    return is_server_ ? link_->server_closed : link_->client_closed;
  }
  [[nodiscard]] bool peer_closed() const {
    return is_server_ ? link_->client_closed : link_->server_closed;
  }

  std::shared_ptr<InProcessLink> link_;
  bool is_server_;
  std::chrono::milliseconds timeout_{0};  // guarded by link_->mu
};

// ---------------------------------------------------------------------
// Socket transport — one implementation for unix-domain socketpairs and
// TCP connections: both are SOCK_STREAM fds, differing only in how the
// fd was produced (socketpair vs listen/accept/connect).
// ---------------------------------------------------------------------

class SocketChannel final : public ByteChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}

  ~SocketChannel() override {
    close();
    // The fd itself is released only here, after any thread blocked in
    // recv() has been woken by the shutdown(2) in close() — closing the
    // fd under a concurrent read would let the kernel reuse the number.
    ::close(fd_);
  }

  void send(const void* data, std::size_t len) override {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < len) {
      // MSG_NOSIGNAL: a closed peer must surface as TransportError, not
      // a process-killing SIGPIPE.
      const ssize_t n =
          ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
        throw TransportError(std::string("socket send failed: ") +
                             std::strerror(errno));
      }
      sent += static_cast<std::size_t>(n);
    }
    bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
  }

  void recv(void* data, std::size_t len) override {
    auto* bytes = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::recv(fd_, bytes + got, len - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // SO_RCVTIMEO elapsed with no data (set_recv_timeout).
          bytes_received_.fetch_add(got, std::memory_order_relaxed);
          throw TransportTimeout("socket recv timed out");
        }
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportError(std::string("socket recv failed: ") +
                             std::strerror(errno));
      }
      if (n == 0) {
        bytes_received_.fetch_add(got, std::memory_order_relaxed);
        throw TransportError("socket closed by peer");
      }
      got += static_cast<std::size_t>(n);
    }
    bytes_received_.fetch_add(got, std::memory_order_relaxed);
  }

  void set_recv_timeout(std::chrono::milliseconds timeout) override {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
      throw TransportError(std::string("setsockopt(SO_RCVTIMEO) failed: ") +
                           std::strerror(errno));
    }
  }

  void close() override {
    // shutdown, not close: wakes a peer OR a local thread blocked in
    // recv on this very fd, while keeping the fd number reserved until
    // the destructor runs.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  int fd_;
};

/// TCP_NODELAY on a connected TCP socket: the serving tier exchanges
/// small framed request/response messages, so Nagle coalescing would
/// only serialize round trips.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------
// TCP listener + connector.
// ---------------------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("tcp socket failed: ") +
                         std::strerror(errno));
  }
  // SO_REUSEADDR: a restarted shard server must rebind its port without
  // waiting out TIME_WAIT from the previous incarnation's links.
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("tcp bind to port " + std::to_string(port) +
                         " failed: " + err);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("tcp listen failed: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("tcp getsockname failed: " + err);
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<ByteChannel> TcpListener::accept() {
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("tcp accept failed: ") +
                           std::strerror(errno));
    }
    set_nodelay(conn);
    return std::make_unique<SocketChannel>(conn);
  }
}

void TcpListener::close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<ByteChannel> tcp_connect(const std::string& host,
                                         std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("tcp connect: '" + host +
                         "' is not a valid IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError(std::string("tcp socket failed: ") +
                         std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw TransportError("tcp connect to " + host + ":" +
                         std::to_string(port) + " failed: " + err);
  }
  set_nodelay(fd);
  return std::make_unique<SocketChannel>(fd);
}

ChannelPair make_channel_pair(TransportKind kind) {
  if (kind == TransportKind::kInProcess) {
    auto link = std::make_shared<InProcessLink>();
    return {std::make_unique<InProcessChannel>(link, /*is_server=*/true),
            std::make_unique<InProcessChannel>(link, /*is_server=*/false)};
  }
  if (kind == TransportKind::kTcp) {
    // A throwaway ephemeral listener per pair: connect() completes via
    // the kernel backlog, so connect-then-accept on one thread is safe.
    TcpListener listener(0);
    auto client = tcp_connect("127.0.0.1", listener.port());
    auto server = listener.accept();
    return {std::move(server), std::move(client)};
  }
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw TransportError(std::string("socketpair failed: ") +
                         std::strerror(errno));
  }
  return {std::make_unique<SocketChannel>(fds[0]),
          std::make_unique<SocketChannel>(fds[1])};
}

}  // namespace snaple::serve
