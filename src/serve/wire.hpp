// Shared wire-protocol plumbing of the serving tier — the opcode
// constants and the little framing helpers both router.cpp (query
// plane) and update_router.cpp (update plane) speak. The protocol
// itself is documented in serve/router.hpp; everything here is
// internal to the serve/ translation units.
//
// Requests and responses are assembled in one buffer and shipped with a
// single send(): one syscall per message on the socket transports, and
// the byte counters then count whole messages.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "serve/transport.hpp"
#include "util/check.hpp"

namespace snaple::serve::wire {

inline constexpr std::uint8_t kOpTopk = 1;
inline constexpr std::uint8_t kOpFetch = 2;
inline constexpr std::uint8_t kOpBatch = 3;
inline constexpr std::uint8_t kOpUpdate = 4;
inline constexpr std::uint8_t kOpBarrier = 5;
inline constexpr std::uint8_t kOpRemove = 6;
inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusError = 1;

template <typename T>
void put(std::vector<std::uint8_t>& buf, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
void put_span(std::vector<std::uint8_t>& buf, std::span<const T> values) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  buf.insert(buf.end(), p, p + values.size_bytes());
}

template <typename T>
T get(ByteChannel& ch) {
  T value;
  ch.recv(&value, sizeof(T));
  return value;
}

template <typename T>
void get_array(ByteChannel& ch, std::vector<T>& out, std::size_t count) {
  const std::size_t old = out.size();
  out.resize(old + count);
  if (count != 0) ch.recv(out.data() + old, count * sizeof(T));
}

inline void send_buffer(ByteChannel& ch,
                        const std::vector<std::uint8_t>& buf) {
  ch.send(buf.data(), buf.size());
}

inline void put_error(std::vector<std::uint8_t>& buf,
                      const std::string& message) {
  put<std::uint8_t>(buf, kStatusError);
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(message.size()));
  buf.insert(buf.end(), message.begin(), message.end());
}

/// Reads a status byte; on error, reads the message and rethrows it as
/// CheckError on this side of the wire.
inline void expect_ok(ByteChannel& ch) {
  if (get<std::uint8_t>(ch) == kStatusOk) return;
  const auto len = get<std::uint32_t>(ch);
  std::string message(len, '\0');
  if (len != 0) ch.recv(message.data(), len);
  throw CheckError(message);
}

/// One topk answer serialized in the shared ok-payload shape
/// (u32 count | ids | raw f32 scores) — op 1's whole payload, op 3's
/// per-query chunk.
inline void put_scored(
    std::vector<std::uint8_t>& buf,
    const std::vector<std::pair<VertexId, float>>& result) {
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(result.size()));
  for (const auto& [id, score] : result) put<std::uint32_t>(buf, id);
  for (const auto& [id, score] : result) put<float>(buf, score);
}

}  // namespace snaple::serve::wire
