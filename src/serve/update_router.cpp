#include "serve/update_router.hpp"

#include <string>

#include "serve/wire.hpp"

namespace snaple::serve {

using namespace wire;  // NOLINT — internal framing helpers

UpdateRouter::UpdateRouter(
    std::vector<std::unique_ptr<ByteChannel>> links)
    : links_(std::move(links)) {
  SNAPLE_CHECK_MSG(!links_.empty(),
                   "update router needs one link per shard");
  for (const auto& link : links_) {
    SNAPLE_CHECK_MSG(link != nullptr, "null update link");
  }
}

UpdateRouter::~UpdateRouter() { close(); }

void UpdateRouter::close() {
  for (auto& link : links_) link->close();
}

std::string UpdateRouter::exchange(const std::vector<std::uint8_t>& req,
                                   std::size_t per_link,
                                   std::vector<std::uint64_t>& payload) {
  if (dead_) {
    throw TransportError("update plane is down (a shard link failed)");
  }
  payload.assign(links_.size() * per_link, 0);
  try {
    // Fan out first, drain second: the shards work concurrently.
    for (auto& link : links_) send_buffer(*link, req);

    std::string error;
    std::size_t ok_count = 0;
    for (std::size_t s = 0; s < links_.size(); ++s) {
      ByteChannel& ch = *links_[s];
      if (get<std::uint8_t>(ch) == kStatusOk) {
        ++ok_count;
        for (std::size_t i = 0; i < per_link; ++i) {
          payload[s * per_link + i] = get<std::uint64_t>(ch);
        }
      } else {
        const auto len = get<std::uint32_t>(ch);
        std::string message(len, '\0');
        if (len != 0) ch.recv(message.data(), len);
        if (error.empty()) error = std::move(message);
      }
    }
    // Deterministic validation against identical union graphs: all
    // shards accept or all reject. Disagreement means the planes'
    // graphs diverged — fail loudly, this is not servable state.
    SNAPLE_CHECK_MSG(ok_count == 0 || ok_count == links_.size(),
                     "shards disagree on an update batch (" +
                         std::to_string(ok_count) + "/" +
                         std::to_string(links_.size()) +
                         " accepted) — the update plane is inconsistent");
    return error;
  } catch (const TransportError&) {
    // A torn fan-out (some shards saw the batch, a link then died) is
    // not recoverable from here: fail-stop.
    dead_ = true;
    for (auto& link : links_) link->close();
    throw;
  }
}

UpdateRouter::ApplyResult UpdateRouter::exchange_edges(
    std::uint8_t op, std::span<const Edge> batch) {
  std::vector<std::uint8_t> req;
  req.reserve(5 + batch.size() * 8);
  put<std::uint8_t>(req, op);
  put<std::uint32_t>(req, static_cast<std::uint32_t>(batch.size()));
  for (const Edge& e : batch) {
    put<std::uint32_t>(req, e.src);
    put<std::uint32_t>(req, e.dst);
  }

  std::vector<std::uint64_t> payload;
  const std::string error = exchange(req, /*per_link=*/4, payload);
  if (!error.empty()) throw CheckError(error);

  ApplyResult out;
  out.version = payload[0];
  for (std::size_t s = 0; s < links_.size(); ++s) {
    SNAPLE_CHECK_MSG(payload[s * 4] == out.version,
                     "shard " + std::to_string(s) + " is at version " +
                         std::to_string(payload[s * 4]) + ", shard 0 at " +
                         std::to_string(out.version) +
                         " — the update plane is inconsistent");
    out.gamma_rows += payload[s * 4 + 1];
    out.sims_rows += payload[s * 4 + 2];
    out.hop2_rows += payload[s * 4 + 3];
  }

  gamma_rows_ += out.gamma_rows;
  sims_rows_ += out.sims_rows;
  hop2_rows_ += out.hop2_rows;
  version_ = out.version;
  return out;
}

UpdateRouter::ApplyResult UpdateRouter::apply(
    std::span<const Edge> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyResult out = exchange_edges(kOpUpdate, batch);
  ++batches_;
  edges_ += batch.size();
  return out;
}

UpdateRouter::ApplyResult UpdateRouter::remove(
    std::span<const Edge> batch) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyResult out = exchange_edges(kOpRemove, batch);
  ++remove_batches_;
  removals_ += batch.size();
  return out;
}

std::uint64_t UpdateRouter::barrier() {
  std::lock_guard<std::mutex> lock(mu_);

  std::vector<std::uint8_t> req;
  put<std::uint8_t>(req, kOpBarrier);

  std::vector<std::uint64_t> payload;
  const std::string error = exchange(req, /*per_link=*/1, payload);
  if (!error.empty()) throw CheckError(error);

  for (std::size_t s = 0; s < links_.size(); ++s) {
    SNAPLE_CHECK_MSG(payload[s] == payload[0],
                     "barrier found shard " + std::to_string(s) +
                         " at version " + std::to_string(payload[s]) +
                         ", shard 0 at " + std::to_string(payload[0]) +
                         " — the update plane is inconsistent");
  }
  version_ = payload[0];
  return payload[0];
}

UpdateStats UpdateRouter::stats() const {
  UpdateStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.batches = batches_;
    s.edges = edges_;
    s.remove_batches = remove_batches_;
    s.removals = removals_;
    s.gamma_rows = gamma_rows_;
    s.sims_rows = sims_rows_;
    s.hop2_rows = hop2_rows_;
    s.version = version_;
  }
  for (const auto& link : links_) {
    s.bytes_sent += link->bytes_sent();
    s.bytes_received += link->bytes_received();
  }
  return s;
}

}  // namespace snaple::serve
