// LiveShard — one serving shard's LIVE slice of the model: the
// update-plane backend that keeps a sharded cluster fresh without a
// freeze()/re-shard cycle.
//
// Where ModelShard serves an immutable RowsSlice, a LiveShard owns its
// range's rows as versioned, RCU-published slabs over the base model,
// exactly the DynamicModel machinery (core/row_recompute.hpp) scoped to
// one vertex range. The update plane fans EVERY insert or remove batch
// to EVERY shard (UpdateRouter); each shard then:
//
//   1. validates the batch against its own live graph — the checks are
//      deterministic and every shard holds the same live graph, so all
//      shards accept or all reject: batch atomicity without a commit
//      protocol;
//   2. applies the batch to its own base+delta+tombstone overlay;
//   3. derives the stale row sets (rows::compute_stale_sets — a pure
//      function of batch + live graph, identical on every shard, and
//      the same for removes as for inserts by the symmetry argument in
//      row_recompute.hpp);
//   4. recomputes and republishes ONLY the stale rows it owns — the
//      1/S-th of the update work that is this shard's share;
//   5. bumps row_version for EVERY stale vertex, owned or not. The
//      versions are derived from the same deterministic sets, so all
//      shards agree on every vertex's version with no coordination —
//      and the versions key the hot-row cache (serve/row_cache.hpp), so
//      a cached copy of a republished row can never serve again.
//
// Out-of-range dependencies during recompute (sims(x) reads Γ̂ of x's
// union out-neighbors; hop2(x) reads sims of x's retained neighbors —
// either may live on another shard) are resolved WITHOUT any wire
// traffic: every row is a pure function of (union graph, config, seed),
// so the shard recomputes a non-owned stale dependency on the fly from
// its own union graph, memoized per apply. Non-stale dependencies read
// straight from the base model. This is what kEdgeLocal's
// endpoint-hash-stable machine tags buy: no placement history, no
// cross-shard row exchange, bit-identical floats everywhere.
//
// Concurrency: single writer (the shard's update link), any number of
// reader threads (frontend queries, peer fetches) with no reader locks
// — each row flips atomically behind an acquire/release pointer, and
// retired slabs are never freed while the shard lives (the DynamicModel
// discipline). During a writer burst a query may observe some rows pre-
// and some post-batch (row-level isolation); once apply() returns on
// every shard — UpdateRouter::barrier() — every served answer is
// bit-identical to LinkPredictor::fit on the live graph.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "core/row_recompute.hpp"
#include "gas/partition.hpp"
#include "graph/overlay_graph.hpp"
#include "serve/model_shard.hpp"

namespace snaple::serve {

class LiveShard {
 public:
  /// What one apply() touched. The row counts are THIS shard's owned
  /// republishes (summing them across a cluster's shards yields the
  /// global stale-row counts, since ranges partition the vertex space);
  /// the version is this shard's total applied operations afterwards.
  struct ApplyStats {
    std::uint64_t edges = 0;
    std::uint64_t gamma_rows = 0;
    std::uint64_t sims_rows = 0;
    std::uint64_t hop2_rows = 0;
    std::uint64_t version = 0;
  };

  /// One owned row snapshot with the version it was read at — what a
  /// peer fetch ships (router.hpp op 2 carries the version so the
  /// fetching shard caches under the OWNER's key, never its own
  /// possibly-skewed view).
  struct VersionedRow {
    std::uint64_t version = 0;
    std::shared_ptr<const HotRow> row;
  };

  /// Wraps `base` (fit on `graph` with PartitionStrategy::kEdgeLocal,
  /// or any single-machine fit) for live serving of `range`. Verifies
  /// the owned rows' machine tags against the insertion-stable
  /// placement (throws CheckError otherwise, and on Γrnd with K=3 —
  /// same constraints as DynamicModel, same reasons).
  LiveShard(std::shared_ptr<const PredictorModel> base,
            std::shared_ptr<const CsrGraph> graph, gas::VertexRange range,
            std::optional<std::uint64_t> partition_seed = std::nullopt);

  LiveShard(const LiveShard&) = delete;
  LiveShard& operator=(const LiveShard&) = delete;

  // ---- writer API (one writer at a time; safe against readers) ----

  /// Applies one insert batch: validate (all-or-nothing), insert,
  /// recompute this shard's stale owned rows, bump every stale vertex's
  /// version. Throws CheckError on a bad batch; a throwing call changes
  /// nothing.
  ApplyStats apply(std::span<const Edge> batch);

  /// Applies one remove batch — same contract, same stale row families
  /// (removing (u, v) touches exactly what inserting it would), same
  /// deterministic all-accept-or-all-reject atomicity across shards.
  ApplyStats apply_removes(std::span<const Edge> batch);

  // ---- reader API (lock-free) ----

  [[nodiscard]] const gas::VertexRange& range() const noexcept {
    return range_;
  }
  [[nodiscard]] bool owns(VertexId u) const noexcept {
    return range_.contains(u);
  }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return base_->num_vertices();
  }
  [[nodiscard]] const SnapleConfig& config() const noexcept {
    return base_->config();
  }

  /// Current rows of an OWNED vertex (throws CheckError otherwise —
  /// non-owned rows live on their owning shard; fetch them).
  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const;
  [[nodiscard]] PredictorModel::SimsView sims(VertexId v) const;
  [[nodiscard]] PredictorModel::Hop2View hop2(VertexId v) const;

  /// Retained neighbors of owned u whose rows are NOT owned here,
  /// sorted ascending — what the serving layer resolves (cache or peer
  /// fetch) before topk(u). Reads u's CURRENT sims row and, when `root`
  /// is non-null, pins the view it read there: a concurrent apply may
  /// republish u's row between this call and topk(u), and the fold MUST
  /// iterate the same neighbor set the missing list was derived from —
  /// pass the pin through to topk. The pinned spans stay valid for the
  /// shard's lifetime (slabs are never freed).
  [[nodiscard]] std::vector<VertexId> missing_rows(
      VertexId u, PredictorModel::SimsView* root = nullptr) const;

  /// Top-k for owned u over the current rows — bit-identical to
  /// QueryEngine::topk on a refit union-graph model once the cluster is
  /// quiescent. `overlay` supplies non-owned neighbor rows, as with
  /// ModelShard::topk; `root` (from missing_rows) substitutes for u's
  /// live sims row so the fold matches the resolved overlay even when a
  /// writer republishes u mid-query.
  [[nodiscard]] std::vector<std::pair<VertexId, float>> topk(
      VertexId u, std::size_t k = 0, const RowOverlay* overlay = nullptr,
      const PredictorModel::SimsView* root = nullptr) const;

  /// Owned row snapshot for a peer fetch: content and version read
  /// consistently (version-validated retry loop, so a row republished
  /// mid-read can never ship under a newer version than its bytes).
  [[nodiscard]] VersionedRow snapshot_row(VertexId v) const;

  /// Times any of v's rows was republished cluster-wide — identical on
  /// every shard (deterministic stale sets), maintained for ALL
  /// vertices so fetched-row cache keys always agree with the owner.
  [[nodiscard]] std::uint64_t row_version(VertexId v) const {
    SNAPLE_DCHECK(v < num_vertices());
    return row_version_[v].load(std::memory_order_acquire);
  }

  /// Total applied operations — inserts plus removals (monotone; the
  /// barrier quantity).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Bytes held beyond the base model: live + retired slabs, the
  /// overlay delta rows and the version/dirty tables.
  [[nodiscard]] std::size_t overlay_bytes() const noexcept;

  [[nodiscard]] const PredictorModel& base() const noexcept {
    return *base_;
  }

 private:
  using RowSlab = rows::RowSlab;
  /// Owned-range tables: index u - range_.begin.
  using RowTable = std::vector<std::atomic<const RowSlab*>>;

  struct ApplyScratch;  // per-apply memo of on-the-fly dependency rows
  struct FoldSource;    // current-row source for the hop2 recompute fold
  struct ServeSource;   // owned-or-overlay row source for topk

  [[nodiscard]] std::span<const VertexId> current_gamma(
      VertexId v, ApplyScratch& scratch) const;
  [[nodiscard]] PredictorModel::SimsView current_sims(
      VertexId v, ApplyScratch& scratch) const;

  /// Shared tail of apply()/apply_removes(): stale sets against the
  /// already mutated overlay, dirty flags, owned republishes in
  /// dependency order, version bumps.
  ApplyStats republish_stale(std::span<const Edge> batch);

  void publish(RowTable& table, VertexId u, std::unique_ptr<RowSlab> slab);

  std::shared_ptr<const PredictorModel> base_;
  OverlayGraph overlay_;
  gas::VertexRange range_;
  std::uint64_t partition_seed_;
  ScoreConfig score_;    // resolved once from the model's config
  bool hop2_skip_zero_;  // rows::hop2_zero_skip, fixed per config

  RowTable gamma_rows_;  // sized range_.size()
  RowTable sims_rows_;
  RowTable hop2_rows_;   // empty vector for K=2 models
  std::unique_ptr<std::atomic<std::uint64_t>[]> row_version_;  // full n
  std::atomic<std::uint64_t> version_{0};

  /// Writer-private staleness of NON-owned base rows (full n): set when
  /// a vertex's gamma/sims staled in any applied batch. A dirty
  /// dependency is recomputed on the fly; a clean one reads the base
  /// model. Owned rows never consult these — their tables are current.
  std::vector<char> gamma_dirty_;
  std::vector<char> sims_dirty_;

  /// Every slab ever published, live or superseded — deferred
  /// reclamation is what lets readers run without locks or epochs.
  std::vector<std::unique_ptr<const RowSlab>> slabs_;
};

}  // namespace snaple::serve
