#include "serve/live_shard.hpp"

#include <string>
#include <unordered_map>

#include "core/query_engine.hpp"
#include "util/thread_pool.hpp"

namespace snaple::serve {

namespace {

rows::PathFoldScratch& local_scratch() {
  static thread_local rows::PathFoldScratch scratch;
  return scratch;
}

std::shared_ptr<const CsrGraph> require_graph(
    std::shared_ptr<const CsrGraph> graph) {
  SNAPLE_CHECK_MSG(graph != nullptr,
                   "LiveShard needs the fit graph (a loaded model "
                   "carries none — refit, or keep the graph alongside "
                   "the model)");
  return graph;
}

std::shared_ptr<const PredictorModel> require_model(
    std::shared_ptr<const PredictorModel> model) {
  SNAPLE_CHECK_MSG(model != nullptr, "LiveShard needs a base model");
  return model;
}

}  // namespace

/// Per-apply memo of on-the-fly recomputed NON-owned dependency rows.
/// Slabs are heap-held so spans into them stay valid while maps rehash.
struct LiveShard::ApplyScratch {
  std::unordered_map<VertexId, std::unique_ptr<RowSlab>> gamma;
  std::unordered_map<VertexId, std::unique_ptr<RowSlab>> sims;
};

/// Current-row source for the hop2 recompute fold
/// (rows::fold_vertex_paths). sims(v) resolves to the freshest view of
/// any vertex — owned table, per-apply memo, or base; hop2() is never
/// read by the kHop2 fold (and must not be: a non-owned hop2 row is not
/// recomputable without the same fold this source is feeding).
struct LiveShard::FoldSource {
  const LiveShard* shard;
  ApplyScratch* scratch;

  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const {
    return shard->current_gamma(u, *scratch);
  }
  [[nodiscard]] PredictorModel::SimsView sims(VertexId v) const {
    return shard->current_sims(v, *scratch);
  }
  [[nodiscard]] PredictorModel::Hop2View hop2(VertexId) const {
    SNAPLE_CHECK_MSG(false,
                     "the hop2 recompute fold never reads hop2 rows");
    return {};
  }
  [[nodiscard]] const SnapleConfig& config() const {
    return shard->config();
  }
};

/// Row source for serving topk over live rows: owned vertices read the
/// published tables, everything else comes from the resolved overlay
/// (cached or peer-fetched rows) — the live twin of model_shard.cpp's
/// ShardRowSource.
struct LiveShard::ServeSource {
  const LiveShard* shard;
  const RowOverlay* overlay;
  VertexId root_id = 0;
  /// The query vertex's sims row as read by missing_rows — the fold
  /// must iterate the SAME neighbor set the overlay was resolved for,
  /// even if a writer republished the root row in between.
  const PredictorModel::SimsView* root = nullptr;

  [[nodiscard]] std::span<const VertexId> gamma_hat(VertexId u) const {
    return shard->gamma_hat(u);
  }
  [[nodiscard]] PredictorModel::SimsView sims(VertexId v) const {
    if (root != nullptr && v == root_id) return *root;
    if (shard->owns(v)) return shard->sims(v);
    const HotRow& row = overlay_row(v);
    return {{row.sims_ids.data(), row.sims_ids.size()},
            {row.sims_scores.data(), row.sims_scores.size()},
            {}};
  }
  [[nodiscard]] PredictorModel::Hop2View hop2(VertexId v) const {
    if (shard->owns(v)) return shard->hop2(v);
    const HotRow& row = overlay_row(v);
    return {{row.hop2_ids.data(), row.hop2_ids.size()},
            {row.hop2_scores.data(), row.hop2_scores.size()}};
  }
  [[nodiscard]] const SnapleConfig& config() const {
    return shard->config();
  }

 private:
  [[nodiscard]] const HotRow& overlay_row(VertexId v) const {
    std::size_t i = static_cast<std::size_t>(-1);
    if (overlay != nullptr) {
      const auto it = std::lower_bound(overlay->ids.begin(),
                                       overlay->ids.end(), v);
      if (it != overlay->ids.end() && *it == v) {
        i = static_cast<std::size_t>(it - overlay->ids.begin());
      }
    }
    SNAPLE_CHECK_MSG(i != static_cast<std::size_t>(-1),
                     "row for vertex " + std::to_string(v) +
                         " is not owned by this shard and was not "
                         "cached or fetched — route a fetch first");
    return *overlay->rows[i];
  }
};

LiveShard::LiveShard(std::shared_ptr<const PredictorModel> base,
                     std::shared_ptr<const CsrGraph> graph,
                     gas::VertexRange range,
                     std::optional<std::uint64_t> partition_seed)
    : base_(require_model(std::move(base))),
      overlay_(require_graph(std::move(graph))),
      range_(range),
      partition_seed_(partition_seed.value_or(base_->config().seed)) {
  SNAPLE_CHECK_MSG(overlay_.num_vertices() == base_->num_vertices(),
                   "graph and model disagree on the vertex count — this "
                   "is not the graph the model was fit on");
  SNAPLE_CHECK_MSG(range_.end <= base_->num_vertices() &&
                       range_.begin <= range_.end,
                   "shard range outside the model");
  SNAPLE_CHECK_MSG(
      !(base_->config().policy == SelectionPolicy::kRandom &&
        base_->config().k_hops == 3),
      "incremental updates do not support the Γrnd policy with K=3: its "
      "hop2 selection shuffles candidates in accumulator-iteration "
      "order, which no out-of-band recompute can reproduce bit-exactly");

  const VertexId n = base_->num_vertices();
  score_ = base_->config().resolve_score();
  hop2_skip_zero_ = rows::hop2_zero_skip(base_->config(), score_);
  gamma_rows_ = RowTable(range_.size());
  sims_rows_ = RowTable(range_.size());
  if (base_->config().k_hops == 3) hop2_rows_ = RowTable(range_.size());
  row_version_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  gamma_dirty_.assign(n, 0);
  sims_dirty_.assign(n, 0);

  // Verify the OWNED rows' tags against the insertion-stable placement
  // (the union of every shard's check covers the whole model — same
  // guarantee as DynamicModel's full-table check, split 1/S per shard).
  const std::uint32_t machines = base_->num_machines();
  const CsrGraph& g = overlay_.base();
  default_pool().parallel_for(
      range_.begin, range_.end, [&](std::size_t i, std::size_t) {
        const auto u = static_cast<VertexId>(i);
        const auto su = base_->sims(u);
        for (std::size_t j = 0; j < su.ids.size(); ++j) {
          SNAPLE_CHECK_MSG(
              g.has_edge(u, su.ids[j]),
              "retained neighbor " + std::to_string(su.ids[j]) +
                  " of vertex " + std::to_string(u) +
                  " is not an edge of the graph — this is not the graph "
                  "the model was fit on");
          SNAPLE_CHECK_MSG(
              su.machines[j] == gas::edge_local_machine(
                                    u, su.ids[j], machines,
                                    partition_seed_),
              "machine tag of edge (" + std::to_string(u) + ", " +
                  std::to_string(su.ids[j]) +
                  ") does not follow the insertion-stable placement — "
                  "fit with gas::PartitionStrategy::kEdgeLocal (seed " +
                  std::to_string(partition_seed_) +
                  ") to serve live updates");
        }
      });
}

// ---------------------------------------------------------------------
// Writer path.
// ---------------------------------------------------------------------

std::span<const VertexId> LiveShard::current_gamma(
    VertexId v, ApplyScratch& scratch) const {
  if (owns(v)) {
    if (const RowSlab* s = gamma_rows_[v - range_.begin].load(
            std::memory_order_relaxed)) {
      return s->ids;
    }
    return base_->gamma_hat(v);
  }
  if (!gamma_dirty_[v]) return base_->gamma_hat(v);
  auto it = scratch.gamma.find(v);
  if (it == scratch.gamma.end()) {
    auto slab = std::make_unique<RowSlab>();
    slab->ids = rows::recompute_gamma_row(base_->config(), overlay_, v);
    it = scratch.gamma.emplace(v, std::move(slab)).first;
  }
  return it->second->ids;
}

PredictorModel::SimsView LiveShard::current_sims(
    VertexId v, ApplyScratch& scratch) const {
  if (owns(v)) {
    if (const RowSlab* s = sims_rows_[v - range_.begin].load(
            std::memory_order_relaxed)) {
      return {s->ids, s->scores, s->machines};
    }
    return base_->sims(v);
  }
  if (!sims_dirty_[v]) return base_->sims(v);
  auto it = scratch.sims.find(v);
  if (it == scratch.sims.end()) {
    auto slab = rows::recompute_sims_row(
        base_->config(), score_, overlay_, base_->num_machines(),
        partition_seed_, v,
        [&](VertexId w) { return current_gamma(w, scratch); });
    it = scratch.sims.emplace(v, std::move(slab)).first;
  }
  const RowSlab& s = *it->second;
  return {s.ids, s.scores, s.machines};
}

LiveShard::ApplyStats LiveShard::apply(std::span<const Edge> batch) {
  // All-or-nothing, and deterministic across shards: every shard holds
  // the same live graph, so this throw happens everywhere or nowhere.
  rows::validate_insert_batch(overlay_, batch);
  if (batch.empty()) {
    return ApplyStats{0, 0, 0, 0,
                      version_.load(std::memory_order_relaxed)};
  }
  for (const Edge& e : batch) overlay_.insert(e.src, e.dst);
  return republish_stale(batch);
}

LiveShard::ApplyStats LiveShard::apply_removes(
    std::span<const Edge> batch) {
  rows::validate_remove_batch(overlay_, batch);
  if (batch.empty()) {
    return ApplyStats{0, 0, 0, 0,
                      version_.load(std::memory_order_relaxed)};
  }
  for (const Edge& e : batch) overlay_.remove(e.src, e.dst);
  return republish_stale(batch);
}

LiveShard::ApplyStats LiveShard::republish_stale(
    std::span<const Edge> batch) {
  const rows::StaleSets stale =
      rows::compute_stale_sets(overlay_, batch, !hop2_rows_.empty());

  // Dirty flags first: the recomputes below must see every non-owned
  // dependency of THIS batch as stale (cumulative across applies — a
  // non-owned row is never republished here, so once stale it is
  // recomputed on the fly forever after).
  for (const VertexId u : stale.gamma) gamma_dirty_[u] = 1;
  for (const VertexId x : stale.sims) sims_dirty_[x] = 1;

  // Recompute the OWNED stale rows in dependency order — each phase
  // reads rows the previous phase already published (program order;
  // readers see each row flip atomically).
  ApplyStats out;
  out.edges = batch.size();
  ApplyScratch scratch;
  for (const VertexId u : stale.gamma) {
    if (!owns(u)) continue;
    auto slab = std::make_unique<RowSlab>();
    slab->ids = rows::recompute_gamma_row(base_->config(), overlay_, u);
    publish(gamma_rows_, u, std::move(slab));
    ++out.gamma_rows;
  }
  for (const VertexId x : stale.sims) {
    if (!owns(x)) continue;
    publish(sims_rows_, x,
            rows::recompute_sims_row(
                base_->config(), score_, overlay_, base_->num_machines(),
                partition_seed_, x,
                [&](VertexId w) { return current_gamma(w, scratch); }));
    ++out.sims_rows;
  }
  if (!hop2_rows_.empty()) {
    const FoldSource source{this, &scratch};
    rows::PathFoldScratch& fold = local_scratch();
    for (const VertexId x : stale.hop2) {
      if (!owns(x)) continue;
      publish(hop2_rows_, x,
              rows::recompute_hop2_row(source, score_, hop2_skip_zero_, x,
                                       fold));
      ++out.hop2_rows;
    }
  }

  // Version bumps AFTER the publishes (release ordering: a reader that
  // observes a bumped version also observes the republished rows — the
  // invariant the fetch path's snapshot retry and the cache keys rest
  // on). Bumps cover every stale vertex, owned or not, so all shards
  // agree on every version.
  for (const VertexId u : stale.gamma) {
    row_version_[u].fetch_add(1, std::memory_order_release);
  }
  for (const VertexId x : stale.sims) {
    row_version_[x].fetch_add(1, std::memory_order_release);
  }
  for (const VertexId x : stale.hop2) {
    row_version_[x].fetch_add(1, std::memory_order_release);
  }
  out.version = version_.fetch_add(batch.size(),
                                   std::memory_order_release) +
                batch.size();
  return out;
}

void LiveShard::publish(RowTable& table, VertexId u,
                        std::unique_ptr<RowSlab> slab) {
  const RowSlab* p = slab.get();
  slabs_.push_back(std::move(slab));  // retired slabs stay owned forever
  table[u - range_.begin].store(p, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Reader path.
// ---------------------------------------------------------------------

std::span<const VertexId> LiveShard::gamma_hat(VertexId u) const {
  SNAPLE_CHECK_MSG(owns(u), "gamma row of vertex " + std::to_string(u) +
                                " is not owned by this live shard");
  if (const RowSlab* s =
          gamma_rows_[u - range_.begin].load(std::memory_order_acquire)) {
    return s->ids;
  }
  return base_->gamma_hat(u);
}

PredictorModel::SimsView LiveShard::sims(VertexId v) const {
  SNAPLE_CHECK_MSG(owns(v), "sims row of vertex " + std::to_string(v) +
                                " is not owned by this live shard");
  if (const RowSlab* s =
          sims_rows_[v - range_.begin].load(std::memory_order_acquire)) {
    return {s->ids, s->scores, s->machines};
  }
  return base_->sims(v);
}

PredictorModel::Hop2View LiveShard::hop2(VertexId v) const {
  SNAPLE_CHECK_MSG(owns(v), "hop2 row of vertex " + std::to_string(v) +
                                " is not owned by this live shard");
  if (hop2_rows_.empty()) return {};  // K=2: no hop2 table at all
  if (const RowSlab* s =
          hop2_rows_[v - range_.begin].load(std::memory_order_acquire)) {
    return {s->ids, s->scores};
  }
  return base_->hop2(v);
}

std::vector<VertexId> LiveShard::missing_rows(
    VertexId u, PredictorModel::SimsView* root) const {
  const PredictorModel::SimsView su = sims(u);
  if (root != nullptr) *root = su;
  std::vector<VertexId> missing;
  for (const VertexId v : su.ids) {
    if (!owns(v)) missing.push_back(v);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()),
                missing.end());
  return missing;
}

std::vector<std::pair<VertexId, float>> LiveShard::topk(
    VertexId u, std::size_t k, const RowOverlay* overlay,
    const PredictorModel::SimsView* root) const {
  SNAPLE_CHECK_MSG(owns(u), "query vertex " + std::to_string(u) +
                                " routed to the wrong shard");
  const ServeSource source{this, overlay, u, root};
  rows::PathFoldScratch& scratch = local_scratch();
  rows::fold_vertex_paths(source, score_, u, rows::PathFold::kRecommend,
                          /*zero_skip=*/false, scratch);
  return rank_candidates(scratch.merged, score_.aggregator,
                         k == 0 ? config().k : k);
}

LiveShard::VersionedRow LiveShard::snapshot_row(VertexId v) const {
  SNAPLE_CHECK_MSG(owns(v), "fetch for vertex " + std::to_string(v) +
                                " sent to a non-owning shard");
  // Version-validated read: re-read the version after copying the row
  // content. An unchanged version proves the content is not OLDER than
  // the version (publishes precede bumps), so a cached copy under this
  // key can never serve stale bytes. The benign race — fresh content
  // under a not-yet-bumped version — self-heals on the next lookup
  // (version mismatch = miss and drop).
  for (;;) {
    const std::uint64_t before = row_version(v);
    auto row = std::make_shared<HotRow>();
    const auto sv = sims(v);
    row->sims_ids.assign(sv.ids.begin(), sv.ids.end());
    row->sims_scores.assign(sv.scores.begin(), sv.scores.end());
    const auto hv = hop2(v);
    row->hop2_ids.assign(hv.ids.begin(), hv.ids.end());
    row->hop2_scores.assign(hv.scores.begin(), hv.scores.end());
    if (row_version(v) == before) {
      return {before, std::move(row)};
    }
  }
}

std::size_t LiveShard::overlay_bytes() const noexcept {
  std::size_t bytes =
      overlay_.memory_bytes() +
      slabs_.capacity() * sizeof(std::unique_ptr<const RowSlab>) +
      static_cast<std::size_t>(num_vertices()) *
          (sizeof(std::atomic<std::uint64_t>) + 2) +
      (gamma_rows_.size() + sims_rows_.size() + hop2_rows_.size()) *
          sizeof(std::atomic<const RowSlab*>);
  for (const auto& s : slabs_) bytes += s->memory_bytes();
  return bytes;
}

}  // namespace snaple::serve
