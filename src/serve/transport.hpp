// Byte transports of the sharded serving tier.
//
// A serving cluster is a set of shard servers plus a router, each end of
// every link talking through the one interface below: send all the bytes
// or throw, receive exactly the requested bytes or throw. Three
// implementations share it:
//
//   * InProcessChannel — a mutex+condvar byte queue pair. Zero syscalls,
//     so tests and benchmarks can isolate protocol/routing cost from
//     kernel socket cost, and the bit-identity tests run anywhere.
//   * UnixSocketChannel — a real SOCK_STREAM unix-domain socketpair. The
//     bytes cross the kernel exactly as they would between shard
//     *processes*; only the fork is simulated away. Proves the wire
//     protocol survives short reads/writes and real EOF semantics.
//   * TCP — a real AF_INET loopback connection (TcpListener +
//     tcp_connect below), the transport that crosses actual machine
//     boundaries: SO_REUSEADDR on the listener, TCP_NODELAY on both
//     ends (the wire protocol is request/response, so Nagle batching
//     only adds latency), same all-or-throw contract.
//
// Both ends count bytes (atomic, readable concurrently), which is how
// ServeStats attributes network volume to queries vs remote row fetches.
//
// Close semantics: close() wakes any blocked peer, whose next recv()
// throws TransportError — the cluster's shutdown signal (there is no
// in-band "shutdown" message; EOF is the shutdown message, exactly as a
// died process would present).
//
// Recv deadlines: set_recv_timeout() arms an optional per-recv deadline
// so a peer that is alive-but-silent (stuck, partitioned) surfaces as
// TransportTimeout instead of blocking the caller forever — the router
// uses it to keep drain threads from wedging on a dead shard. A timeout
// does NOT close the channel: a recv that timed out after consuming
// zero bytes may simply be retried (how an idle drain thread keeps
// waiting); one that consumed partial bytes leaves the stream desynced,
// and the caller must treat the link as dead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace snaple::serve {

/// Thrown on torn writes, truncated reads and reads/writes after the
/// peer closed. Catching it at a server loop's top level IS the clean
/// shutdown path.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by recv() when an armed recv deadline elapses with no
/// progress (set_recv_timeout). A TransportError subclass, so code that
/// only knows "the link failed" stays correct; code that can retry (an
/// idle drain thread) catches this type first.
class TransportTimeout : public TransportError {
 public:
  using TransportError::TransportError;
};

/// Which concrete transport a cluster's links use.
enum class TransportKind {
  kInProcess,   // mutex+condvar byte queues, no syscalls
  kUnixSocket,  // AF_UNIX SOCK_STREAM socketpair through the kernel
  kTcp,         // AF_INET SOCK_STREAM over loopback/network
};

[[nodiscard]] const char* to_string(TransportKind kind) noexcept;

/// One end of a bidirectional, ordered, reliable byte stream.
/// send/recv are all-or-throw: partial transfers never escape (short
/// socket writes are retried internally). Channels are full duplex: ONE
/// sender plus ONE receiver may use the same end concurrently (how the
/// router pipelines — a submission side writes while the drain thread
/// reads), but concurrent senders (or receivers) on one end must be
/// serialized by the caller, as router.hpp's send mutex does. Distinct
/// ends are independent.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Sends exactly `len` bytes, or throws TransportError (peer closed,
  /// socket error).
  virtual void send(const void* data, std::size_t len) = 0;

  /// Receives exactly `len` bytes into `data`, or throws TransportError
  /// (EOF before `len` bytes, socket error, channel closed) /
  /// TransportTimeout (armed deadline elapsed with no progress).
  virtual void recv(void* data, std::size_t len) = 0;

  /// Arms a deadline for subsequent recv() calls: if no bytes arrive
  /// within `timeout`, recv throws TransportTimeout. Zero disarms
  /// (the default — recv blocks indefinitely). Call from the receiving
  /// thread's side only, before or between recvs.
  virtual void set_recv_timeout(std::chrono::milliseconds timeout) = 0;

  /// Closes this end: the peer's blocked/next recv() throws, as does any
  /// further send/recv here. Idempotent, safe to call from another
  /// thread while the owner blocks in recv (that is the point).
  virtual void close() = 0;

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

/// The two connected ends of one link. Hand `server` to the shard's
/// connection thread, keep `client` on the caller side.
struct ChannelPair {
  std::unique_ptr<ByteChannel> server;
  std::unique_ptr<ByteChannel> client;
};

/// Connected pair of the requested kind. kUnixSocket throws
/// TransportError if socketpair(2) fails (fd exhaustion); kTcp builds a
/// real loopback connection through a throwaway ephemeral listener.
[[nodiscard]] ChannelPair make_channel_pair(TransportKind kind);

/// A listening TCP endpoint — the server half of a genuine
/// multi-machine link. Binds 127.0.0.1:`port` (port 0 = kernel-chosen
/// ephemeral, read back via port()) with SO_REUSEADDR, listens, and
/// hands each accepted connection out as a ByteChannel with TCP_NODELAY
/// already set. ServingCluster pairs every cluster link through one
/// listener, which is exactly the accept loop a real shard process
/// would run.
class TcpListener {
 public:
  /// Throws TransportError if socket/bind/listen fails (port in use).
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (the ephemeral port when constructed with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a connection arrives; throws TransportError if the
  /// listener was close()d or accept(2) fails.
  [[nodiscard]] std::unique_ptr<ByteChannel> accept();

  /// Stops accepting: a blocked accept() (and every later one) throws.
  /// Idempotent; the destructor calls it.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to a TcpListener (or any TCP endpoint speaking the wire
/// protocol) and returns the client channel, TCP_NODELAY set. Throws
/// TransportError on resolution/connection failure.
[[nodiscard]] std::unique_ptr<ByteChannel> tcp_connect(
    const std::string& host, std::uint16_t port);

}  // namespace snaple::serve
