// Byte transports of the sharded serving tier.
//
// A serving cluster is a set of shard servers plus a router, each end of
// every link talking through the one interface below: send all the bytes
// or throw, receive exactly the requested bytes or throw. Two
// implementations share it:
//
//   * InProcessChannel — a mutex+condvar byte queue pair. Zero syscalls,
//     so tests and benchmarks can isolate protocol/routing cost from
//     kernel socket cost, and the bit-identity tests run anywhere.
//   * UnixSocketChannel — a real SOCK_STREAM unix-domain socketpair. The
//     bytes cross the kernel exactly as they would between shard
//     *processes*; only the fork is simulated away. Proves the wire
//     protocol survives short reads/writes and real EOF semantics.
//
// Both ends count bytes (atomic, readable concurrently), which is how
// ServeStats attributes network volume to queries vs remote row fetches.
//
// Close semantics: close() wakes any blocked peer, whose next recv()
// throws TransportError — the cluster's shutdown signal (there is no
// in-band "shutdown" message; EOF is the shutdown message, exactly as a
// died process would present).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

namespace snaple::serve {

/// Thrown on torn writes, truncated reads and reads/writes after the
/// peer closed. Catching it at a server loop's top level IS the clean
/// shutdown path.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which concrete transport a cluster's links use.
enum class TransportKind {
  kInProcess,   // mutex+condvar byte queues, no syscalls
  kUnixSocket,  // AF_UNIX SOCK_STREAM socketpair through the kernel
};

[[nodiscard]] const char* to_string(TransportKind kind) noexcept;

/// One end of a bidirectional, ordered, reliable byte stream.
/// send/recv are all-or-throw: partial transfers never escape (short
/// socket writes are retried internally). Channels are full duplex: ONE
/// sender plus ONE receiver may use the same end concurrently (how the
/// router pipelines — a submission side writes while the drain thread
/// reads), but concurrent senders (or receivers) on one end must be
/// serialized by the caller, as router.hpp's send mutex does. Distinct
/// ends are independent.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Sends exactly `len` bytes, or throws TransportError (peer closed,
  /// socket error).
  virtual void send(const void* data, std::size_t len) = 0;

  /// Receives exactly `len` bytes into `data`, or throws TransportError
  /// (EOF before `len` bytes, socket error, channel closed).
  virtual void recv(void* data, std::size_t len) = 0;

  /// Closes this end: the peer's blocked/next recv() throws, as does any
  /// further send/recv here. Idempotent, safe to call from another
  /// thread while the owner blocks in recv (that is the point).
  virtual void close() = 0;

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

/// The two connected ends of one link. Hand `server` to the shard's
/// connection thread, keep `client` on the caller side.
struct ChannelPair {
  std::unique_ptr<ByteChannel> server;
  std::unique_ptr<ByteChannel> client;
};

/// Connected pair of the requested kind. kUnixSocket throws
/// TransportError if socketpair(2) fails (fd exhaustion).
[[nodiscard]] ChannelPair make_channel_pair(TransportKind kind);

}  // namespace snaple::serve
