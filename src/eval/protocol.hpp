// The paper's evaluation protocol (§5.2, after Sarkar & Moore [35]):
//
//   "We randomly remove one outgoing edge from each vertex with
//    |Γ(u)| > 3. After the execution, we obtain k (with k = 5 fixed)
//    predictions for each vertex."
//
// and for Figure 10, several edges per vertex:
//
//   "If a vertex has less edges than the number to be removed, we
//    removed all the edges except one."
//
// remove_random_edges() produces the training graph plus the hidden
// ground-truth edges; recall over those hidden edges is the quality
// metric everywhere in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace snaple::eval {

struct Holdout {
  CsrGraph train;            // G: the graph handed to predictors
  std::vector<Edge> hidden;  // E' \ E: the edges to rediscover
};

/// Removes up to `per_vertex` random outgoing edges from every vertex with
/// out-degree > `min_degree` (paper: min_degree = 3), never leaving a
/// qualifying vertex with fewer than one outgoing edge. Deterministic in
/// `seed`.
[[nodiscard]] Holdout remove_random_edges(const CsrGraph& g,
                                          std::size_t per_vertex,
                                          std::uint64_t seed,
                                          std::size_t min_degree = 3);

}  // namespace snaple::eval
