#include "eval/metrics.hpp"

#include <algorithm>

namespace snaple::eval {

std::size_t hits(const std::vector<std::vector<VertexId>>& predictions,
                 const std::vector<Edge>& hidden) {
  std::size_t found = 0;
  for (const Edge& e : hidden) {
    if (e.src >= predictions.size()) continue;
    const auto& preds = predictions[e.src];
    if (std::find(preds.begin(), preds.end(), e.dst) != preds.end()) {
      ++found;
    }
  }
  return found;
}

double recall(const std::vector<std::vector<VertexId>>& predictions,
              const std::vector<Edge>& hidden) {
  if (hidden.empty()) return 0.0;
  return static_cast<double>(hits(predictions, hidden)) /
         static_cast<double>(hidden.size());
}

std::size_t prediction_count(
    const std::vector<std::vector<VertexId>>& predictions) {
  std::size_t total = 0;
  for (const auto& p : predictions) total += p.size();
  return total;
}

double precision(const std::vector<std::vector<VertexId>>& predictions,
                 const std::vector<Edge>& hidden) {
  const std::size_t total = prediction_count(predictions);
  if (total == 0) return 0.0;
  return static_cast<double>(hits(predictions, hidden)) /
         static_cast<double>(total);
}

double recall_at(const std::vector<std::vector<VertexId>>& predictions,
                 const std::vector<Edge>& hidden, std::size_t k) {
  if (hidden.empty()) return 0.0;
  std::size_t found = 0;
  for (const Edge& e : hidden) {
    if (e.src >= predictions.size()) continue;
    const auto& preds = predictions[e.src];
    const std::size_t limit = std::min(k, preds.size());
    for (std::size_t i = 0; i < limit; ++i) {
      if (preds[i] == e.dst) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) / static_cast<double>(hidden.size());
}

double mean_reciprocal_rank(
    const std::vector<std::vector<VertexId>>& predictions,
    const std::vector<Edge>& hidden) {
  if (hidden.empty()) return 0.0;
  double total = 0.0;
  for (const Edge& e : hidden) {
    if (e.src >= predictions.size()) continue;
    const auto& preds = predictions[e.src];
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == e.dst) {
        total += 1.0 / static_cast<double>(i + 1);
        break;
      }
    }
  }
  return total / static_cast<double>(hidden.size());
}

}  // namespace snaple::eval
