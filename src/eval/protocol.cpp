#include "eval/protocol.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace snaple::eval {

Holdout remove_random_edges(const CsrGraph& g, std::size_t per_vertex,
                            std::uint64_t seed, std::size_t min_degree) {
  SNAPLE_CHECK(per_vertex >= 1);
  Holdout out;
  GraphBuilder builder(g.num_vertices());
  builder.reserve_edges(g.num_edges());
  Rng rng(seed);

  std::vector<VertexId> nbrs;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto row = g.out_neighbors(u);
    if (row.size() <= min_degree) {
      for (VertexId v : row) builder.add_edge(u, v);
      continue;
    }
    // Shuffle a copy and hide the first `removed` entries; never remove
    // the last remaining edge (paper rule for Figure 10).
    nbrs.assign(row.begin(), row.end());
    shuffle(nbrs, rng);
    const std::size_t removed = std::min(per_vertex, nbrs.size() - 1);
    for (std::size_t i = 0; i < removed; ++i) {
      out.hidden.push_back({u, nbrs[i]});
    }
    for (std::size_t i = removed; i < nbrs.size(); ++i) {
      builder.add_edge(u, nbrs[i]);
    }
  }
  out.train = builder.build();
  return out;
}

}  // namespace snaple::eval
