// Experiment runner shared by the bench harnesses.
//
// Wraps the full paper pipeline for one measurement:
//   dataset replica -> edge-removal holdout -> predictor -> recall + time
// with OOM (ResourceExhausted) reported as an outcome instead of a crash,
// since "BASELINE fails by exhausting the available memory" is itself a
// result the paper reports (§5.3).
#pragma once

#include <optional>
#include <string>

#include "baseline/gas_baseline.hpp"
#include "cassovary/random_walk.hpp"
#include "core/config.hpp"
#include "core/predictor.hpp"
#include "eval/protocol.hpp"
#include "gas/cluster.hpp"
#include "gas/partition.hpp"
#include "graph/csr_graph.hpp"

namespace snaple::eval {

/// A dataset replica with its holdout, ready for any predictor.
struct PreparedDataset {
  std::string name;
  CsrGraph train;
  std::vector<Edge> hidden;
  EdgeIndex original_edges = 0;
};

/// Generates the named replica at `scale`, removes `removed_per_vertex`
/// edges per qualifying vertex.
[[nodiscard]] PreparedDataset prepare_dataset(
    const std::string& name, double scale, std::uint64_t seed,
    std::size_t removed_per_vertex = 1);

/// As above but over a caller-supplied graph (e.g. a real SNAP dataset).
[[nodiscard]] PreparedDataset prepare_graph(std::string name, CsrGraph g,
                                            std::uint64_t seed,
                                            std::size_t removed_per_vertex = 1);

/// One measurement: recall + times, or the OOM marker.
struct Outcome {
  double recall = 0.0;
  double wall_seconds = 0.0;       // measured on the host
  double simulated_seconds = 0.0;  // on the simulated cluster
  std::size_t network_bytes = 0;
  bool out_of_memory = false;
  std::string error;

  /// The time an experiment table should report: simulated cluster time
  /// for multi-machine runs (the quantity the paper measures on its
  /// testbed), host wall time for single-machine runs.
  [[nodiscard]] double reported_seconds(bool distributed) const {
    return distributed ? simulated_seconds : wall_seconds;
  }
};

[[nodiscard]] Outcome run_snaple_experiment(
    const PreparedDataset& dataset, const SnapleConfig& config,
    const gas::ClusterConfig& cluster,
    gas::PartitionStrategy strategy = gas::PartitionStrategy::kGreedy,
    ThreadPool* pool = nullptr,
    gas::ExecutionMode exec = gas::ExecutionMode::kFlat);

[[nodiscard]] Outcome run_baseline_experiment(
    const PreparedDataset& dataset, const baseline::BaselineConfig& config,
    const gas::ClusterConfig& cluster,
    gas::PartitionStrategy strategy = gas::PartitionStrategy::kGreedy,
    ThreadPool* pool = nullptr,
    gas::ExecutionMode exec = gas::ExecutionMode::kFlat);

[[nodiscard]] Outcome run_cassovary_experiment(
    const PreparedDataset& dataset, const cassovary::WalkConfig& config,
    ThreadPool* pool = nullptr);

}  // namespace snaple::eval
