#include "eval/experiment.hpp"

#include "eval/metrics.hpp"
#include "graph/gen/datasets.hpp"
#include "util/timer.hpp"

namespace snaple::eval {

PreparedDataset prepare_dataset(const std::string& name, double scale,
                                std::uint64_t seed,
                                std::size_t removed_per_vertex) {
  CsrGraph full = gen::load_or_generate(name, scale, seed);
  return prepare_graph(gen::dataset_spec(name).name, std::move(full), seed,
                       removed_per_vertex);
}

PreparedDataset prepare_graph(std::string name, CsrGraph g,
                              std::uint64_t seed,
                              std::size_t removed_per_vertex) {
  PreparedDataset out;
  out.name = std::move(name);
  out.original_edges = g.num_edges();
  Holdout holdout = remove_random_edges(g, removed_per_vertex, seed);
  out.train = std::move(holdout.train);
  out.hidden = std::move(holdout.hidden);
  return out;
}

Outcome run_snaple_experiment(const PreparedDataset& dataset,
                              const SnapleConfig& config,
                              const gas::ClusterConfig& cluster,
                              gas::PartitionStrategy strategy,
                              ThreadPool* pool, gas::ExecutionMode exec) {
  Outcome out;
  try {
    // The engine-level batch primitive, not predict(): the paper's
    // figures need the full per-step accounting — simulated time and
    // network traffic of all three GAS steps — which the fit+serve
    // predict() intentionally no longer models (serving is local).
    const auto partitioning = gas::Partitioning::create(
        dataset.train, cluster.num_machines, strategy, config.seed);
    WallTimer timer;
    SnapleResult result =
        run_snaple(dataset.train, config, partitioning, cluster, pool,
                   gas::ApplyMode::kFused, exec);
    out.wall_seconds = timer.seconds();
    out.recall = recall(result.predictions, dataset.hidden);
    out.simulated_seconds = result.report.total_sim_s();
    out.network_bytes = result.report.total_net_bytes();
  } catch (const ResourceExhausted& e) {
    out.out_of_memory = true;
    out.error = e.what();
  }
  return out;
}

Outcome run_baseline_experiment(const PreparedDataset& dataset,
                                const baseline::BaselineConfig& config,
                                const gas::ClusterConfig& cluster,
                                gas::PartitionStrategy strategy,
                                ThreadPool* pool, gas::ExecutionMode exec) {
  Outcome out;
  try {
    const auto partitioning = gas::Partitioning::create(
        dataset.train, cluster.num_machines, strategy);
    WallTimer timer;
    baseline::BaselineResult result = baseline::run_baseline(
        dataset.train, config, partitioning, cluster, pool, exec);
    out.wall_seconds = timer.seconds();
    out.recall = recall(result.predictions, dataset.hidden);
    out.simulated_seconds = result.report.total_sim_s();
    out.network_bytes = result.report.total_net_bytes();
  } catch (const ResourceExhausted& e) {
    out.out_of_memory = true;
    out.error = e.what();
  }
  return out;
}

Outcome run_cassovary_experiment(const PreparedDataset& dataset,
                                 const cassovary::WalkConfig& config,
                                 ThreadPool* pool) {
  Outcome out;
  cassovary::RandomWalkEngine engine(dataset.train, pool);
  WallTimer timer;
  cassovary::WalkResult result = engine.predict_all(config);
  out.wall_seconds = timer.seconds();
  out.simulated_seconds = timer.seconds();  // genuinely single-machine
  out.recall = recall(result.predictions, dataset.hidden);
  return out;
}

}  // namespace snaple::eval
