// Prediction quality metrics.
//
// Recall is the paper's primary metric: "the proportion of removed edges
// that are successfully returned by the algorithm." Precision is provided
// for completeness; with a fixed number of removed edges and fixed k it is
// proportional to recall (§5.2), which the metrics test verifies.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace snaple::eval {

/// Fraction of hidden edges (u,z) with z among predictions[u].
[[nodiscard]] double recall(
    const std::vector<std::vector<VertexId>>& predictions,
    const std::vector<Edge>& hidden);

/// Fraction of returned predictions that are hidden edges.
[[nodiscard]] double precision(
    const std::vector<std::vector<VertexId>>& predictions,
    const std::vector<Edge>& hidden);

/// Number of hidden edges recovered (the recall numerator).
[[nodiscard]] std::size_t hits(
    const std::vector<std::vector<VertexId>>& predictions,
    const std::vector<Edge>& hidden);

/// Total predictions returned across all vertices.
[[nodiscard]] std::size_t prediction_count(
    const std::vector<std::vector<VertexId>>& predictions);

/// Recall counting only the first `k` entries of each prediction list —
/// lets one run with a large k report the whole Figure-9 sweep.
[[nodiscard]] double recall_at(
    const std::vector<std::vector<VertexId>>& predictions,
    const std::vector<Edge>& hidden, std::size_t k);

/// Mean reciprocal rank of the hidden edges: average of 1/(rank of the
/// hidden target in u's list), 0 when absent. Rank-sensitive complement
/// to recall (two predictors with equal recall@5 can differ sharply here).
[[nodiscard]] double mean_reciprocal_rank(
    const std::vector<std::vector<VertexId>>& predictions,
    const std::vector<Edge>& hidden);

}  // namespace snaple::eval
